//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * out-of-cache merge fan-out `F` (Eq. 8's `log_F` passes vs per-pass
//!   loser-tree work);
//! * in-cache run size (when to leave binary SIMD merging);
//! * segmented-sort small-group threshold (insertion sort vs full
//!   merge-sort invocations — the `C_overhead` effect behind the
//!   Figure 4 time hill).

use mcs_simd_sort::{sort_pairs_in_groups, sort_pairs_with, GroupBounds, SortConfig};
use mcs_test_support::microbench::{BenchmarkId, Criterion, Throughput};
use mcs_test_support::{criterion_group, criterion_main};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn bench_fanout(c: &mut Criterion) {
    let n = 1usize << 20;
    let mut state = 0xABCDu64;
    let keys: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
    let oids: Vec<u32> = (0..n as u32).collect();
    let mut g = c.benchmark_group("ablation_fanout");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for fanout in [2usize, 4, 8, 16, 32] {
        let cfg = SortConfig {
            fanout,
            in_cache_bytes: 256 * 1024,
            ..SortConfig::default()
        };
        g.bench_function(BenchmarkId::new("u32_sort", fanout), |b| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut o = oids.clone();
                sort_pairs_with(&mut k, &mut o, &cfg);
                (k, o)
            })
        });
    }
    g.finish();
}

fn bench_in_cache_run(c: &mut Criterion) {
    let n = 1usize << 20;
    let mut state = 0x5555u64;
    let keys: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
    let oids: Vec<u32> = (0..n as u32).collect();
    let mut g = c.benchmark_group("ablation_in_cache_bytes");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for kb in [64usize, 256, 1024, 4096] {
        let cfg = SortConfig {
            in_cache_bytes: kb * 1024,
            ..SortConfig::default()
        };
        g.bench_function(BenchmarkId::new("u32_sort", kb), |b| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut o = oids.clone();
                sort_pairs_with(&mut k, &mut o, &cfg);
                (k, o)
            })
        });
    }
    g.finish();
}

fn bench_small_threshold(c: &mut Criterion) {
    // Many small groups: the regime of a second sorting round.
    let n = 1usize << 19;
    let group = 64usize;
    let mut state = 0x9999u64;
    let keys: Vec<u16> = (0..n).map(|_| xorshift(&mut state) as u16).collect();
    let oids: Vec<u32> = (0..n as u32).collect();
    let offsets: Vec<u32> = (0..=n / group).map(|g| (g * group) as u32).collect();
    let bounds = GroupBounds::from_offsets(offsets);
    let mut g = c.benchmark_group("ablation_small_threshold");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for thr in [0usize, 32, 192, 1024] {
        let cfg = SortConfig {
            small_threshold: thr,
            ..SortConfig::default()
        };
        g.bench_function(BenchmarkId::new("segmented_64elem_groups", thr), |b| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut o = oids.clone();
                sort_pairs_in_groups(&mut k, &mut o, &bounds, &cfg);
                (k, o)
            })
        });
    }
    g.finish();
}

fn bench_multiway_impl(c: &mut Criterion) {
    // SIMD merge tree vs scalar loser tree for the out-of-cache phase.
    let n = 1usize << 21;
    let mut state = 0x7777u64;
    let keys: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
    let oids: Vec<u32> = (0..n as u32).collect();
    let mut g = c.benchmark_group("ablation_multiway_impl");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for (name, scalar) in [("simd_merge_tree", false), ("scalar_loser_tree", true)] {
        let cfg = SortConfig {
            in_cache_bytes: 128 * 1024, // force several out-of-cache passes
            scalar_multiway: scalar,
            ..SortConfig::default()
        };
        g.bench_function(BenchmarkId::new("u32_sort", name), |b| {
            b.iter(|| {
                let mut k = keys.clone();
                let mut o = oids.clone();
                sort_pairs_with(&mut k, &mut o, &cfg);
                (k, o)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fanout,
    bench_in_cache_run,
    bench_small_threshold,
    bench_multiway_impl
);
criterion_main!(benches);
