//! Micro-bench: ByteSlice early-stopping scans at different
//! widths and selectivities, plus the gather-based lookup.

use mcs_columnar::{ByteSliceColumn, CodeVec, Predicate};
use mcs_test_support::microbench::{BenchmarkId, Criterion, Throughput};
use mcs_test_support::{criterion_group, criterion_main};

fn bench_scans(c: &mut Criterion) {
    let n = 1usize << 18;
    let mut g = c.benchmark_group("byteslice_scan");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    for width in [12u32, 17, 24, 33] {
        let domain = 1u64 << width;
        let codes = CodeVec::from_u64s(width, (0..n).map(|i| (i as u64 * 2654435761) % domain));
        let col = ByteSliceColumn::from_codes(&codes, width);
        for (sel_name, lit) in [
            ("1pct", domain / 100),
            ("50pct", domain / 2),
            ("99pct", domain / 100 * 99),
        ] {
            g.bench_function(BenchmarkId::new(format!("lt_w{width}"), sel_name), |b| {
                b.iter(|| col.scan(&Predicate::Lt(lit)))
            });
        }
        g.bench_function(
            BenchmarkId::new(format!("between_w{width}"), "10pct"),
            |b| b.iter(|| col.scan(&Predicate::Between(domain / 2, domain / 2 + domain / 10))),
        );
        // Backend face-off: AVX2 32-lane kernels vs portable SWAR.
        g.bench_function(
            BenchmarkId::new(format!("lt_w{width}_swar"), "50pct"),
            |b| b.iter(|| col.scan_with_stats_impl(&Predicate::Lt(domain / 2), false)),
        );
        if std::is_x86_feature_detected!("avx2") {
            g.bench_function(
                BenchmarkId::new(format!("lt_w{width}_avx2"), "50pct"),
                |b| b.iter(|| col.scan_with_stats_impl(&Predicate::Lt(domain / 2), true)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scans);
criterion_main!(benches);
