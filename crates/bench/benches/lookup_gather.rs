//! Micro-bench: the lookup (random gather) operator whose cost
//! Eq. 3 models — in-cache vs out-of-cache working sets.

use mcs_columnar::CodeVec;
use mcs_test_support::microbench::{BenchmarkId, Criterion, Throughput};
use mcs_test_support::{criterion_group, criterion_main};

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup_gather");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    for (name, n) in [
        ("in_cache_64k", 1usize << 16),
        ("out_of_cache_8m", 1usize << 23),
    ] {
        let codes = CodeVec::from_u64s(20, (0..n).map(|i| (i as u64 * 48271) % (1 << 20)));
        // Random permutation of oids.
        let mut oids: Vec<u32> = (0..n as u32).collect();
        let mut state = 0x1234_5678u64;
        for i in (1..n).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            oids.swap(i, (state % (i as u64 + 1)) as usize);
        }
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::new("gather_u32", name), |b| {
            b.iter(|| codes.gather(&oids))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
