//! Micro-bench: code-massaging bandwidth (the four-instruction
//! program of Figure 6). The paper's claim: massaging is sequential,
//! branch-free, and cheap relative to one sorting round.

use mcs_columnar::CodeVec;
use mcs_core::{massage, MassagePlan, SortSpec};
use mcs_test_support::microbench::{BenchmarkId, Criterion, Throughput};
use mcs_test_support::{criterion_group, criterion_main};

fn bench_massage(c: &mut Criterion) {
    let n = 1usize << 18;
    let mut g = c.benchmark_group("massage_fip");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    let c17 = CodeVec::from_u64s(17, (0..n).map(|i| (i as u64 * 7919) % (1 << 17)));
    let c33 = CodeVec::from_u64s(33, (0..n).map(|i| (i as u64 * 104729) % (1u64 << 33)));
    let c48a = CodeVec::from_u64s(48, (0..n).map(|i| (i as u64 * 6700417) % (1u64 << 48)));
    let c48b = CodeVec::from_u64s(48, (0..n).map(|i| (i as u64 * 999983) % (1u64 << 48)));

    // Ex3 P<<1: I_FIP = 3.
    g.bench_function(BenchmarkId::new("ex3_p_ll1_ifip3", n), |b| {
        let specs = [SortSpec::asc(17), SortSpec::asc(33)];
        let plan = MassagePlan::from_widths(&[18, 32]);
        b.iter(|| massage(&[&c17, &c33], &specs, &plan, 1))
    });
    // Ex4 P_32x3: I_FIP = 4.
    g.bench_function(BenchmarkId::new("ex4_p32x3_ifip4", n), |b| {
        let specs = [SortSpec::asc(48), SortSpec::asc(48)];
        let plan = MassagePlan::from_widths(&[32, 32, 32]);
        b.iter(|| massage(&[&c48a, &c48b], &specs, &plan, 1))
    });
    // Complement path (DESC column).
    g.bench_function(BenchmarkId::new("desc_complement_stitch", n), |b| {
        let specs = [SortSpec::asc(17), SortSpec::desc(33)];
        let plan = MassagePlan::from_widths(&[50]);
        b.iter(|| massage(&[&c17, &c33], &specs, &plan, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_massage);
criterion_main!(benches);
