//! Micro-bench: ROGA plan-search latency (it must stay a
//! negligible fraction of execution time — Table 2's claim) and RRS at
//! the same budget.

use mcs_cost::{CostModel, SortInstance};
use mcs_planner::{roga, RogaOptions};
use mcs_test_support::microbench::{BenchmarkId, Criterion};
use mcs_test_support::{criterion_group, criterion_main};

fn bench_search(c: &mut Criterion) {
    let model = CostModel::with_defaults();
    let mut g = c.benchmark_group("plan_search");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    let cases: Vec<(&str, SortInstance, bool)> = vec![
        (
            "2col_W27",
            SortInstance::uniform(1 << 22, &[(10, 1024.0), (17, 8192.0)]),
            false,
        ),
        (
            "2col_W50",
            SortInstance::uniform(1 << 22, &[(17, 8192.0), (33, 8192.0)]),
            false,
        ),
        (
            "3col_W19_groupby",
            SortInstance::uniform(1 << 20, &[(5, 25.0), (8, 150.0), (6, 50.0)]),
            true,
        ),
        (
            "7col_W96_groupby",
            SortInstance::uniform(
                1 << 22,
                &[
                    (20, 1e5),
                    (16, 5e4),
                    (12, 4096.0),
                    (12, 2557.0),
                    (16, 65536.0),
                    (10, 1024.0),
                    (10, 1024.0),
                ],
            ),
            true,
        ),
    ];
    for (name, inst, permute) in &cases {
        g.bench_function(BenchmarkId::new("roga_rho_0.1pct", *name), |b| {
            b.iter(|| {
                roga(
                    inst,
                    &model,
                    &RogaOptions {
                        rho: Some(0.001),
                        permute_columns: *permute,
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
