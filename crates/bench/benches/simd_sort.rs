//! Micro-bench: SIMD merge-sort throughput per bank width,
//! AVX2 vs portable vs the scalar pdqsort baseline. The per-bank ordering
//! (16 < 32 < 64 in time) is the data-parallelism property code
//! massaging exploits.

use mcs_simd_sort::{sort_pairs_scalar, sort_pairs_with, SortConfig};
use mcs_test_support::microbench::{BenchmarkId, Criterion, Throughput};
use mcs_test_support::{criterion_group, criterion_main};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn bench_sorts(c: &mut Criterion) {
    let n = 1usize << 18;
    let mut g = c.benchmark_group("simd_sort");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    let mut state = 0xFEEDu64;
    let k16: Vec<u16> = (0..n).map(|_| xorshift(&mut state) as u16).collect();
    let k32: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
    let k64: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
    let oids: Vec<u32> = (0..n as u32).collect();

    let avx2 = SortConfig::default();
    let portable = SortConfig {
        force_portable: true,
        ..SortConfig::default()
    };

    macro_rules! case {
        ($name:expr, $keys:expr, $cfg:expr) => {
            g.bench_function(BenchmarkId::new($name, n), |b| {
                b.iter(|| {
                    let mut k = $keys.clone();
                    let mut o = oids.clone();
                    sort_pairs_with(&mut k, &mut o, $cfg);
                    (k, o)
                })
            });
        };
    }
    case!("u16_avx2", k16, &avx2);
    case!("u16_portable", k16, &portable);
    case!("u32_avx2", k32, &avx2);
    case!("u32_portable", k32, &portable);
    case!("u64_avx2", k64, &avx2);
    case!("u64_portable", k64, &portable);
    g.bench_function(BenchmarkId::new("u32_scalar_pdq", n), |b| {
        b.iter(|| {
            let mut k = k32.clone();
            let mut o = oids.clone();
            sort_pairs_scalar(&mut k, &mut o);
            (k, o)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sorts);
criterion_main!(benches);
