//! Extension experiment (the paper's §7 future work): radix-sorting
//! massaged rounds. The number of counting passes is `⌈w/8⌉`, so
//! bit-borrowing that narrows a round can eliminate a whole pass — code
//! massaging helps radix sort "with a different flavor".
//!
//! Compares, on Example Ex3's data (17-bit + 33-bit columns):
//! * merge-sort vs radix-sort as the per-round sorting kernel;
//! * `P_0` vs the massaged `{24/[32], 26/[32]}` plan under radix, where
//!   both rounds fit 3 counting passes instead of 3 + 5.

use mcs_bench::{ms, print_table, rows, seed, time};
use mcs_core::{massage, MassagePlan, RoundKeys};
use mcs_simd_sort::{
    group_boundaries, sort_pairs_radix, sort_pairs_radix_in_groups, sort_pairs_with, SortConfig,
};
use mcs_workloads::ex3;

fn radix_two_rounds(m: &mcs_workloads::MicroInstance, plan: &MassagePlan) -> u64 {
    let (keys, _) = massage(&m.column_refs(), &m.specs, plan, 1);
    let n = keys[0].len();
    let mut oids: Vec<u32> = (0..n as u32).collect();
    let widths = plan.widths();
    let (_, d) = time(|| {
        let mut groups = mcs_simd_sort::GroupBounds::whole(n);
        for (round, rk) in keys.iter().enumerate() {
            match rk {
                RoundKeys::B16(v) => {
                    let mut k: Vec<u16> = oids.iter().map(|&o| v[o as usize]).collect();
                    if round == 0 {
                        sort_pairs_radix(&mut k, &mut oids, widths[round]);
                    } else {
                        sort_pairs_radix_in_groups(&mut k, &mut oids, &groups, widths[round]);
                    }
                    groups = groups.refine_by(&k);
                }
                RoundKeys::B32(v) => {
                    let mut k: Vec<u32> = oids.iter().map(|&o| v[o as usize]).collect();
                    if round == 0 {
                        sort_pairs_radix(&mut k, &mut oids, widths[round]);
                    } else {
                        sort_pairs_radix_in_groups(&mut k, &mut oids, &groups, widths[round]);
                    }
                    groups = groups.refine_by(&k);
                }
                RoundKeys::B64(v) => {
                    let mut k: Vec<u64> = oids.iter().map(|&o| v[o as usize]).collect();
                    if round == 0 {
                        sort_pairs_radix(&mut k, &mut oids, widths[round]);
                    } else {
                        sort_pairs_radix_in_groups(&mut k, &mut oids, &groups, widths[round]);
                    }
                    groups = groups.refine_by(&k);
                }
            }
        }
        groups.num_groups()
    });
    d.as_nanos() as u64
}

fn main() {
    let n = rows(1 << 21);
    println!("Extension: radix-sorting massaged rounds (Ex3 data, N = {n})\n");
    let m = ex3(n, seed());

    // Kernel face-off on a single 32-bit round of the whole column.
    let (keys, _) = massage(
        &m.column_refs(),
        &m.specs,
        &MassagePlan::from_widths(&[17, 33]),
        1,
    );
    if let RoundKeys::B32(v) = &keys[0] {
        let mut out = Vec::new();
        let oids: Vec<u32> = (0..v.len() as u32).collect();
        let (_, d_merge) = time(|| {
            let mut k = v.clone();
            let mut o = oids.clone();
            sort_pairs_with(&mut k, &mut o, &SortConfig::default());
            group_boundaries(&k).num_groups()
        });
        let (_, d_radix) = time(|| {
            let mut k = v.clone();
            let mut o = oids.clone();
            sort_pairs_radix(&mut k, &mut o, 17);
            group_boundaries(&k).num_groups()
        });
        out.push(vec![
            "17-bit column (round 1)".into(),
            ms(d_merge.as_nanos() as u64),
            ms(d_radix.as_nanos() as u64),
        ]);
        print_table(&["kernel face-off", "mergesort_ms", "radix_ms"], &out);
    }

    // Plan face-off under radix: P0 (17 -> 3 passes, 33 -> 5 passes)
    // vs a balanced {24, 26} massage (3 + 4 passes, one pass saved and
    // narrower storage for round 2).
    let mut out = Vec::new();
    for (name, plan) in [
        ("P0 {17,33}", MassagePlan::from_widths(&[17, 33])),
        ("massaged {24,26}", MassagePlan::from_widths(&[24, 26])),
        ("massaged {18,32}", MassagePlan::from_widths(&[18, 32])),
    ] {
        let ns = radix_two_rounds(&m, &plan);
        out.push(vec![name.into(), plan.notation(), ms(ns)]);
    }
    print_table(&["radix plan", "notation", "total_ms"], &out);
    println!(
        "\nShape check: massaging narrows rounds -> fewer counting passes,\n\
         so the massaged plans should beat radix-P0 as well."
    );
}
