//! Figure 10 — multi-core throughput of multi-column sorting with code
//! massaging, sweeping the thread count on selected queries.
//!
//! The paper pins threads to 10 Xeon / 4 i7 cores and observes linear
//! scaling. **This container exposes a single physical core**, so the
//! measured curve here is expected to be flat-to-declining — the harness
//! still exercises the partition-parallel code path (chunked massage,
//! parallel chunk sorts + multiway merge, per-group parallel rounds) and
//! reports throughput in million tuples per second.

use mcs_bench::{cost_model, print_table, rows, seed, time};
use mcs_core::ExecConfig;
use mcs_engine::{EngineConfig, PlannerMode};
use mcs_workloads::{run_bench_query, tpcds, tpch, TpcdsParams, TpchParams};

fn main() {
    let n = rows(1 << 20);
    let s = seed();
    let threads = [1usize, 2, 4, 8];
    println!(
        "Figure 10: throughput vs threads (rows = {n}; NOTE: host has {} core(s))\n",
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    );
    let model = cost_model();
    let wl_tpch = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: s,
    });
    let wl_ds = tpcds(&TpcdsParams {
        store_sales_rows: n,
        seed: s,
    });

    let selected: Vec<(&mcs_workloads::Workload, &str)> = vec![
        (&wl_tpch, "tpch_q1"),
        (&wl_tpch, "tpch_q18"),
        (&wl_ds, "tpcds_q98"),
    ];

    let mut out = Vec::new();
    for (w, qname) in selected {
        let bq = w.query(qname);
        for &t in &threads {
            let cfg = EngineConfig {
                planner: PlannerMode::Roga { rho: Some(0.001) },
                model: model.clone(),
                exec: ExecConfig {
                    threads: t,
                    ..ExecConfig::default()
                },
            };
            let ((_, ct), d) = time(|| run_bench_query(w, bq, &cfg));
            let tput = n as f64 / d.as_secs_f64() / 1e6;
            out.push(vec![
                qname.to_string(),
                format!("{t}"),
                format!("{:.1}", d.as_secs_f64() * 1e3),
                format!("{tput:.2}"),
                format!("{:.1}", ct.mcs_ns as f64 / 1e6),
            ]);
        }
    }
    print_table(
        &["query", "threads", "total_ms", "Mtuples/s", "mcs_ms"],
        &out,
    );
    println!(
        "\nShape check (paper): linear scaling on real multi-core hardware;\n\
         on this single-core container the curve is flat by construction —\n\
         the parallel code path itself is exercised and verified."
    );
}
