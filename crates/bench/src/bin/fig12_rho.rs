//! Figure 12 / Appendix C — sensitivity to the time threshold ρ:
//! for representative queries (one TPC-H, one TPC-DS, one airline, plus
//! the widest-key query in the suite), sweep
//! ρ ∈ {0.01 %, 0.1 %, 1 %, 10 %, N/S} and report the search time, the
//! sorting time under the chosen plan, and the plan's actual rank.
//!
//! Expected shape (paper): ρ = 0.1 % is already enough — plans stop
//! improving beyond it, and only the stingiest ρ = 0.01 % hurts wide-key
//! queries.

use mcs_bench::{cost_model, ms, print_table, rows, seed, time};
use mcs_core::{multi_column_sort, ExecConfig};
use mcs_planner::{
    measure_all_plans, measure_plan, rank_by_time, roga, ExhaustiveOptions, RogaOptions,
};
use mcs_workloads::{
    airline, suite::extract_sort_instance, tpcds, tpch, AirlineParams, TpcdsParams, TpchParams,
    Workload,
};

fn main() {
    let n = rows(1 << 18);
    let s = seed();
    println!("Figure 12: plan quality and timing under various rho (rows = {n})\n");
    let model = cost_model();
    let rhos: Vec<(String, Option<f64>)> = vec![
        ("0.01%".into(), Some(0.0001)),
        ("0.1%".into(), Some(0.001)),
        ("1%".into(), Some(0.01)),
        ("10%".into(), Some(0.1)),
        ("N/S".into(), None),
    ];

    let wl_tpch = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: s,
    });
    let wl_ds = tpcds(&TpcdsParams {
        store_sales_rows: n,
        seed: s,
    });
    let wl_air = airline(&AirlineParams {
        ticket_rows: n,
        market_rows: n,
        seed: s,
    });
    let picks: Vec<(&Workload, &str)> = vec![
        (&wl_tpch, "tpch_q16"),
        (&wl_ds, "tpcds_q98"),
        (&wl_air, "air_q3"),
        (&wl_tpch, "tpch_q18"), // widest key in TPC-H (W > 60)
    ];

    let mut out = Vec::new();
    for (w, qname) in picks {
        let bq = w.query(qname);
        let (cols, specs, inst) = extract_sort_instance(w, bq);
        let refs: Vec<&mcs_columnar::CodeVec> = cols.iter().collect();
        let total_w: u32 = specs.iter().map(|sp| sp.width).sum();
        // Measured ranking for rank reporting (capped space).
        let measured = if total_w <= 40 {
            Some(measure_all_plans(
                &refs,
                &specs,
                &ExhaustiveOptions {
                    max_rounds: 3,
                    max_plans: 400,
                    repeats: 1,
                    exec: ExecConfig::default(),
                },
            ))
        } else {
            None // too wide to enumerate; report sort time only
        };
        for (label, rho) in &rhos {
            let r = roga(
                &inst,
                &model,
                &RogaOptions {
                    rho: *rho,
                    permute_columns: false,
                },
            )
            .expect("non-empty sort key");
            let (_, sort_d) = time(|| {
                multi_column_sort(&refs, &specs, &r.plan, &ExecConfig::default())
                    .expect("valid sort instance")
            });
            let rank = measured
                .as_ref()
                .map(|m| {
                    let opts = ExhaustiveOptions::default();
                    let t = measure_plan(&refs, &specs, &r.plan, &opts).expect("valid plan");
                    format!("{}", rank_by_time(t, m))
                })
                .unwrap_or_else(|| "-".into());
            out.push(vec![
                qname.to_string(),
                format!("{total_w}"),
                label.clone(),
                format!("{:.3}", r.elapsed.as_secs_f64() * 1e3),
                if r.timed_out { "deadline" } else { "complete" }.into(),
                ms(sort_d.as_nanos() as u64),
                rank,
                r.plan.notation(),
            ]);
        }
    }
    print_table(
        &[
            "query",
            "W",
            "rho",
            "search_ms",
            "status",
            "sort_ms",
            "actual_rank",
            "plan",
        ],
        &out,
    );
    println!(
        "\nShape check (paper App. C): results are insensitive to rho down to\n\
         0.1%; only 0.01% can cut the search short on wide keys."
    );
}
