//! Figure 1 — time breakdown of TPC-H queries with ByteSlice fast scans
//! and WideTable denormalization, code massaging **disabled**
//! (column-at-a-time sorting): the share of query time spent in
//! multi-column sorting.
//!
//! Expected shape (paper): multi-column sorting takes 60–92 % of the
//! query for all nine queries except Q13, whose multi-column ORDER BY
//! runs on already-aggregated (tiny) data.

use mcs_bench::{cost_model, export_telemetry, maybe_explain, ms, print_table, rows, seed};
use mcs_engine::{EngineConfig, PlannerMode};
use mcs_workloads::{run_bench_query, tpch, TpchParams};

fn main() {
    let n = rows(1 << 20);
    println!("Figure 1: TPC-H query time breakdown (massaging OFF), lineitem rows = {n}\n");
    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: seed(),
    });
    let cfg = EngineConfig {
        planner: PlannerMode::ColumnAtATime,
        model: cost_model(),
        ..EngineConfig::default()
    };

    let mut out = Vec::new();
    for bq in &w.queries {
        let (_, t) = run_bench_query(&w, bq, &cfg);
        maybe_explain(&bq.name, &t.stages, &cfg.model);
        let pct = 100.0 * t.mcs_ns as f64 / t.total_ns.max(1) as f64;
        out.push(vec![
            bq.name.clone(),
            ms(t.total_ns),
            ms(t.mcs_ns),
            ms(t.rest_ns),
            format!("{pct:.1}%"),
        ]);
    }
    print_table(
        &["query", "total_ms", "mcs_ms", "rest_ms", "mcs_share"],
        &out,
    );
    println!(
        "\nShape check: mcs_share should dominate (paper: 60-92%) for all\n\
         queries except tpch_q13 (its multi-column sort runs post-aggregation)."
    );
    export_telemetry("fig1_breakdown");
}
