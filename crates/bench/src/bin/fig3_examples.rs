//! Figure 3 — performance of code-massage plans on Examples Ex1, Ex2 and
//! Ex4, with the per-phase breakdown (massage / per-round sort / lookup /
//! scan) the figure's stacked bars show.
//!
//! Expected shape (paper):
//! * **Ex1** (10+17 bits): the `P_≪17` stitch beats `P_0` (~44 % faster);
//! * **Ex2** (15+31 bits): the reckless `P_≪31` stitch *loses* to `P_0`
//!   (forced 64-bit bank outweighs saving a round);
//! * **Ex4** (48+48 bits): `P_32×3` — three rounds! — beats two 64-bank
//!   rounds.

use mcs_bench::{ms, print_table, rows, seed, time};
use mcs_core::{multi_column_sort, ExecConfig};
use mcs_workloads::{ex1, ex2, ex4, MicroInstance};

fn run(m: &MicroInstance) {
    println!("\n== {} ==", m.name);
    let refs = m.column_refs();
    let cfg = ExecConfig::default();
    let mut out_rows = Vec::new();
    for (name, plan) in &m.plans {
        let (res, d) =
            time(|| multi_column_sort(&refs, &m.specs, plan, &cfg).expect("valid sort instance"));
        let s = &res.stats;
        out_rows.push(vec![
            name.clone(),
            plan.notation(),
            ms(d.as_nanos() as u64),
            ms(s.massage_ns),
            s.rounds
                .iter()
                .map(|r| ms(r.sort_ns))
                .collect::<Vec<_>>()
                .join(" / "),
            ms(s.lookup_ns()),
            ms(s.scan_ns()),
        ]);
    }
    print_table(
        &[
            "plan",
            "notation",
            "total_ms",
            "massage_ms",
            "sort_ms (per round)",
            "lookup_ms",
            "scan_ms",
        ],
        &out_rows,
    );
}

fn main() {
    let n = rows(1 << 21);
    let s = seed();
    println!(
        "Figure 3: code-massage plan comparison on Ex1/Ex2/Ex4 (N = {n}, NDV = min(2^13, 2^w))"
    );
    run(&ex1(n, s));
    run(&ex2(n, s));
    run(&ex4(n, s));
}
