//! Figure 4 — Example Ex3 (17-bit + 33-bit columns): execute *every*
//! boundary-shift plan `P_≪33 … P_0 … P_≫17` and report
//!
//! * (4a) total and per-round sorting time per plan — the "time hill"
//!   whose peak sits where many small non-singleton groups maximize
//!   per-invocation overhead, with the optimum at `P_≪1` =
//!   `{R1: 18/[32], R2: 32/[32]}`;
//! * (4b) the factors behind it: `N_sort` (SIMD-sort invocations),
//!   `N_group`, and the average sortable-group size.

use mcs_bench::{ms, print_table, rows, seed, time};
use mcs_core::{multi_column_sort, ExecConfig};
use mcs_workloads::ex3;

fn main() {
    let n = rows(1 << 22);
    let s = seed();
    println!("Figure 4: Ex3 shift family, N = {n}, 2^13 NDV per column\n");
    let m = ex3(n, s);
    let refs = m.column_refs();
    let cfg = ExecConfig::default();

    let mut out_rows = Vec::new();
    for (name, plan) in &m.plans {
        let (res, d) =
            time(|| multi_column_sort(&refs, &m.specs, plan, &cfg).expect("valid sort instance"));
        let st = &res.stats;
        let r2 = st.rounds.get(1);
        let n_sort = r2.map_or(0, |r| r.invocations);
        let n_group_in = r2.map_or(1, |r| r.groups_in);
        let codes = r2.map_or(0, |r| r.codes_sorted);
        let avg = if n_sort > 0 {
            format!("{:.2}", codes as f64 / n_sort as f64)
        } else {
            "-".into()
        };
        out_rows.push(vec![
            name.clone(),
            plan.notation(),
            ms(d.as_nanos() as u64),
            ms(st.rounds.first().map_or(0, |r| r.sort_ns)),
            r2.map_or("-".into(), |r| ms(r.sort_ns)),
            format!("{n_sort}"),
            format!("{n_group_in}"),
            avg,
        ]);
    }
    print_table(
        &[
            "plan",
            "notation",
            "total_ms",
            "T1_sort_ms",
            "T2_sort_ms",
            "N_sort(R2)",
            "N_group(R1)",
            "avg_group",
        ],
        &out_rows,
    );
    println!(
        "\nShape check: P<<1 should be near-optimal; a hill should rise toward\n\
         mid shifts (many small sortable groups) and fall again as groups go\n\
         singleton; the one-round stitch plans pay the 64-bit bank penalty."
    );
}
