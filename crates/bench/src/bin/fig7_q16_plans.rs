//! Figure 7 — TPC-H Q16 plan space: (a) the *actual* execution time of
//! every feasible plan (the perfect model `A_16`), (b) the cost model's
//! estimate for the same plans, with the plans enumerated by ROGA and by
//! RRS marked.
//!
//! Q16 GROUP BY has 3 attributes (p_brand 5 + p_type 8 + p_size 6 =
//! 19-bit key), giving a fully enumerable space. Expected shape: the
//! estimated curve tracks the actual one (MRE-level wiggle), and both
//! search algorithms find a plan whose actual rank is ≈ 1.

use mcs_bench::{cost_model, env_usize, print_table, rows, seed};
use mcs_core::ExecConfig;
use mcs_planner::{
    measure_all_plans, measure_plan, rank_by_time, roga, rrs, ExhaustiveOptions, RogaOptions,
    RrsOptions,
};
use mcs_workloads::{suite::extract_sort_instance, tpch, TpchParams};

fn main() {
    let n = rows(1 << 19);
    println!("Figure 7: TPC-H Q16 plan space, actual vs estimated (rows = {n})\n");
    let model = cost_model();
    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: seed(),
    });
    let bq = w.query("tpch_q16");
    let (cols, specs, inst) = extract_sort_instance(&w, bq);
    let refs: Vec<&mcs_columnar::CodeVec> = cols.iter().collect();
    let total_w: u32 = specs.iter().map(|s| s.width).sum();
    println!(
        "sort key: {} attributes, W = {total_w} bits, {} filtered rows",
        specs.len(),
        inst.rows
    );

    // Perfect model A_16: execute every feasible plan (bounded rounds).
    let max_rounds = env_usize("MCS_FIG7_MAX_ROUNDS", 3) as u32;
    let opts = ExhaustiveOptions {
        max_rounds,
        max_plans: env_usize("MCS_FIG7_MAX_PLANS", 2000),
        repeats: 1,
        exec: ExecConfig::default(),
    };
    let measured = measure_all_plans(&refs, &specs, &opts);
    println!(
        "executed {} feasible plans (≤ {max_rounds} rounds)\n",
        measured.len()
    );

    // Search algorithms (fixed column order, as the figure plots one
    // ordering's plan space).
    let roga_res = roga(
        &inst,
        &model,
        &RogaOptions {
            rho: None,
            permute_columns: false,
        },
    )
    .expect("non-empty sort key");
    let rrs_res = rrs(
        &inst,
        &model,
        &RrsOptions {
            budget: roga_res.elapsed.max(std::time::Duration::from_micros(200)),
            permute_columns: false,
            ..Default::default()
        },
    )
    .expect("non-empty sort key");

    let mut out = Vec::new();
    for (i, m) in measured.iter().enumerate() {
        let est = model.t_mcs(&inst, &m.plan);
        let mut marks = String::new();
        if m.plan == roga_res.plan {
            marks.push_str("ROGA ");
        }
        if m.plan == rrs_res.plan {
            marks.push_str("RRS");
        }
        out.push(vec![
            format!("{}", i + 1),
            m.plan.notation(),
            format!("{:.2}", m.actual_ns as f64 / 1e6),
            format!("{:.2}", est / 1e6),
            marks,
        ]);
    }
    // Print the top 25 and the chosen plans' neighborhoods.
    let shown: Vec<Vec<String>> = out.iter().take(25).cloned().collect();
    print_table(
        &[
            "actual_rank",
            "plan",
            "actual_ms",
            "estimated_ms",
            "found_by",
        ],
        &shown,
    );

    let r_roga = rank_by_time(
        measure_plan(&refs, &specs, &roga_res.plan, &opts).expect("valid plan"),
        &measured,
    );
    let r_rrs = rank_by_time(
        measure_plan(&refs, &specs, &rrs_res.plan, &opts).expect("valid plan"),
        &measured,
    );
    println!(
        "\nROGA plan {}: actual rank {} of {} (costed {} plans in {:?})",
        roga_res.plan,
        r_roga,
        measured.len(),
        roga_res.plans_costed,
        roga_res.elapsed
    );
    println!(
        "RRS  plan {}: actual rank {} of {} (costed {} plans)",
        rrs_res.plan,
        r_rrs,
        measured.len(),
        rrs_res.plans_costed
    );

    // Cost-model quality on this query: mean relative error over all plans.
    let mre: f64 = measured
        .iter()
        .map(|m| {
            let est = model.t_mcs(&inst, &m.plan);
            (est - m.actual_ns as f64).abs() / m.actual_ns as f64
        })
        .sum::<f64>()
        / measured.len() as f64;
    println!("cost-model MRE over the space: {mre:.2} (paper: 0.36-0.57 per workload)");
}
