//! Figure 8 — multi-column-sorting speedup from code massaging, per
//! query, across all four workloads.
//!
//! For each query, the multi-column sorting time (massage + all rounds,
//! incl. post-aggregation sorts) is measured with massaging disabled
//! (column-at-a-time) and enabled (ROGA-chosen plan); the bar is the
//! ratio. Expected shape (paper): 1.8×–5.5× across the board.

use mcs_bench::{cost_model, engine_pair, ms, print_table, rows, seed, speedup};
use mcs_workloads::{
    airline, run_bench_query, tpcds, tpch, AirlineParams, TpcdsParams, TpchParams, Workload,
};

fn main() {
    let n = rows(1 << 20);
    let s = seed();
    println!("Figure 8: multi-column sorting speedup with code massaging (rows = {n})\n");
    let model = cost_model();
    let (on, off) = engine_pair(&model);

    let workloads: Vec<Workload> = vec![
        tpch(&TpchParams {
            lineitem_rows: n,
            skew: None,
            seed: s,
        }),
        tpch(&TpchParams {
            lineitem_rows: n,
            skew: Some(1.0),
            seed: s,
        }),
        tpcds(&TpcdsParams {
            store_sales_rows: n,
            seed: s,
        }),
        airline(&AirlineParams {
            ticket_rows: n,
            market_rows: n,
            seed: s,
        }),
    ];

    let mut out = Vec::new();
    for w in &workloads {
        for bq in &w.queries {
            let (_, t_off) = run_bench_query(w, bq, &off);
            let (_, t_on) = run_bench_query(w, bq, &on);
            let plan = t_on
                .stages
                .first()
                .and_then(|st| st.plan.as_ref())
                .map(|p| p.notation())
                .unwrap_or_default();
            out.push(vec![
                w.name.clone(),
                bq.name.clone(),
                ms(t_off.mcs_ns),
                ms(t_on.mcs_ns),
                speedup(t_off.mcs_ns, t_on.mcs_ns),
                ms(t_on.plan_search_ns),
                plan,
            ]);
        }
    }
    print_table(
        &[
            "workload",
            "query",
            "mcs_off_ms",
            "mcs_on_ms",
            "speedup",
            "search_ms",
            "chosen plan (stage 1)",
        ],
        &out,
    );
    println!(
        "\nShape check: speedup ≥ 1 everywhere (ROGA falls back to P0),\n\
         with the biggest wins on queries whose columns stitch into fewer\n\
         or narrower-bank rounds (paper: 1.8x-5.5x)."
    );
}
