//! Figure 9 — end-to-end query execution time at three data scales, with
//! and without code massaging, across all four workloads.
//!
//! The paper uses TPC-H/TPC-DS scale factors 1/5/10 on two CPUs; here the
//! scales are row counts (base, 2×, 4× — override the base with
//! `MCS_ROWS`) on the one machine available. Expected shape: massaging
//! speeds the whole query by up to ~4.7× on sorting-dominated queries,
//! with consistent gains across scales; Q13 barely moves.

use mcs_bench::{
    cost_model, engine_pair, export_telemetry, maybe_explain, ms, print_table, rows, seed, speedup,
};
use mcs_workloads::{
    airline, run_bench_query, tpcds, tpch, AirlineParams, TpcdsParams, TpchParams, Workload,
};

fn main() {
    let base = rows(1 << 18);
    let s = seed();
    let scales = [base, base * 2, base * 4];
    println!(
        "Figure 9: end-to-end query time, scales = {:?} rows, massaging ON vs OFF\n",
        scales
    );
    let model = cost_model();
    let (on, off) = engine_pair(&model);

    let mut out = Vec::new();
    for &n in &scales {
        let workloads: Vec<Workload> = vec![
            tpch(&TpchParams {
                lineitem_rows: n,
                skew: None,
                seed: s,
            }),
            tpch(&TpchParams {
                lineitem_rows: n,
                skew: Some(1.0),
                seed: s,
            }),
            tpcds(&TpcdsParams {
                store_sales_rows: n,
                seed: s,
            }),
            airline(&AirlineParams {
                ticket_rows: n,
                market_rows: n,
                seed: s,
            }),
        ];
        for w in &workloads {
            for bq in &w.queries {
                let (_, t_off) = run_bench_query(w, bq, &off);
                let (_, t_on) = run_bench_query(w, bq, &on);
                maybe_explain(
                    &format!("{}/{} n={n}", w.name, bq.name),
                    &t_on.stages,
                    &model,
                );
                out.push(vec![
                    format!("{n}"),
                    w.name.clone(),
                    bq.name.clone(),
                    ms(t_off.total_ns),
                    ms(t_on.total_ns),
                    speedup(t_off.total_ns, t_on.total_ns),
                ]);
            }
        }
    }
    print_table(
        &[
            "rows",
            "workload",
            "query",
            "off_ms",
            "on_ms",
            "query_speedup",
        ],
        &out,
    );
    println!(
        "\nShape check: consistent speedups across scales on every workload;\n\
         tpch_q13's end-to-end speedup stays near 1x (paper's exception)."
    );
    export_telemetry("fig9_query_time");
}
