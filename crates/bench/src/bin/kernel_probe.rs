//! Developer probe: raw per-bank sort throughput and phase behavior, for
//! tuning the kernels (not a paper figure). Reports sorted Melem/s per
//! bank for AVX2 vs portable, plus the scalar baseline, at several sizes.

use std::time::Instant;

use mcs_bench::print_table;
use mcs_simd_sort::{sort_pairs_scalar, sort_pairs_with, SortConfig};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn mps(n: usize, secs: f64) -> String {
    format!("{:.1}", n as f64 / secs / 1e6)
}

fn main() {
    let mut out = Vec::new();
    for shift in [16usize, 20, 22] {
        let n = 1usize << shift;
        let mut state = 0x1EEDu64;
        let k16: Vec<u16> = (0..n).map(|_| xorshift(&mut state) as u16).collect();
        let k32: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let k64: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
        let oids: Vec<u32> = (0..n as u32).collect();
        let avx2 = SortConfig::default();
        let portable = SortConfig {
            force_portable: true,
            ..SortConfig::default()
        };
        let scalar_mw = SortConfig {
            scalar_multiway: true,
            ..SortConfig::default()
        };

        macro_rules! run {
            ($label:expr, $keys:expr, $cfg:expr) => {{
                let mut k = $keys.clone();
                let mut o = oids.clone();
                let t = Instant::now();
                sort_pairs_with(&mut k, &mut o, $cfg);
                let secs = t.elapsed().as_secs_f64();
                std::hint::black_box(&k[0]);
                out.push(vec![format!("2^{shift}"), $label.to_string(), mps(n, secs)]);
            }};
        }
        run!("u16 avx2", k16, &avx2);
        run!("u16 portable", k16, &portable);
        run!("u32 avx2", k32, &avx2);
        run!("u32 portable", k32, &portable);
        run!("u32 avx2+scalar_multiway", k32, &scalar_mw);
        run!("u64 avx2", k64, &avx2);
        run!("u64 portable", k64, &portable);
        {
            let mut k = k32.clone();
            let mut o = oids.clone();
            let t = Instant::now();
            sort_pairs_scalar(&mut k, &mut o);
            let secs = t.elapsed().as_secs_f64();
            out.push(vec![
                format!("2^{shift}"),
                "u32 scalar pdq".into(),
                mps(n, secs),
            ]);
        }
    }
    print_table(&["n", "variant", "Melem/s"], &out);
}
