//! Overload control — drive the session's admission gate past
//! saturation and measure what the bounded-queueing contract buys:
//! instead of every query queueing unboundedly behind a saturated gate,
//! callers past the `queue_timeout` are **shed** with a typed
//! [`EngineError::Overloaded`], keeping the latency of *admitted*
//! queries bounded.
//!
//! The harness offers a burst of 4× the gate's capacity (TPC-H Q1-style
//! prepared queries over a shared session) under a ladder of queue
//! timeouts — from `0` (admit only if a permit is free right now) to
//! unbounded — and reports, per rung: shed rate, goodput
//! (admitted queries/sec over the batch wall-clock), and the p50/p99
//! end-to-end latency of the admitted queries (gate wait + execution,
//! from `QueryTimings::queue_ns` and `total_ns`).
//!
//! Expected shape: tighter timeouts shed more and keep admitted p99 flat;
//! the unbounded rung sheds nothing and pushes tail latency up with the
//! queue depth. Writes `BENCH_overload.json`.
//!
//! Knobs: `MCS_ROWS` (lineitem rows, default 65536), `MCS_PERMITS`
//! (gate capacity, default 2), `MCS_SEED`.

use std::time::Duration;

use mcs_bench::{env_usize, export_telemetry, print_table, rows, seed};
use mcs_engine::{Database, EngineConfig, EngineError, PlannerMode, Query, QueryOptions, Session};
use mcs_workloads::{tpch, QuerySpec, TpchParams};

/// One rung of the queue-timeout ladder.
struct Rung {
    label: &'static str,
    /// `None` = unbounded queueing (the pre-overload-control behaviour).
    queue_timeout: Option<Duration>,
}

struct Measurement {
    label: &'static str,
    queue_timeout_us: Option<u64>,
    offered: usize,
    admitted: usize,
    shed: usize,
    shed_rate: f64,
    elapsed_ms: f64,
    /// Admitted queries per second of batch wall-clock.
    goodput_qps: f64,
    /// End-to-end latency (gate wait + execution) of admitted queries.
    p50_us: f64,
    p99_us: f64,
    mean_queue_us: f64,
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

fn measure(session: &Session, query: &Query, permits: usize, rung: &Rung) -> Measurement {
    let prepared = session
        .prepare("tpch_wide", query)
        .expect("well-formed Q1 query");
    let offered = 4 * permits.max(1) * 4; // 4x saturation, 4 waves deep
    let batch = vec![prepared; offered];
    let opts = QueryOptions {
        queue_timeout: rung.queue_timeout,
        ..QueryOptions::default()
    };
    let t = std::time::Instant::now();
    let results = session.run_concurrent(&batch, permits, opts.clone());
    let elapsed = t.elapsed();

    let mut latencies_ns: Vec<u64> = Vec::new();
    let mut queue_ns_sum: u64 = 0;
    let mut shed = 0usize;
    for r in &results {
        match r {
            Ok(r) => {
                latencies_ns.push(r.timings.queue_ns + r.timings.total_ns);
                queue_ns_sum += r.timings.queue_ns;
            }
            Err(EngineError::Overloaded { .. }) => shed += 1,
            Err(e) => panic!("only Overloaded may fail here: {e}"),
        }
    }
    latencies_ns.sort_unstable();
    let admitted = latencies_ns.len();
    Measurement {
        label: rung.label,
        queue_timeout_us: rung.queue_timeout.map(|d| d.as_micros() as u64),
        offered,
        admitted,
        shed,
        shed_rate: shed as f64 / offered as f64,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        goodput_qps: admitted as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies_ns, 50.0) / 1e3,
        p99_us: percentile(&latencies_ns, 99.0) / 1e3,
        mean_queue_us: if admitted > 0 {
            queue_ns_sum as f64 / admitted as f64 / 1e3
        } else {
            0.0
        },
    }
}

fn main() {
    let n = rows(1 << 16);
    let permits = env_usize("MCS_PERMITS", 2);
    println!(
        "Overload control: TPC-H Q1 on {n} rows, gate capacity {permits}, \
         offered load 4x saturation\n"
    );

    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: seed(),
    });
    let QuerySpec::Single(q1) = &w.query("tpch_q1").spec else {
        panic!("tpch_q1 is a single-stage query");
    };
    let q1 = q1.clone();
    let mut db = Database::new();
    for t in w.tables {
        db.register(t);
    }
    let cfg = EngineConfig::builder()
        .planner(PlannerMode::Roga { rho: Some(0.001) })
        .threads(1)
        .build();
    let session = Session::new(&db, cfg);

    // Estimate one query's service time to scale the timeout ladder to
    // the machine and row count instead of hard-coding milliseconds.
    let service = {
        let t = std::time::Instant::now();
        session
            .query("tpch_wide", &q1, QueryOptions::default())
            .expect("q1 runs");
        t.elapsed().max(Duration::from_micros(100))
    };
    println!(
        "estimated service time: {:.2} ms\n",
        service.as_secs_f64() * 1e3
    );

    let rungs = [
        Rung {
            label: "zero",
            queue_timeout: Some(Duration::ZERO),
        },
        Rung {
            label: "tight",
            queue_timeout: Some(service),
        },
        Rung {
            label: "generous",
            queue_timeout: Some(service * 64),
        },
        Rung {
            label: "unbounded",
            queue_timeout: None,
        },
    ];
    let measurements: Vec<Measurement> = rungs
        .iter()
        .map(|r| measure(&session, &q1, permits, r))
        .collect();

    let table_rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.label.to_string(),
                m.queue_timeout_us.map_or("-".into(), |us| format!("{us}")),
                m.offered.to_string(),
                m.admitted.to_string(),
                m.shed.to_string(),
                format!("{:.2}", m.shed_rate),
                format!("{:.1}", m.goodput_qps),
                format!("{:.0}", m.p50_us),
                format!("{:.0}", m.p99_us),
                format!("{:.0}", m.mean_queue_us),
            ]
        })
        .collect();
    print_table(
        &[
            "timeout",
            "us",
            "offered",
            "admitted",
            "shed",
            "shed rate",
            "goodput q/s",
            "p50 us",
            "p99 us",
            "queue us",
        ],
        &table_rows,
    );

    // Contract checks: the unbounded rung never sheds, the zero rung must
    // shed under a 4x-saturation burst (only `permits` holders fit at the
    // instant of the burst), and every response is typed.
    let unbounded = measurements.last().expect("ladder is non-empty");
    assert_eq!(unbounded.shed, 0, "unbounded queueing must not shed");
    assert_eq!(
        unbounded.admitted, unbounded.offered,
        "unbounded queueing admits everyone"
    );
    let zero = &measurements[0];
    assert!(
        zero.shed > 0,
        "a zero queue timeout under 4x saturation must shed"
    );

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"overload\",\n");
    json.push_str("  \"workload\": \"tpch_q1\",\n");
    json.push_str(&format!("  \"rows\": {n},\n"));
    json.push_str(&format!("  \"gate_permits\": {permits},\n"));
    json.push_str(&format!(
        "  \"service_estimate_us\": {},\n",
        service.as_micros()
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"timeout\": \"{}\", \"queue_timeout_us\": {}, \"offered\": {}, \
             \"admitted\": {}, \"shed\": {}, \"shed_rate\": {:.4}, \
             \"elapsed_ms\": {:.3}, \"goodput_qps\": {:.3}, \
             \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \
             \"mean_queue_us\": {:.1}}}{}\n",
            m.label,
            m.queue_timeout_us
                .map_or("null".to_string(), |us| us.to_string()),
            m.offered,
            m.admitted,
            m.shed,
            m.shed_rate,
            m.elapsed_ms,
            m.goodput_qps,
            m.p50_us,
            m.p99_us,
            m.mean_queue_us,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_overload.json", &json).expect("write BENCH_overload.json");
    println!("\nwrote BENCH_overload.json");
    export_telemetry("overload");
}
