//! Thread-scaling of the morsel-driven round loop — wall time, scheduler
//! counters, and output identity at 1/2/4/8 intra-query workers, on a
//! balanced and a heavily skewed (one group ≈95% of rows) instance.
//!
//! **This container exposes a single physical core**, so wall-clock
//! speedup is not the claim this bin gates. What it *does* gate, hard
//! (the bin fails instead of writing misleading numbers):
//!
//! * byte-identity: every thread count's oid permutation and group
//!   bounds equal the serial run's — the steal schedule must not leak;
//! * no regression at `threads = 1`: the serial path dispatches zero
//!   morsels and, on a warm arena, runs its round loop with exactly
//!   zero heap allocations (the counting allocator is installed and the
//!   thread-local probe brackets the loop);
//! * work stealing is real: on the skewed instance at `threads >= 2`,
//!   at least one steal is observed (bounded retries — scheduling on a
//!   loaded host may let the straggler finish first occasionally).
//!
//! Writes `BENCH_parallel.json` next to the working directory. Knobs:
//! `MCS_ROWS` (default 262144), `MCS_REPS` (default 5), `MCS_SEED`.

use mcs_bench::{env_usize, export_telemetry, print_table, rows, seed};
use mcs_columnar::CodeVec;
use mcs_core::{
    multi_column_sort, multi_column_sort_with, ExecArena, ExecConfig, MassagePlan, SortSpec,
};
use mcs_simd_sort::MorselCounts;
use mcs_test_support::{thread_allocation_count, CountingAlloc, Rng};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Attempts to observe a steal on the skewed instance per thread count.
const STEAL_ATTEMPTS: usize = 50;

struct Cell {
    dataset: &'static str,
    threads: usize,
    median_ms: f64,
    morsels: MorselCounts,
    round_loop_allocs: u64,
}

fn dataset(name: &'static str, n: usize, s: u64) -> (Vec<CodeVec>, Vec<SortSpec>) {
    let mut rng = Rng::seed_from_u64(s);
    let c1: Vec<u64> = (0..n)
        .map(|_| {
            if name == "skewed" {
                // ~95% of rows share one round-1 group.
                if rng.gen_range(0..100u64) < 95 {
                    0
                } else {
                    1 + rng.gen_range(0..62u64)
                }
            } else {
                rng.gen_range(0..64u64)
            }
        })
        .collect();
    let c2: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << 17))).collect();
    let cols = vec![
        CodeVec::from_u64s(6, c1.into_iter()),
        CodeVec::from_u64s(17, c2.into_iter()),
    ];
    let specs = vec![SortSpec::asc(6), SortSpec::asc(17)];
    (cols, specs)
}

fn main() {
    let n = rows(1 << 18);
    let reps = env_usize("MCS_REPS", 5);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("Morsel thread-scaling: {n} rows, median of {reps} reps, {cores} core(s) available\n");
    if cores < 2 {
        println!("NOTE: single-core machine — wall time cannot improve past threads=1;\n      correctness and scheduler counters are the gated claims.\n");
    }

    let mut cells: Vec<Cell> = Vec::new();
    for name in ["balanced", "skewed"] {
        let (cols, specs) = dataset(name, n, seed());
        let refs: Vec<&CodeVec> = cols.iter().collect();
        let plan = MassagePlan::column_at_a_time(&specs);

        let mut serial_oids: Vec<u32> = Vec::new();
        for &threads in &THREADS {
            let mut cfg = ExecConfig {
                threads,
                want_final_groups: true,
                ..ExecConfig::default()
            };
            if threads == 1 {
                cfg.alloc_probe = Some(thread_allocation_count);
            }

            // Warm an arena so the threads=1 allocation gate measures
            // the steady state a session reaches, then measure on it.
            let mut arena = ExecArena::new();
            let mut timings_ms: Vec<f64> = Vec::new();
            let mut last = None;
            for rep in 0..reps.max(1) + 1 {
                let t0 = std::time::Instant::now();
                let out = multi_column_sort_with(&refs, &specs, &plan, &cfg, &mut arena)
                    .expect("valid sort instance");
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                if rep > 0 {
                    // rep 0 grows the arena; steady-state reps count.
                    timings_ms.push(dt);
                }
                last = Some(out);
            }
            let out = last.expect("at least one rep ran");
            timings_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median_ms = timings_ms[timings_ms.len() / 2];

            if threads == 1 {
                serial_oids = out.oids.clone();
                let allocs = out.stats.round_loop_allocs.unwrap_or(u64::MAX);
                assert_eq!(
                    allocs, 0,
                    "{name}: warm round loop allocated at threads=1 — serial regression"
                );
                assert!(
                    out.stats.morsel_counts().is_empty(),
                    "{name}: threads=1 must not schedule morsels"
                );
            } else {
                assert_eq!(
                    out.oids, serial_oids,
                    "{name}/t{threads}: steal schedule leaked into the output"
                );
            }

            let mut morsels = out.stats.morsel_counts();
            if name == "skewed" && threads >= 2 && morsels.stolen == 0 {
                // Steals are scheduling-dependent; retry on fresh runs
                // (byte-identity is re-checked every time).
                for _ in 0..STEAL_ATTEMPTS {
                    let retry =
                        multi_column_sort(&refs, &specs, &plan, &cfg).expect("valid sort instance");
                    assert_eq!(retry.oids, serial_oids, "{name}/t{threads}: retry diverged");
                    morsels = retry.stats.morsel_counts();
                    if morsels.stolen > 0 {
                        break;
                    }
                }
                assert!(
                    morsels.stolen > 0,
                    "{name}/t{threads}: no steal observed in {STEAL_ATTEMPTS} attempts"
                );
            }

            cells.push(Cell {
                dataset: name,
                threads,
                median_ms,
                morsels,
                round_loop_allocs: if threads == 1 {
                    out.stats.round_loop_allocs.unwrap_or(0)
                } else {
                    0
                },
            });
        }
    }

    let table: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.dataset.to_string(),
                c.threads.to_string(),
                format!("{:.2}", c.median_ms),
                c.morsels.dispatched.to_string(),
                c.morsels.stolen.to_string(),
                c.morsels.split.to_string(),
                c.round_loop_allocs.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "dataset",
            "threads",
            "median ms",
            "dispatched",
            "stolen",
            "split",
            "loop allocs (t=1)",
        ],
        &table,
    );
    println!("\nall thread counts byte-identical to the serial permutation");

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"parallel\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"rows\": {n},\n"));
    json.push_str(&format!("  \"reps\": {reps},\n"));
    json.push_str("  \"byte_identical_across_threads\": true,\n");
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"threads\": {}, \"median_ms\": {:.3}, \
             \"morsels_dispatched\": {}, \"morsels_stolen\": {}, \"morsels_split\": {}, \
             \"round_loop_allocs\": {}}}{}\n",
            c.dataset,
            c.threads,
            c.median_ms,
            c.morsels.dispatched,
            c.morsels.stolen,
            c.morsels.split,
            c.round_loop_allocs,
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
    export_telemetry("parallel");
}
