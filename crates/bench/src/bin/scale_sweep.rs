//! Out-of-core sort scale sweep — ORDER BY throughput as the row count
//! grows past the memory budget, at budgets of {unbounded, 1/4, 1/16}
//! of the sort-key data size. Writes `BENCH_external.json`.
//!
//! Each cell reports rows/sec, the number of runs spilled, total bytes
//! spilled, and the merge's comparison / offset-value-code-hit counters.
//! "Data size" is the key columns' code bytes (`Σ ⌈width/8⌉` per row) —
//! deliberately far below the sort's actual working footprint, so the
//! fractional budgets always bind and the sweep exercises real multi-run
//! merges rather than borderline two-chunk splits.
//!
//! The unbounded cells double as the budget knob's zero-overhead proof:
//! the bin installs the counting allocator, runs the query through a
//! warm prepared session, and **fails hard** unless every unbounded cell
//! reports zero runs spilled and exactly zero warm round-loop
//! allocations — adding the budget dispatch must not cost the in-memory
//! path a single heap allocation.
//!
//! Knobs: `MCS_MAX_ROWS` caps the row-count axis (default 10 000 000;
//! CI smoke sets 100 000), `MCS_SEED`.

use mcs_bench::{env_usize, export_telemetry, print_table, seed, time};
use mcs_engine::{Column, Database, EngineConfig, OrderKey, Query, Session, SpillStats, Table};
use mcs_test_support::{thread_allocation_count, CountingAlloc, Rng};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Sort-key columns: (name, code width in bits).
const KEYS: [(&str, u32); 3] = [("nation", 5), ("ship_date", 11), ("price", 16)];

/// Key-code bytes per row (`Σ ⌈width/8⌉`).
fn key_bytes_per_row() -> usize {
    KEYS.iter().map(|&(_, w)| (w as usize).div_ceil(8)).sum()
}

fn sweep_db(rows: usize) -> Database {
    let mut rng = Rng::seed_from_u64(seed());
    let mut t = Table::new("sweep");
    for &(name, w) in &KEYS {
        let cap = 1u64 << w;
        t.add_column(Column::from_u64s(
            name,
            w,
            (0..rows).map(|_| rng.gen_range(0..cap)),
        ));
    }
    let mut db = Database::new();
    db.register(t);
    db
}

fn sweep_query() -> Query {
    let mut q = Query::named("scale_sweep");
    q.order_by = vec![
        OrderKey::asc("nation"),
        OrderKey::desc("ship_date"),
        OrderKey::asc("price"),
    ];
    q.select = vec!["price".into()];
    q
}

struct Cell {
    rows: usize,
    budget: &'static str,
    budget_bytes: usize,
    elapsed_ms: f64,
    rows_per_sec: f64,
    spilled: SpillStats,
    /// Warm round-loop allocations (unbounded cells only; budgeted cells
    /// legitimately allocate for run files and merge state).
    warm_allocs: Option<u64>,
}

/// The unbounded cell: warm prepared session, asserted spill-free and
/// allocation-free.
fn measure_unbounded(db: &Database, q: &Query, rows: usize) -> Cell {
    let mut cfg = EngineConfig::builder().threads(1).build();
    cfg.exec.alloc_probe = Some(thread_allocation_count);
    let session = Session::new(db, cfg);
    let prepared = session.prepare("sweep", q).expect("well-formed query");
    prepared.execute(&session).expect("cold run"); // grow the arena
    let (warm, elapsed) = time(|| prepared.execute(&session).expect("warm run"));
    let warm_allocs = warm
        .timings
        .mcs_stats
        .round_loop_allocs
        .expect("probe configured");
    assert_eq!(
        warm.timings.spilled,
        SpillStats::default(),
        "unbounded cell at {rows} rows must not spill"
    );
    assert_eq!(
        warm_allocs, 0,
        "unbounded cell at {rows} rows: warm round loop allocated"
    );
    Cell {
        rows,
        budget: "unbounded",
        budget_bytes: 0,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        rows_per_sec: rows as f64 / elapsed.as_secs_f64(),
        spilled: warm.timings.spilled,
        warm_allocs: Some(warm_allocs),
    }
}

fn measure_budgeted(
    db: &Database,
    q: &Query,
    rows: usize,
    label: &'static str,
    budget_bytes: usize,
) -> Cell {
    let cfg = EngineConfig::builder()
        .threads(1)
        .memory_budget(budget_bytes)
        .build();
    let t = db.table("sweep").expect("registered");
    let (r, elapsed) = time(|| mcs_engine::run_query(t, q, &cfg).expect("budgeted run"));
    assert!(
        r.timings.spilled.runs > 1,
        "{label} at {rows} rows: budget {budget_bytes} B did not bind ({:?})",
        r.timings.spilled
    );
    Cell {
        rows,
        budget: label,
        budget_bytes,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        rows_per_sec: rows as f64 / elapsed.as_secs_f64(),
        spilled: r.timings.spilled,
        warm_allocs: None,
    }
}

fn main() {
    let max_rows = env_usize("MCS_MAX_ROWS", 10_000_000);
    let row_axis: Vec<usize> = [100_000usize, 1_000_000, 10_000_000]
        .into_iter()
        .filter(|&r| r <= max_rows)
        .collect();
    assert!(!row_axis.is_empty(), "MCS_MAX_ROWS below smallest cell");
    println!(
        "External-sort scale sweep: 3-key ORDER BY, rows {row_axis:?}, \
         budgets {{unbounded, data/4, data/16}} of {} key bytes/row\n",
        key_bytes_per_row()
    );

    let q = sweep_query();
    let mut cells: Vec<Cell> = Vec::new();
    for &rows in &row_axis {
        let db = sweep_db(rows);
        let data_bytes = rows * key_bytes_per_row();
        cells.push(measure_unbounded(&db, &q, rows));
        cells.push(measure_budgeted(&db, &q, rows, "data/4", data_bytes / 4));
        cells.push(measure_budgeted(&db, &q, rows, "data/16", data_bytes / 16));
    }

    let table_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.rows.to_string(),
                c.budget.to_string(),
                c.budget_bytes.to_string(),
                format!("{:.1}", c.elapsed_ms),
                format!("{:.0}", c.rows_per_sec),
                c.spilled.runs.to_string(),
                c.spilled.bytes.to_string(),
                c.spilled.merge_comparisons.to_string(),
                c.spilled.merge_ovc_hits.to_string(),
                c.warm_allocs.map_or("-".into(), |a| a.to_string()),
            ]
        })
        .collect();
    print_table(
        &[
            "rows",
            "budget",
            "budget B",
            "ms",
            "rows/s",
            "runs",
            "spill B",
            "merge cmp",
            "ovc hits",
            "warm allocs",
        ],
        &table_rows,
    );

    for &rows in &row_axis {
        let at = |b: &str| {
            cells
                .iter()
                .find(|c| c.rows == rows && c.budget == b)
                .expect("cell present")
        };
        println!(
            "\n{rows} rows: external at data/16 runs at {:.2}x in-memory throughput \
             ({} runs; {:.1}% of merge matches resolved by offset-value code)",
            at("data/16").rows_per_sec / at("unbounded").rows_per_sec,
            at("data/16").spilled.runs,
            100.0 * at("data/16").spilled.merge_ovc_hits as f64
                / at("data/16").spilled.merge_comparisons.max(1) as f64,
        );
    }

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"external_sort_scale_sweep\",\n");
    json.push_str("  \"query\": \"order_by nation asc, ship_date desc, price asc\",\n");
    json.push_str(&format!(
        "  \"key_bytes_per_row\": {},\n",
        key_bytes_per_row()
    ));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"rows\": {}, \"budget\": \"{}\", \"budget_bytes\": {}, \
             \"elapsed_ms\": {:.3}, \"rows_per_sec\": {:.0}, \"runs_spilled\": {}, \
             \"spill_bytes\": {}, \"merge_comparisons\": {}, \"merge_ovc_hits\": {}, \
             \"warm_round_loop_allocs\": {}}}{}\n",
            c.rows,
            c.budget,
            c.budget_bytes,
            c.elapsed_ms,
            c.rows_per_sec,
            c.spilled.runs,
            c.spilled.bytes,
            c.spilled.merge_comparisons,
            c.spilled.merge_ovc_hits,
            c.warm_allocs.map_or("null".into(), |a| a.to_string()),
            if i + 1 < cells.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_external.json", &json).expect("write BENCH_external.json");
    println!("\nwrote BENCH_external.json");
    export_telemetry("scale_sweep");
}
