//! Network serving — a closed-loop load generator against the TCP
//! serving layer (`mcs-server`), measuring what the wire adds on top of
//! in-process execution and how throughput scales with concurrent
//! connections.
//!
//! For each rung of the connection ladder {1, 2, 4, 8}, N client
//! threads each hold one connection (→ one server-side session with a
//! warmed plan cache) and run a closed loop — send TPC-H Q1-style
//! `Execute`, await the response, repeat — for a fixed wall-clock
//! window. Reported per rung: sustained QPS across all connections and
//! the p50/p99 end-to-end request latency (serialize → TCP → admission
//! → execute → TCP → deserialize). An in-process baseline row (same
//! query on a local session) anchors the wire overhead.
//!
//! Contract checks: every response is a well-formed result (the server
//! never drops or mangles a request under concurrency), and each rung
//! completes its window. Writes `BENCH_serving.json`.
//!
//! Knobs: `MCS_ROWS` (lineitem rows, default 16384), `MCS_SERVE_MS`
//! (measurement window per rung, default 1500), `MCS_PERMITS` (server
//! admission permits, default 8), `MCS_SEED`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mcs_bench::{env_usize, export_telemetry, print_table, rows, seed};
use mcs_client::Client;
use mcs_engine::{Database, EngineConfig, PlannerMode, Query, QueryOptions, Session};
use mcs_server::{Server, ServerConfig};
use mcs_workloads::{tpch, QuerySpec, TpchParams};

struct Measurement {
    connections: usize,
    requests: usize,
    elapsed_ms: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_us: f64,
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

fn summarize(connections: usize, mut latencies_ns: Vec<u64>, elapsed: Duration) -> Measurement {
    latencies_ns.sort_unstable();
    let n = latencies_ns.len();
    let mean_ns = if n == 0 {
        0.0
    } else {
        latencies_ns.iter().sum::<u64>() as f64 / n as f64
    };
    Measurement {
        connections,
        requests: n,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: n as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies_ns, 50.0) / 1e3,
        p99_us: percentile(&latencies_ns, 99.0) / 1e3,
        mean_us: mean_ns / 1e3,
    }
}

/// One closed-loop rung: `connections` clients, each one-request-deep,
/// hammering the server for `window`.
fn measure_remote(
    addr: std::net::SocketAddr,
    query: &Query,
    connections: usize,
    window: Duration,
) -> Measurement {
    let t0 = Instant::now();
    let stop_at = t0 + window;
    let per_conn: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .set_receive_timeout(Some(Duration::from_secs(120)))
                        .expect("receive timeout");
                    // Warm this connection's server-side plan cache so the
                    // loop measures serving, not planning.
                    client.prepare("tpch_wide", query).expect("prepare");
                    let mut latencies = Vec::new();
                    while Instant::now() < stop_at {
                        let t = Instant::now();
                        let r = client
                            .query("tpch_wide", query, QueryOptions::default())
                            .expect("closed-loop execute never fails");
                        assert!(r.rows > 0, "q1 returns groups");
                        latencies.push(t.elapsed().as_nanos() as u64);
                    }
                    client.close().expect("clean close");
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = t0.elapsed();
    summarize(
        connections,
        per_conn.into_iter().flatten().collect(),
        elapsed,
    )
}

/// The in-process baseline: the same closed loop on a local session —
/// the delta to the 1-connection remote rung is the wire overhead.
fn measure_local(
    db: &Database,
    cfg: &EngineConfig,
    query: &Query,
    window: Duration,
) -> Measurement {
    let session = Session::new(db, cfg.clone());
    let prepared = session.prepare("tpch_wide", query).expect("prepare");
    let t0 = Instant::now();
    let stop_at = t0 + window;
    let mut latencies = Vec::new();
    while Instant::now() < stop_at {
        let t = Instant::now();
        let r = prepared.execute(&session).expect("local execute");
        assert!(r.rows > 0);
        latencies.push(t.elapsed().as_nanos() as u64);
    }
    summarize(0, latencies, t0.elapsed())
}

fn main() {
    let n = rows(1 << 14);
    let window = Duration::from_millis(env_usize("MCS_SERVE_MS", 1500) as u64);
    let permits = env_usize("MCS_PERMITS", 8);
    println!(
        "Network serving: closed-loop TPC-H Q1 on {n} rows, {}ms per rung, \
         {permits} admission permits\n",
        window.as_millis()
    );

    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: seed(),
    });
    let QuerySpec::Single(q1) = &w.query("tpch_q1").spec else {
        panic!("tpch_q1 is a single-stage query");
    };
    let q1 = q1.clone();
    let mut db = Database::new();
    for t in w.tables {
        db.register(t);
    }
    let cfg = EngineConfig::builder()
        .planner(PlannerMode::Roga { rho: Some(0.001) })
        .threads(1)
        .build();

    let local = measure_local(&db, &cfg, &q1, window);

    let db = Arc::new(db);
    let server = Server::spawn(
        Arc::clone(&db),
        ServerConfig {
            engine: cfg,
            permits,
            default_queue_timeout: None,
            batch_threads_cap: permits,
        },
    )
    .expect("spawn server");
    let addr = server.addr();

    let ladder = [1usize, 2, 4, 8];
    let measurements: Vec<Measurement> = ladder
        .iter()
        .map(|&c| measure_remote(addr, &q1, c, window))
        .collect();
    server.shutdown();

    let fmt_row = |m: &Measurement, label: String| {
        vec![
            label,
            m.requests.to_string(),
            format!("{:.0}", m.elapsed_ms),
            format!("{:.1}", m.qps),
            format!("{:.0}", m.p50_us),
            format!("{:.0}", m.p99_us),
            format!("{:.0}", m.mean_us),
        ]
    };
    let mut table_rows = vec![fmt_row(&local, "in-process".into())];
    table_rows.extend(
        measurements
            .iter()
            .map(|m| fmt_row(m, format!("{} conn", m.connections))),
    );
    print_table(
        &[
            "clients", "requests", "ms", "qps", "p50 us", "p99 us", "mean us",
        ],
        &table_rows,
    );

    // Contract checks. Every rung completed requests (the loop asserts
    // each response already); the wire can only add latency over the
    // in-process baseline, never remove it.
    for m in &measurements {
        assert!(
            m.requests > 0,
            "{} connections completed no requests in {}ms",
            m.connections,
            window.as_millis()
        );
        assert!(m.p50_us <= m.p99_us, "percentiles are ordered");
    }
    assert!(
        measurements[0].p50_us >= local.p50_us,
        "1-connection remote p50 ({:.0}us) beat the in-process baseline ({:.0}us)",
        measurements[0].p50_us,
        local.p50_us
    );

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serving\",\n");
    json.push_str("  \"workload\": \"tpch_q1\",\n");
    json.push_str(&format!("  \"rows\": {n},\n"));
    json.push_str(&format!("  \"window_ms\": {},\n", window.as_millis()));
    json.push_str(&format!("  \"permits\": {permits},\n"));
    json.push_str(&format!(
        "  \"local_baseline\": {{\"requests\": {}, \"qps\": {:.3}, \
         \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \"mean_us\": {:.1}}},\n",
        local.requests, local.qps, local.p50_us, local.p99_us, local.mean_us
    ));
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"connections\": {}, \"requests\": {}, \"elapsed_ms\": {:.3}, \
             \"qps\": {:.3}, \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}, \
             \"mean_us\": {:.1}}}{}\n",
            m.connections,
            m.requests,
            m.elapsed_ms,
            m.qps,
            m.p50_us,
            m.p99_us,
            m.mean_us,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_serving.json", &json).expect("write BENCH_serving.json");
    println!("\nwrote BENCH_serving.json");
    export_telemetry("serving");
}
