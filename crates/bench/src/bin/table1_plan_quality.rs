//! Table 1 — cost-model and plan quality: for every multi-column-sorting
//! query of the four workloads, rank the plan chosen by ROGA and by RRS
//! within the *actually measured* ordering of all feasible plans (the
//! perfect model `A_i`), and report the cost model's mean relative error.
//!
//! Expected shape (paper): `rank̄(ROGA)` ≈ 5–8, `rank̄(RRS)` ≈ 43–111,
//! best ranks 1 for both, MRE 0.36–0.57.
//!
//! The exhaustive measurement is the expensive part (the paper spent
//! weeks); rounds are capped (`MCS_T1_MAX_ROUNDS`, default 3) and very
//! wide keys are measured on a plan subsample (`MCS_T1_MAX_PLANS`).

use mcs_bench::{cost_model, env_usize, print_table, rows, seed};
use mcs_core::ExecConfig;
use mcs_planner::{
    measure_all_plans, measure_plan, rank_by_time, roga, rrs, ExhaustiveOptions, RogaOptions,
    RrsOptions,
};
use mcs_workloads::{
    airline, suite::extract_sort_instance, tpcds, tpch, AirlineParams, TpcdsParams, TpchParams,
    Workload,
};

struct Acc {
    roga_ranks: Vec<usize>,
    rrs_ranks: Vec<usize>,
    rel_errs: Vec<f64>,
}

fn main() {
    let n = rows(1 << 17);
    let s = seed();
    println!("Table 1: plan quality (rank vs measured A_i) and cost-model MRE (rows = {n})\n");
    let model = cost_model();
    let max_rounds = env_usize("MCS_T1_MAX_ROUNDS", 3) as u32;
    let max_plans = env_usize("MCS_T1_MAX_PLANS", 400);

    let workloads: Vec<Workload> = vec![
        tpch(&TpchParams {
            lineitem_rows: n,
            skew: None,
            seed: s,
        }),
        tpch(&TpchParams {
            lineitem_rows: n,
            skew: Some(1.0),
            seed: s,
        }),
        tpcds(&TpcdsParams {
            store_sales_rows: n,
            seed: s,
        }),
        airline(&AirlineParams {
            ticket_rows: n,
            market_rows: n,
            seed: s,
        }),
    ];

    let mut summary = Vec::new();
    for w in &workloads {
        let mut acc = Acc {
            roga_ranks: vec![],
            rrs_ranks: vec![],
            rel_errs: vec![],
        };
        for bq in &w.queries {
            let (cols, specs, inst) = extract_sort_instance(w, bq);
            if inst.rows < 2 || specs.len() < 2 {
                continue;
            }
            let refs: Vec<&mcs_columnar::CodeVec> = cols.iter().collect();
            let measured = measure_all_plans(
                &refs,
                &specs,
                &ExhaustiveOptions {
                    max_rounds,
                    max_plans,
                    repeats: 1,
                    exec: ExecConfig::default(),
                },
            );
            if measured.is_empty() {
                continue;
            }
            // Fixed column order: ranks are relative to this ordering's
            // space (as in the paper's Figure 7 methodology).
            let r = roga(
                &inst,
                &model,
                &RogaOptions {
                    rho: Some(0.001),
                    permute_columns: false,
                },
            )
            .expect("non-empty sort key");
            let rr = rrs(
                &inst,
                &model,
                &RrsOptions {
                    budget: r.elapsed.max(std::time::Duration::from_micros(100)),
                    permute_columns: false,
                    ..Default::default()
                },
            )
            .expect("non-empty sort key");
            let opts = ExhaustiveOptions {
                max_rounds,
                max_plans,
                repeats: 1,
                exec: ExecConfig::default(),
            };
            let t_roga = measure_plan(&refs, &specs, &r.plan, &opts).expect("valid plan");
            let t_rrs = measure_plan(&refs, &specs, &rr.plan, &opts).expect("valid plan");
            acc.roga_ranks.push(rank_by_time(t_roga, &measured));
            acc.rrs_ranks.push(rank_by_time(t_rrs, &measured));
            for m in &measured {
                let est = model.t_mcs(&inst, &m.plan);
                acc.rel_errs
                    .push((est - m.actual_ns as f64).abs() / m.actual_ns.max(1) as f64);
            }
            eprintln!(
                "  {}: |A_i| = {}, ROGA rank {}, RRS rank {}",
                bq.name,
                measured.len(),
                acc.roga_ranks.last().unwrap(),
                acc.rrs_ranks.last().unwrap()
            );
        }
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        let mre = acc.rel_errs.iter().sum::<f64>() / acc.rel_errs.len().max(1) as f64;
        summary.push(vec![
            w.name.clone(),
            format!("{:.1}", mean(&acc.roga_ranks)),
            format!("{:.1}", mean(&acc.rrs_ranks)),
            format!("{}", acc.roga_ranks.iter().min().copied().unwrap_or(0)),
            format!("{}", acc.rrs_ranks.iter().min().copied().unwrap_or(0)),
            format!("{}", acc.roga_ranks.iter().max().copied().unwrap_or(0)),
            format!("{}", acc.rrs_ranks.iter().max().copied().unwrap_or(0)),
            format!("{mre:.2}"),
        ]);
    }
    print_table(
        &[
            "workload",
            "mean_rank ROGA",
            "mean_rank RRS",
            "best ROGA",
            "best RRS",
            "worst ROGA",
            "worst RRS",
            "MRE",
        ],
        &summary,
    );
    println!(
        "\nShape check (paper Table 1): ROGA mean rank well below RRS's;\n\
         both achieve best rank 1 somewhere; MRE in the 0.3-0.6 band."
    );
}
