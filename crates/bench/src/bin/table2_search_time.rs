//! Table 2 — ROGA plan-search time per query (referenced in §6.2: "the
//! time used by ROGA to find a good code massage plan is negligible").
//!
//! For each of the 27 queries (9 TPC-H uniform + 9 TPC-H skew +
//! 4 TPC-DS + 5 airline): the search time, the number of plans costed,
//! whether the ρ = 0.1 % deadline fired, and the search time as a share
//! of the estimated plan execution time.

use mcs_bench::{cost_model, print_table, rows, seed};
use mcs_planner::{roga, RogaOptions};
use mcs_workloads::{
    airline, suite::extract_sort_instance, tpcds, tpch, AirlineParams, TpcdsParams, TpchParams,
    Workload,
};

fn main() {
    let n = rows(1 << 19);
    let s = seed();
    println!("Table 2: ROGA plan-search time per query (rho = 0.1%, rows = {n})\n");
    let model = cost_model();

    let workloads: Vec<Workload> = vec![
        tpch(&TpchParams {
            lineitem_rows: n,
            skew: None,
            seed: s,
        }),
        tpch(&TpchParams {
            lineitem_rows: n,
            skew: Some(1.0),
            seed: s,
        }),
        tpcds(&TpcdsParams {
            store_sales_rows: n,
            seed: s,
        }),
        airline(&AirlineParams {
            ticket_rows: n,
            market_rows: n,
            seed: s,
        }),
    ];

    let mut out = Vec::new();
    let mut finished = 0usize;
    let mut total = 0usize;
    for w in &workloads {
        for bq in &w.queries {
            let (_, specs, inst) = extract_sort_instance(w, bq);
            if specs.len() < 2 {
                continue;
            }
            let order_free = match &bq.spec {
                mcs_workloads::QuerySpec::Single(q) => q.order_free(),
                mcs_workloads::QuerySpec::TwoStage { first, .. } => first.order_free(),
            };
            let r = roga(
                &inst,
                &model,
                &RogaOptions {
                    rho: Some(0.001),
                    permute_columns: order_free,
                },
            )
            .expect("non-empty sort key");
            total += 1;
            if !r.timed_out {
                finished += 1;
            }
            let w_bits: u32 = specs.iter().map(|sp| sp.width).sum();
            out.push(vec![
                w.name.clone(),
                bq.name.clone(),
                format!("{w_bits}"),
                format!("{:.3}", r.elapsed.as_secs_f64() * 1e3),
                format!("{}", r.plans_costed),
                if r.timed_out { "deadline" } else { "complete" }.into(),
                format!("{:.4}%", 100.0 * r.elapsed.as_nanos() as f64 / r.est_cost),
                r.plan.notation(),
            ]);
        }
    }
    print_table(
        &[
            "workload",
            "query",
            "W_bits",
            "search_ms",
            "plans_costed",
            "status",
            "search/est_exec",
            "chosen plan",
        ],
        &out,
    );
    println!(
        "\n{finished} of {total} queries completed the whole search before the\n\
         rho deadline (paper: 22 of 27). Search time stays a negligible\n\
         fraction of execution time."
    );
}
