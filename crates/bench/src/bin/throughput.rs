//! Session throughput — queries/sec serving a TPC-H Q1-style prepared
//! query from a shared [`Database`] at 1/2/4/8 admission threads, with
//! the plan cache cold (capacity 0: every execution re-plans) vs warm
//! (prepared once, every execution serves the cached plan).
//!
//! Expected shape: queries/sec scales with threads until cores saturate,
//! and the warm cache adds the plan-search time back to every execution.
//! Writes `BENCH_throughput.json` next to the working directory.
//!
//! Memory: the bin installs the counting allocator from
//! `mcs-test-support`, so each measurement also reports heap allocations
//! per query (whole pipeline) and the session arena's byte high-water
//! mark — the warm rows should allocate markedly less than the cold
//! ones, and their round loops not at all (single intra-query thread).
//!
//! Knobs: `MCS_ROWS` (lineitem rows, default 65536), `MCS_QUERIES`
//! (batch size per measurement, default 64), `MCS_SEED`.

use mcs_bench::{env_usize, export_telemetry, print_table, rows, seed};
use mcs_engine::{Database, EngineConfig, PlannerMode, Query, Session};
use mcs_test_support::{allocation_count, CountingAlloc};
use mcs_workloads::{tpch, QuerySpec, TpchParams};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Measurement {
    threads: usize,
    cache: &'static str,
    elapsed_ms: f64,
    qps: f64,
    cache_hits: u64,
    cache_misses: u64,
    /// Heap allocations per query across the whole batch (all pipeline
    /// phases, amortized; admission threads add a small constant).
    allocs_per_query: f64,
    /// Allocations inside the executor round loops, summed over the
    /// batch (the arena's zero-allocation target once warm).
    round_loop_allocs: u64,
    /// Byte high-water mark across the session's arena pool.
    arena_bytes_peak: u64,
}

fn measure(
    db: &Database,
    cfg: &EngineConfig,
    query: &Query,
    batch_size: usize,
    threads: usize,
    warm: bool,
) -> Measurement {
    let session = if warm {
        Session::new(db, cfg.clone())
    } else {
        // Capacity 0: inserts are dropped, every lookup misses — each
        // execution pays the full stats + ROGA cost ("cold").
        Session::with_cache_capacity(db, cfg.clone(), 0)
    };
    let prepared = session
        .prepare("tpch_wide", query)
        .expect("well-formed Q1 query");
    let batch = vec![prepared; batch_size];
    let allocs_before = allocation_count();
    let t = std::time::Instant::now();
    let results = session.run_concurrent(&batch, threads);
    let elapsed = t.elapsed();
    let allocs = allocation_count() - allocs_before;
    assert!(
        results.iter().all(|r| r.is_ok()),
        "every query must succeed"
    );
    let round_loop_allocs = results
        .iter()
        .flatten()
        .map(|r| r.timings.mcs_stats.round_loop_allocs.unwrap_or(0))
        .sum();
    let stats = session.cache_stats();
    Measurement {
        threads,
        cache: if warm { "warm" } else { "cold" },
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: batch_size as f64 / elapsed.as_secs_f64(),
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        allocs_per_query: allocs as f64 / batch_size as f64,
        round_loop_allocs,
        arena_bytes_peak: session.arena_stats().bytes_peak,
    }
}

fn main() {
    let n = rows(1 << 16);
    let batch_size = env_usize("MCS_QUERIES", 64);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "Session throughput: TPC-H Q1 on {n} rows, {batch_size} queries/batch, \
         plan cache cold vs warm, {cores} core(s) available\n"
    );
    if cores < 2 {
        println!("NOTE: single-core machine — thread counts > 1 cannot speed up.\n");
    }

    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: seed(),
    });
    let QuerySpec::Single(q1) = &w.query("tpch_q1").spec else {
        panic!("tpch_q1 is a single-stage query");
    };
    let q1 = q1.clone();
    let mut db = Database::new();
    for t in w.tables {
        db.register(t);
    }
    let mut cfg = EngineConfig::builder()
        .planner(PlannerMode::Roga { rho: Some(0.001) })
        // One intra-query worker: the concurrency under test is
        // *between* queries, not inside the sort.
        .threads(1)
        .build();
    // Sample the allocation counter around every executor round loop so
    // the warm rows can demonstrate the arena's zero-allocation target.
    cfg.exec.alloc_probe = Some(allocation_count);

    let mut measurements: Vec<Measurement> = Vec::new();
    for &threads in &THREADS {
        for warm in [false, true] {
            measurements.push(measure(&db, &cfg, &q1, batch_size, threads, warm));
        }
    }

    let table_rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.threads.to_string(),
                m.cache.to_string(),
                format!("{:.1}", m.elapsed_ms),
                format!("{:.1}", m.qps),
                m.cache_hits.to_string(),
                m.cache_misses.to_string(),
                format!("{:.0}", m.allocs_per_query),
                m.round_loop_allocs.to_string(),
                m.arena_bytes_peak.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "threads",
            "cache",
            "batch ms",
            "queries/s",
            "hits",
            "misses",
            "allocs/q",
            "loop allocs",
            "arena peak B",
        ],
        &table_rows,
    );

    let qps_at = |threads: usize, cache: &str| {
        measurements
            .iter()
            .find(|m| m.threads == threads && m.cache == cache)
            .map_or(0.0, |m| m.qps)
    };
    println!(
        "\nscaling 1 -> 4 threads: cold {:.2}x, warm {:.2}x",
        qps_at(4, "cold") / qps_at(1, "cold"),
        qps_at(4, "warm") / qps_at(1, "warm"),
    );
    println!(
        "warm vs cold at 4 threads: {:.2}x",
        qps_at(4, "warm") / qps_at(4, "cold")
    );

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"throughput\",\n");
    json.push_str("  \"workload\": \"tpch_q1\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"rows\": {n},\n"));
    json.push_str(&format!("  \"queries_per_batch\": {batch_size},\n"));
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"cache\": \"{}\", \"elapsed_ms\": {:.3}, \
             \"qps\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"allocs_per_query\": {:.2}, \"round_loop_allocs\": {}, \
             \"arena_bytes_peak\": {}}}{}\n",
            m.threads,
            m.cache,
            m.elapsed_ms,
            m.qps,
            m.cache_hits,
            m.cache_misses,
            m.allocs_per_query,
            m.round_loop_allocs,
            m.arena_bytes_peak,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json");
    export_telemetry("throughput");
}
