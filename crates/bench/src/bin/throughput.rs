//! Session throughput — queries/sec serving a TPC-H Q1-style prepared
//! query from a shared [`Database`] at 1/2/4/8 admission threads, with
//! the plan cache cold (capacity 0: every execution re-plans) vs warm
//! (prepared once, every execution serves the cached plan).
//!
//! Expected shape: queries/sec scales with threads until cores saturate,
//! and the warm cache adds the plan-search time back to every execution.
//! Writes `BENCH_throughput.json` next to the working directory.
//!
//! Memory: the bin installs the counting allocator from
//! `mcs-test-support`, so each measurement also reports heap allocations
//! per query (whole pipeline) and the session arena's byte high-water
//! mark. `round_loop_allocs` uses the *thread-local* probe
//! (`thread_allocation_count`), so each query's bracket counts only its
//! own thread — concurrent siblings cannot bleed in. Warm cells are
//! measured after the session's arena pool has been warmed by up to
//! `threads + 1` unrecorded batches, and the bin **fails hard** if any
//! warm cell still reports a nonzero `round_loop_allocs`: zero is the
//! arena's contract at every thread count, not an aspiration.
//!
//! The bin also reports the out-of-cache merge comparison counters with
//! offset-value coding on vs off (`ovc_merge` in the JSON), with the
//! in-cache threshold shrunk so Q1's sort actually reaches the loser
//! tree at the default row count.
//!
//! Knobs: `MCS_ROWS` (lineitem rows, default 65536), `MCS_QUERIES`
//! (batch size per measurement, default 64), `MCS_SEED`.

use mcs_bench::{env_usize, export_telemetry, print_table, rows, seed};
use mcs_engine::{Database, EngineConfig, PlannerMode, Query, QueryOptions, Session};
use mcs_test_support::{allocation_count, thread_allocation_count, CountingAlloc};
use mcs_workloads::{tpch, QuerySpec, TpchParams};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Measurement {
    threads: usize,
    cache: &'static str,
    elapsed_ms: f64,
    qps: f64,
    /// Plan-cache lookups served / missed *during the measured batch*.
    /// Q1 is grouped + ORDER BY, which performs TWO lookups per
    /// execution (the main sort plus the grouped-result post-sort), so
    /// a cold batch of Q misses 2·Q times — the `cache_misses: 33` of
    /// older runs was that arithmetic (1 prepare + 16 × 2), not a
    /// double-count. Pinned by the `mcs-engine` unit test
    /// `grouped_order_by_performs_two_cache_lookups_per_execution`.
    cache_hits: u64,
    cache_misses: u64,
    /// Heap allocations per query across the whole batch (all pipeline
    /// phases, amortized; admission threads add a small constant).
    allocs_per_query: f64,
    /// Allocations inside the executor round loops, summed over the
    /// batch (the arena's zero-allocation target once warm).
    round_loop_allocs: u64,
    /// Byte high-water mark across the session's arena pool.
    arena_bytes_peak: u64,
}

fn measure(
    db: &Database,
    cfg: &EngineConfig,
    query: &Query,
    batch_size: usize,
    threads: usize,
    warm: bool,
) -> Measurement {
    let session = if warm {
        Session::new(db, cfg.clone())
    } else {
        // Capacity 0: inserts are dropped, every lookup misses — each
        // execution pays the full stats + ROGA cost ("cold").
        Session::with_cache_capacity(db, cfg.clone(), 0)
    };
    let prepared = session
        .prepare("tpch_wide", query)
        .expect("well-formed Q1 query");
    let batch = vec![prepared; batch_size];
    if warm {
        // Warm up the arena pool before measuring: a batch may draft
        // fresh arenas (at most one per admission slot, and the pool
        // only grows), so within `threads + 1` batches one batch runs
        // entirely on warm arenas — from then on it stays warm.
        for _ in 0..=threads {
            let results = session.run_concurrent(&batch, threads, QueryOptions::default());
            let all_zero = results
                .iter()
                .flatten()
                .all(|r| r.timings.mcs_stats.round_loop_allocs == Some(0));
            if all_zero {
                break;
            }
        }
    }
    let cache_before = session.cache_stats();
    let allocs_before = allocation_count();
    let t = std::time::Instant::now();
    let results = session.run_concurrent(&batch, threads, QueryOptions::default());
    let elapsed = t.elapsed();
    let allocs = allocation_count() - allocs_before;
    assert!(
        results.iter().all(|r| r.is_ok()),
        "every query must succeed"
    );
    let round_loop_allocs = results
        .iter()
        .flatten()
        .map(|r| r.timings.mcs_stats.round_loop_allocs.unwrap_or(0))
        .sum();
    assert!(
        !warm || round_loop_allocs == 0,
        "warm round loops must not allocate at {threads} thread(s): got {round_loop_allocs}"
    );
    let stats = session.cache_stats();
    Measurement {
        threads,
        cache: if warm { "warm" } else { "cold" },
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: batch_size as f64 / elapsed.as_secs_f64(),
        cache_hits: stats.hits - cache_before.hits,
        cache_misses: stats.misses - cache_before.misses,
        allocs_per_query: allocs as f64 / batch_size as f64,
        round_loop_allocs,
        arena_bytes_peak: session.arena_stats().bytes_peak,
    }
}

/// One Q1 execution's out-of-cache merge comparison counters, with the
/// in-cache threshold shrunk to 4 KiB so the sort reaches the loser
/// tree even at smoke-test row counts (the default 1 MiB threshold
/// keeps 2^16 codes entirely in the in-cache phases — nothing to
/// measure).
fn merge_counters(db: &Database, base: &EngineConfig, query: &Query, use_ovc: bool) -> (u64, u64) {
    let mut cfg = base.clone();
    cfg.exec.sort.in_cache_bytes = 4096;
    cfg.exec.sort.use_ovc = use_ovc;
    cfg.model.ovc = use_ovc;
    let session = Session::new(db, cfg);
    let r = session
        .query("tpch_wide", query, QueryOptions::default())
        .expect("q1 runs");
    let (mut comparisons, mut hits) = (0u64, 0u64);
    for rs in &r.timings.mcs_stats.rounds {
        comparisons += rs.merge.comparisons;
        hits += rs.merge.ovc_hits;
    }
    (comparisons, hits)
}

fn main() {
    let n = rows(1 << 16);
    let batch_size = env_usize("MCS_QUERIES", 64);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!(
        "Session throughput: TPC-H Q1 on {n} rows, {batch_size} queries/batch, \
         plan cache cold vs warm, {cores} core(s) available\n"
    );
    if cores < 2 {
        println!("NOTE: single-core machine — thread counts > 1 cannot speed up.\n");
    }

    let w = tpch(&TpchParams {
        lineitem_rows: n,
        skew: None,
        seed: seed(),
    });
    let QuerySpec::Single(q1) = &w.query("tpch_q1").spec else {
        panic!("tpch_q1 is a single-stage query");
    };
    let q1 = q1.clone();
    let mut db = Database::new();
    for t in w.tables {
        db.register(t);
    }
    let mut cfg = EngineConfig::builder()
        .planner(PlannerMode::Roga { rho: Some(0.001) })
        // One intra-query worker: the concurrency under test is
        // *between* queries, not inside the sort.
        .threads(1)
        .build();
    // Sample the *thread-local* allocation counter around every executor
    // round loop: the round loop runs on the query's own thread, so the
    // delta is exactly its allocation count even while sibling queries
    // allocate concurrently (the process-global counter is not).
    cfg.exec.alloc_probe = Some(thread_allocation_count);

    let mut measurements: Vec<Measurement> = Vec::new();
    for &threads in &THREADS {
        for warm in [false, true] {
            measurements.push(measure(&db, &cfg, &q1, batch_size, threads, warm));
        }
    }

    let table_rows: Vec<Vec<String>> = measurements
        .iter()
        .map(|m| {
            vec![
                m.threads.to_string(),
                m.cache.to_string(),
                format!("{:.1}", m.elapsed_ms),
                format!("{:.1}", m.qps),
                m.cache_hits.to_string(),
                m.cache_misses.to_string(),
                format!("{:.0}", m.allocs_per_query),
                m.round_loop_allocs.to_string(),
                m.arena_bytes_peak.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "threads",
            "cache",
            "batch ms",
            "queries/s",
            "hits",
            "misses",
            "allocs/q",
            "loop allocs",
            "arena peak B",
        ],
        &table_rows,
    );

    let qps_at = |threads: usize, cache: &str| {
        measurements
            .iter()
            .find(|m| m.threads == threads && m.cache == cache)
            .map_or(0.0, |m| m.qps)
    };
    println!(
        "\nscaling 1 -> 4 threads: cold {:.2}x, warm {:.2}x",
        qps_at(4, "cold") / qps_at(1, "cold"),
        qps_at(4, "warm") / qps_at(1, "warm"),
    );
    println!(
        "warm vs cold at 4 threads: {:.2}x",
        qps_at(4, "warm") / qps_at(4, "cold")
    );

    // Offset-value coding before/after: same query, merge path forced.
    let (cmp_ovc, hits_ovc) = merge_counters(&db, &cfg, &q1, true);
    let (cmp_plain, _) = merge_counters(&db, &cfg, &q1, false);
    let full_ovc = cmp_ovc - hits_ovc;
    assert!(
        cmp_plain == 0 || full_ovc < cmp_plain,
        "OVC must reduce full-key comparisons: {full_ovc} vs {cmp_plain}"
    );
    let reduction = if cmp_plain > 0 {
        100.0 * (cmp_plain - full_ovc) as f64 / cmp_plain as f64
    } else {
        0.0
    };
    println!(
        "\nout-of-cache merge (in_cache_bytes=4KiB): plain {cmp_plain} full-key comparisons; \
         ovc {cmp_ovc} matches, {hits_ovc} resolved by code, {full_ovc} full-key \
         ({reduction:.1}% fewer full-key comparisons)"
    );

    // Hand-rolled JSON (no serde in the workspace).
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"throughput\",\n");
    json.push_str("  \"workload\": \"tpch_q1\",\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!("  \"rows\": {n},\n"));
    json.push_str(&format!("  \"queries_per_batch\": {batch_size},\n"));
    json.push_str("  \"results\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"cache\": \"{}\", \"elapsed_ms\": {:.3}, \
             \"qps\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"allocs_per_query\": {:.2}, \"round_loop_allocs\": {}, \
             \"arena_bytes_peak\": {}}}{}\n",
            m.threads,
            m.cache,
            m.elapsed_ms,
            m.qps,
            m.cache_hits,
            m.cache_misses,
            m.allocs_per_query,
            m.round_loop_allocs,
            m.arena_bytes_peak,
            if i + 1 < measurements.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    // `round_loop_allocs` above counts only the probing thread's own
    // allocations (thread-local probe): warm cells are asserted to be 0
    // at every thread count. Earlier revisions sampled the process-global
    // counter, so warm concurrent cells reported other workers' heap
    // traffic (e.g. 390 at threads=2) — those numbers were probe bleed,
    // not round-loop allocations.
    json.push_str(&format!(
        "  \"ovc_merge\": {{\"in_cache_bytes\": 4096, \
         \"comparisons_plain\": {cmp_plain}, \"comparisons_ovc\": {cmp_ovc}, \
         \"ovc_hits\": {hits_ovc}, \"full_key_comparisons_ovc\": {full_ovc}, \
         \"full_key_reduction_pct\": {reduction:.1}}}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("\nwrote BENCH_throughput.json");
    export_telemetry("throughput");
}
