//! # mcs-bench
//!
//! Shared plumbing for the experiment harnesses that regenerate every
//! table and figure of the paper's evaluation (§6). Each harness is a
//! binary under `src/bin/`; run e.g.
//!
//! ```text
//! cargo run --release -p mcs-bench --bin fig4_hill
//! ```
//!
//! Environment knobs (all optional):
//! * `MCS_ROWS` — base row count for workload generation (default
//!   harness-specific, laptop-scale);
//! * `MCS_CALIBRATE=1` — calibrate the cost model on this machine instead
//!   of using canned constants (slower startup, better rankings);
//! * `MCS_SEED` — RNG seed.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use mcs_cost::{calibrate, CalibrationOptions, CostModel, MachineSpec};
use mcs_engine::{EngineConfig, ExplainReport, PlannerMode, QueryTimings};

/// Read an env var as usize.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Base row count (`MCS_ROWS`).
pub fn rows(default: usize) -> usize {
    env_usize("MCS_ROWS", default)
}

/// RNG seed (`MCS_SEED`).
pub fn seed() -> u64 {
    env_usize("MCS_SEED", 42) as u64
}

/// Wall-clock one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = std::hint::black_box(f());
    (r, t.elapsed())
}

/// The cost model for experiments: calibrated when `MCS_CALIBRATE=1`,
/// canned defaults otherwise (calibration takes ~1 min on one core).
pub fn cost_model() -> CostModel {
    if std::env::var("MCS_CALIBRATE").as_deref() == Ok("1") {
        eprintln!("[mcs-bench] calibrating cost model (MCS_CALIBRATE=1)…");
        let m = calibrate(MachineSpec::detect(), &CalibrationOptions::default());
        eprintln!("[mcs-bench] calibration done: {:#?}", m.consts);
        m
    } else {
        CostModel::with_defaults()
    }
}

/// Engine configs: (massaging ON via ROGA, massaging OFF).
pub fn engine_pair(model: &CostModel) -> (EngineConfig, EngineConfig) {
    let on = EngineConfig {
        planner: PlannerMode::Roga { rho: Some(0.001) },
        model: model.clone(),
        ..EngineConfig::default()
    };
    let off = EngineConfig {
        planner: PlannerMode::ColumnAtATime,
        model: model.clone(),
        ..EngineConfig::default()
    };
    (on, off)
}

/// Render an aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Whether `MCS_EXPLAIN=1`: bench bins print an EXPLAIN-style plan
/// report (predicted vs. measured per-round cost) for each query stage.
pub fn explain_enabled() -> bool {
    std::env::var("MCS_EXPLAIN").as_deref() == Ok("1")
}

/// When `MCS_EXPLAIN=1`, print an [`ExplainReport`] for every stage of a
/// bench query that ran a multi-column sort.
pub fn maybe_explain(name: &str, stages: &[QueryTimings], model: &CostModel) {
    if !explain_enabled() {
        return;
    }
    for (i, t) in stages.iter().enumerate() {
        let label = if stages.len() > 1 {
            format!("{name} (stage {})", i + 1)
        } else {
            name.to_string()
        };
        match ExplainReport::from_timings(&label, t, model) {
            Some(rep) => println!("\n{}", rep.render()),
            None => println!("\nEXPLAIN mcs: {label}\n  (no multi-column sort executed)"),
        }
    }
}

/// Drain collected telemetry into `results/telemetry/<run>.jsonl`
/// (machine-readable run report). No-op when the workspace was built with
/// telemetry off (`--no-default-features`).
pub fn export_telemetry(run: &str) {
    if !mcs_telemetry::is_enabled() {
        return;
    }
    match mcs_telemetry::write_run_report("results/telemetry", run) {
        Ok(p) => eprintln!("[mcs-bench] telemetry run report: {}", p.display()),
        Err(e) => eprintln!("[mcs-bench] telemetry export failed: {e}"),
    }
}

/// Format nanoseconds human-readably (ms with 2 decimals).
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Format a ratio as `N.NNx`.
pub fn speedup(base_ns: u64, new_ns: u64) -> String {
    if new_ns == 0 {
        "inf".into()
    } else {
        format!("{:.2}x", base_ns as f64 / new_ns as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        assert_eq!(env_usize("MCS_NOT_SET_VAR_XYZ", 7), 7);
    }

    #[test]
    fn formatting() {
        assert_eq!(ms(1_500_000), "1.50");
        assert_eq!(speedup(200, 100), "2.00x");
        assert_eq!(speedup(200, 0), "inf");
    }

    #[test]
    fn timing_works() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }
}
