//! # mcs-cancel
//!
//! Cooperative cancellation for the multi-column sort pipeline: a cheap,
//! cloneable [`CancelToken`] that a caller can fire manually
//! ([`CancelToken::cancel`]) or arm with a wall-clock deadline
//! ([`CancelToken::with_deadline`]), checked by the long loops of every
//! execution phase — massage, the per-round lookup/sort/scan loop, the
//! segmented-sort group loop, the multiway merge pop loops, and the
//! external sort's chunk/spill/merge loops.
//!
//! ## Design
//!
//! * **The default token is free.** [`CancelToken::none`] carries no
//!   allocation and its [`check`](CancelToken::check) is a single
//!   always-false branch, so uncancellable paths (the default
//!   `SortConfig`) pay nothing — the warm round loop's zero-allocation
//!   guarantee is untouched.
//! * **Checks are relaxed atomics.** A live token's `check` is one
//!   relaxed load (plus an `Instant::now` only when a deadline is set).
//!   Cancellation is *cooperative*: loops poll at phase boundaries and
//!   every [`CHECK_INTERVAL`] iterations inside hot loops, so a fired
//!   token stops work within microseconds without any per-element cost.
//! * **Deadlines tighten, never loosen.** [`CancelToken::set_deadline`]
//!   keeps the earlier of the existing and new deadlines, so an engine
//!   layer can impose a query deadline on a caller-provided manual
//!   cancel token without races or locks.
//!
//! Infallible deep loops (the SIMD sort phases) may exit early on a
//! fired token *leaving garbage in their output buffers*; fallible
//! callers re-check the token after such calls and surface
//! [`CancelCause`] as a typed error. This is safe because the executor's
//! arena discipline already blesses garbage buffer contents after any
//! failure: every later lease overwrites what it reads.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often hot loops should poll a token, in iterations.
///
/// One check per `CHECK_INTERVAL` merge pops / sorted groups keeps the
/// polling overhead under 0.1% of loop work (a relaxed load against
/// ~1024 comparator steps) while still bounding cancellation latency to
/// microseconds. Phase boundaries always check regardless of interval.
pub const CHECK_INTERVAL: usize = 1024;

/// Why a [`CancelToken::check`] failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for CancelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelCause::Cancelled => write!(f, "cancelled"),
            CancelCause::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

impl std::error::Error for CancelCause {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Creation instant; deadlines are stored as nanoseconds after it.
    origin: Instant,
    /// Deadline as nanos-since-`origin`; `0` means no deadline (a
    /// zero-delay deadline is stored as `1`, which is equally expired).
    deadline_ns: AtomicU64,
}

/// A cloneable cooperative-cancellation handle. Clones share state: any
/// clone's [`cancel`](CancelToken::cancel) (or an elapsed deadline) is
/// observed by every other clone's [`check`](CancelToken::check).
///
/// `CancelToken::default()` is [`CancelToken::none`]: never fires, costs
/// one branch per check, performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The inert token: never cancelled, no deadline, no allocation.
    #[must_use]
    pub const fn none() -> CancelToken {
        CancelToken { inner: None }
    }

    /// A live token with no deadline; fire it with
    /// [`cancel`](CancelToken::cancel).
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                origin: Instant::now(),
                deadline_ns: AtomicU64::new(0),
            })),
        }
    }

    /// A live token that reports [`CancelCause::DeadlineExceeded`] once
    /// `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        let token = CancelToken::new();
        token.set_deadline(deadline);
        token
    }

    /// A live token whose deadline is `timeout` from now.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + timeout)
    }

    /// Whether this token can ever fire (i.e. is not
    /// [`none`](CancelToken::none)).
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }

    /// Fire the token: every clone's next [`check`](CancelToken::check)
    /// returns [`CancelCause::Cancelled`]. No-op on an inert token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Impose (or tighten) a deadline: the token keeps the *earlier* of
    /// its current deadline and `deadline`, so layered callers can only
    /// shorten the allowance. No-op on an inert token.
    pub fn set_deadline(&self, deadline: Instant) {
        let Some(inner) = &self.inner else { return };
        // Saturate an already-passed deadline to 1 ns after origin:
        // still unambiguously expired, and distinct from 0 = "none".
        let ns = deadline
            .saturating_duration_since(inner.origin)
            .as_nanos()
            .min(u64::MAX as u128) as u64;
        let ns = ns.max(1);
        inner
            .deadline_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                if cur == 0 || ns < cur {
                    Some(ns)
                } else {
                    None
                }
            })
            .ok();
    }

    /// The deadline, if one is set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        let inner = self.inner.as_ref()?;
        match inner.deadline_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(inner.origin + Duration::from_nanos(ns)),
        }
    }

    /// Poll the token: `Ok(())` to keep working, or the
    /// [`CancelCause`] that fired. Inert tokens always return `Ok(())`
    /// after a single branch.
    #[inline]
    pub fn check(&self) -> Result<(), CancelCause> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(CancelCause::Cancelled);
        }
        let deadline_ns = inner.deadline_ns.load(Ordering::Relaxed);
        if deadline_ns != 0 && inner.origin.elapsed().as_nanos() as u64 >= deadline_ns {
            return Err(CancelCause::DeadlineExceeded);
        }
        Ok(())
    }

    /// `true` once the token has fired (either cause).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.check().is_err()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_live());
        assert_eq!(t.check(), Ok(()));
        t.cancel(); // no-op
        t.set_deadline(Instant::now()); // no-op
        assert_eq!(t.check(), Ok(()));
        assert!(t.deadline().is_none());
        // Default is the inert token.
        assert!(!CancelToken::default().is_live());
    }

    #[test]
    fn manual_cancel_is_seen_by_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert_eq!(clone.check(), Ok(()));
        t.cancel();
        assert_eq!(clone.check(), Err(CancelCause::Cancelled));
        assert!(clone.is_cancelled());
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(t.check(), Err(CancelCause::DeadlineExceeded));
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(t.check(), Ok(()));
    }

    #[test]
    fn manual_cancel_wins_over_deadline() {
        // Both fired: the explicit cancel is the more specific cause.
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_secs(1));
        t.cancel();
        assert_eq!(t.check(), Err(CancelCause::Cancelled));
    }

    #[test]
    fn set_deadline_only_tightens() {
        let t = CancelToken::new();
        let far = Instant::now() + Duration::from_secs(3600);
        let near = Instant::now() + Duration::from_secs(1800);
        t.set_deadline(far);
        let d1 = t.deadline().unwrap();
        t.set_deadline(near);
        let d2 = t.deadline().unwrap();
        assert!(d2 < d1, "nearer deadline replaced the farther one");
        t.set_deadline(far);
        assert_eq!(t.deadline().unwrap(), d2, "farther deadline ignored");
    }

    #[test]
    fn deadline_at_or_before_origin_is_expired_not_none() {
        let t = CancelToken::new();
        t.set_deadline(Instant::now() - Duration::from_secs(5));
        assert!(t.deadline().is_some(), "expired, not erased");
        assert_eq!(t.check(), Err(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn cause_display_and_error() {
        assert_eq!(CancelCause::Cancelled.to_string(), "cancelled");
        assert_eq!(
            CancelCause::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
        let e: &dyn std::error::Error = &CancelCause::Cancelled;
        assert!(e.source().is_none());
    }
}
