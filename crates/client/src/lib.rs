//! # mcs-client
//!
//! A blocking client for the MCSQ wire protocol served by `mcs-server`.
//! One [`Client`] wraps one TCP connection — and therefore one engine
//! session (plan cache + arenas) on the server side.
//!
//! The API mirrors the in-process `Session`: [`prepare`](Client::prepare)
//! warms the server-side plan cache, [`query`](Client::query) executes
//! one query under per-request [`QueryOptions`], and
//! [`batch`](Client::batch) runs several concurrently. Engine errors
//! come back typed: a saturated server yields
//! `EngineError::Overloaded { waited_ns }` through
//! [`ClientError::engine_error`] exactly as an in-process caller would
//! see it.
//!
//! ```no_run
//! use mcs_client::Client;
//! use mcs_engine::{Query, QueryOptions};
//!
//! let mut client = Client::connect("127.0.0.1:7878")?;
//! let mut q = Query::named("q1");
//! q.select = vec!["price".into()];
//! q.order_by = vec![mcs_engine::OrderKey::asc("price")];
//! let result = client.query("sales", &q, QueryOptions::default())?;
//! println!("{} rows", result.rows);
//! client.close()?;
//! # Ok::<(), mcs_client::ClientError>(())
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use mcs_engine::wire::{Frame, FrameError, RemoteError, Request, Response, WireError};
use mcs_engine::{EngineError, Query, QueryOptions, QueryResult};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed (connect, send, or receive).
    Io(io::Error),
    /// The server's bytes did not parse as a frame.
    Frame(FrameError),
    /// A frame arrived but its payload did not decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Remote(RemoteError),
    /// The server broke the protocol (wrong id, wrong message kind).
    Protocol(String),
}

impl ClientError {
    /// The in-process [`EngineError`] this failure corresponds to, for
    /// the variants that survive the wire losslessly (`Overloaded`,
    /// `DeadlineExceeded`, `Cancelled`, `WindowKeyTooWide`). Lets remote
    /// callers match on engine errors exactly like local ones.
    pub fn engine_error(&self) -> Option<EngineError> {
        match self {
            ClientError::Remote(e) => e.engine_error(),
            _ => None,
        }
    }

    /// The typed remote error, if the server sent one.
    pub fn remote(&self) -> Option<&RemoteError> {
        match self {
            ClientError::Remote(e) => Some(e),
            _ => None,
        }
    }
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Wire(e) => write!(f, "bad payload from server: {e}"),
            ClientError::Remote(e) => write!(f, "{e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            ClientError::Remote(e) => Some(e),
            ClientError::Protocol(_) => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// One connection to an `mcs-server`, with monotonically increasing
/// request ids.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    /// Connect to `addr`, failing after `timeout`.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream, next_id: 1 })
    }

    /// Bound every receive: a server that stops answering fails the call
    /// with [`ClientError::Io`] instead of blocking forever.
    pub fn set_receive_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        Ok(self.stream.set_read_timeout(timeout)?)
    }

    /// Plan `query` against `table` on the server, warming this
    /// connection's plan cache.
    pub fn prepare(&mut self, table: &str, query: &Query) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Prepare {
            table: table.into(),
            query: query.clone(),
        })? {
            Response::Prepared => Ok(()),
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Execute one query under `options`. The deadline travels as the
    /// remaining time budget; queue pressure surfaces as a typed
    /// `Overloaded` error (see [`ClientError::engine_error`]).
    pub fn query(
        &mut self,
        table: &str,
        query: &Query,
        options: QueryOptions,
    ) -> Result<QueryResult, ClientError> {
        match self.roundtrip(&Request::Execute {
            table: table.into(),
            query: query.clone(),
            options,
        })? {
            Response::Result(r) => Ok(*r),
            other => Err(unexpected("Result", &other)),
        }
    }

    /// Execute `items` concurrently (at most `threads` in flight on the
    /// server), returning per-item outcomes in input order.
    pub fn batch(
        &mut self,
        items: &[(String, Query)],
        threads: usize,
        options: QueryOptions,
    ) -> Result<Vec<Result<QueryResult, RemoteError>>, ClientError> {
        match self.roundtrip(&Request::Batch {
            items: items.to_vec(),
            threads: u32::try_from(threads).unwrap_or(u32::MAX),
            options,
        })? {
            Response::Batch(results) => Ok(results),
            other => Err(unexpected("BatchResult", &other)),
        }
    }

    /// Close the connection cleanly (waits for the server's goodbye).
    pub fn close(mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Close)? {
            Response::Goodbye => Ok(()),
            other => Err(unexpected("Goodbye", &other)),
        }
    }

    /// Send one request and read its response, checking the echoed id.
    fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        request.to_frame(id).write_to(&mut self.stream)?;
        let frame = Frame::read_from(&mut self.stream)?;
        if frame.request_id != id {
            return Err(ClientError::Protocol(format!(
                "response for request {} while awaiting {id}",
                frame.request_id
            )));
        }
        match Response::decode(frame.kind, &frame.payload)? {
            Response::Error(e) => Err(ClientError::Remote(e)),
            resp => Ok(resp),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {:?}", got.kind()))
}
