//! AVX2 ByteSlice scan kernels: 32 codes per step.
//!
//! Same algorithm as the SWAR kernels in [`crate::byteslice`] — compare
//! the most significant byte slice first, descend to later slices only
//! for still-undecided lanes, stop early per block — but with 32-wide
//! byte compares (`_mm256_cmpeq_epi8` / `_mm256_min_epu8`) and
//! `movemask` bit masks.
//!
//! # Safety
//! All functions here require AVX2; they are only invoked behind the
//! runtime check in `ByteSliceColumn::scan_with_stats`.

#![allow(unsafe_op_in_unsafe_fn)]
#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

use crate::bitvec::BitVec;
use crate::byteslice::ScanStats;

/// `x < y` and `x == y` per byte lane, as 32-bit masks.
#[inline(always)]
unsafe fn lt_eq_masks(x: __m256i, y: __m256i) -> (u32, u32) {
    let eq = _mm256_cmpeq_epi8(x, y);
    // x <= y  ⟺  min(x, y) == x (unsigned).
    let le = _mm256_cmpeq_epi8(_mm256_min_epu8(x, y), x);
    let eq_m = _mm256_movemask_epi8(eq) as u32;
    let le_m = _mm256_movemask_epi8(le) as u32;
    (le_m & !eq_m, eq_m)
}

#[inline(always)]
unsafe fn load32(slice: &[u8], i: usize) -> __m256i {
    debug_assert!(i + 32 <= slice.len());
    _mm256_loadu_si256(slice.as_ptr().add(i) as *const __m256i)
}

/// 32-lane inequality scan (`<`, `<=`, `>`, `>=` via flags), writing one
/// 32-bit result word per block.
///
/// # Safety
/// AVX2 must be available; every slice must be padded to a multiple of 32.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scan_ineq_avx2(
    slices: &[Vec<u8>],
    lit_bytes: &[u8],
    n: usize,
    greater: bool,
    or_equal: bool,
    out: &mut BitVec,
    stats: &mut ScanStats,
) {
    let lits: Vec<__m256i> = lit_bytes
        .iter()
        .map(|&b| _mm256_set1_epi8(b as i8))
        .collect();
    let mut i = 0usize;
    while i < n {
        let mut undecided = u32::MAX;
        let mut result = 0u32;
        for (slice, lit) in slices.iter().zip(&lits) {
            let x = load32(slice, i);
            stats.words_touched += 4;
            let (lt, eq) = lt_eq_masks(x, *lit);
            let win = if greater { !(lt | eq) } else { lt };
            result |= undecided & win;
            undecided &= eq;
            if undecided == 0 {
                break;
            }
        }
        if or_equal {
            result |= undecided;
        }
        out.set_word32(i, result);
        i += 32;
    }
}

/// 32-lane equality scan.
///
/// # Safety
/// AVX2 must be available; every slice must be padded to a multiple of 32.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scan_eq_avx2(
    slices: &[Vec<u8>],
    lit_bytes: &[u8],
    n: usize,
    negate: bool,
    out: &mut BitVec,
    stats: &mut ScanStats,
) {
    let lits: Vec<__m256i> = lit_bytes
        .iter()
        .map(|&b| _mm256_set1_epi8(b as i8))
        .collect();
    let mut i = 0usize;
    while i < n {
        let mut undecided = u32::MAX;
        for (slice, lit) in slices.iter().zip(&lits) {
            let x = load32(slice, i);
            stats.words_touched += 4;
            let eq = _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, *lit)) as u32;
            undecided &= eq;
            if undecided == 0 {
                break;
            }
        }
        out.set_word32(i, if negate { !undecided } else { undecided });
        i += 32;
    }
}

/// 32-lane `BETWEEN lo AND hi` scan (both inclusive), one pass tracking
/// both bounds.
///
/// # Safety
/// AVX2 must be available; every slice must be padded to a multiple of 32.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn scan_between_avx2(
    slices: &[Vec<u8>],
    lo_bytes: &[u8],
    hi_bytes: &[u8],
    n: usize,
    out: &mut BitVec,
    stats: &mut ScanStats,
) {
    let los: Vec<__m256i> = lo_bytes
        .iter()
        .map(|&b| _mm256_set1_epi8(b as i8))
        .collect();
    let his: Vec<__m256i> = hi_bytes
        .iter()
        .map(|&b| _mm256_set1_epi8(b as i8))
        .collect();
    let mut i = 0usize;
    while i < n {
        let mut und_lo = u32::MAX;
        let mut und_hi = u32::MAX;
        let mut ge = 0u32;
        let mut le = 0u32;
        for (j, slice) in slices.iter().enumerate() {
            if und_lo == 0 && und_hi == 0 {
                break;
            }
            let x = load32(slice, i);
            stats.words_touched += 4;
            let (lt_lo, eq_lo) = lt_eq_masks(x, los[j]);
            let (lt_hi, eq_hi) = lt_eq_masks(x, his[j]);
            let gt_lo = !(lt_lo | eq_lo);
            ge |= und_lo & gt_lo;
            le |= und_hi & lt_hi;
            und_lo &= eq_lo;
            und_hi &= eq_hi;
        }
        ge |= und_lo;
        le |= und_hi;
        out.set_word32(i, ge & le);
        i += 32;
    }
}
