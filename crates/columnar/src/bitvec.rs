//! Result bit vectors produced by scans.

/// A fixed-length bit vector; bit `i` set ⇔ row `i` satisfies the filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// All-zeros vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-ones vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write 8 result bits for rows `[i, i+8)` (LSB = row `i`); used by the
    /// block-wise ByteSlice scan. Bits beyond `len` are dropped.
    #[inline]
    pub fn set_byte(&mut self, i: usize, bits: u8) {
        debug_assert_eq!(i % 8, 0);
        let w = i / 64;
        let shift = i % 64;
        self.words[w] |= (bits as u64) << shift;
        if i + 8 > self.len {
            self.mask_tail();
        }
    }

    /// Write 32 result bits for rows `[i, i+32)` (LSB = row `i`); used by
    /// the AVX2 block scan. Bits beyond `len` are dropped.
    #[inline]
    pub fn set_word32(&mut self, i: usize, bits: u32) {
        debug_assert_eq!(i % 32, 0);
        let w = i / 64;
        let shift = i % 64;
        self.words[w] |= (bits as u64) << shift;
        if i + 32 > self.len {
            self.mask_tail();
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place complement.
    pub fn not_assign(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Materialize the set bits as an oid list — the step between a scan's
    /// result bit vector and the lookups it drives.
    pub fn to_oids(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push((wi * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_get_count() {
        let mut v = BitVec::zeros(100);
        v.set(0);
        v.set(63);
        v.set(64);
        v.set(99);
        assert!(v.get(0) && v.get(63) && v.get(64) && v.get(99));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 4);
        assert_eq!(v.to_oids(), vec![0, 63, 64, 99]);
    }

    #[test]
    fn ones_masks_tail() {
        let v = BitVec::ones(70);
        assert_eq!(v.count_ones(), 70);
        let mut w = v.clone();
        w.not_assign();
        assert_eq!(w.count_ones(), 0);
    }

    #[test]
    fn boolean_ops() {
        let mut a = BitVec::zeros(10);
        let mut b = BitVec::zeros(10);
        a.set(1);
        a.set(2);
        b.set(2);
        b.set(3);
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c.to_oids(), vec![2]);
        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d.to_oids(), vec![1, 2, 3]);
    }

    #[test]
    fn set_byte_block() {
        let mut v = BitVec::zeros(20);
        v.set_byte(8, 0b1010_0001);
        assert_eq!(v.to_oids(), vec![8, 13, 15]);
        // Tail truncation: writing at 16 with len 20 keeps only 4 bits.
        let mut w = BitVec::zeros(20);
        w.set_byte(16, 0xFF);
        assert_eq!(w.count_ones(), 4);
    }

    #[test]
    fn empty() {
        let v = BitVec::zeros(0);
        assert_eq!(v.count_ones(), 0);
        assert!(v.to_oids().is_empty());
        assert!(v.is_empty());
    }
}
