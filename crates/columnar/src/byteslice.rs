//! ByteSlice storage layout and early-stopping scans (Feng et al.,
//! SIGMOD'15 — the paper's fast-scan substrate).
//!
//! A `w`-bit code is left-aligned into `⌈w/8⌉` bytes; byte `j` (most
//! significant first) of every code is stored in its own contiguous memory
//! region ("slice"). A predicate scan compares byte 0 of all codes first
//! and only descends to later bytes for codes still undecided (tied on all
//! previous bytes) — most codes are decided after one byte, so the scan
//! touches a fraction of the data.
//!
//! The block kernel works on 8 codes at a time with SWAR (SIMD-within-a-
//! register) byte comparisons on `u64` words, and stops early per block
//! when no lane remains undecided.

use crate::bitvec::BitVec;
use crate::codes::CodeVec;

/// Comparison predicate over encoded (unsigned) codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// `code < x`
    Lt(u64),
    /// `code <= x`
    Le(u64),
    /// `code > x`
    Gt(u64),
    /// `code >= x`
    Ge(u64),
    /// `code == x`
    Eq(u64),
    /// `code != x`
    Ne(u64),
    /// `lo <= code <= hi`
    Between(u64, u64),
}

impl Predicate {
    /// Scalar evaluation (the test oracle).
    pub fn eval(&self, v: u64) -> bool {
        match *self {
            Predicate::Lt(x) => v < x,
            Predicate::Le(x) => v <= x,
            Predicate::Gt(x) => v > x,
            Predicate::Ge(x) => v >= x,
            Predicate::Eq(x) => v == x,
            Predicate::Ne(x) => v != x,
            Predicate::Between(lo, hi) => lo <= v && v <= hi,
        }
    }
}

/// A column in ByteSlice layout.
#[derive(Debug, Clone)]
pub struct ByteSliceColumn {
    width: u32,
    nbytes: usize,
    n: usize,
    /// `slices[j][i]` = byte `j` (MSB-first) of left-aligned code `i`.
    /// Each slice is padded to a multiple of 32 for whole-register loads.
    slices: Vec<Vec<u8>>,
}

/// Scan telemetry: how much work early stopping saved.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanStats {
    /// Number of (block, byte-slice) word visits performed.
    pub words_touched: usize,
    /// Upper bound: blocks × nbytes (a scan without early stopping).
    pub words_total: usize,
}

impl ByteSliceColumn {
    /// Build from codes of a `width`-bit column.
    pub fn from_codes(codes: &CodeVec, width: u32) -> Self {
        assert!((1..=64).contains(&width));
        let n = codes.len();
        let nbytes = width.div_ceil(8) as usize;
        let shift = nbytes as u32 * 8 - width;
        let padded_n = n.div_ceil(32) * 32;
        let mut slices = vec![vec![0u8; padded_n]; nbytes];
        for i in 0..n {
            let v = codes.get(i) << shift;
            for (j, slice) in slices.iter_mut().enumerate() {
                slice[i] = (v >> ((nbytes - 1 - j) * 8)) as u8;
            }
        }
        ByteSliceColumn {
            width,
            nbytes,
            n,
            slices,
        }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Reassemble code `i` from its byte slices (byte *stitching*).
    pub fn lookup(&self, oid: u32) -> u64 {
        let i = oid as usize;
        assert!(i < self.n);
        let mut v = 0u64;
        for slice in &self.slices {
            v = (v << 8) | slice[i] as u64;
        }
        let shift = self.nbytes as u32 * 8 - self.width;
        v >> shift
    }

    /// Gather many codes into a [`CodeVec`] (the `ByteSlice-Lookup`
    /// operator).
    pub fn gather(&self, oids: &[u32]) -> CodeVec {
        let mut out = CodeVec::zeroed(self.width, 0);
        for &o in oids {
            out.push(self.lookup(o), self.width);
        }
        out
    }

    /// Decode the full column.
    pub fn to_codes(&self) -> CodeVec {
        let oids: Vec<u32> = (0..self.n as u32).collect();
        self.gather(&oids)
    }

    fn aligned_literal(&self, x: u64) -> u64 {
        debug_assert!(
            self.width == 64 || x < (1u64 << self.width),
            "literal {x} exceeds column width {}",
            self.width
        );
        x << (self.nbytes as u32 * 8 - self.width)
    }

    fn literal_byte(&self, aligned: u64, j: usize) -> u8 {
        (aligned >> ((self.nbytes - 1 - j) * 8)) as u8
    }

    /// Evaluate `pred` over the whole column with early stopping.
    ///
    /// Emits one `scan.byteslice` telemetry span per call.
    pub fn scan(&self, pred: &Predicate) -> BitVec {
        let t = std::time::Instant::now();
        let (out, stats) = self.scan_with_stats(pred);
        if mcs_telemetry::is_enabled() {
            mcs_telemetry::record_span(
                "scan.byteslice",
                t.elapsed().as_nanos() as u64,
                vec![
                    ("rows", self.n.into()),
                    ("width", self.width.into()),
                    ("words_touched", stats.words_touched.into()),
                    ("words_total", stats.words_total.into()),
                ],
            );
        }
        out
    }

    /// [`ByteSliceColumn::scan`] plus early-stopping telemetry.
    pub fn scan_with_stats(&self, pred: &Predicate) -> (BitVec, ScanStats) {
        #[cfg(target_arch = "x86_64")]
        let use_avx2 = avx2_available();
        #[cfg(not(target_arch = "x86_64"))]
        let use_avx2 = false;
        self.scan_with_stats_impl(pred, use_avx2)
    }

    /// Backend-selectable scan (SWAR when `use_avx2` is false); public for
    /// differential tests and the scan benchmarks.
    #[doc(hidden)]
    pub fn scan_with_stats_impl(&self, pred: &Predicate, use_avx2: bool) -> (BitVec, ScanStats) {
        let mut out = BitVec::zeros(self.n);
        let mut stats = ScanStats {
            words_touched: 0,
            words_total: self.n.div_ceil(8) * self.nbytes,
        };
        if self.n == 0 {
            return (out, stats);
        }
        // Literals outside the column's code domain decide the predicate
        // without touching any data; clamp so the byte kernels only ever
        // see in-domain values.
        let max = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let pred = match *pred {
            Predicate::Lt(x) | Predicate::Le(x) if x > max => {
                return (BitVec::ones(self.n), stats);
            }
            Predicate::Gt(x) | Predicate::Ge(x) | Predicate::Eq(x) if x > max => {
                return (out, stats);
            }
            Predicate::Ne(x) if x > max => {
                return (BitVec::ones(self.n), stats);
            }
            Predicate::Between(lo, _) if lo > max => return (out, stats),
            Predicate::Between(lo, hi) => Predicate::Between(lo, hi.min(max)),
            p => p,
        };
        #[cfg(not(target_arch = "x86_64"))]
        let _ = use_avx2;
        match pred {
            Predicate::Lt(x) => self.scan_ineq(x, false, false, &mut out, &mut stats, use_avx2),
            Predicate::Le(x) => self.scan_ineq(x, false, true, &mut out, &mut stats, use_avx2),
            Predicate::Gt(x) => self.scan_ineq(x, true, false, &mut out, &mut stats, use_avx2),
            Predicate::Ge(x) => self.scan_ineq(x, true, true, &mut out, &mut stats, use_avx2),
            Predicate::Eq(x) => self.scan_eq(x, false, &mut out, &mut stats, use_avx2),
            Predicate::Ne(x) => self.scan_eq(x, true, &mut out, &mut stats, use_avx2),
            Predicate::Between(lo, hi) => {
                if lo > hi {
                    return (out, stats);
                }
                // ge(lo) AND le(hi), tracked together in one pass.
                self.scan_between(lo, hi, &mut out, &mut stats, use_avx2);
            }
        }
        (out, stats)
    }

    fn literal_bytes(&self, aligned: u64) -> Vec<u8> {
        (0..self.nbytes)
            .map(|j| self.literal_byte(aligned, j))
            .collect()
    }

    /// Shared kernel for `<`, `<=`, `>`, `>=`: `greater` flips direction,
    /// `or_equal` includes ties.
    fn scan_ineq(
        &self,
        x: u64,
        greater: bool,
        or_equal: bool,
        out: &mut BitVec,
        stats: &mut ScanStats,
        use_avx2: bool,
    ) {
        let lit = self.aligned_literal(x);
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: feature checked; slices padded to multiples of 32.
            unsafe {
                crate::avx2scan::scan_ineq_avx2(
                    &self.slices,
                    &self.literal_bytes(lit),
                    self.n,
                    greater,
                    or_equal,
                    out,
                    stats,
                );
            }
            return;
        }
        let mut i = 0usize;
        while i < self.n {
            let mut undecided = 0xFFu8;
            let mut result = 0u8;
            for j in 0..self.nbytes {
                let w = load8(&self.slices[j], i);
                let y = broadcast(self.literal_byte(lit, j));
                stats.words_touched += 1;
                let lt = lt_bytes(w, y);
                let gt = lt_bytes(y, w);
                let win = if greater { gt } else { lt };
                result |= undecided & win;
                undecided &= !(lt | gt);
                if undecided == 0 {
                    break;
                }
            }
            if or_equal {
                result |= undecided;
            }
            out.set_byte(i, result);
            i += 8;
        }
    }

    fn scan_eq(
        &self,
        x: u64,
        negate: bool,
        out: &mut BitVec,
        stats: &mut ScanStats,
        use_avx2: bool,
    ) {
        let lit = self.aligned_literal(x);
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: feature checked; slices padded to multiples of 32.
            unsafe {
                crate::avx2scan::scan_eq_avx2(
                    &self.slices,
                    &self.literal_bytes(lit),
                    self.n,
                    negate,
                    out,
                    stats,
                );
            }
            return;
        }
        let mut i = 0usize;
        while i < self.n {
            let mut undecided = 0xFFu8;
            for j in 0..self.nbytes {
                let w = load8(&self.slices[j], i);
                let y = broadcast(self.literal_byte(lit, j));
                stats.words_touched += 1;
                undecided &= !(lt_bytes(w, y) | lt_bytes(y, w));
                if undecided == 0 {
                    break;
                }
            }
            out.set_byte(i, if negate { !undecided } else { undecided });
            i += 8;
        }
    }

    fn scan_between(
        &self,
        lo: u64,
        hi: u64,
        out: &mut BitVec,
        stats: &mut ScanStats,
        use_avx2: bool,
    ) {
        let llo = self.aligned_literal(lo);
        let lhi = self.aligned_literal(hi);
        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            // SAFETY: feature checked; slices padded to multiples of 32.
            unsafe {
                crate::avx2scan::scan_between_avx2(
                    &self.slices,
                    &self.literal_bytes(llo),
                    &self.literal_bytes(lhi),
                    self.n,
                    out,
                    stats,
                );
            }
            return;
        }
        let mut i = 0usize;
        while i < self.n {
            let mut und_lo = 0xFFu8; // still tied with lo
            let mut und_hi = 0xFFu8; // still tied with hi
            let mut ge = 0u8;
            let mut le = 0u8;
            for j in 0..self.nbytes {
                if und_lo == 0 && und_hi == 0 {
                    break;
                }
                let w = load8(&self.slices[j], i);
                stats.words_touched += 1;
                let ylo = broadcast(self.literal_byte(llo, j));
                let yhi = broadcast(self.literal_byte(lhi, j));
                let gt_lo = lt_bytes(ylo, w);
                let lt_lo = lt_bytes(w, ylo);
                let lt_hi = lt_bytes(w, yhi);
                let gt_hi = lt_bytes(yhi, w);
                ge |= und_lo & gt_lo;
                le |= und_hi & lt_hi;
                und_lo &= !(gt_lo | lt_lo);
                und_hi &= !(lt_hi | gt_hi);
            }
            ge |= und_lo; // exactly equal to lo
            le |= und_hi; // exactly equal to hi
            out.set_byte(i, ge & le);
            i += 8;
        }
    }
}

/// Whether AVX2 is available (memoized); gates the 32-lane scan kernels.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| std::is_x86_feature_detected!("avx2"))
}

/// Load 8 lane bytes (codes `i..i+8` of one slice) as a `u64`, LSB = code `i`.
#[inline(always)]
fn load8(slice: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(slice[i..i + 8].try_into().unwrap())
}

/// Broadcast one byte into all 8 lanes.
#[inline(always)]
const fn broadcast(b: u8) -> u64 {
    (b as u64) * 0x0101_0101_0101_0101
}

/// Per-byte unsigned `x < y`: returns an 8-bit mask, bit `k` set iff byte
/// `k` of `x` is less than byte `k` of `y`.
///
/// Works by widening the bytes into 16-bit lanes and testing the borrow
/// bit of `(x | 0x100) - y` per lane.
#[inline(always)]
fn lt_bytes(x: u64, y: u64) -> u8 {
    const LO: u64 = 0x00FF_00FF_00FF_00FF;
    const BIT8: u64 = 0x0100_0100_0100_0100;
    // Even bytes (0,2,4,6) in 16-bit lanes.
    let te = ((x & LO) | BIT8).wrapping_sub(y & LO);
    // Odd bytes (1,3,5,7).
    let to = (((x >> 8) & LO) | BIT8).wrapping_sub((y >> 8) & LO);
    // Bit 8 of each lane clear ⇔ x-byte < y-byte.
    let lt_e = !te & BIT8; // bits 8, 24, 40, 56
    let lt_o = !to & BIT8;
    compress_lanes(lt_e) | (compress_lanes(lt_o) << 1)
}

/// Move bits 8/24/40/56 to bits 0/2/4/6.
#[inline(always)]
fn compress_lanes(m: u64) -> u8 {
    (((m >> 8) & 1) | ((m >> 22) & 0b100) | ((m >> 36) & 0b1_0000) | ((m >> 50) & 0b100_0000)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(width: u32, vals: &[u64]) -> (ByteSliceColumn, Vec<u64>) {
        let cv = CodeVec::from_u64s(width, vals.iter().copied());
        (ByteSliceColumn::from_codes(&cv, width), vals.to_vec())
    }

    #[test]
    fn lt_bytes_exhaustive_lane0() {
        for x in 0..=255u64 {
            for y in 0..=255u64 {
                let m = lt_bytes(x, y);
                assert_eq!(m & 1 == 1, x < y, "x={x} y={y}");
                assert_eq!(m & !1, 0);
            }
        }
    }

    #[test]
    fn lt_bytes_all_lanes() {
        let x = u64::from_le_bytes([0, 1, 200, 255, 7, 7, 100, 0]);
        let y = u64::from_le_bytes([1, 1, 100, 255, 8, 6, 100, 255]);
        let m = lt_bytes(x, y);
        assert_eq!(m, 0b1001_0001);
    }

    #[test]
    fn roundtrip_lookup() {
        let (col, vals) = mk(17, &[0, 1, 65_535, 131_071, 70_000]);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(col.lookup(i as u32), v, "i={i}");
        }
        assert_eq!(col.to_codes().iter_u64().collect::<Vec<_>>(), vals);
    }

    fn oracle_scan(vals: &[u64], pred: &Predicate) -> Vec<u32> {
        vals.iter()
            .enumerate()
            .filter(|(_, &v)| pred.eval(v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn scans_match_oracle() {
        // Deterministic pseudo-random values across byte boundaries.
        for &width in &[5u32, 8, 12, 16, 17, 23, 24, 31, 33, 48] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let mut state = 0xABCDEFu64;
            let vals: Vec<u64> = (0..500)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state & mask
                })
                .collect();
            let (col, vals) = mk(width, &vals);
            let x = vals[17];
            let lo = vals[3].min(vals[99]);
            let hi = vals[3].max(vals[99]);
            for pred in [
                Predicate::Lt(x),
                Predicate::Le(x),
                Predicate::Gt(x),
                Predicate::Ge(x),
                Predicate::Eq(x),
                Predicate::Ne(x),
                Predicate::Between(lo, hi),
                Predicate::Lt(0),
                Predicate::Ge(0),
                Predicate::Le(mask),
                Predicate::Between(hi, lo.saturating_sub(1)), // empty
            ] {
                let got = col.scan(&pred).to_oids();
                let want = oracle_scan(&vals, &pred);
                assert_eq!(got, want, "width={width} pred={pred:?}");
            }
        }
    }

    #[test]
    fn early_stopping_saves_work() {
        // 24-bit column, values spread over the full domain: almost every
        // code decided at byte 0 when comparing against the midpoint.
        let n = 8000usize;
        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 2097) % (1 << 24)).collect();
        let cv = CodeVec::from_u64s(24, vals.iter().copied());
        let col = ByteSliceColumn::from_codes(&cv, 24);
        let (_, stats) = col.scan_with_stats(&Predicate::Lt(1 << 23));
        assert!(
            stats.words_touched * 2 < stats.words_total,
            "early stopping ineffective: {} of {}",
            stats.words_touched,
            stats.words_total
        );
    }

    #[test]
    fn non_multiple_of_8_lengths() {
        let (col, vals) = mk(9, &[1, 2, 3, 4, 5, 500, 7]);
        let got = col.scan(&Predicate::Ge(4)).to_oids();
        assert_eq!(got, oracle_scan(&vals, &Predicate::Ge(4)));
    }

    #[test]
    fn gather_matches_lookup() {
        let (col, _) = mk(20, &[100, 200, 300, 400]);
        let g = col.gather(&[2, 0]);
        assert_eq!(g.iter_u64().collect::<Vec<_>>(), vec![300, 100]);
    }

    #[test]
    fn empty_column() {
        let (col, _) = mk(12, &[]);
        assert!(col.is_empty());
        assert_eq!(col.scan(&Predicate::Ge(0)).count_ones(), 0);
    }
}
