//! Fixed-width unsigned code storage.
//!
//! Encoded columns hold `w`-bit codes in the smallest power-of-two byte
//! width that fits — the paper's `size(w) = 2^⌈log2⌈w/8⌉⌉` bytes (§4,
//! "Estimating T_lookup"). A [`CodeVec`] is that physical container.

/// `size(w)`: bytes of the smallest power-of-two-width integer type that
/// holds a `w`-bit code. `size(15) = 2`, `size(17) = 4`, `size(33) = 8`.
pub fn size_of_width(w: u32) -> usize {
    assert!(
        (1..=64).contains(&w),
        "code width must be in 1..=64, got {w}"
    );
    let bytes = w.div_ceil(8);
    (bytes.next_power_of_two()) as usize
}

/// A vector of fixed-width codes in their physical storage type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeVec {
    /// Codes of width 1–8 bits.
    U8(Vec<u8>),
    /// Codes of width 9–16 bits.
    U16(Vec<u16>),
    /// Codes of width 17–32 bits.
    U32(Vec<u32>),
    /// Codes of width 33–64 bits.
    U64(Vec<u64>),
}

impl CodeVec {
    /// Allocate a zeroed code vector of `n` codes for a `width`-bit column.
    pub fn zeroed(width: u32, n: usize) -> CodeVec {
        match size_of_width(width) {
            1 => CodeVec::U8(vec![0; n]),
            2 => CodeVec::U16(vec![0; n]),
            4 => CodeVec::U32(vec![0; n]),
            _ => CodeVec::U64(vec![0; n]),
        }
    }

    /// Build from `u64` values, storing them at the physical width for
    /// `width` bits. Values must fit in `width` bits.
    pub fn from_u64s(width: u32, vals: impl IntoIterator<Item = u64>) -> CodeVec {
        let mut cv = CodeVec::zeroed(width, 0);
        debug_assert!(
            width == 64 || {
                true // per-value check happens in push
            }
        );
        for v in vals {
            cv.push(v, width);
        }
        cv
    }

    /// Append a code.
    pub fn push(&mut self, v: u64, width: u32) {
        debug_assert!(
            width == 64 || v < (1u64 << width),
            "value {v} does not fit in {width} bits"
        );
        match self {
            CodeVec::U8(x) => x.push(v as u8),
            CodeVec::U16(x) => x.push(v as u16),
            CodeVec::U32(x) => x.push(v as u32),
            CodeVec::U64(x) => x.push(v),
        }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        match self {
            CodeVec::U8(x) => x.len(),
            CodeVec::U16(x) => x.len(),
            CodeVec::U32(x) => x.len(),
            CodeVec::U64(x) => x.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read code `i`, widened to `u64`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            CodeVec::U8(x) => x[i] as u64,
            CodeVec::U16(x) => x[i] as u64,
            CodeVec::U32(x) => x[i] as u64,
            CodeVec::U64(x) => x[i],
        }
    }

    /// Write code `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: u64) {
        match self {
            CodeVec::U8(x) => x[i] = v as u8,
            CodeVec::U16(x) => x[i] = v as u16,
            CodeVec::U32(x) => x[i] = v as u32,
            CodeVec::U64(x) => x[i] = v,
        }
    }

    /// Physical bytes per code.
    pub fn code_bytes(&self) -> usize {
        match self {
            CodeVec::U8(_) => 1,
            CodeVec::U16(_) => 2,
            CodeVec::U32(_) => 4,
            CodeVec::U64(_) => 8,
        }
    }

    /// Total memory footprint in bytes (`N · size(w)`).
    pub fn footprint_bytes(&self) -> usize {
        self.len() * self.code_bytes()
    }

    /// Iterate all codes widened to `u64`.
    pub fn iter_u64(&self) -> Box<dyn Iterator<Item = u64> + '_> {
        match self {
            CodeVec::U8(x) => Box::new(x.iter().map(|&v| v as u64)),
            CodeVec::U16(x) => Box::new(x.iter().map(|&v| v as u64)),
            CodeVec::U32(x) => Box::new(x.iter().map(|&v| v as u64)),
            CodeVec::U64(x) => Box::new(x.iter().copied()),
        }
    }

    /// Copy the contiguous row range `range` into a new vector of the
    /// same physical type (the out-of-core sort materializes its chunks
    /// this way — one `memcpy` per column, no oid indirection).
    pub fn slice(&self, range: core::ops::Range<usize>) -> CodeVec {
        match self {
            CodeVec::U8(x) => CodeVec::U8(x[range].to_vec()),
            CodeVec::U16(x) => CodeVec::U16(x[range].to_vec()),
            CodeVec::U32(x) => CodeVec::U32(x[range].to_vec()),
            CodeVec::U64(x) => CodeVec::U64(x[range].to_vec()),
        }
    }

    /// Gather `codes[oids[i]]` into a new vector of the same physical type
    /// (the column-store *lookup* operator, cost `T_lookup`, Eq. 3).
    pub fn gather(&self, oids: &[u32]) -> CodeVec {
        match self {
            CodeVec::U8(x) => CodeVec::U8(oids.iter().map(|&o| x[o as usize]).collect()),
            CodeVec::U16(x) => CodeVec::U16(oids.iter().map(|&o| x[o as usize]).collect()),
            CodeVec::U32(x) => CodeVec::U32(oids.iter().map(|&o| x[o as usize]).collect()),
            CodeVec::U64(x) => CodeVec::U64(oids.iter().map(|&o| x[o as usize]).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_of_width_matches_paper() {
        assert_eq!(size_of_width(1), 1);
        assert_eq!(size_of_width(8), 1);
        assert_eq!(size_of_width(9), 2);
        assert_eq!(size_of_width(15), 2); // paper: int16
        assert_eq!(size_of_width(17), 4); // paper: int32
        assert_eq!(size_of_width(32), 4);
        assert_eq!(size_of_width(33), 8);
        assert_eq!(size_of_width(64), 8);
    }

    #[test]
    fn storage_type_selection() {
        assert!(matches!(CodeVec::zeroed(7, 3), CodeVec::U8(_)));
        assert!(matches!(CodeVec::zeroed(12, 3), CodeVec::U16(_)));
        assert!(matches!(CodeVec::zeroed(17, 3), CodeVec::U32(_)));
        assert!(matches!(CodeVec::zeroed(48, 3), CodeVec::U64(_)));
    }

    #[test]
    fn roundtrip_and_footprint() {
        let cv = CodeVec::from_u64s(12, [1u64, 4095, 0]);
        assert_eq!(cv.len(), 3);
        assert_eq!(cv.get(1), 4095);
        assert_eq!(cv.footprint_bytes(), 6);
        let collected: Vec<u64> = cv.iter_u64().collect();
        assert_eq!(collected, vec![1, 4095, 0]);
    }

    #[test]
    fn gather_reorders() {
        let cv = CodeVec::from_u64s(20, [10u64, 20, 30, 40]);
        let g = cv.gather(&[3, 0, 2]);
        assert_eq!(g.iter_u64().collect::<Vec<_>>(), vec![40, 10, 30]);
    }

    #[test]
    #[should_panic]
    fn size_of_width_rejects_zero() {
        size_of_width(0);
    }

    #[test]
    fn set_get() {
        let mut cv = CodeVec::zeroed(33, 4);
        cv.set(2, 1 << 32);
        assert_eq!(cv.get(2), 1 << 32);
    }
}
