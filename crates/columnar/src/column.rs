//! Encoded columns and their statistics.

use crate::byteslice::ByteSliceColumn;
use crate::codes::CodeVec;

/// Per-column statistics used by the cost model's group-cardinality
/// estimators (§4: "basic statistics about the data such as … the value
/// distribution of a column (e.g., a histogram)").
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of rows.
    pub rows: usize,
    /// Number of distinct codes.
    pub ndv: usize,
    /// Minimum code.
    pub min: u64,
    /// Maximum code.
    pub max: u64,
    /// Equi-width histogram over `[0, 2^width)` (16 buckets by default):
    /// counts of rows per bucket.
    pub histogram: Vec<u64>,
}

impl ColumnStats {
    /// Compute statistics in one pass (plus a sort for exact NDV).
    pub fn compute(codes: &CodeVec, width: u32) -> ColumnStats {
        let rows = codes.len();
        let buckets = 16usize;
        let mut histogram = vec![0u64; buckets];
        let domain = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut all: Vec<u64> = Vec::with_capacity(rows);
        for v in codes.iter_u64() {
            min = min.min(v);
            max = max.max(v);
            let b = if domain == 0 {
                0
            } else {
                ((v as u128 * buckets as u128) / (domain as u128 + 1)) as usize
            };
            histogram[b.min(buckets - 1)] += 1;
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        let ndv = all.len();
        if rows == 0 {
            min = 0;
        }
        ColumnStats {
            rows,
            ndv,
            min,
            max,
            histogram,
        }
    }
}

/// An encoded column: fixed-width codes plus ByteSlice storage and stats.
///
/// The ByteSlice representation serves scans; the plain [`CodeVec`] serves
/// lookups and sorting (the paper's prototype keeps both, its Figure 11
/// storage manager).
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    width: u32,
    codes: CodeVec,
    byteslice: ByteSliceColumn,
    stats: ColumnStats,
}

impl Column {
    /// Build a column from codes.
    pub fn new(name: impl Into<String>, width: u32, codes: CodeVec) -> Column {
        let stats = ColumnStats::compute(&codes, width);
        let byteslice = ByteSliceColumn::from_codes(&codes, width);
        Column {
            name: name.into(),
            width,
            codes,
            byteslice,
            stats,
        }
    }

    /// Build from an iterator of `u64` code values.
    pub fn from_u64s(
        name: impl Into<String>,
        width: u32,
        vals: impl IntoIterator<Item = u64>,
    ) -> Column {
        Column::new(name, width, CodeVec::from_u64s(width, vals))
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The plain code storage.
    pub fn codes(&self) -> &CodeVec {
        &self.codes
    }

    /// The ByteSlice storage (for scans).
    pub fn byteslice(&self) -> &ByteSliceColumn {
        &self.byteslice
    }

    /// Column statistics.
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// Read code `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.codes.get(i)
    }

    /// Gather codes at `oids` (lookup operator).
    pub fn gather(&self, oids: &[u32]) -> CodeVec {
        self.codes.gather(oids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let c = Column::from_u64s("a", 8, [5u64, 5, 10, 255, 0]);
        let s = c.stats();
        assert_eq!(s.rows, 5);
        assert_eq!(s.ndv, 4);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 255);
        assert_eq!(s.histogram.iter().sum::<u64>(), 5);
    }

    #[test]
    fn histogram_buckets_cover_domain() {
        // width 4 -> domain [0,16); bucket = v (16 buckets).
        let c = Column::from_u64s("a", 4, (0u64..16).chain(0..16));
        assert!(c.stats().histogram.iter().all(|&h| h == 2));
    }

    #[test]
    fn empty_column_stats() {
        let c = Column::from_u64s("a", 12, std::iter::empty());
        assert_eq!(c.stats().rows, 0);
        assert_eq!(c.stats().ndv, 0);
        assert_eq!(c.stats().min, 0);
    }

    #[test]
    fn byteslice_agrees_with_codes() {
        let vals = [4000u64, 1, 70000, 123456];
        let c = Column::from_u64s("x", 17, vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(c.get(i), v);
            assert_eq!(c.byteslice().lookup(i as u32), v);
        }
    }
}
