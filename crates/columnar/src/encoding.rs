//! Order-preserving fixed-length encoding of native values into codes.
//!
//! Following the encoding scheme the paper adopts (\[30\]; §2 "Column
//! Encoding"): every data type becomes an unsigned integer code whose
//! order matches the native order, using `⌈log2(NDV)⌉` bits for
//! dictionary-encoded domains.

use std::collections::BTreeMap;

/// An order-preserving string dictionary: codes are ranks in the sorted
/// set of distinct values.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// Sorted distinct values; code `c` decodes to `values[c]`.
    values: Vec<String>,
    index: BTreeMap<String, u64>,
}

impl Dictionary {
    /// Build a dictionary over the distinct values of `items`.
    pub fn build<'a>(items: impl IntoIterator<Item = &'a str>) -> Self {
        let mut set: Vec<&str> = items.into_iter().collect();
        set.sort_unstable();
        set.dedup();
        let values: Vec<String> = set.iter().map(|s| s.to_string()).collect();
        let index = values
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u64))
            .collect();
        Dictionary { values, index }
    }

    /// Code for a value (must be present).
    pub fn encode(&self, s: &str) -> u64 {
        self.index[s]
    }

    /// Value for a code.
    pub fn decode(&self, code: u64) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Code width in bits: `⌈log2(NDV)⌉`, at least 1.
    pub fn width_bits(&self) -> u32 {
        width_for_cardinality(self.values.len() as u64)
    }
}

/// Bits needed to encode `ndv` distinct codes (`⌈log2(ndv)⌉`, min 1).
pub fn width_for_cardinality(ndv: u64) -> u32 {
    if ndv <= 2 {
        1
    } else {
        64 - (ndv - 1).leading_zeros()
    }
}

/// Bits needed for a numeric domain `[0, max]`.
pub fn width_for_max(max: u64) -> u32 {
    if max == 0 {
        1
    } else {
        64 - max.leading_zeros()
    }
}

/// Encode a fixed-point decimal `units` (e.g. cents) offset by the domain
/// minimum, preserving order: `code = units - min_units`.
pub fn encode_scaled(units: i64, min_units: i64) -> u64 {
    debug_assert!(units >= min_units);
    (units - min_units) as u64
}

/// Encode a date as days since an epoch date, preserving order.
///
/// `(y, m, d)` uses a proleptic-Gregorian day number; only ordering and
/// distinctness matter for sorting, so this civil-to-day conversion is the
/// standard Howard Hinnant algorithm.
pub fn encode_date(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_is_order_preserving() {
        let d = Dictionary::build(["USA", "AUS", "CHN", "AUS"]);
        assert_eq!(d.cardinality(), 3);
        assert!(d.encode("AUS") < d.encode("CHN"));
        assert!(d.encode("CHN") < d.encode("USA"));
        assert_eq!(d.decode(d.encode("CHN")), "CHN");
        assert_eq!(d.width_bits(), 2);
    }

    #[test]
    fn widths() {
        assert_eq!(width_for_cardinality(1), 1);
        assert_eq!(width_for_cardinality(2), 1);
        assert_eq!(width_for_cardinality(3), 2);
        assert_eq!(width_for_cardinality(1024), 10);
        assert_eq!(width_for_cardinality(1025), 11);
        assert_eq!(width_for_max(0), 1);
        assert_eq!(width_for_max(1), 1);
        assert_eq!(width_for_max(4095), 12);
        assert_eq!(width_for_max(4096), 13);
    }

    #[test]
    fn dates_are_ordered_and_distinct() {
        let a = encode_date(1995, 1, 1);
        let b = encode_date(1995, 1, 2);
        let c = encode_date(1998, 12, 31);
        assert!(a < b && b < c);
        // TPC-H order dates span 1992-01-01..1998-12-31 = 2557 days -> 12 bits.
        let span = encode_date(1998, 12, 31) - encode_date(1992, 1, 1);
        assert_eq!(span, 2556);
        assert_eq!(width_for_max(span as u64), 12);
    }

    #[test]
    fn epoch_anchor() {
        assert_eq!(encode_date(1970, 1, 1), 0);
        assert_eq!(encode_date(1970, 1, 2), 1);
        assert_eq!(encode_date(1969, 12, 31), -1);
    }

    #[test]
    fn scaled_decimals() {
        assert_eq!(encode_scaled(90000, 90000), 0);
        assert_eq!(encode_scaled(104950, 90000), 14950);
    }
}
