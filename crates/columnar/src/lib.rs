//! # mcs-columnar
//!
//! Encoded columnar storage for the SIGMOD'16 *Fast Multi-Column Sorting*
//! reproduction: fixed-width order-preserving codes, ByteSlice layout with
//! early-stopping scans, gather-based lookups, and WideTable
//! denormalization.
//!
//! These are the storage-manager pieces the paper's prototype builds on
//! (its Figure 11): `ByteSlice-Scan` / `ByteSlice-Lookup` operators over a
//! storage layer where every value — string, decimal, date — has already
//! been encoded into a `w`-bit unsigned code.
//!
//! ```
//! use mcs_columnar::{Column, Predicate};
//!
//! let col = Column::from_u64s("price", 17, [100u64, 99_999, 42, 7]);
//! let hits = col.byteslice().scan(&Predicate::Ge(100));
//! assert_eq!(hits.to_oids(), vec![0, 1]);
//! let gathered = col.gather(&hits.to_oids());
//! assert_eq!(gathered.iter_u64().collect::<Vec<_>>(), vec![100, 99_999]);
//! ```

#![warn(missing_docs)]

#[cfg(target_arch = "x86_64")]
mod avx2scan;
mod bitvec;
mod byteslice;
mod codes;
mod column;
pub mod encoding;
mod table;

pub use bitvec::BitVec;
pub use byteslice::{ByteSliceColumn, Predicate, ScanStats};
pub use codes::{size_of_width, CodeVec};
pub use column::{Column, ColumnStats};
pub use encoding::{encode_date, encode_scaled, width_for_cardinality, width_for_max, Dictionary};
pub use table::{widen, DimensionJoin, Table};
