//! Tables and WideTable denormalization.
//!
//! A [`Table`] is a bag of equal-length encoded [`Column`]s. A *WideTable*
//! (Li & Patel, VLDB'14 — the paper's denormalization substrate) is the
//! materialized pre-join of a fact table with its dimensions: after
//! encoding, a foreign-key code *is* the dimension row id, so widening is
//! a per-column gather.

use crate::column::Column;

/// A named collection of equal-length columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>) -> Table {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a column; all columns must have the same row count.
    pub fn add_column(&mut self, col: Column) -> &mut Self {
        if let Some(first) = self.columns.first() {
            assert_eq!(
                first.len(),
                col.len(),
                "column {} row count mismatch",
                col.name()
            );
        }
        assert!(
            self.column(col.name()).is_none(),
            "duplicate column {}",
            col.name()
        );
        self.columns.push(col);
        self
    }

    /// Number of rows (0 if no columns yet).
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Look up a column by name, panicking with a useful message otherwise.
    pub fn expect_column(&self, name: &str) -> &Column {
        self.column(name).unwrap_or_else(|| {
            panic!(
                "table {} has no column {name}; available: {:?}",
                self.name,
                self.columns.iter().map(|c| c.name()).collect::<Vec<_>>()
            )
        })
    }
}

/// A dimension to denormalize into a WideTable.
pub struct DimensionJoin<'a> {
    /// Fact-table column holding dimension row ids (the encoded FK).
    pub fk_column: &'a str,
    /// The dimension table.
    pub dimension: &'a Table,
    /// Dimension columns to pull in, with their names in the WideTable.
    pub select: Vec<(&'a str, &'a str)>,
}

/// Materialize the pre-join of `fact` with `dims` as a WideTable.
///
/// Every requested dimension column is gathered through the fact table's
/// FK codes; fact columns are carried over unchanged. Complex join queries
/// on the original schema then become fast scans on the result (§2,
/// "Fast Scan/Lookup and Denormalization").
pub fn widen(name: impl Into<String>, fact: &Table, dims: &[DimensionJoin<'_>]) -> Table {
    let mut out = Table::new(name);
    for c in fact.columns() {
        out.add_column(c.clone());
    }
    for d in dims {
        let fk = fact.expect_column(d.fk_column);
        let oids: Vec<u32> = fk.codes().iter_u64().map(|v| v as u32).collect();
        for &(src, dst) in &d.select {
            let dim_col = d.dimension.expect_column(src);
            let gathered = dim_col.gather(&oids);
            out.add_column(Column::new(dst, dim_col.width(), gathered));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dim_nation() -> Table {
        let mut t = Table::new("nation");
        // Row id == nation code: names encoded 0..4, regions 0..2.
        t.add_column(Column::from_u64s("n_region", 2, [0u64, 0, 1, 1, 2]));
        t.add_column(Column::from_u64s("n_name", 3, [0u64, 1, 2, 3, 4]));
        t
    }

    #[test]
    fn table_basics() {
        let t = dim_nation();
        assert_eq!(t.rows(), 5);
        assert!(t.column("n_region").is_some());
        assert!(t.column("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_rows_rejected() {
        let mut t = Table::new("t");
        t.add_column(Column::from_u64s("a", 4, [1u64, 2]));
        t.add_column(Column::from_u64s("b", 4, [1u64]));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let mut t = Table::new("t");
        t.add_column(Column::from_u64s("a", 4, [1u64]));
        t.add_column(Column::from_u64s("a", 4, [2u64]));
    }

    #[test]
    fn widen_gathers_dimension_columns() {
        let nation = dim_nation();
        let mut fact = Table::new("orders");
        fact.add_column(Column::from_u64s("o_nation_fk", 3, [4u64, 0, 0, 2]));
        fact.add_column(Column::from_u64s("o_price", 10, [100u64, 200, 300, 400]));

        let wide = widen(
            "orders_wide",
            &fact,
            &[DimensionJoin {
                fk_column: "o_nation_fk",
                dimension: &nation,
                select: vec![("n_region", "nation_region"), ("n_name", "nation_name")],
            }],
        );
        assert_eq!(wide.rows(), 4);
        let reg = wide.expect_column("nation_region");
        assert_eq!(reg.codes().iter_u64().collect::<Vec<_>>(), vec![2, 0, 0, 1]);
        // Fact columns preserved.
        assert_eq!(wide.expect_column("o_price").get(3), 400);
    }
}
