//! Differential tests: the AVX2 scan kernels and the portable SWAR
//! kernels must agree exactly, and both must match the scalar oracle —
//! on arbitrary widths, values and predicates.

use mcs_columnar::{ByteSliceColumn, CodeVec, Predicate};
use mcs_test_support::{check, Rng};

fn domain_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn oracle(vals: &[u64], pred: &Predicate) -> Vec<u32> {
    vals.iter()
        .enumerate()
        .filter(|(_, &v)| pred.eval(v))
        .map(|(i, _)| i as u32)
        .collect()
}

fn check_all_backends(vals: &[u64], width: u32, pred: &Predicate) {
    let cv = CodeVec::from_u64s(width, vals.iter().copied());
    let col = ByteSliceColumn::from_codes(&cv, width);
    let want = oracle(vals, pred);
    let (swar, swar_stats) = col.scan_with_stats_impl(pred, false);
    assert_eq!(swar.to_oids(), want, "SWAR mismatch width={width} {pred:?}");
    assert!(swar_stats.words_touched <= swar_stats.words_total + 1);
    if std::is_x86_feature_detected!("avx2") {
        let (avx, _) = col.scan_with_stats_impl(pred, true);
        assert_eq!(avx.to_oids(), want, "AVX2 mismatch width={width} {pred:?}");
    }
}

fn random_predicate(rng: &mut Rng, a: u64, b: u64) -> Predicate {
    match rng.gen_range(0..7usize) {
        0 => Predicate::Lt(a),
        1 => Predicate::Le(a),
        2 => Predicate::Gt(a),
        3 => Predicate::Ge(a),
        4 => Predicate::Eq(a),
        5 => Predicate::Ne(a),
        _ => Predicate::Between(a.min(b), a.max(b)),
    }
}

#[test]
fn backends_agree() {
    check("backends_agree", 128, |rng| {
        let width = rng.gen_range(1..=48u32);
        let mask = domain_mask(width);
        let n = rng.gen_range(0..700usize);
        let vals: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() & mask).collect();
        let a = rng.gen::<u64>() & mask;
        let b = rng.gen::<u64>() & mask;
        let pred = random_predicate(rng, a, b);
        check_all_backends(&vals, width, &pred);
    });
}

/// Low-cardinality data stresses the undecided-lane paths (ties on
/// leading bytes everywhere).
#[test]
fn backends_agree_low_cardinality() {
    check("backends_agree_low_cardinality", 128, |rng| {
        let width = rng.gen_range(9..=33u32);
        let n = rng.gen_range(0..500usize);
        let raw: Vec<u64> = (0..n).map(|_| rng.gen_range(0..4u64)).collect();
        let pred = match rng.gen_range(0..7usize) {
            0 => Predicate::Lt(2),
            1 => Predicate::Le(1),
            2 => Predicate::Gt(0),
            3 => Predicate::Ge(3),
            4 => Predicate::Eq(1),
            5 => Predicate::Ne(2),
            _ => Predicate::Between(1, 2),
        };
        check_all_backends(&raw, width, &pred);
    });
}

#[test]
fn boundary_lengths() {
    // Lengths around the 32-lane block size.
    for n in [0usize, 1, 7, 8, 31, 32, 33, 63, 64, 65, 100] {
        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 500).collect();
        check_all_backends(&vals, 9, &Predicate::Lt(250));
        check_all_backends(&vals, 9, &Predicate::Between(100, 400));
    }
}
