//! Differential tests: the AVX2 scan kernels and the portable SWAR
//! kernels must agree exactly, and both must match the scalar oracle —
//! on arbitrary widths, values and predicates.

use mcs_columnar::{ByteSliceColumn, CodeVec, Predicate};
use proptest::prelude::*;

fn domain_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn oracle(vals: &[u64], pred: &Predicate) -> Vec<u32> {
    vals.iter()
        .enumerate()
        .filter(|(_, &v)| pred.eval(v))
        .map(|(i, _)| i as u32)
        .collect()
}

fn check_all_backends(vals: &[u64], width: u32, pred: &Predicate) {
    let cv = CodeVec::from_u64s(width, vals.iter().copied());
    let col = ByteSliceColumn::from_codes(&cv, width);
    let want = oracle(vals, pred);
    let (swar, swar_stats) = col.scan_with_stats_impl(pred, false);
    assert_eq!(swar.to_oids(), want, "SWAR mismatch width={width} {pred:?}");
    assert!(swar_stats.words_touched <= swar_stats.words_total + 1);
    if std::is_x86_feature_detected!("avx2") {
        let (avx, _) = col.scan_with_stats_impl(pred, true);
        assert_eq!(avx.to_oids(), want, "AVX2 mismatch width={width} {pred:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backends_agree(
        width in 1u32..=48,
        raw in prop::collection::vec(any::<u64>(), 0..700),
        lit_raw in any::<u64>(),
        lit2_raw in any::<u64>(),
        which in 0usize..7,
    ) {
        let mask = domain_mask(width);
        let vals: Vec<u64> = raw.iter().map(|v| v & mask).collect();
        let a = lit_raw & mask;
        let b = lit2_raw & mask;
        let pred = match which {
            0 => Predicate::Lt(a),
            1 => Predicate::Le(a),
            2 => Predicate::Gt(a),
            3 => Predicate::Ge(a),
            4 => Predicate::Eq(a),
            5 => Predicate::Ne(a),
            _ => Predicate::Between(a.min(b), a.max(b)),
        };
        check_all_backends(&vals, width, &pred);
    }

    /// Low-cardinality data stresses the undecided-lane paths (ties on
    /// leading bytes everywhere).
    #[test]
    fn backends_agree_low_cardinality(
        width in 9u32..=33,
        raw in prop::collection::vec(0u64..4, 0..500),
        which in 0usize..7,
    ) {
        let pred = match which {
            0 => Predicate::Lt(2),
            1 => Predicate::Le(1),
            2 => Predicate::Gt(0),
            3 => Predicate::Ge(3),
            4 => Predicate::Eq(1),
            5 => Predicate::Ne(2),
            _ => Predicate::Between(1, 2),
        };
        check_all_backends(&raw, width, &pred);
    }
}

#[test]
fn boundary_lengths() {
    // Lengths around the 32-lane block size.
    for n in [0usize, 1, 7, 8, 31, 32, 33, 63, 64, 65, 100] {
        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 500).collect();
        check_all_backends(&vals, 9, &Predicate::Lt(250));
        check_all_backends(&vals, 9, &Predicate::Between(100, 400));
    }
}
