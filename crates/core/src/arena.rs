//! The reusable, bank-native execution arena.
//!
//! A multi-column sort needs a fixed family of working buffers: one
//! bank-native key vector per round (the massage destinations), a gather
//! spare per bank for the per-round lookup ping-pong, the oid
//! permutation, two group-offset vectors (current + refine destination),
//! and the SIMD merge-sort scratch. [`ExecArena`] owns all of them
//! between executions, so a warm caller — a session replaying a prepared
//! query — re-runs the whole round loop without touching the heap.
//!
//! Lifecycle: [`ExecArena::lease`] moves the buffers out into a
//! [`Lease`] sized for the plan at hand (growing them monotonically to
//! their high-water mark), the executor runs on the lease, and
//! [`ExecArena::restore`] moves everything back — on success *and* on
//! error. A mid-round failure (injected fault, worker panic) leaves
//! garbage in the buffers, which is harmless: every execution fully
//! overwrites what it reads, so the arena is never poisoned.
//!
//! Growth policy: buffers only ever grow (capacity is kept on shrink),
//! and [`ArenaStats`] tracks the byte high-water mark plus how many
//! executions grew the arena vs. ran entirely from existing capacity.

use mcs_simd_sort::{Bank, GroupBounds, WorkerScratch};

use crate::massage::RoundKeys;
use crate::plan::MassagePlan;

/// Reuse counters of an [`ExecArena`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// High-water mark of bytes held across all buffers.
    pub bytes_peak: u64,
    /// Executions that grew the arena past its previous peak.
    pub grows: u64,
    /// Executions served entirely from existing capacity.
    pub reuses: u64,
}

impl ArenaStats {
    /// Whether any execution has been recorded.
    pub fn is_empty(&self) -> bool {
        *self == ArenaStats::default()
    }
}

/// Reusable execution memory for [`crate::multi_column_sort_with`].
///
/// One arena serves any sequence of sort instances (any row count, any
/// plan, any bank mix); buffers grow monotonically to the high-water
/// mark of what they have served. Not `Sync`: one arena per executing
/// thread (sessions keep a pool).
#[derive(Debug, Default)]
pub struct ExecArena {
    /// Pooled 16-bit-bank key buffers (round keys + gather spares).
    pool16: Vec<Vec<u16>>,
    /// Pooled 32-bit-bank key buffers.
    pool32: Vec<Vec<u32>>,
    /// Pooled 64-bit-bank key buffers.
    pool64: Vec<Vec<u64>>,
    /// Pooled u32 buffers (oids, group offsets).
    pool_u32: Vec<Vec<u32>>,
    /// Merge-sort scratch: chunk spans plus per-worker key/oid/merge
    /// buffers (one worker when executing serially).
    workers: WorkerScratch,
    stats: ArenaStats,
    /// Counter state already surfaced to telemetry (deltas-since).
    reported: ArenaStats,
}

/// The buffer set of one execution, moved out of an [`ExecArena`] by
/// [`ExecArena::lease`] and moved back by [`ExecArena::restore`].
#[derive(Debug)]
pub(crate) struct Lease {
    /// Massage destinations: one bank-native key vector per round,
    /// zero-filled to the row count.
    pub rounds: Vec<RoundKeys>,
    /// Gather destination spares, one per bank (ping-ponged with the
    /// round buffer on every lookup).
    pub spare16: Vec<u16>,
    /// 32-bit gather spare.
    pub spare32: Vec<u32>,
    /// 64-bit gather spare.
    pub spare64: Vec<u64>,
    /// The oid permutation, initialized to `0..n`.
    pub oids: Vec<u32>,
    /// Current group bounds, initialized to one whole-relation group.
    pub groups: GroupBounds,
    /// Refinement destination, swapped with `groups.offsets` per round.
    pub spare_offsets: Vec<u32>,
    /// Merge-sort scratch.
    pub workers: WorkerScratch,
}

fn take_pooled<T>(pool: &mut Vec<Vec<T>>) -> Vec<T> {
    pool.pop().unwrap_or_default()
}

impl ExecArena {
    /// An empty arena; nothing is allocated until the first lease.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse counters (peak bytes, grow/reuse execution counts).
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Bytes currently held across every pooled buffer and scratch.
    pub fn bytes(&self) -> usize {
        fn pool_bytes<T>(pool: &[Vec<T>]) -> usize {
            pool.iter()
                .map(|v| v.capacity() * core::mem::size_of::<T>())
                .sum()
        }
        pool_bytes(&self.pool16)
            + pool_bytes(&self.pool32)
            + pool_bytes(&self.pool64)
            + pool_bytes(&self.pool_u32)
            + self.workers.bytes()
    }

    /// Move the execution buffers out, sized for `plan` over `n` rows.
    ///
    /// Round-key buffers come back zero-filled (massage ORs bits in);
    /// gather spares, oids and offsets are sized by their users. All
    /// growth happens here, before the round loop runs.
    pub(crate) fn lease(&mut self, plan: &MassagePlan, n: usize) -> Lease {
        let mut lease = Lease {
            rounds: Vec::with_capacity(plan.rounds.len()),
            spare16: take_pooled(&mut self.pool16),
            spare32: take_pooled(&mut self.pool32),
            spare64: take_pooled(&mut self.pool64),
            oids: take_pooled(&mut self.pool_u32),
            groups: GroupBounds {
                offsets: take_pooled(&mut self.pool_u32),
            },
            spare_offsets: take_pooled(&mut self.pool_u32),
            workers: core::mem::take(&mut self.workers),
        };
        for round in &plan.rounds {
            lease.rounds.push(match round.bank {
                Bank::B16 => RoundKeys::B16(zero_filled(take_pooled(&mut self.pool16), n)),
                Bank::B32 => RoundKeys::B32(zero_filled(take_pooled(&mut self.pool32), n)),
                Bank::B64 => RoundKeys::B64(zero_filled(take_pooled(&mut self.pool64), n)),
            });
        }
        // Pre-size the lookup spares for the banks that will gather
        // (rounds after the first) and the refine destinations, so the
        // round loop itself never grows anything. Spares come back full
        // from the ping-pong and `reserve` counts from len: clear first.
        lease.spare16.clear();
        lease.spare32.clear();
        lease.spare64.clear();
        for round in plan.rounds.iter().skip(1) {
            match round.bank {
                Bank::B16 => lease.spare16.reserve(n),
                Bank::B32 => lease.spare32.reserve(n),
                Bank::B64 => lease.spare64.reserve(n),
            }
        }
        // All three u32 buffers get the same n+1 reservation: they come
        // from one pool and swap roles across executions (oids vs group
        // offsets), and a uniform capacity keeps that rotation growth-free.
        // Clear before reserving — `reserve` counts from the current len,
        // and pooled buffers come back full.
        lease.oids.clear();
        lease.oids.reserve(n + 1);
        lease.oids.extend(0..n as u32);
        lease.groups.offsets.clear();
        lease.groups.offsets.reserve(n + 1);
        lease.groups.offsets.push(0);
        lease.groups.offsets.push(n as u32);
        lease.spare_offsets.clear();
        lease.spare_offsets.reserve(n + 1);
        lease
    }

    /// Move a lease's buffers back and account the execution.
    ///
    /// Safe after a failed execution too: contents are garbage but every
    /// later lease overwrites what it reads.
    pub(crate) fn restore(&mut self, lease: Lease) {
        for keys in lease.rounds {
            match keys {
                RoundKeys::B16(v) => self.pool16.push(v),
                RoundKeys::B32(v) => self.pool32.push(v),
                RoundKeys::B64(v) => self.pool64.push(v),
            }
        }
        self.pool16.push(lease.spare16);
        self.pool32.push(lease.spare32);
        self.pool64.push(lease.spare64);
        self.pool_u32.push(lease.oids);
        self.pool_u32.push(lease.groups.offsets);
        self.pool_u32.push(lease.spare_offsets);
        self.workers = lease.workers;

        let bytes = self.bytes() as u64;
        if bytes > self.stats.bytes_peak {
            self.stats.bytes_peak = bytes;
            self.stats.grows += 1;
        } else {
            self.stats.reuses += 1;
        }
    }

    /// Counter deltas since the last call (for monotone telemetry
    /// counters): `(grows, reuses, bytes_peak_growth)`.
    pub(crate) fn take_counter_deltas(&mut self) -> (u64, u64, u64) {
        let d = (
            self.stats.grows - self.reported.grows,
            self.stats.reuses - self.reported.reuses,
            self.stats.bytes_peak - self.reported.bytes_peak,
        );
        self.reported = self.stats;
        d
    }
}

fn zero_filled<T: Copy + Default>(mut v: Vec<T>, n: usize) -> Vec<T> {
    v.clear();
    v.resize(n, T::default());
    v
}

/// Estimated resident bytes of executing `plan` over `n` rows in memory:
/// what the [`ExecArena`]'s internal lease sizes (round-key buffers, gather spares, the
/// three u32 oid/offset buffers) plus one worker's segmented-sort scratch
/// (ping-pong key/oid/code pairs in the plan's widest bank). Linear and
/// monotone in `n`, so the out-of-core path can both test a budget
/// (`footprint(n) > budget`?) and invert it into a chunk row count.
/// An estimate, not an exact high-water mark: the documented slack is
/// asserted by `tests/memory_budget.rs`.
pub fn lease_footprint_bytes(plan: &MassagePlan, n: usize) -> usize {
    let bank_bytes = |b: Bank| b.bits() as usize / 8;
    let mut total = 0usize;
    let mut widest = 0usize;
    for round in &plan.rounds {
        total += n * bank_bytes(round.bank);
        widest = widest.max(bank_bytes(round.bank));
    }
    // Gather spares: one per distinct bank appearing after round 1.
    let mut spare = [false; 3];
    for round in plan.rounds.iter().skip(1) {
        let i = match round.bank {
            Bank::B16 => 0,
            Bank::B32 => 1,
            Bank::B64 => 2,
        };
        spare[i] = true;
    }
    for (i, used) in spare.iter().enumerate() {
        if *used {
            total += n * [2usize, 4, 8][i];
        }
    }
    // oids + group offsets + spare offsets.
    total += 3 * (n + 1) * core::mem::size_of::<u32>();
    // Segmented-sort scratch: ping-pong keys in the widest bank plus the
    // oid and OVC-code pairs (4 bytes each, two buffers each).
    total += n * 2 * widest + n * 16;
    total
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn lease_restore_roundtrip_keeps_capacity() {
        let mut arena = ExecArena::new();
        let plan = MassagePlan::from_widths(&[10, 20, 40]);
        let lease = arena.lease(&plan, 1000);
        assert_eq!(lease.rounds.len(), 3);
        assert_eq!(lease.oids.len(), 1000);
        assert!(matches!(lease.rounds[0], RoundKeys::B16(_)));
        assert!(matches!(lease.rounds[1], RoundKeys::B32(_)));
        assert!(matches!(lease.rounds[2], RoundKeys::B64(_)));
        arena.restore(lease);
        let stats = arena.stats();
        assert_eq!(stats.grows, 1);
        assert_eq!(stats.reuses, 0);
        assert!(stats.bytes_peak > 0);

        // Same shape again: pure reuse, no growth.
        let lease = arena.lease(&plan, 1000);
        arena.restore(lease);
        let stats = arena.stats();
        assert_eq!(stats.grows, 1);
        assert_eq!(stats.reuses, 1);

        // A smaller instance also reuses (capacity kept on shrink).
        let lease = arena.lease(&MassagePlan::from_widths(&[12]), 10);
        arena.restore(lease);
        assert_eq!(arena.stats().reuses, 2);
    }

    #[test]
    fn counter_deltas_are_monotone_and_reset() {
        let mut arena = ExecArena::new();
        let plan = MassagePlan::from_widths(&[30]);
        for _ in 0..3 {
            let lease = arena.lease(&plan, 100);
            arena.restore(lease);
        }
        let (grows, reuses, peak) = arena.take_counter_deltas();
        assert_eq!(grows, 1);
        assert_eq!(reuses, 2);
        assert!(peak > 0);
        let (grows, reuses, peak) = arena.take_counter_deltas();
        assert_eq!((grows, reuses, peak), (0, 0, 0));
    }
}
