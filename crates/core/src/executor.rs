//! The multi-column sort executor.
//!
//! Runs a [`MassagePlan`] over a set of sort-key columns, reproducing the
//! paper's execution structure (Figure 2): massage → per round
//! (lookup-permute → segmented SIMD-sort → boundary scan), with per-phase
//! timings matching the cost model's `T_massage` / `T_lookup` / `T_sort` /
//! `T_scan` decomposition.

use std::time::Instant;

use mcs_cancel::CancelCause;
use mcs_columnar::CodeVec;
use mcs_simd_sort::{
    for_each_chunk, sort_pairs_in_groups_parallel_scratch, GroupBounds, MergeCounters,
    MorselCounts, PhaseTimes, SegmentedSortStats, SortConfig, WorkerPanic, WorkerScratch,
    DEFAULT_PARALLEL_CUTOFF_ROWS,
};
use mcs_telemetry as telemetry;

use crate::arena::{ArenaStats, ExecArena, Lease};
use crate::massage::{massage_into_cancellable, width_mask, RoundKeys, SendPtr};
use crate::plan::{MassagePlan, PlanError, SortSpec};

/// Why a [`multi_column_sort`] invocation was rejected before running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// The massage plan fails [`MassagePlan::validate`] for the given
    /// total key width.
    InvalidPlan(PlanError),
    /// `inputs` and `specs` have different lengths.
    ColumnCountMismatch {
        /// Number of input columns.
        inputs: usize,
        /// Number of sort specs.
        specs: usize,
    },
    /// No sort columns were given.
    NoColumns,
    /// The row count does not fit the u32 oid space
    /// (`u32::MAX` is reserved as the padding sentinel).
    TooManyRows(usize),
    /// A parallel-sort worker thread panicked mid-round. The panic was
    /// contained at the thread boundary; the output buffers were
    /// discarded.
    WorkerPanicked {
        /// Round (0-based) whose sort lost a worker.
        round: usize,
        /// Chunk index of the dead worker within that round.
        chunk: usize,
    },
    /// A fault-injection point fired (chaos testing only; carries the
    /// fault-point name from [`mcs_faults::points`]).
    Injected(&'static str),
    /// Spilling sorted runs to disk (or reading them back during the
    /// external merge) failed. Raised only by the out-of-core path of
    /// `mcs-extsort`; the engine's degradation ladder retries the sort
    /// fully in memory. `io::Error` is not `Eq`/`Clone`, so the message
    /// is carried as text.
    Spill(String),
    /// The query's [`CancelToken`](mcs_cancel::CancelToken) fired —
    /// manual cancel or an elapsed deadline — while the sort was running.
    /// The arena was restored and all spilled run files deleted;
    /// deliberately *not* recoverable by the degradation ladder (a
    /// cancelled query must never re-run its work).
    Cancelled(CancelCause),
}

impl core::fmt::Display for SortError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SortError::InvalidPlan(e) => write!(f, "invalid massage plan: {e}"),
            SortError::ColumnCountMismatch { inputs, specs } => {
                write!(f, "{inputs} input columns but {specs} sort specs")
            }
            SortError::NoColumns => write!(f, "need at least one sort column"),
            SortError::TooManyRows(n) => {
                write!(f, "{n} rows exceed the u32 oid space")
            }
            SortError::WorkerPanicked { round, chunk } => {
                write!(f, "sort worker panicked in round {round}, chunk {chunk}")
            }
            SortError::Injected(name) => write!(f, "injected fault: {name}"),
            SortError::Spill(msg) => write!(f, "run spill failed: {msg}"),
            SortError::Cancelled(cause) => write!(f, "sort {cause}"),
        }
    }
}

impl std::error::Error for SortError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SortError::InvalidPlan(e) => Some(e),
            SortError::Cancelled(c) => Some(c),
            _ => None,
        }
    }
}

impl From<PlanError> for SortError {
    fn from(e: PlanError) -> Self {
        SortError::InvalidPlan(e)
    }
}

impl From<CancelCause> for SortError {
    fn from(c: CancelCause) -> Self {
        SortError::Cancelled(c)
    }
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// SIMD-sort tuning.
    pub sort: SortConfig,
    /// Worker threads (1 = serial).
    pub threads: usize,
    /// Whether the final grouping (ties on all keys) must be produced —
    /// needed by GROUP BY / PARTITION BY, skippable for pure ORDER BY.
    pub want_final_groups: bool,
    /// Optional heap-allocation counter probe (e.g. the count of
    /// allocations on the current thread). When set, the executor samples
    /// it immediately before and after the round loop and reports the
    /// difference in [`ExecStats::round_loop_allocs`] — the allocation
    /// budget the [`ExecArena`] is designed to drive to zero when warm.
    pub alloc_probe: Option<fn() -> u64>,
    /// Resident-memory budget for one sort, in bytes. `None` (the
    /// default) keeps today's in-memory path unchanged. When set, callers
    /// that support spilling (the engine, via `mcs-extsort`) switch to
    /// the out-of-core chunk/spill/merge path whenever the leased
    /// footprint ([`crate::lease_footprint_bytes`]) would exceed the
    /// budget. The core executor itself never spills: the field lives
    /// here so one `ExecConfig` describes the whole execution contract.
    pub memory_budget_bytes: Option<usize>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            sort: SortConfig::default(),
            threads: 1,
            want_final_groups: true,
            alloc_probe: None,
            memory_budget_bytes: None,
        }
    }
}

/// Per-round telemetry (Figure 4b's `N_sort`, `N_group`, `N̄_code`).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundStats {
    /// ns spent permuting this round's keys by the incoming oid order.
    pub lookup_ns: u64,
    /// ns spent in the segmented SIMD sort.
    pub sort_ns: u64,
    /// ns spent scanning for refined group boundaries.
    pub scan_ns: u64,
    /// SIMD-sort invocations (`N_sort`: groups with > 1 row).
    pub invocations: usize,
    /// Codes actually sorted this round.
    pub codes_sorted: usize,
    /// Groups fed into this round.
    pub groups_in: usize,
    /// Groups after this round's refinement (`N_group`).
    pub groups_out: usize,
    /// Largest group fed to this round's segmented sort.
    pub max_group: usize,
    /// Merge-sort sub-phase times (in-register / in-cache / multiway),
    /// summed over this round's SIMD-sort invocations. All zero unless
    /// the `phase-timing` feature of `mcs-simd-sort` is enabled.
    pub phases: PhaseTimes,
    /// Loser-tree comparison counters of this round's out-of-cache merge
    /// passes: total matches and the subset short-circuited by
    /// offset-value codes (always counted, independent of features).
    pub merge: MergeCounters,
    /// Work-stealing scheduler counters summed over this round's phases
    /// (lookup gather + segmented sort + boundary scan); all zero at
    /// `threads == 1` or below the parallel cutoff.
    pub morsels: MorselCounts,
}

/// Whole-execution telemetry.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// ns spent massaging (0 for identity plans on all-ASC columns).
    pub massage_ns: u64,
    /// Per-round statistics.
    pub rounds: Vec<RoundStats>,
    /// End-to-end ns.
    pub total_ns: u64,
    /// Heap allocations observed across the round loop, when
    /// [`ExecConfig::alloc_probe`] was set (`Some(0)` on a warm
    /// [`ExecArena`] with `threads == 1`).
    pub round_loop_allocs: Option<u64>,
    /// Reuse counters of the [`ExecArena`] that served this execution;
    /// default (all-zero) for arena-less [`multi_column_sort`] calls.
    pub arena: ArenaStats,
    /// Work-stealing scheduler counters of the massage phase (the round
    /// phases report theirs in [`RoundStats::morsels`]).
    pub massage_morsels: MorselCounts,
}

impl ExecStats {
    /// Sum of sort times across rounds.
    pub fn sort_ns(&self) -> u64 {
        self.rounds.iter().map(|r| r.sort_ns).sum()
    }

    /// Sum of lookup times across rounds.
    pub fn lookup_ns(&self) -> u64 {
        self.rounds.iter().map(|r| r.lookup_ns).sum()
    }

    /// Sum of scan times across rounds.
    pub fn scan_ns(&self) -> u64 {
        self.rounds.iter().map(|r| r.scan_ns).sum()
    }

    /// Morsel scheduler counters summed over the whole execution
    /// (massage + every round's gather/sort/scan).
    pub fn morsel_counts(&self) -> MorselCounts {
        let mut total = self.massage_morsels;
        for r in &self.rounds {
            total.add(r.morsels);
        }
        total
    }
}

/// Result of a multi-column sort.
#[derive(Debug, Clone)]
pub struct MultiColumnSortOutput {
    /// Rearranged object identifiers: position `p` holds original row
    /// `oids[p]`; this is the "ordered list of object identifiers" whose
    /// validity Lemma 1 guarantees.
    pub oids: Vec<u32>,
    /// Grouping by ties on all sort keys (trivial single group if
    /// `want_final_groups` was false).
    pub groups: GroupBounds,
    /// Telemetry.
    pub stats: ExecStats,
}

/// Permute `src` by `oids` into `dst` — allocation-free when `dst` has
/// capacity (the arena ping-pongs `dst` with the round buffer, so after
/// the first execution it always does).
fn gather_into<T: Copy>(src: &[T], oids: &[u32], dst: &mut Vec<T>) {
    debug_assert_eq!(src.len(), oids.len());
    dst.clear();
    dst.extend(oids.iter().map(|&o| src[o as usize]));
}

/// Morsel-driven [`gather_into`]: workers pull row-range morsels and
/// write disjoint slices of `dst`. Falls back to the serial gather (and
/// its exact allocation behavior) at `threads == 1` or below the
/// parallel cutoff. Returns the scheduler counters.
fn gather_into_morsels<T: Copy + Default + Send + Sync>(
    src: &[T],
    oids: &[u32],
    dst: &mut Vec<T>,
    threads: usize,
) -> MorselCounts {
    debug_assert_eq!(src.len(), oids.len());
    let n = oids.len();
    if threads <= 1 || n < DEFAULT_PARALLEL_CUTOFF_ROWS {
        gather_into(src, oids, dst);
        return MorselCounts::default();
    }
    dst.clear();
    dst.resize(n, T::default());
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    for_each_chunk(n, threads, |_, start, len| {
        #[allow(clippy::redundant_locals)]
        let dst_ptr = dst_ptr;
        for (i, &o) in oids[start..start + len].iter().enumerate() {
            // SAFETY: row-range morsels tile `0..n` disjointly, so each
            // destination index is written by exactly one worker.
            unsafe {
                *dst_ptr.0.add(start + i) = src[o as usize];
            }
        }
    })
}

/// Morsel-driven boundary scan: equivalent to [`GroupBounds::refine_into`]
/// but with the key scan pulled as row-range morsels.
///
/// Position `i` (`0 < i < n`) is a refined boundary iff it is an existing
/// group boundary or the sorted keys differ across it — a per-position
/// predicate, so each morsel scans its range independently (walking the
/// overlapping window of `offsets` alongside) and the per-morsel boundary
/// lists concatenate in morsel order. Produces offsets byte-identical to
/// the serial scan. Returns the scheduler counters.
fn refine_into_morsels<K: mcs_simd_sort::Key>(
    keys: &[K],
    offsets: &[u32],
    out: &mut Vec<u32>,
    threads: usize,
) -> MorselCounts {
    let n = keys.len();
    let parts: std::sync::Mutex<Vec<(usize, Vec<u32>)>> = std::sync::Mutex::new(Vec::new());
    let counts = for_each_chunk(n, threads, |_, start, len| {
        let mut local: Vec<u32> = Vec::new();
        let from = start.max(1);
        // First offset >= `from`; duplicates (empty groups) are skipped
        // in the walk below, matching the serial scan's dedup.
        let mut p = offsets.partition_point(|&b| (b as usize) < from);
        for i in from..start + len {
            while p < offsets.len() && (offsets[p] as usize) < i {
                p += 1;
            }
            if p < offsets.len() && offsets[p] as usize == i {
                local.push(i as u32);
                while p < offsets.len() && offsets[p] as usize == i {
                    p += 1;
                }
            } else if keys[i] != keys[i - 1] {
                local.push(i as u32);
            }
        }
        parts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((start, local));
    });
    let mut parts = parts.into_inner().unwrap_or_else(|e| e.into_inner());
    parts.sort_unstable_by_key(|&(start, _)| start);
    out.clear();
    out.push(0);
    for (_, local) in &parts {
        out.extend_from_slice(local);
    }
    if n > 0 {
        out.push(n as u32);
    } else {
        out.push(0);
    }
    counts
}

fn sort_round(
    keys: &mut RoundKeys,
    oids: &mut [u32],
    groups: &GroupBounds,
    cfg: &ExecConfig,
    scratch: &mut WorkerScratch,
) -> Result<SegmentedSortStats, WorkerPanic> {
    macro_rules! go {
        ($v:expr) => {
            sort_pairs_in_groups_parallel_scratch($v, oids, groups, cfg.threads, &cfg.sort, scratch)
        };
    }
    match keys {
        RoundKeys::B16(v) => go!(v),
        RoundKeys::B32(v) => go!(v),
        RoundKeys::B64(v) => go!(v),
    }
}

/// Refine `groups` in place by the sorted `keys`, using `spare` as the
/// write destination (swapped in afterwards). At `threads == 1` or below
/// the parallel cutoff the serial (allocation-free on a warm `spare`)
/// scan runs; otherwise the morsel-driven scan. Returns the scheduler
/// counters.
fn refine_groups_into(
    groups: &mut GroupBounds,
    keys: &RoundKeys,
    spare: &mut Vec<u32>,
    threads: usize,
) -> MorselCounts {
    let n = match keys {
        RoundKeys::B16(v) => v.len(),
        RoundKeys::B32(v) => v.len(),
        RoundKeys::B64(v) => v.len(),
    };
    let counts = if threads <= 1 || n < DEFAULT_PARALLEL_CUTOFF_ROWS {
        match keys {
            RoundKeys::B16(v) => groups.refine_into(v, spare),
            RoundKeys::B32(v) => groups.refine_into(v, spare),
            RoundKeys::B64(v) => groups.refine_into(v, spare),
        }
        MorselCounts::default()
    } else {
        match keys {
            RoundKeys::B16(v) => refine_into_morsels(v, &groups.offsets, spare, threads),
            RoundKeys::B32(v) => refine_into_morsels(v, &groups.offsets, spare, threads),
            RoundKeys::B64(v) => refine_into_morsels(v, &groups.offsets, spare, threads),
        }
    };
    core::mem::swap(&mut groups.offsets, spare);
    counts
}

/// Execute a multi-column sort of `inputs` (one column per [`SortSpec`])
/// under `plan`.
///
/// Returns the permutation of object identifiers and (optionally) the
/// final grouping. The permutation satisfies the `ORDER BY` comparator
/// `t_a ≺ t_b` of §3 for every pair of consecutive output positions; by
/// Lemma 1 this holds for *any* valid massage plan.
///
/// Fails with a [`SortError`] (instead of running or panicking) when the
/// plan does not cover the concatenated key width or the inputs are
/// malformed.
pub fn multi_column_sort(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    cfg: &ExecConfig,
) -> Result<MultiColumnSortOutput, SortError> {
    let mut arena = ExecArena::new();
    sort_impl(inputs, specs, plan, cfg, &mut arena, false)
}

/// Like [`multi_column_sort`], but drawing all working memory — round-key
/// buffers, gather spares, the oid permutation, group offsets, and the
/// SIMD merge-sort scratch — from `arena`.
///
/// The arena grows monotonically to the high-water mark of the
/// executions it has served, so repeated calls (a session replaying a
/// prepared query) run the whole round loop without heap allocation when
/// `cfg.threads == 1`. The arena is restored on every exit path,
/// including injected faults and worker panics, so a failed execution
/// never poisons it. [`ExecStats::arena`] carries its reuse counters.
pub fn multi_column_sort_with(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    cfg: &ExecConfig,
    arena: &mut ExecArena,
) -> Result<MultiColumnSortOutput, SortError> {
    sort_impl(inputs, specs, plan, cfg, arena, true)
}

fn sort_impl(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    cfg: &ExecConfig,
    arena: &mut ExecArena,
    external_arena: bool,
) -> Result<MultiColumnSortOutput, SortError> {
    if inputs.len() != specs.len() {
        return Err(SortError::ColumnCountMismatch {
            inputs: inputs.len(),
            specs: specs.len(),
        });
    }
    if inputs.is_empty() {
        return Err(SortError::NoColumns);
    }
    let total_width: u32 = specs.iter().map(|s| s.width).sum();
    plan.validate(total_width)?;
    let n = inputs[0].len();
    if n >= u32::MAX as usize {
        return Err(SortError::TooManyRows(n));
    }

    // Entry check: an already-fired token (e.g. an expired deadline)
    // returns before any phase runs — no lease is taken, nothing to undo.
    cfg.sort.cancel.check()?;

    let t0 = Instant::now();
    let mut stats = ExecStats::default();
    stats.rounds.reserve_exact(plan.rounds.len());

    let mut lease = arena.lease(plan, n);

    // Step 1: massage (Figure 2b step 1), emitted straight into the
    // leased bank-native round buffers. Identity plans on ascending
    // columns still materialize round keys, but we charge that to lookup
    // semantics of round 1 rather than massage, matching the paper's P_0
    // (which has no massage phase).
    mcs_faults::delay_point(mcs_faults::points::EXEC_DELAY_MASSAGE);
    let tm = Instant::now();
    let (prog, massage_morsels) = massage_into_cancellable(
        inputs,
        specs,
        plan,
        cfg.threads,
        &mut lease.rounds,
        &cfg.sort.cancel,
    );
    stats.massage_morsels = massage_morsels;
    let massage_elapsed = tm.elapsed().as_nanos() as u64;
    stats.massage_ns = if prog.is_identity() {
        0
    } else {
        massage_elapsed
    };
    if telemetry::is_enabled() {
        telemetry::record_span(
            "mcs.massage",
            stats.massage_ns,
            vec![
                ("rows", n.into()),
                ("rounds", plan.rounds.len().into()),
                ("identity", prog.is_identity().into()),
                ("plan", plan.notation().into()),
            ],
        );
    }

    // The round loop proper, bracketed by the allocation probe: on a warm
    // arena with `threads == 1` this window performs zero heap
    // allocations (telemetry emission is deferred below for that reason).
    let before = cfg.alloc_probe.map(|p| p());
    // Phase boundary: a token fired during massage left partially
    // massaged round buffers — skip the rounds and unwind through the
    // arena restore below.
    let result = match cfg.sort.cancel.check() {
        Err(cause) => Err(SortError::Cancelled(cause)),
        Ok(()) => run_rounds(cfg, &mut lease, &mut stats),
    };
    if let (Some(p), Some(b)) = (cfg.alloc_probe, before) {
        stats.round_loop_allocs = Some(p() - b);
    }

    // Deferred per-round telemetry: span emission allocates attribute
    // vectors, so it happens outside the audited loop, replayed from the
    // accumulated RoundStats. Rounds completed before a failure still
    // get their spans; the whole-sort counters only count successes.
    if telemetry::is_enabled() {
        let last = plan.rounds.len() - 1;
        for (k, rs) in stats.rounds.iter().enumerate() {
            record_round_spans(k, &plan.rounds[k], rs, k < last || cfg.want_final_groups);
            telemetry::histogram_record("mcs.round.max_group", rs.max_group as u64);
        }
        if result.is_ok() {
            telemetry::counter_add("mcs.sorts", 1);
            telemetry::counter_add("mcs.rounds", stats.rounds.len() as u64);
        }
        let m = stats.morsel_counts();
        for (name, delta) in [
            ("exec.morsel.dispatched", m.dispatched),
            ("exec.morsel.stolen", m.stolen),
            ("exec.morsel.split", m.split),
        ] {
            if delta > 0 {
                telemetry::counter_add(name, delta);
            }
        }
    }

    // Clone the outputs out of the lease, then restore the arena — on
    // the error path too, so a failed round never poisons it.
    let out_data = result.map(|()| (lease.oids.clone(), lease.groups.clone()));
    arena.restore(lease);
    if external_arena {
        stats.arena = arena.stats();
        if telemetry::is_enabled() {
            let (grows, reuses, peak_growth) = arena.take_counter_deltas();
            for (name, delta) in [
                ("exec.arena.grow", grows),
                ("exec.arena.reuse", reuses),
                ("exec.arena.bytes_peak", peak_growth),
            ] {
                if delta > 0 {
                    telemetry::counter_add(name, delta);
                }
            }
        }
    }

    let (oids, groups) = out_data?;
    stats.total_ns = t0.elapsed().as_nanos() as u64;
    Ok(MultiColumnSortOutput {
        oids,
        groups,
        stats,
    })
}

/// The per-round pipeline (Figure 2a): lookup-permute → segmented SIMD
/// sort → boundary scan, entirely on leased buffers. Allocation-free on
/// a warm lease when `cfg.threads == 1`.
fn run_rounds(cfg: &ExecConfig, lease: &mut Lease, stats: &mut ExecStats) -> Result<(), SortError> {
    let Lease {
        rounds,
        spare16,
        spare32,
        spare64,
        oids,
        groups,
        spare_offsets,
        workers,
    } = lease;
    let last = rounds.len() - 1;

    for (k, keys) in rounds.iter_mut().enumerate() {
        // Round boundary: bail before permuting or sorting this round.
        mcs_faults::delay_point(mcs_faults::points::EXEC_DELAY_ROUND);
        cfg.sort.cancel.check()?;
        let mut rs = RoundStats {
            groups_in: groups.num_groups(),
            ..RoundStats::default()
        };

        // Lookup: permute this round's keys by the current order
        // (Figure 2a step 2a), ping-ponging with the bank's spare
        // buffer. Round 1 is already in row order.
        if k > 0 {
            let tl = Instant::now();
            match keys {
                RoundKeys::B16(v) => {
                    rs.morsels
                        .add(gather_into_morsels(v, oids, spare16, cfg.threads));
                    core::mem::swap(v, spare16);
                }
                RoundKeys::B32(v) => {
                    rs.morsels
                        .add(gather_into_morsels(v, oids, spare32, cfg.threads));
                    core::mem::swap(v, spare32);
                }
                RoundKeys::B64(v) => {
                    rs.morsels
                        .add(gather_into_morsels(v, oids, spare64, cfg.threads));
                    core::mem::swap(v, spare64);
                }
            }
            rs.lookup_ns = tl.elapsed().as_nanos() as u64;
        }

        // Segmented SIMD sort (steps 1/3).
        if mcs_faults::fault_point!(mcs_faults::points::CORE_ROUND_SORT) {
            return Err(SortError::Injected(mcs_faults::points::CORE_ROUND_SORT));
        }
        let ts = Instant::now();
        let sstats = sort_round(keys, oids, groups, cfg, workers).map_err(|p| {
            SortError::WorkerPanicked {
                round: k,
                chunk: p.chunk,
            }
        })?;
        // A token fired inside the segmented sort made it exit early with
        // partially sorted keys; surface the cancellation before the scan
        // reads (and canonicalize publishes) that garbage.
        cfg.sort.cancel.check()?;
        rs.sort_ns = ts.elapsed().as_nanos() as u64;
        rs.invocations = sstats.invocations;
        rs.codes_sorted = sstats.codes_sorted;
        rs.max_group = sstats.max_group;
        rs.phases = sstats.phases;
        rs.merge = sstats.merge;
        rs.morsels.add(sstats.morsels);

        // Scan for refined boundaries (step 2b); skipped after the last
        // round unless the caller needs the final grouping.
        if k < last || cfg.want_final_groups {
            let tc = Instant::now();
            rs.morsels
                .add(refine_groups_into(groups, keys, spare_offsets, cfg.threads));
            rs.scan_ns = tc.elapsed().as_nanos() as u64;
        }
        rs.groups_out = groups.num_groups();
        stats.rounds.push(rs);
    }

    // Canonicalize ties: the SIMD sorting networks are not stable, so
    // rows equal on the full key come out in an arbitrary order that
    // varies with the plan, the thread count, and (out-of-core) the
    // chunking. Restoring row order within each tie group makes every
    // execution strategy — any valid plan, any thread count, the scalar
    // fallback, and the external spill path — emit byte-identical
    // output, which is what the differential oracle asserts. Allocation
    // free: `sort_unstable` on `u32` sub-slices sorts in place.
    match &rounds[last] {
        RoundKeys::B16(v) => canonicalize_ties(v, oids, groups),
        RoundKeys::B32(v) => canonicalize_ties(v, oids, groups),
        RoundKeys::B64(v) => canonicalize_ties(v, oids, groups),
    }
    Ok(())
}

/// Sort oids ascending within every maximal run of equal last-round keys
/// inside each group. Entering this function, `groups` refines the key
/// prefix of all rounds before the last, so rows with equal `keys` within
/// one group are exactly the ties on the full concatenated key (when the
/// final scan already ran, each group is itself one such run).
fn canonicalize_ties<K: mcs_simd_sort::Key>(keys: &[K], oids: &mut [u32], groups: &GroupBounds) {
    for g in groups.iter() {
        let mut i = g.start;
        while i < g.end {
            let k = keys[i].to_u64();
            let mut j = i + 1;
            while j < g.end && keys[j].to_u64() == k {
                j += 1;
            }
            if j - i > 1 {
                oids[i..j].sort_unstable();
            }
            i = j;
        }
    }
}

/// Emit the per-round telemetry spans: one lookup span (rounds after the
/// first), one sort span with its three merge-sort sub-phase spans, and
/// one boundary-scan span when the scan ran. Aggregated per round — the
/// segmented sort may cover thousands of groups, so spans are recorded
/// from the already-measured [`RoundStats`] rather than per group.
fn record_round_spans(k: usize, round: &crate::plan::Round, rs: &RoundStats, scanned: bool) {
    let base = |rs: &RoundStats| {
        vec![
            ("round", k.into()),
            ("width", round.width.into()),
            ("bank", u64::from(round.bank.bits()).into()),
            ("groups_in", rs.groups_in.into()),
        ]
    };
    if k > 0 {
        telemetry::record_span("mcs.round.lookup", rs.lookup_ns, base(rs));
    }
    let mut sort_attrs = base(rs);
    sort_attrs.push(("invocations", rs.invocations.into()));
    sort_attrs.push(("codes_sorted", rs.codes_sorted.into()));
    telemetry::record_span("mcs.round.sort", rs.sort_ns, sort_attrs);
    for (name, ns) in [
        ("mcs.round.sort.in_register", rs.phases.in_register_ns),
        ("mcs.round.sort.in_cache_merge", rs.phases.in_cache_merge_ns),
    ] {
        telemetry::record_span(name, ns, vec![("round", k.into())]);
    }
    telemetry::record_span(
        "mcs.round.sort.multiway_merge",
        rs.phases.multiway_merge_ns,
        vec![
            ("round", k.into()),
            ("comparisons", rs.merge.comparisons.into()),
            ("ovc_hits", rs.merge.ovc_hits.into()),
        ],
    );
    if scanned {
        let mut scan_attrs = base(rs);
        scan_attrs.push(("groups_out", rs.groups_out.into()));
        telemetry::record_span("mcs.round.scan", rs.scan_ns, scan_attrs);
    }
}

/// The §3 `ORDER BY` comparator: `a ≺ b` over the raw input columns.
/// Used by tests and the exhaustive plan-search oracle.
pub fn tuple_cmp(inputs: &[&CodeVec], specs: &[SortSpec], a: u32, b: u32) -> core::cmp::Ordering {
    for (c, s) in inputs.iter().zip(specs) {
        let mut va = c.get(a as usize);
        let mut vb = c.get(b as usize);
        if s.descending {
            va ^= width_mask(s.width);
            vb ^= width_mask(s.width);
        }
        match va.cmp(&vb) {
            core::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    core::cmp::Ordering::Equal
}

/// Assert that `out` is a correct result for the given sort instance:
/// oids form a permutation, consecutive tuples are non-decreasing under
/// the ORDER BY comparator, and (if present) groups partition exactly the
/// tie ranges. Panics with diagnostics otherwise. Test/verification aid.
pub fn verify_sorted(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    out: &MultiColumnSortOutput,
    check_groups: bool,
) {
    let n = inputs[0].len();
    assert_eq!(out.oids.len(), n);
    let mut seen = vec![false; n];
    for &o in &out.oids {
        assert!(!seen[o as usize], "oid {o} repeated");
        seen[o as usize] = true;
    }
    for w in out.oids.windows(2) {
        let ord = tuple_cmp(inputs, specs, w[0], w[1]);
        assert_ne!(
            ord,
            core::cmp::Ordering::Greater,
            "tuples out of order: {} before {}",
            w[0],
            w[1]
        );
    }
    if check_groups {
        assert_eq!(out.groups.num_rows(), n);
        for r in out.groups.iter() {
            // All rows within a group tie on every key.
            for i in r.start + 1..r.end {
                assert_eq!(
                    tuple_cmp(inputs, specs, out.oids[r.start], out.oids[i]),
                    core::cmp::Ordering::Equal,
                    "non-tied rows grouped"
                );
            }
            // Adjacent groups differ.
            if r.end < n {
                assert_ne!(
                    tuple_cmp(inputs, specs, out.oids[r.end - 1], out.oids[r.end]),
                    core::cmp::Ordering::Equal,
                    "tie split across groups"
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn col(width: u32, vals: &[u64]) -> CodeVec {
        CodeVec::from_u64s(width, vals.iter().copied())
    }

    /// Deterministic xorshift so parity tests need no external RNG.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn morsel_refine_matches_serial_scan() {
        // Sorted-within-groups keys with plenty of duplicates, so both
        // existing boundaries and key-change boundaries are exercised.
        let n = 20_000;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut offsets = vec![0u32];
        let mut pos = 0usize;
        while pos < n {
            pos = (pos + 1 + (xorshift(&mut state) as usize % 512)).min(n);
            offsets.push(pos as u32);
        }
        let mut keys = vec![0u32; n];
        for w in offsets.windows(2) {
            let (s, e) = (w[0] as usize, w[1] as usize);
            for k in keys[s..e].iter_mut() {
                *k = (xorshift(&mut state) % 7) as u32;
            }
            keys[s..e].sort_unstable();
        }
        let groups = GroupBounds {
            offsets: offsets.clone(),
        };
        let mut serial = Vec::new();
        groups.refine_into(&keys, &mut serial);
        for threads in [2, 4, 8] {
            let mut par = Vec::new();
            let counts = refine_into_morsels(&keys, &offsets, &mut par, threads);
            assert_eq!(par, serial, "threads={threads}");
            assert!(counts.dispatched > 0, "threads={threads}");
        }
        // Degenerate empty input still yields the [0, 0] sentinel pair.
        let mut empty = Vec::new();
        refine_into_morsels::<u32>(&[], &[0], &mut empty, 4);
        assert_eq!(empty, vec![0, 0]);
    }

    #[test]
    fn morsel_gather_matches_serial_gather() {
        let n = 10_000;
        let mut state = 0xdeadbeefcafef00du64;
        let src: Vec<u64> = (0..n).map(|_| xorshift(&mut state)).collect();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        // Deterministic shuffle via sort by hash.
        oids.sort_by_key(|&o| {
            let mut s = o as u64 + 1;
            xorshift(&mut s)
        });
        let mut serial = Vec::new();
        gather_into(&src, &oids, &mut serial);
        for threads in [1, 2, 4] {
            let mut par = Vec::new();
            let counts = gather_into_morsels(&src, &oids, &mut par, threads);
            assert_eq!(par, serial, "threads={threads}");
            if threads == 1 {
                assert!(counts.is_empty());
            } else {
                assert!(counts.dispatched > 0, "threads={threads}");
            }
        }
    }

    #[test]
    fn figure2_query_q1() {
        // nation_name (10-bit), ship_date (17-bit) from Figure 2.
        let nation = col(10, &[1, 0, 1, 0, 1]);
        let ship = col(17, &[1201, 301, 501, 301, 501]);
        let inputs = vec![&nation, &ship];
        let specs = vec![SortSpec::asc(10), SortSpec::asc(17)];

        for plan in [
            MassagePlan::column_at_a_time(&specs), // Figure 2a
            MassagePlan::from_widths(&[27]),       // Figure 2b (stitched)
            MassagePlan::from_widths(&[11, 16]),   // bit borrowing
        ] {
            let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
                .expect("valid sort instance");
            verify_sorted(&inputs, &specs, &out, true);
            // Groups: (0,301)x2, (1,501)x2, (1,1201).
            assert_eq!(out.groups.num_groups(), 3, "plan {plan}");
            let sizes: Vec<usize> = out.groups.iter().map(|r| r.len()).collect();
            assert_eq!(sizes, vec![2, 2, 1]);
        }
    }

    #[test]
    fn all_plans_agree_small_exhaustive() {
        // 6-bit + 5-bit columns, every composition of 11 bits is a plan.
        let n = 200usize;
        let a = col(
            6,
            &(0..n).map(|i| ((i * 37) % 64) as u64).collect::<Vec<_>>(),
        );
        let b = col(
            5,
            &(0..n).map(|i| ((i * 11) % 32) as u64).collect::<Vec<_>>(),
        );
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(6), SortSpec::asc(5)];

        // Reference final grouping from P0.
        let p0 = MassagePlan::column_at_a_time(&specs);
        let ref_out = multi_column_sort(&inputs, &specs, &p0, &ExecConfig::default())
            .expect("valid sort instance");
        verify_sorted(&inputs, &specs, &ref_out, true);

        // All compositions of 11 into <= 4 parts (plus the 11-part one).
        let mut plans: Vec<Vec<u32>> = vec![vec![1; 11]];
        for w1 in 1..=11u32 {
            if w1 == 11 {
                plans.push(vec![11]);
                continue;
            }
            for w2 in 1..=(11 - w1) {
                if w1 + w2 == 11 {
                    plans.push(vec![w1, w2]);
                    continue;
                }
                let w3 = 11 - w1 - w2;
                plans.push(vec![w1, w2, w3]);
            }
        }
        for widths in plans {
            let plan = MassagePlan::from_widths(&widths);
            let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
                .expect("valid sort instance");
            verify_sorted(&inputs, &specs, &out, true);
            // Lemma 1: identical grouping structure regardless of plan.
            assert_eq!(
                out.groups.offsets, ref_out.groups.offsets,
                "plan {widths:?} grouping differs"
            );
        }
    }

    #[test]
    fn figure5_desc_complement() {
        // ORDER BY A ASC, B DESC on Figure 5's input.
        let a = col(3, &[2, 2, 7]);
        let b = col(3, &[5, 1, 4]);
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(3), SortSpec::desc(3)];
        // Stitched plan must complement B first; expected output order is
        // the input order (x, y, z) per the paper.
        let plan = MassagePlan::from_widths(&[6]);
        let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        assert_eq!(out.oids, vec![0, 1, 2]);
        // And the wrong (no-complement) order would have been 1,0,2: check
        // the column-at-a-time plan agrees with the stitched one.
        let p0 = MassagePlan::column_at_a_time(&specs);
        let out0 = multi_column_sort(&inputs, &specs, &p0, &ExecConfig::default())
            .expect("valid sort instance");
        assert_eq!(out0.oids, out.oids);
    }

    #[test]
    fn round_stats_populated() {
        let n = 5000usize;
        let a = col(
            13,
            &(0..n)
                .map(|i| ((i * 2654435761) % 8192) as u64)
                .collect::<Vec<_>>(),
        );
        let b = col(
            17,
            &(0..n)
                .map(|i| ((i * 40503) % 131072) as u64)
                .collect::<Vec<_>>(),
        );
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(13), SortSpec::asc(17)];
        let p0 = MassagePlan::column_at_a_time(&specs);
        let out = multi_column_sort(&inputs, &specs, &p0, &ExecConfig::default())
            .expect("valid sort instance");
        assert_eq!(out.stats.rounds.len(), 2);
        assert_eq!(out.stats.massage_ns, 0, "P0 ascending pays no massage");
        let r2 = &out.stats.rounds[1];
        assert!(r2.groups_in > 1);
        assert!(r2.groups_out >= r2.groups_in);
        assert!(r2.invocations <= r2.groups_in);
        // Massaged plan records massage time.
        let p = MassagePlan::from_widths(&[16, 14]);
        let out2 = multi_column_sort(&inputs, &specs, &p, &ExecConfig::default())
            .expect("valid sort instance");
        assert!(out2.stats.massage_ns > 0);
        verify_sorted(&inputs, &specs, &out2, true);
    }

    #[test]
    fn inconsistent_inputs_return_typed_errors() {
        let a = col(10, &[3, 1, 2]);
        let b = col(17, &[30, 10, 20]);
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(10), SortSpec::asc(17)];
        let cfg = ExecConfig::default();

        // Plan covers 30 bits but the key is 27: width mismatch.
        let short = MassagePlan::from_widths(&[15, 15]);
        let err = multi_column_sort(&inputs, &specs, &short, &cfg).unwrap_err();
        assert_eq!(
            err,
            SortError::InvalidPlan(crate::plan::PlanError::WidthMismatch {
                got: 30,
                expected: 27
            })
        );
        assert!(err.to_string().contains("invalid massage plan"));
        // The error chain surfaces the underlying PlanError.
        assert!(std::error::Error::source(&err).is_some());

        // One spec too few.
        let p0 = MassagePlan::column_at_a_time(&specs);
        let err = multi_column_sort(&inputs, &specs[..1], &p0, &cfg).unwrap_err();
        assert_eq!(
            err,
            SortError::ColumnCountMismatch {
                inputs: 2,
                specs: 1
            }
        );

        // No columns at all.
        let err = multi_column_sort(&[], &[], &p0, &cfg).unwrap_err();
        assert_eq!(err, SortError::NoColumns);
    }

    #[test]
    fn single_column_and_single_row() {
        let a = col(12, &[7]);
        let inputs = vec![&a];
        let specs = vec![SortSpec::asc(12)];
        let p0 = MassagePlan::column_at_a_time(&specs);
        let out = multi_column_sort(&inputs, &specs, &p0, &ExecConfig::default())
            .expect("valid sort instance");
        assert_eq!(out.oids, vec![0]);
        assert_eq!(out.groups.num_groups(), 1);
    }

    #[test]
    fn wide_keys_over_64_bits() {
        // Three columns totalling 90 bits: no single round can hold them.
        let n = 300usize;
        let a = col(
            30,
            &(0..n)
                .map(|i| ((i * 77) % (1 << 30)) as u64)
                .collect::<Vec<_>>(),
        );
        let b = col(
            30,
            &(0..n).map(|i| ((i * 13) % 7) as u64).collect::<Vec<_>>(),
        );
        let c = col(30, &(0..n).map(|i| (i % 3) as u64).collect::<Vec<_>>());
        let inputs = vec![&a, &b, &c];
        let specs = vec![SortSpec::asc(30), SortSpec::asc(30), SortSpec::asc(30)];
        for plan in [
            MassagePlan::column_at_a_time(&specs),
            MassagePlan::from_widths(&[45, 45]),
            MassagePlan::from_widths(&[32, 32, 26]),
            MassagePlan::from_widths(&[64, 26]),
        ] {
            let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
                .expect("valid sort instance");
            verify_sorted(&inputs, &specs, &out, true);
        }
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_round_failure_and_worker_panic_become_typed_errors() {
        use mcs_faults::{points, with_armed, FireMode};
        let n = 20_000usize;
        let a = col(
            11,
            &(0..n).map(|i| ((i * 31) % 2048) as u64).collect::<Vec<_>>(),
        );
        let b = col(
            21,
            &(0..n)
                .map(|i| ((i * 7_919) % (1 << 21)) as u64)
                .collect::<Vec<_>>(),
        );
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(11), SortSpec::asc(21)];
        let plan = MassagePlan::column_at_a_time(&specs);

        // Round-sort fault on the second round.
        with_armed(&[(points::CORE_ROUND_SORT, FireMode::Nth(2))], || {
            let err = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
                .map(|out| out.oids);
            assert_eq!(err, Err(SortError::Injected(points::CORE_ROUND_SORT)));
        });

        // Worker panic in the parallel path surfaces round + chunk.
        with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let err = multi_column_sort(
                &inputs,
                &specs,
                &plan,
                &ExecConfig {
                    threads: 4,
                    ..ExecConfig::default()
                },
            );
            std::panic::set_hook(prev);
            match err {
                Err(SortError::WorkerPanicked { round: 0, .. }) => {}
                other => panic!("expected WorkerPanicked in round 0, got {other:?}"),
            }
        });

        // Disarmed: the identical call succeeds again.
        let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
            .expect("no faults armed");
        verify_sorted(&inputs, &specs, &out, true);
    }

    #[test]
    fn arena_reuse_matches_fresh_and_reports_stats() {
        let n = 8_000usize;
        let a = col(
            13,
            &(0..n)
                .map(|i| ((i * 2654435761) % 8192) as u64)
                .collect::<Vec<_>>(),
        );
        let b = col(
            17,
            &(0..n)
                .map(|i| ((i * 40503) % 131072) as u64)
                .collect::<Vec<_>>(),
        );
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(13), SortSpec::asc(17)];
        let cfg = ExecConfig::default();

        let mut arena = ExecArena::new();
        for plan in [
            MassagePlan::column_at_a_time(&specs),
            MassagePlan::from_widths(&[16, 14]),
            MassagePlan::from_widths(&[30]),
        ] {
            let fresh =
                multi_column_sort(&inputs, &specs, &plan, &cfg).expect("valid sort instance");
            for _ in 0..2 {
                let warm = multi_column_sort_with(&inputs, &specs, &plan, &cfg, &mut arena)
                    .expect("valid sort instance");
                assert_eq!(warm.oids, fresh.oids, "plan {plan}");
                assert_eq!(warm.groups.offsets, fresh.groups.offsets, "plan {plan}");
                assert!(!warm.stats.arena.is_empty());
            }
        }
        let stats = arena.stats();
        assert_eq!(stats.grows + stats.reuses, 6);
        assert!(stats.reuses >= 3, "repeat executions must reuse: {stats:?}");
        assert!(stats.bytes_peak > 0);

        // The arena-less entry point reports default arena stats.
        let plainest = multi_column_sort(
            &inputs,
            &specs,
            &MassagePlan::column_at_a_time(&specs),
            &cfg,
        )
        .expect("valid sort instance");
        assert!(plainest.stats.arena.is_empty());
    }

    #[test]
    fn alloc_probe_reports_round_loop_allocations() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // A fake probe: the executor only subtracts two samples, so a
        // monotone counter stands in for a real allocation count.
        static TICKS: AtomicU64 = AtomicU64::new(0);
        fn probe() -> u64 {
            TICKS.fetch_add(3, Ordering::Relaxed)
        }
        let a = col(10, &[3, 1, 2, 1]);
        let inputs = vec![&a];
        let specs = vec![SortSpec::asc(10)];
        let plan = MassagePlan::column_at_a_time(&specs);
        let cfg = ExecConfig {
            alloc_probe: Some(probe),
            ..ExecConfig::default()
        };
        let out = multi_column_sort(&inputs, &specs, &plan, &cfg).expect("valid sort instance");
        assert_eq!(out.stats.round_loop_allocs, Some(3));
        let no_probe = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        assert_eq!(no_probe.stats.round_loop_allocs, None);
    }

    #[test]
    fn threads_do_not_change_result_structure() {
        let n = 20_000usize;
        let a = col(
            11,
            &(0..n).map(|i| ((i * 31) % 2048) as u64).collect::<Vec<_>>(),
        );
        let b = col(
            21,
            &(0..n)
                .map(|i| ((i * 7_919) % (1 << 21)) as u64)
                .collect::<Vec<_>>(),
        );
        let inputs = vec![&a, &b];
        let specs = vec![SortSpec::asc(11), SortSpec::asc(21)];
        let plan = MassagePlan::from_widths(&[16, 16]);
        let s1 = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        let s4 = multi_column_sort(
            &inputs,
            &specs,
            &plan,
            &ExecConfig {
                threads: 4,
                ..ExecConfig::default()
            },
        )
        .expect("valid sort instance");
        verify_sorted(&inputs, &specs, &s4, true);
        assert_eq!(s1.groups.offsets, s4.groups.offsets);
    }
}
