//! # mcs-core
//!
//! **Code massaging** — the primary contribution of *Fast Multi-Column
//! Sorting in Main-Memory Column-Stores* (Xu, Feng, Lo; SIGMOD 2016).
//!
//! Multi-column sorting (`ORDER BY c1, c2, …` / `GROUP BY` /
//! `PARTITION BY`) is conventionally executed column-at-a-time: one SIMD
//! sorting round per column, with lookups and scans in between. Code
//! massaging manipulates the *bits across the columns*: the concatenated
//! `W`-bit sort key is re-partitioned into rounds that either eliminate
//! sorting rounds (stitching), improve SIMD data parallelism
//! (bit-borrowing into narrower banks), or both. Lemma 1 of the paper
//! guarantees any such re-partition yields the same tuple order.
//!
//! This crate provides:
//! * [`MassagePlan`] / [`Round`] / [`SortSpec`] — the plan model
//!   (`{R1: 18/[32], R2: 32/[32]}` notation included);
//! * [`MassageProgram`] — the compiled four-instruction (shift/mask/or/
//!   shift) program of the paper's Figure 6, with `I_FIP` accounting and
//!   `DESC` complementing (Figure 5);
//! * [`multi_column_sort`] — the executor: massage → per-round
//!   lookup/segmented-SIMD-sort/scan, with per-phase telemetry;
//! * [`ExecArena`] / [`multi_column_sort_with`] — the reusable execution
//!   arena: repeated sorts run their round loop with zero heap
//!   allocations once the arena is warm.
//!
//! ```
//! use mcs_columnar::CodeVec;
//! use mcs_core::{multi_column_sort, ExecConfig, MassagePlan, SortSpec};
//!
//! // ORDER BY nation (10-bit), ship_date (17-bit): stitch into one
//! // 27-bit round instead of two rounds.
//! let nation = CodeVec::from_u64s(10, [1u64, 0, 1]);
//! let ship = CodeVec::from_u64s(17, [1201u64, 301, 501]);
//! let specs = [SortSpec::asc(10), SortSpec::asc(17)];
//! let plan = MassagePlan::from_widths(&[27]);
//! let out = multi_column_sort(&[&nation, &ship], &specs, &plan, &ExecConfig::default())
//!     .expect("plan covers the 27-bit key");
//! assert_eq!(out.oids, vec![1, 2, 0]);
//! ```

#![warn(missing_docs)]
// Library code must surface failures as typed errors, never panic on a
// recoverable path. Test modules opt back in with `#[allow]`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod arena;
mod executor;
mod massage;
mod plan;

pub use arena::{lease_footprint_bytes, ArenaStats, ExecArena};
pub use executor::{
    multi_column_sort, multi_column_sort_with, tuple_cmp, verify_sorted, ExecConfig, ExecStats,
    MultiColumnSortOutput, RoundStats, SortError,
};
pub use massage::{
    massage, massage_into, massage_into_cancellable, width_mask, FipStep, MassageProgram, RoundKeys,
};
pub use plan::{MassagePlan, PlanError, Round, SortSpec};

// Re-export the pieces callers need alongside plans.
pub use mcs_cancel::{CancelCause, CancelToken, CHECK_INTERVAL};
pub use mcs_simd_sort::{Bank, GroupBounds, PhaseTimes, SortConfig};
