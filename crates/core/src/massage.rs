//! The code-massaging kernel: the four-instruction program (FIP) of the
//! paper's Figure 6.
//!
//! Massaging re-partitions the concatenated `W`-bit sort key. Each
//! maximal bit segment that lies in exactly one (input column, output
//! round) pair becomes one [`FipStep`] — shift right, mask, OR, shift
//! left — and the number of steps equals the paper's
//! `I_FIP = |prefix(in) ∪ prefix(out)|`. Execution is one sequential,
//! branch-free pass per step, massaging all rows of that segment;
//! `DESC` columns are complemented on the fly (Figure 5's extra step).

use crate::plan::{MassagePlan, SortSpec};
use mcs_cancel::CancelToken;
use mcs_columnar::CodeVec;
use mcs_simd_sort::{for_each_chunk, Bank, Key, MorselCounts};

/// One shift/mask/or/shift step: move `len` bits of input column
/// `in_col` into output round `out_col`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FipStep {
    /// Source column index.
    pub in_col: usize,
    /// Destination round index.
    pub out_col: usize,
    /// Right-shift applied to the (complemented) source code.
    pub in_shift: u32,
    /// Number of bits moved.
    pub len: u32,
    /// Left-shift placing the bits in the destination code.
    pub out_shift: u32,
}

/// A compiled massage program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MassageProgram {
    /// The steps, in global-bit order (MSB side first).
    pub steps: Vec<FipStep>,
    /// Input column specs (width + direction).
    pub specs: Vec<SortSpec>,
    /// Output round widths.
    pub out_widths: Vec<u32>,
}

impl MassageProgram {
    /// Compile a program that re-partitions columns `specs` into the
    /// rounds of `plan`. Panics if widths don't line up (validated plans
    /// never do).
    pub fn compile(specs: &[SortSpec], plan: &MassagePlan) -> MassageProgram {
        let in_widths: Vec<u32> = specs.iter().map(|s| s.width).collect();
        let out_widths = plan.widths();
        let total_in: u32 = in_widths.iter().sum();
        let total_out: u32 = out_widths.iter().sum();
        assert_eq!(total_in, total_out, "plan does not cover the key");

        // Walk both partitions of [0, W) simultaneously; emit one step per
        // overlap segment.
        let mut steps = Vec::new();
        let mut i = 0usize; // input column
        let mut j = 0usize; // output round
        let mut in_start = 0u32; // global bit where column i starts
        let mut out_start = 0u32; // global bit where round j starts
        let mut pos = 0u32;
        while pos < total_in {
            let in_end = in_start + in_widths[i];
            let out_end = out_start + out_widths[j];
            let seg_end = in_end.min(out_end);
            let len = seg_end - pos;
            // Bits [pos, seg_end) of the global key, as seen from column i
            // (MSB at in_start) and round j (MSB at out_start).
            let in_off = pos - in_start; // offset from column MSB
            let out_off = pos - out_start;
            steps.push(FipStep {
                in_col: i,
                out_col: j,
                in_shift: in_widths[i] - in_off - len,
                len,
                out_shift: out_widths[j] - out_off - len,
            });
            pos = seg_end;
            if pos == in_end {
                i += 1;
                in_start = in_end;
            }
            if pos == out_end {
                j += 1;
                out_start = out_end;
            }
        }
        MassageProgram {
            steps,
            specs: specs.to_vec(),
            out_widths,
        }
    }

    /// `I_FIP` — equals the number of compiled steps.
    pub fn i_fip(&self) -> usize {
        self.steps.len()
    }

    /// Whether the program is a pure per-column identity (no bits cross a
    /// boundary and no column is complemented) — i.e. massaging is a
    /// no-op apart from materializing the round keys.
    pub fn is_identity(&self) -> bool {
        self.steps.len() == self.specs.len()
            && self
                .steps
                .iter()
                .all(|s| s.in_shift == 0 && s.out_shift == 0)
            && self.specs.iter().all(|s| !s.descending)
    }

    /// Execute over `inputs` (one [`CodeVec`] per spec, equal lengths),
    /// producing one `u64` key vector per output round, optionally
    /// partition-parallel across `threads`.
    pub fn execute(&self, inputs: &[&CodeVec], threads: usize) -> Vec<Vec<u64>> {
        assert_eq!(inputs.len(), self.specs.len());
        let n = inputs.first().map_or(0, |c| c.len());
        for c in inputs {
            assert_eq!(c.len(), n, "input column length mismatch");
        }
        let mut out: Vec<Vec<u64>> = self.out_widths.iter().map(|_| vec![0u64; n]).collect();

        // One sequential pass per step; rows chunked across threads.
        for step in &self.steps {
            let src = inputs[step.in_col];
            let spec = self.specs[step.in_col];
            let comp_mask = if spec.descending {
                width_mask(spec.width)
            } else {
                0
            };
            let seg_mask = width_mask(step.len);
            let dst = &mut out[step.out_col];
            // SAFETY-free parallelism: chunks are disjoint row ranges; we
            // hand each thread a raw pointer region via split_at_mut-like
            // chunking below.
            let dst_ptr = SendPtr(dst.as_mut_ptr());
            for_each_chunk(n, threads, |_, start, len| {
                // Rebind to capture the whole SendPtr rather than its raw
                // *mut field (edition-2021 closures capture disjoint
                // fields, and a bare *mut is not Send).
                #[allow(clippy::redundant_locals)]
                let dst_ptr = dst_ptr;
                for r in start..start + len {
                    let code = src.get(r) ^ comp_mask;
                    let bits = (code >> step.in_shift) & seg_mask;
                    // SAFETY: row ranges of different chunks are disjoint.
                    unsafe {
                        *dst_ptr.0.add(r) |= bits << step.out_shift;
                    }
                }
            });
        }
        out
    }
}

/// `(1 << w) - 1` without overflow at `w = 64`.
#[inline]
pub fn width_mask(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

pub(crate) struct SendPtr<T>(pub(crate) *mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: used only with disjoint index ranges per thread.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Run one FIP step with a bank-native destination: OR the step's bit
/// segment of every row directly into `dst` in the bank's physical type.
///
/// `bits << out_shift` always fits the bank because the round width is
/// bounded by the bank width (enforced by plan validation), so the
/// narrowing `K::from_u64` is lossless. Returns the step's morsel
/// scheduler counters (zero on the serial path).
fn execute_step_into<K: Key>(
    src: &CodeVec,
    step: &FipStep,
    comp_mask: u64,
    dst: &mut [K],
    threads: usize,
) -> MorselCounts {
    let seg_mask = width_mask(step.len);
    let n = dst.len();
    let dst_ptr = SendPtr(dst.as_mut_ptr());
    for_each_chunk(n, threads, |_, start, len| {
        // Rebind to capture the whole SendPtr rather than its raw *mut
        // field (edition-2021 closures capture disjoint fields, and a
        // bare *mut is not Send).
        #[allow(clippy::redundant_locals)]
        let dst_ptr = dst_ptr;
        for r in start..start + len {
            let code = src.get(r) ^ comp_mask;
            let bits = (code >> step.in_shift) & seg_mask;
            // SAFETY: row ranges of different chunks are disjoint.
            unsafe {
                let p = dst_ptr.0.add(r);
                *p = K::from_u64((*p).to_u64() | (bits << step.out_shift));
            }
        }
    })
}

/// Round keys in their bank's physical type, ready for the SIMD sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoundKeys {
    /// 16-bit bank keys.
    B16(Vec<u16>),
    /// 32-bit bank keys.
    B32(Vec<u32>),
    /// 64-bit bank keys.
    B64(Vec<u64>),
}

impl RoundKeys {
    /// Narrow `u64` keys into the bank's physical type.
    pub fn from_u64s(bank: Bank, keys: &[u64]) -> RoundKeys {
        match bank {
            Bank::B16 => RoundKeys::B16(keys.iter().map(|&v| v as u16).collect()),
            Bank::B32 => RoundKeys::B32(keys.iter().map(|&v| v as u32).collect()),
            Bank::B64 => RoundKeys::B64(keys.to_vec()),
        }
    }

    /// The bank this buffer physically is.
    pub fn bank(&self) -> Bank {
        match self {
            RoundKeys::B16(_) => Bank::B16,
            RoundKeys::B32(_) => Bank::B32,
            RoundKeys::B64(_) => Bank::B64,
        }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        match self {
            RoundKeys::B16(v) => v.len(),
            RoundKeys::B32(v) => v.len(),
            RoundKeys::B64(v) => v.len(),
        }
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key at `i`, widened.
    pub fn get(&self, i: usize) -> u64 {
        match self {
            RoundKeys::B16(v) => v[i] as u64,
            RoundKeys::B32(v) => v[i] as u64,
            RoundKeys::B64(v) => v[i],
        }
    }
}

/// Massage `inputs` directly into caller-provided bank-native buffers —
/// the allocation-free core of [`massage`], used by
/// [`crate::ExecArena`]-backed execution.
///
/// `outs` must hold one zero-filled [`RoundKeys`] per plan round, each
/// of the round's bank and of the input row count; every FIP step ORs
/// its bit segment straight into the destination bank type, so no
/// intermediate wide `u64` vectors are materialized. Returns the
/// compiled program (for `I_FIP` accounting).
pub fn massage_into(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    threads: usize,
    outs: &mut [RoundKeys],
) -> MassageProgram {
    massage_into_cancellable(inputs, specs, plan, threads, outs, &CancelToken::none()).0
}

/// Like [`massage_into`], polling `cancel` before every FIP step (each is
/// one full O(n) pass over a column segment). A fired token abandons the
/// remaining steps, leaving partially massaged round buffers — the caller
/// must observe the token and discard them. The compiled program is
/// returned either way, along with the morsel scheduler counters summed
/// over the executed steps (all zero when the steps ran serially).
pub fn massage_into_cancellable(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    threads: usize,
    outs: &mut [RoundKeys],
    cancel: &CancelToken,
) -> (MassageProgram, MorselCounts) {
    assert_eq!(inputs.len(), specs.len());
    let n = inputs.first().map_or(0, |c| c.len());
    for c in inputs {
        assert_eq!(c.len(), n, "input column length mismatch");
    }
    assert_eq!(outs.len(), plan.rounds.len(), "one output buffer per round");
    for (out, round) in outs.iter().zip(&plan.rounds) {
        assert_eq!(out.bank(), round.bank, "output buffer bank mismatch");
        assert_eq!(out.len(), n, "output buffer length mismatch");
    }
    let prog = MassageProgram::compile(specs, plan);
    let mut morsels = MorselCounts::default();
    for step in &prog.steps {
        if cancel.check().is_err() {
            break;
        }
        let src = inputs[step.in_col];
        let spec = prog.specs[step.in_col];
        let comp_mask = if spec.descending {
            width_mask(spec.width)
        } else {
            0
        };
        morsels.add(match &mut outs[step.out_col] {
            RoundKeys::B16(dst) => execute_step_into::<u16>(src, step, comp_mask, dst, threads),
            RoundKeys::B32(dst) => execute_step_into::<u32>(src, step, comp_mask, dst, threads),
            RoundKeys::B64(dst) => execute_step_into::<u64>(src, step, comp_mask, dst, threads),
        });
    }
    (prog, morsels)
}

/// Massage `inputs` according to `plan`, returning bank-typed keys per
/// round plus the executed program (for `I_FIP` accounting).
pub fn massage(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    threads: usize,
) -> (Vec<RoundKeys>, MassageProgram) {
    let n = inputs.first().map_or(0, |c| c.len());
    let mut keys: Vec<RoundKeys> = plan
        .rounds
        .iter()
        .map(|r| match r.bank {
            Bank::B16 => RoundKeys::B16(vec![0u16; n]),
            Bank::B32 => RoundKeys::B32(vec![0u32; n]),
            Bank::B64 => RoundKeys::B64(vec![0u64; n]),
        })
        .collect();
    let prog = massage_into(inputs, specs, plan, threads, &mut keys);
    (keys, prog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SortSpec;

    fn specs(widths: &[u32]) -> Vec<SortSpec> {
        widths.iter().map(|&w| SortSpec::asc(w)).collect()
    }

    /// Oracle: assemble each row's W-bit key as a u128 (W <= 96 in tests),
    /// then slice it at the output boundaries.
    fn oracle(inputs: &[&CodeVec], sp: &[SortSpec], out_widths: &[u32], row: usize) -> Vec<u64> {
        let mut key: u128 = 0;
        let mut total = 0u32;
        for (c, s) in inputs.iter().zip(sp) {
            let mut v = c.get(row);
            if s.descending {
                v ^= width_mask(s.width);
            }
            key = (key << s.width) | v as u128;
            total += s.width;
        }
        let mut out = Vec::new();
        let mut consumed = 0u32;
        for &w in out_widths {
            consumed += w;
            out.push(((key >> (total - consumed)) as u64) & width_mask(w));
        }
        out
    }

    #[test]
    fn figure6_ex3_program() {
        // P_<<1 for Ex3 (17+33 -> 18+32): three steps, I_FIP = 3.
        let sp = specs(&[17, 33]);
        let plan = MassagePlan::from_widths(&[18, 32]);
        let prog = MassageProgram::compile(&sp, &plan);
        assert_eq!(prog.i_fip(), 3);
        assert_eq!(prog.i_fip(), plan.i_fip(&[17, 33]));
        // Step 1: all 17 bits of col 0 -> round 0, left-shifted by 1.
        assert_eq!(
            prog.steps[0],
            FipStep {
                in_col: 0,
                out_col: 0,
                in_shift: 0,
                len: 17,
                out_shift: 1
            }
        );
        // Step 2: top bit of col 1 -> bottom bit of round 0.
        assert_eq!(
            prog.steps[1],
            FipStep {
                in_col: 1,
                out_col: 0,
                in_shift: 32,
                len: 1,
                out_shift: 0
            }
        );
        // Step 3: low 32 bits of col 1 -> round 1.
        assert_eq!(
            prog.steps[2],
            FipStep {
                in_col: 1,
                out_col: 1,
                in_shift: 0,
                len: 32,
                out_shift: 0
            }
        );
    }

    #[test]
    fn figure6_ex4_program() {
        // P_32x3 for Ex4 (48+48 -> 32+32+32): I_FIP = 4.
        let sp = specs(&[48, 48]);
        let plan = MassagePlan::from_widths(&[32, 32, 32]);
        let prog = MassageProgram::compile(&sp, &plan);
        assert_eq!(prog.i_fip(), 4);
    }

    #[test]
    fn identity_detection() {
        let sp = specs(&[17, 33]);
        let plan = MassagePlan::from_widths(&[17, 33]);
        assert!(MassageProgram::compile(&sp, &plan).is_identity());
        let plan2 = MassagePlan::from_widths(&[18, 32]);
        assert!(!MassageProgram::compile(&sp, &plan2).is_identity());
        // DESC columns are never identity (complement required).
        let spd = vec![SortSpec::asc(17), SortSpec::desc(33)];
        assert!(!MassageProgram::compile(&spd, &plan).is_identity());
    }

    #[test]
    fn execute_matches_oracle_across_plans() {
        let c1 = CodeVec::from_u64s(17, [0u64, 131_071, 42, 99_999]);
        let c2 = CodeVec::from_u64s(33, [1u64 << 32, 0, 8_589_934_591, 12345]);
        let inputs = vec![&c1, &c2];
        for plan_widths in [
            vec![17, 33],
            vec![18, 32],
            vec![50],
            vec![16, 16, 18],
            vec![1; 50],
            vec![25, 25],
        ] {
            let plan = MassagePlan::from_widths(&plan_widths);
            for desc_pattern in [[false, false], [true, false], [false, true], [true, true]] {
                let sp: Vec<SortSpec> = [17u32, 33]
                    .iter()
                    .zip(desc_pattern)
                    .map(|(&w, d)| SortSpec {
                        width: w,
                        descending: d,
                    })
                    .collect();
                let prog = MassageProgram::compile(&sp, &plan);
                let got = prog.execute(&inputs, 1);
                for row in 0..4 {
                    let want = oracle(&inputs, &sp, &plan_widths, row);
                    let got_row: Vec<u64> = got.iter().map(|c| c[row]).collect();
                    assert_eq!(
                        got_row, want,
                        "plan={plan_widths:?} desc={desc_pattern:?} row={row}"
                    );
                }
            }
        }
    }

    #[test]
    fn execute_parallel_matches_serial() {
        let n = 10_000;
        let c1 = CodeVec::from_u64s(20, (0..n).map(|i| (i * 7919) % (1 << 20)));
        let c2 = CodeVec::from_u64s(40, (0..n).map(|i| (i * 104_729) % (1u64 << 40)));
        let sp = specs(&[20, 40]);
        let plan = MassagePlan::from_widths(&[24, 36]);
        let prog = MassageProgram::compile(&sp, &plan);
        let a = prog.execute(&[&c1, &c2], 1);
        let b = prog.execute(&[&c1, &c2], 4);
        assert_eq!(a, b);
    }

    #[test]
    fn figure2b_stitch_example() {
        // nation_name (10-bit) stitched with ship_date (17-bit): the new
        // column equals (nation << 17) | ship_date.
        let nation = CodeVec::from_u64s(10, [1u64, 1, 2]);
        let ship = CodeVec::from_u64s(17, [601u64, 1201, 301]);
        let sp = specs(&[10, 17]);
        let plan = MassagePlan::from_widths(&[27]);
        let (keys, prog) = massage(&[&nation, &ship], &sp, &plan, 1);
        assert_eq!(prog.i_fip(), 2);
        assert_eq!(keys.len(), 1);
        for (i, (&n, &s)) in [1u64, 1, 2].iter().zip(&[601u64, 1201, 301]).enumerate() {
            assert_eq!(keys[0].get(i), (n << 17) | s);
        }
    }

    #[test]
    fn width_64_masking() {
        assert_eq!(width_mask(64), u64::MAX);
        assert_eq!(width_mask(1), 1);
        let c = CodeVec::from_u64s(64, [u64::MAX, 0, 42]);
        let sp = vec![SortSpec::desc(64)];
        let plan = MassagePlan::from_widths(&[64]);
        let prog = MassageProgram::compile(&sp, &plan);
        let out = prog.execute(&[&c], 1);
        assert_eq!(out[0], vec![0, u64::MAX, !42]);
    }

    #[test]
    fn massage_into_matches_wide_execute_across_plans() {
        // The bank-native path must agree with the legacy wide-u64
        // execute + narrow pipeline for every plan shape and direction.
        let c1 = CodeVec::from_u64s(17, [0u64, 131_071, 42, 99_999]);
        let c2 = CodeVec::from_u64s(33, [1u64 << 32, 0, 8_589_934_591, 12345]);
        let inputs = vec![&c1, &c2];
        for plan_widths in [vec![17, 33], vec![18, 32], vec![50], vec![16, 16, 18]] {
            let plan = MassagePlan::from_widths(&plan_widths);
            for desc_pattern in [[false, false], [true, true]] {
                let sp: Vec<SortSpec> = [17u32, 33]
                    .iter()
                    .zip(desc_pattern)
                    .map(|(&w, d)| SortSpec {
                        width: w,
                        descending: d,
                    })
                    .collect();
                let prog = MassageProgram::compile(&sp, &plan);
                let wide = prog.execute(&inputs, 1);
                let want: Vec<RoundKeys> = plan
                    .rounds
                    .iter()
                    .zip(&wide)
                    .map(|(r, w)| RoundKeys::from_u64s(r.bank, w))
                    .collect();
                for threads in [1usize, 3] {
                    let (got, prog2) = massage(&inputs, &sp, &plan, threads);
                    assert_eq!(prog2.i_fip(), prog.i_fip());
                    assert_eq!(got, want, "plan={plan_widths:?} desc={desc_pattern:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "output buffer bank mismatch")]
    fn massage_into_rejects_wrong_bank() {
        let c1 = CodeVec::from_u64s(20, [1u64, 2, 3]);
        let sp = specs(&[20]);
        let plan = MassagePlan::from_widths(&[20]); // wants B32
        let mut outs = vec![RoundKeys::B16(vec![0u16; 3])];
        massage_into(&[&c1], &sp, &plan, 1, &mut outs);
    }

    #[test]
    fn round_keys_narrowing() {
        let keys = [1u64, 65_535, 70_000];
        let rk = RoundKeys::from_u64s(Bank::B32, &keys);
        assert!(matches!(rk, RoundKeys::B32(_)));
        assert_eq!(rk.get(2), 70_000);
        assert_eq!(rk.len(), 3);
    }
}
