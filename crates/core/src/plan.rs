//! Code-massage plans: the `{R_1: w/[b], R_2: w/[b], …}` objects of the
//! paper (§3).
//!
//! A multi-column sort over columns of widths `w_1 … w_m` concatenates the
//! per-tuple codes into one `W = Σ w_i`-bit key. A [`MassagePlan`]
//! re-partitions that bit string into `k` *rounds*, each sorted with a
//! SIMD bank wide enough to hold it. The original column-at-a-time plan
//! `P_0` is the plan whose boundaries coincide with the column boundaries.

use mcs_simd_sort::Bank;

/// One input column of a multi-column sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortSpec {
    /// Code width `w_i` in bits (1..=64).
    pub width: u32,
    /// `true` for `ORDER BY … DESC`: the column is complemented before
    /// stitching (§3, Figure 5).
    pub descending: bool,
}

impl SortSpec {
    /// Ascending column of the given width.
    pub fn asc(width: u32) -> SortSpec {
        SortSpec {
            width,
            descending: false,
        }
    }

    /// Descending column of the given width.
    pub fn desc(width: u32) -> SortSpec {
        SortSpec {
            width,
            descending: true,
        }
    }
}

/// One sorting round: `width` bits sorted with a `bank`-bit SIMD sort —
/// the paper's `R_i : w/[b]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Round {
    /// Bits of the concatenated key handled in this round.
    pub width: u32,
    /// Bank used by the SIMD sort of this round.
    pub bank: Bank,
}

impl Round {
    /// Round using the minimum bank for its width.
    pub fn tight(width: u32) -> Round {
        Round {
            width,
            bank: Bank::min_for_width(width),
        }
    }
}

/// Errors from [`MassagePlan::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A round has width 0.
    EmptyRound,
    /// A round's width exceeds its bank capacity.
    RoundOverflowsBank {
        /// Offending round index.
        round: usize,
        /// Its width.
        width: u32,
        /// Its bank.
        bank: Bank,
    },
    /// Round widths don't sum to the total key width.
    WidthMismatch {
        /// Sum of round widths.
        got: u32,
        /// Expected `W`.
        expected: u32,
    },
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::EmptyRound => write!(f, "plan contains an empty round"),
            PlanError::RoundOverflowsBank { round, width, bank } => {
                write!(f, "round {round}: {width} bits exceed bank {bank}")
            }
            PlanError::WidthMismatch { got, expected } => {
                write!(f, "round widths sum to {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A code-massage plan: an ordered partition of the `W`-bit concatenated
/// key into sorting rounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MassagePlan {
    /// The rounds, first sorted first.
    pub rounds: Vec<Round>,
}

impl MassagePlan {
    /// Build from rounds.
    pub fn new(rounds: Vec<Round>) -> MassagePlan {
        MassagePlan { rounds }
    }

    /// Build from round widths, assigning each its minimum bank.
    pub fn from_widths(widths: &[u32]) -> MassagePlan {
        MassagePlan {
            rounds: widths.iter().map(|&w| Round::tight(w)).collect(),
        }
    }

    /// The original column-at-a-time plan `P_0` for the given columns.
    pub fn column_at_a_time(specs: &[SortSpec]) -> MassagePlan {
        MassagePlan::from_widths(&specs.iter().map(|s| s.width).collect::<Vec<_>>())
    }

    /// Number of rounds `k`.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total bits `W` covered by the plan.
    pub fn total_width(&self) -> u32 {
        self.rounds.iter().map(|r| r.width).sum()
    }

    /// Round widths.
    pub fn widths(&self) -> Vec<u32> {
        self.rounds.iter().map(|r| r.width).collect()
    }

    /// Prefix sums of round widths (`s'_1, s'_2, …` in the `I_FIP`
    /// formula): excludes 0, includes `W`.
    pub fn prefix_sums(&self) -> Vec<u32> {
        let mut acc = 0;
        self.rounds
            .iter()
            .map(|r| {
                acc += r.width;
                acc
            })
            .collect()
    }

    /// Check structural validity against a total key width.
    pub fn validate(&self, total_width: u32) -> Result<(), PlanError> {
        let mut sum = 0u32;
        for (i, r) in self.rounds.iter().enumerate() {
            if r.width == 0 {
                return Err(PlanError::EmptyRound);
            }
            if !r.bank.holds(r.width) {
                return Err(PlanError::RoundOverflowsBank {
                    round: i,
                    width: r.width,
                    bank: r.bank,
                });
            }
            sum += r.width;
        }
        if sum != total_width {
            return Err(PlanError::WidthMismatch {
                got: sum,
                expected: total_width,
            });
        }
        Ok(())
    }

    /// Whether this plan's boundaries equal the given column boundaries
    /// (i.e. it is `P_0` modulo bank choices).
    pub fn is_column_aligned(&self, widths: &[u32]) -> bool {
        self.widths() == widths
    }

    /// `I_FIP`: invocations of the four-instruction massage program,
    /// `|{s_1, s_2, …} ∪ {s'_1, s'_2, …}|` over the input and output
    /// prefix-sum sequences (§4, Eq. 4 context).
    pub fn i_fip(&self, in_widths: &[u32]) -> usize {
        let mut cuts: Vec<u32> = Vec::new();
        let mut acc = 0;
        for &w in in_widths {
            acc += w;
            cuts.push(acc);
        }
        cuts.extend(self.prefix_sums());
        cuts.sort_unstable();
        cuts.dedup();
        cuts.len()
    }

    /// Paper-style notation, e.g. `{R1: 18/[32], R2: 32/[32]}`.
    pub fn notation(&self) -> String {
        let inner: Vec<String> = self
            .rounds
            .iter()
            .enumerate()
            .map(|(i, r)| format!("R{}: {}/{}", i + 1, r.width, r.bank))
            .collect();
        format!("{{{}}}", inner.join(", "))
    }
}

impl core::fmt::Display for MassagePlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p0_uses_minimum_banks() {
        // Paper's running example: 10-bit and 17-bit columns.
        let p0 = MassagePlan::column_at_a_time(&[SortSpec::asc(10), SortSpec::asc(17)]);
        assert_eq!(p0.notation(), "{R1: 10/[16], R2: 17/[32]}");
        assert_eq!(p0.total_width(), 27);
        assert!(p0.validate(27).is_ok());
    }

    #[test]
    fn stitch_all_plan() {
        // P_<<17 of Example Ex1: one 27-bit round in a 32-bit bank.
        let p = MassagePlan::from_widths(&[27]);
        assert_eq!(p.notation(), "{R1: 27/[32]}");
    }

    #[test]
    fn validation_errors() {
        let p = MassagePlan::new(vec![Round {
            width: 40,
            bank: Bank::B32,
        }]);
        assert!(matches!(
            p.validate(40),
            Err(PlanError::RoundOverflowsBank { .. })
        ));
        let p = MassagePlan::from_widths(&[10, 10]);
        assert!(matches!(
            p.validate(25),
            Err(PlanError::WidthMismatch {
                got: 20,
                expected: 25
            })
        ));
        let p = MassagePlan::new(vec![Round {
            width: 0,
            bank: Bank::B16,
        }]);
        assert_eq!(p.validate(0), Err(PlanError::EmptyRound));
    }

    #[test]
    fn i_fip_matches_paper_examples() {
        // Ex3: inputs 17+33, plan P_<<1 = {18, 32}:
        // |{17, 50} ∪ {18, 50}| = 3.
        let p = MassagePlan::from_widths(&[18, 32]);
        assert_eq!(p.i_fip(&[17, 33]), 3);

        // Ex4: inputs 48+48, plan P_32x3 = {32, 32, 32}:
        // |{48, 96} ∪ {32, 64, 96}| = 4.
        let p = MassagePlan::from_widths(&[32, 32, 32]);
        assert_eq!(p.i_fip(&[48, 48]), 4);

        // Identity plan: I_FIP = m.
        let p = MassagePlan::from_widths(&[17, 33]);
        assert_eq!(p.i_fip(&[17, 33]), 2);
    }

    #[test]
    fn column_aligned_detection() {
        let p = MassagePlan::from_widths(&[17, 33]);
        assert!(p.is_column_aligned(&[17, 33]));
        assert!(!p.is_column_aligned(&[18, 32]));
    }
}
