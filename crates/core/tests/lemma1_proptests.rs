//! Property tests for Lemma 1: every valid massage plan produces a valid
//! ORDER BY order and the same tie structure as the column-at-a-time plan,
//! for arbitrary data, widths, ASC/DESC mixes and random bit partitions.

use mcs_columnar::CodeVec;
use mcs_core::{
    multi_column_sort, verify_sorted, ExecConfig, MassagePlan, Round, SortSpec, Bank,
};
use proptest::prelude::*;

/// Random column specs: 1-4 columns, widths 1..=30, random direction.
fn specs_strategy() -> impl Strategy<Value = Vec<SortSpec>> {
    prop::collection::vec((1u32..=30, any::<bool>()), 1..=4).prop_map(|v| {
        v.into_iter()
            .map(|(width, descending)| SortSpec { width, descending })
            .collect()
    })
}

/// A random composition of `total` into parts of at most 64.
fn random_partition(total: u32, seed: u64) -> Vec<u32> {
    let mut parts = Vec::new();
    let mut left = total;
    let mut s = seed | 1;
    while left > 0 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        let w = 1 + (s % left.min(64) as u64) as u32;
        parts.push(w);
        left -= w;
    }
    parts
}

fn columns_for(specs: &[SortSpec], rows: usize, seed: u64) -> Vec<CodeVec> {
    let mut s = seed | 3;
    specs
        .iter()
        .map(|sp| {
            let mask = if sp.width >= 64 {
                u64::MAX
            } else {
                (1u64 << sp.width) - 1
            };
            // Low cardinality sometimes, to force multi-round tie groups.
            let cardinality_mask = if seed % 3 == 0 { mask & 0x7 } else { mask };
            CodeVec::from_u64s(
                sp.width,
                (0..rows).map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s & cardinality_mask
                }),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma1_any_partition_sorts_correctly(
        specs in specs_strategy(),
        rows in 0usize..600,
        seed in any::<u64>(),
    ) {
        let cols = columns_for(&specs, rows, seed);
        let inputs: Vec<&CodeVec> = cols.iter().collect();
        let cfg = ExecConfig::default();

        let p0 = MassagePlan::column_at_a_time(&specs);
        let ref_out = multi_column_sort(&inputs, &specs, &p0, &cfg);
        verify_sorted(&inputs, &specs, &ref_out, true);

        let total: u32 = specs.iter().map(|s| s.width).sum();
        for k in 0..3u64 {
            let widths = random_partition(total, seed.wrapping_add(k * 7_919));
            let plan = MassagePlan::from_widths(&widths);
            let out = multi_column_sort(&inputs, &specs, &plan, &cfg);
            verify_sorted(&inputs, &specs, &out, true);
            // Lemma 1: the grouping (tie structure) is plan-invariant.
            prop_assert_eq!(&out.groups.offsets, &ref_out.groups.offsets,
                "plan {:?} grouping differs", widths);
        }
    }

    #[test]
    fn oversized_banks_are_still_correct(
        rows in 1usize..300,
        seed in any::<u64>(),
    ) {
        // Deliberately use wider-than-necessary banks: legal, just slower.
        let specs = vec![SortSpec::asc(9), SortSpec::desc(7)];
        let cols = columns_for(&specs, rows, seed);
        let inputs: Vec<&CodeVec> = cols.iter().collect();
        let plan = MassagePlan::new(vec![
            Round { width: 9, bank: Bank::B64 },
            Round { width: 7, bank: Bank::B32 },
        ]);
        let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default());
        verify_sorted(&inputs, &specs, &out, true);
    }
}
