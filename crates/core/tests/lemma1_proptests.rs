//! Property tests for Lemma 1: every valid massage plan produces a valid
//! ORDER BY order and the same tie structure as the column-at-a-time plan,
//! for arbitrary data, widths, ASC/DESC mixes and random bit partitions —
//! cross-checked against the scalar reference oracle.

use mcs_columnar::CodeVec;
use mcs_core::{multi_column_sort, verify_sorted, Bank, ExecConfig, MassagePlan, Round, SortSpec};
use mcs_test_support::oracle::{assert_matches_reference, reference_sort, SortProblem};
use mcs_test_support::{check, Rng};

/// Random column specs: 1-4 columns, widths 1..=30, random direction.
fn random_sort_specs(rng: &mut Rng) -> Vec<SortSpec> {
    let k = rng.gen_range(1..=4usize);
    (0..k)
        .map(|_| SortSpec {
            width: rng.gen_range(1..=30u32),
            descending: rng.gen_bool(0.5),
        })
        .collect()
}

/// A random composition of `total` into parts of at most 64.
fn random_partition(rng: &mut Rng, total: u32) -> Vec<u32> {
    let mut parts = Vec::new();
    let mut left = total;
    while left > 0 {
        let w = rng.gen_range(1..=left.min(64));
        parts.push(w);
        left -= w;
    }
    parts
}

fn columns_for(rng: &mut Rng, specs: &[SortSpec], rows: usize) -> Vec<CodeVec> {
    // Low cardinality sometimes, to force multi-round tie groups.
    let low_cardinality = rng.gen_bool(0.33);
    specs
        .iter()
        .map(|sp| {
            let mask = if sp.width >= 64 {
                u64::MAX
            } else {
                (1u64 << sp.width) - 1
            };
            let cardinality_mask = if low_cardinality { mask & 0x7 } else { mask };
            CodeVec::from_u64s(
                sp.width,
                (0..rows).map(|_| rng.gen::<u64>() & cardinality_mask),
            )
        })
        .collect()
}

/// The oracle-facing view of the same instance.
fn problem_of(cols: &[CodeVec], specs: &[SortSpec]) -> SortProblem {
    SortProblem {
        columns: cols.iter().map(|c| c.iter_u64().collect()).collect(),
        widths: specs.iter().map(|s| s.width).collect(),
        descending: specs.iter().map(|s| s.descending).collect(),
    }
}

#[test]
fn lemma1_any_partition_sorts_correctly() {
    check("lemma1_any_partition_sorts_correctly", 48, |rng| {
        let specs = random_sort_specs(rng);
        let rows = rng.gen_range(0..600usize);
        let cols = columns_for(rng, &specs, rows);
        let inputs: Vec<&CodeVec> = cols.iter().collect();
        let cfg = ExecConfig::default();

        let problem = problem_of(&cols, &specs);
        let reference = reference_sort(&problem);

        let p0 = MassagePlan::column_at_a_time(&specs);
        let ref_out = multi_column_sort(&inputs, &specs, &p0, &cfg).expect("valid sort instance");
        verify_sorted(&inputs, &specs, &ref_out, true);
        assert_matches_reference(
            "P0",
            &problem,
            &reference,
            &ref_out.oids,
            Some(&ref_out.groups.offsets),
        );

        let total: u32 = specs.iter().map(|s| s.width).sum();
        for _ in 0..3 {
            let widths = random_partition(rng, total);
            let plan = MassagePlan::from_widths(&widths);
            let out = multi_column_sort(&inputs, &specs, &plan, &cfg).expect("valid sort instance");
            verify_sorted(&inputs, &specs, &out, true);
            // Lemma 1: the grouping (tie structure) is plan-invariant, and
            // the oracle agrees on order and groups.
            assert_eq!(
                out.groups.offsets, ref_out.groups.offsets,
                "plan {widths:?} grouping differs"
            );
            assert_matches_reference(
                &format!("plan {widths:?}"),
                &problem,
                &reference,
                &out.oids,
                Some(&out.groups.offsets),
            );
        }
    });
}

#[test]
fn oversized_banks_are_still_correct() {
    check("oversized_banks_are_still_correct", 48, |rng| {
        // Deliberately use wider-than-necessary banks: legal, just slower.
        let rows = rng.gen_range(1..300usize);
        let specs = vec![SortSpec::asc(9), SortSpec::desc(7)];
        let cols = columns_for(rng, &specs, rows);
        let inputs: Vec<&CodeVec> = cols.iter().collect();
        let plan = MassagePlan::new(vec![
            Round {
                width: 9,
                bank: Bank::B64,
            },
            Round {
                width: 7,
                bank: Bank::B32,
            },
        ]);
        let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        verify_sorted(&inputs, &specs, &out, true);
        let problem = problem_of(&cols, &specs);
        let reference = reference_sort(&problem);
        assert_matches_reference(
            "oversized-banks",
            &problem,
            &reference,
            &out.oids,
            Some(&out.groups.offsets),
        );
    });
}
