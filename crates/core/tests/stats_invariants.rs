//! Invariants linking the executor's telemetry to the quantities the
//! paper's cost model reasons about (`N_sort`, `N_group`, `N̄_code`).

use mcs_columnar::CodeVec;
use mcs_core::{multi_column_sort, ExecConfig, MassagePlan, SortSpec};

fn cols(n: usize, w1: u32, w2: u32, ndv1: u64, ndv2: u64) -> (CodeVec, CodeVec) {
    let mut s = 0xACEu64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let a = CodeVec::from_u64s(w1, (0..n).map(|_| next() % ndv1));
    let b = CodeVec::from_u64s(w2, (0..n).map(|_| next() % ndv2));
    (a, b)
}

#[test]
fn round2_invocations_counted_like_the_model() {
    // N_sort (round 2 invocations) == number of round-1 groups with >= 2
    // rows; codes_sorted == rows in those groups.
    let n = 20_000usize;
    let (a, b) = cols(n, 10, 17, 300, 100_000);
    let inputs = vec![&a, &b];
    let specs = vec![SortSpec::asc(10), SortSpec::asc(17)];
    let p0 = MassagePlan::column_at_a_time(&specs);
    let out = multi_column_sort(&inputs, &specs, &p0, &ExecConfig::default())
        .expect("valid sort instance");

    let r1 = &out.stats.rounds[0];
    let r2 = &out.stats.rounds[1];
    assert_eq!(r1.groups_in, 1);
    assert!(r1.groups_out <= 300);
    assert_eq!(r2.groups_in, r1.groups_out);

    // Recompute the round-1 grouping by hand and cross-check N_sort.
    let mut first: Vec<u64> = out.oids.iter().map(|&o| a.get(o as usize)).collect();
    first.dedup();
    assert_eq!(first.len(), r1.groups_out);

    let mut counts = std::collections::HashMap::new();
    for i in 0..n {
        *counts.entry(a.get(i)).or_insert(0usize) += 1;
    }
    let n_sort: usize = counts.values().filter(|&&c| c >= 2).count();
    let codes: usize = counts.values().filter(|&&c| c >= 2).sum();
    assert_eq!(r2.invocations, n_sort);
    assert_eq!(r2.codes_sorted, codes);
}

#[test]
fn more_first_round_bits_never_decrease_groups() {
    // The Figure 4b relationship: shifting bits left (wider round 1)
    // monotonically increases N_group after round 1.
    let n = 30_000usize;
    let (a, b) = cols(n, 17, 33, 8000, 8000);
    let inputs = vec![&a, &b];
    let specs = vec![SortSpec::asc(17), SortSpec::asc(33)];
    let mut prev_groups = 0usize;
    for shift in 0..=8u32 {
        let plan = MassagePlan::from_widths(&[17 + shift, 33 - shift]);
        let out = multi_column_sort(&inputs, &specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        let g = out.stats.rounds[0].groups_out;
        assert!(
            g >= prev_groups,
            "shift {shift}: groups {g} < previous {prev_groups}"
        );
        prev_groups = g;
        // Final grouping identical across plans (Lemma 1).
        assert_eq!(out.groups.num_rows(), n);
    }
}

#[test]
fn singleton_groups_skip_sorting() {
    // A unique first column: round 2 must perform zero sort invocations.
    let n = 4096usize;
    let a = CodeVec::from_u64s(13, (0..n).map(|i| i as u64));
    let b = CodeVec::from_u64s(17, (0..n).map(|i| (i as u64 * 31) % 1000));
    let inputs = vec![&a, &b];
    let specs = vec![SortSpec::asc(13), SortSpec::asc(17)];
    let p0 = MassagePlan::column_at_a_time(&specs);
    let out = multi_column_sort(&inputs, &specs, &p0, &ExecConfig::default())
        .expect("valid sort instance");
    assert_eq!(out.stats.rounds[1].invocations, 0);
    assert_eq!(out.stats.rounds[1].codes_sorted, 0);
    assert_eq!(out.groups.num_groups(), n);
}
