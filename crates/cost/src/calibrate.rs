//! Calibration of the cost-model constants from controlled
//! micro-experiments (§4), following the paper's linear-system method:
//! rather than micro-benchmarking each constant in isolation, several
//! instantiations of the cost equations are measured and solved (or
//! least-squares-fitted) for the unknowns.

use std::time::Instant;

use mcs_columnar::CodeVec;
use mcs_core::{massage, Bank, GroupBounds, MassagePlan, SortConfig, SortSpec};
use mcs_simd_sort::{sort_pairs_in_groups, sort_pairs_with};
use mcs_test_support::Rng;

use crate::linalg::{least_squares_nonneg, solve};
use crate::machine::MachineSpec;
use crate::model::{BankConstants, CostConstants, CostModel};

/// Calibration tuning.
#[derive(Debug, Clone)]
pub struct CalibrationOptions {
    /// Rows for the sort/massage/scan experiments (`N_cal`). The paper
    /// uses 100× LLC; we default to 2^21 rows to keep calibration under a
    /// minute on one core — constants are per-row, so the scale cancels.
    pub rows: usize,
    /// Target cache-hit ratios for the two lookup instantiations of Eq. 3.
    pub lookup_ratios: (f64, f64),
    /// Group counts for the sort regression (each becomes one equation).
    pub group_counts: Vec<usize>,
    /// RNG seed (calibration is deterministic given the machine).
    pub seed: u64,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            rows: 1 << 21,
            lookup_ratios: (0.9, 0.3),
            group_counts: vec![1, 4, 64, 1024, 16 * 1024, 128 * 1024],
            seed: 0xC0FFEE,
        }
    }
}

impl CalibrationOptions {
    /// Tiny, fast options for tests.
    pub fn quick() -> Self {
        CalibrationOptions {
            rows: 1 << 15,
            lookup_ratios: (0.9, 0.5),
            group_counts: vec![1, 16, 256],
            seed: 7,
        }
    }
}

/// Run all calibration experiments and return a ready [`CostModel`].
pub fn calibrate(machine: MachineSpec, opts: &CalibrationOptions) -> CostModel {
    let (c_cache, c_mem) = calibrate_lookup(&machine, opts);
    let c_massage = calibrate_massage(opts);
    let c_scan = calibrate_scan(opts);

    // Per-bank sort constants share C_overhead; calibrate it on the
    // 32-bit bank (most common) and reuse.
    let mut consts = CostConstants::defaults();
    consts.c_cache = c_cache;
    consts.c_mem = c_mem;
    consts.c_massage = c_massage;
    consts.c_scan = c_scan;

    let model_seed = CostModel {
        consts: consts.clone(),
        machine: machine.clone(),
        ovc: true,
    };
    let (b16, ov16) = calibrate_sort_bank::<u16>(&model_seed, Bank::B16, opts);
    let (b32, ov32) = calibrate_sort_bank::<u32>(&model_seed, Bank::B32, opts);
    let (b64, ov64) = calibrate_sort_bank::<u64>(&model_seed, Bank::B64, opts);
    consts.b16 = b16;
    consts.b32 = b32;
    consts.b64 = b64;
    // One shared invocation overhead: average of the three fits.
    consts.c_overhead = (ov16 + ov32 + ov64) / 3.0;

    CostModel {
        consts,
        machine,
        ovc: true,
    }
}

/// Lookup calibration: two random-gather runs at different working-set
/// sizes, solved as a 2×2 linear system (Eq. 3 instantiated twice).
fn calibrate_lookup(machine: &MachineSpec, opts: &CalibrationOptions) -> (f64, f64) {
    let mut rng = Rng::seed_from_u64(opts.seed);
    let elem = 4usize; // 32-bit codes: size(w) = 4
    let mut rows_a = Vec::new();
    let mut rhs = Vec::new();
    for &ratio in &[opts.lookup_ratios.0, opts.lookup_ratios.1] {
        let n = ((machine.llc_bytes as f64 / ratio) / elem as f64) as usize;
        let data: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        // Fisher–Yates for a random access pattern.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            oids.swap(i, j);
        }
        let t = Instant::now();
        let mut acc = 0u64;
        for &o in &oids {
            acc = acc.wrapping_add(data[o as usize] as u64);
        }
        let per_row = t.elapsed().as_nanos() as f64 / n as f64;
        std::hint::black_box(acc);
        let h = (machine.llc_bytes as f64 / (n * elem) as f64).min(1.0);
        rows_a.push(vec![h, 1.0 - h]);
        rhs.push(per_row);
    }
    match solve(&rows_a, &rhs) {
        Some(x) if x[0] > 0.0 && x[1] > 0.0 => (x[0], x[1]),
        _ => {
            let d = CostConstants::defaults();
            (d.c_cache, d.c_mem)
        }
    }
}

/// Massage calibration: time the Ex3 `P_≪1` program (paper footnote 7)
/// and divide by `N_cal · I_FIP`.
fn calibrate_massage(opts: &CalibrationOptions) -> f64 {
    let n = opts.rows;
    let mut rng = Rng::seed_from_u64(opts.seed ^ 1);
    let c1 = CodeVec::from_u64s(17, (0..n).map(|_| rng.gen_range(0..(1u64 << 17))));
    let c2 = CodeVec::from_u64s(33, (0..n).map(|_| rng.gen_range(0..(1u64 << 33))));
    let specs = [SortSpec::asc(17), SortSpec::asc(33)];
    let plan = MassagePlan::from_widths(&[18, 32]);
    let t = Instant::now();
    let (keys, prog) = massage(&[&c1, &c2], &specs, &plan, 1);
    let elapsed = t.elapsed().as_nanos() as f64;
    std::hint::black_box(&keys);
    elapsed / (n as f64 * prog.i_fip() as f64)
}

/// Scan calibration: group-boundary extraction over a sorted column.
fn calibrate_scan(opts: &CalibrationOptions) -> f64 {
    let n = opts.rows;
    let mut rng = Rng::seed_from_u64(opts.seed ^ 2);
    let mut keys: Vec<u32> = (0..n)
        .map(|_| rng.gen_range(0..(n as u32 / 4).max(2)))
        .collect();
    keys.sort_unstable();
    let t = Instant::now();
    let g = GroupBounds::whole(n).refine_by(&keys);
    let elapsed = t.elapsed().as_nanos() as f64;
    std::hint::black_box(g.num_groups());
    elapsed / n as f64
}

/// Sort calibration for one bank: segmented sorts at several group
/// counts, least-squares over
/// `T = C_ov·n_sort + C_sn·codes + C_icm·codes·p_ic + C_ocm·codes·p_oc`.
/// Returns the bank constants and the fitted `C_overhead`.
fn calibrate_sort_bank<K>(
    model: &CostModel,
    bank: Bank,
    opts: &CalibrationOptions,
) -> (BankConstants, f64)
where
    K: mcs_simd_sort::SortableKey,
{
    let n = opts.rows;
    let mut rng = Rng::seed_from_u64(opts.seed ^ bank.bits() as u64);
    let base_keys: Vec<K> = (0..n).map(|_| K::from_u64(rng.gen())).collect();
    // Calibrate the *undiscounted* out-of-cache constant: offset-value
    // coding is modelled as a multiplier (`OVC_MERGE_DISCOUNT`) on top of
    // it, so measuring with OVC enabled would double-count the benefit.
    let cfg = SortConfig {
        use_ovc: false,
        ..SortConfig::default()
    };

    let mut a = Vec::new();
    let mut b = Vec::new();
    for &groups in &opts.group_counts {
        let groups = groups.min(n / 2).max(1);
        // Equal-size groups over the row range.
        let mut offsets: Vec<u32> = (0..=groups)
            .map(|g| ((g as u64 * n as u64) / groups as u64) as u32)
            .collect();
        offsets.dedup();
        let bounds = GroupBounds::from_offsets(offsets);
        let mut keys = base_keys.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        let t = Instant::now();
        let stats = sort_pairs_in_groups(&mut keys, &mut oids, &bounds, &cfg);
        let elapsed = t.elapsed().as_nanos() as f64;
        std::hint::black_box(&keys[0]);
        let avg = stats.codes_sorted as f64 / stats.invocations.max(1) as f64;
        let p_ic = model.in_cache_passes(avg, bank);
        let p_oc = model.merge_passes(avg, bank);
        let codes = stats.codes_sorted as f64;
        a.push(vec![
            stats.invocations as f64,
            codes,
            codes * p_ic,
            codes * p_oc,
        ]);
        b.push(elapsed);
    }
    // One full sort too (groups = 1 covered above if in group_counts).
    match least_squares_nonneg(&a, &b) {
        Some(x) => (
            BankConstants {
                c_sort_network: x[1].max(0.05),
                c_in_cache_merge: x[2].max(0.05),
                c_out_of_cache_merge: x[3].max(0.05),
            },
            x[0].max(100.0),
        ),
        None => {
            // Degenerate measurement (e.g. too few configs): fall back to
            // a single full-sort estimate for the linear term.
            let mut keys = base_keys.clone();
            let mut oids: Vec<u32> = (0..n as u32).collect();
            let t = Instant::now();
            sort_pairs_with(&mut keys, &mut oids, &cfg);
            let per = t.elapsed().as_nanos() as f64 / n as f64;
            let d = CostConstants::defaults();
            let mut bc = *d.bank(bank);
            bc.c_sort_network = per / 3.0;
            (bc, d.c_overhead)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_calibration_is_sane() {
        let model = calibrate(MachineSpec::detect(), &CalibrationOptions::quick());
        let c = &model.consts;
        assert!(
            c.c_cache > 0.0 && c.c_cache < 1000.0,
            "c_cache={}",
            c.c_cache
        );
        assert!(c.c_mem > 0.0, "c_mem={}", c.c_mem);
        assert!(c.c_massage > 0.0 && c.c_massage < 1000.0);
        assert!(c.c_scan > 0.0 && c.c_scan < 1000.0);
        assert!(c.c_overhead >= 100.0);
        for bc in [c.b16, c.b32, c.b64] {
            assert!(bc.c_sort_network > 0.0);
        }
    }

    #[test]
    fn calibrated_model_predicts_full_sort_within_factor() {
        // The model should predict a full 32-bit sort within ~3x at the
        // calibration scale (MRE in the paper is 0.36-0.57).
        let opts = CalibrationOptions {
            rows: 1 << 17,
            group_counts: vec![1, 8, 128, 4096],
            ..CalibrationOptions::quick()
        };
        let model = calibrate(MachineSpec::detect(), &opts);
        let n = 1usize << 17;
        let mut rng = Rng::seed_from_u64(42);
        let mut keys: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        let t = Instant::now();
        sort_pairs_with(&mut keys, &mut oids, &SortConfig::default());
        let actual = t.elapsed().as_nanos() as f64;
        let predicted = model.t_sort_invocation(n as f64, Bank::B32);
        let ratio = predicted / actual;
        assert!(
            (0.2..5.0).contains(&ratio),
            "predicted {predicted:.0} actual {actual:.0} ratio {ratio:.2}"
        );
    }
}
