//! Cardinality estimators: expected group counts and sizes after sorting a
//! bit prefix of the concatenated key.
//!
//! The cost model needs, for round `k` of a plan, the number of groups
//! formed by ties on rounds `1..k` (`N_group`), the number of those that
//! actually invoke a sort (`N_sort`: non-singletons), and the codes they
//! contain (Figure 4b's quantities). We estimate them from per-column
//! statistics with a balls-into-bins (Poisson) model:
//!
//! * the first `B` bits of the key project each tuple onto a *cell*;
//! * the number of possible cells `D` is estimated per column (full
//!   columns contribute their NDV, a partially covered column contributes
//!   the distinct count of its top bits, histogram-refined);
//! * among `N` tuples thrown into `D` cells (λ = N/D):
//!   `N_group ≈ D(1 − e^{−λ})`, singletons `≈ D·λ·e^{−λ}`.

use mcs_columnar::ColumnStats;

/// Statistics of one sort-key column, as the cost model consumes them.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyColumnStats {
    /// Code width in bits.
    pub width: u32,
    /// Number of distinct codes.
    pub ndv: f64,
    /// Optional equi-width histogram over the full `2^width` domain.
    pub histogram: Option<Vec<u64>>,
}

impl KeyColumnStats {
    /// Uniform assumption: `ndv` distinct values spread over the domain.
    pub fn uniform(width: u32, ndv: f64) -> KeyColumnStats {
        KeyColumnStats {
            width,
            ndv,
            histogram: None,
        }
    }

    /// From measured [`ColumnStats`].
    pub fn from_stats(width: u32, s: &ColumnStats) -> KeyColumnStats {
        KeyColumnStats {
            width,
            ndv: s.ndv as f64,
            histogram: Some(s.histogram.clone()),
        }
    }

    /// Quantized signature of these statistics, for plan-cache
    /// fingerprints (the planner crate's `PlanFingerprint`).
    ///
    /// The signature packs the code width, the NDV bucketed in
    /// half-octave (√2×) steps, and a 16-bit histogram-occupancy mask
    /// into one `u64`. It is deliberately *coarse*: two columns whose
    /// statistics differ by less than a bucket produce the same
    /// signature (so a cached plan keeps matching under small drift),
    /// while NDV drift past ~√2× or a shift in which histogram regions
    /// hold data changes the signature (so the cache entry silently
    /// stops matching and a fresh plan search runs).
    pub fn signature(&self) -> u64 {
        // 0 → bucket 0; otherwise 1 + floor(2·log2(ndv)) ∈ [1, 129].
        let ndv_bucket: u64 = if self.ndv < 1.0 {
            0
        } else {
            1 + (2.0 * self.ndv.log2()).floor().clamp(0.0, 128.0) as u64
        };
        // Fold however many histogram buckets exist onto a 16-bit
        // occupancy mask; no histogram → empty mask.
        let mut mask: u64 = 0;
        if let Some(h) = &self.histogram {
            if !h.is_empty() {
                for (i, &c) in h.iter().enumerate() {
                    if c > 0 {
                        mask |= 1 << (i * 16 / h.len());
                    }
                }
            }
        }
        (self.width as u64) << 32 | ndv_bucket << 16 | mask
    }

    /// Expected number of distinct values of the **top `p` bits** of this
    /// column (`0 ≤ p ≤ width`).
    ///
    /// With a histogram: non-empty coarse cells are counted directly when
    /// `p` is at or below histogram resolution; below that, each bucket's
    /// values are thrown into its sub-cells with the birthday bound.
    /// Without: the column's `ndv` values are assumed uniform over the
    /// `2^p` cells.
    pub fn distinct_top_bits(&self, p: u32) -> f64 {
        if p == 0 {
            return 1.0;
        }
        if p >= self.width {
            return self.ndv.max(1.0);
        }
        let cells = 2f64.powi(p as i32);
        match &self.histogram {
            Some(h) if !h.is_empty() => {
                let buckets = h.len() as f64;
                let total: u64 = h.iter().sum();
                if total == 0 {
                    return 1.0;
                }
                if cells <= buckets {
                    // Group buckets into `cells` coarse cells; count non-empty.
                    let per = (h.len() as f64 / cells).ceil() as usize;
                    let mut nonempty = 0.0f64;
                    for chunk in h.chunks(per) {
                        if chunk.iter().any(|&c| c > 0) {
                            nonempty += 1.0;
                        }
                    }
                    nonempty.max(1.0)
                } else {
                    // Sub-bucket resolution: distribute each bucket's share
                    // of the NDV over its sub-cells.
                    let sub_cells = cells / buckets;
                    let mut d = 0.0;
                    for &c in h {
                        if c == 0 {
                            continue;
                        }
                        let bucket_ndv = self.ndv * (c as f64 / total as f64);
                        d += birthday_distinct(bucket_ndv, sub_cells);
                    }
                    d.max(1.0)
                }
            }
            _ => birthday_distinct(self.ndv, cells).max(1.0),
        }
    }
}

/// Expected number of distinct cells hit when `v` distinct values are
/// placed uniformly at random into `m` cells: `m(1 − (1 − 1/m)^v)`.
pub fn birthday_distinct(v: f64, m: f64) -> f64 {
    if m <= 1.0 {
        return 1.0;
    }
    if v <= 0.0 {
        return 0.0;
    }
    m * (1.0 - (1.0 - 1.0 / m).powf(v))
}

/// Expected number of *possible* distinct prefixes for the first `bits`
/// bits of the concatenated key over `cols` (independence assumed):
/// product of per-column contributions.
pub fn possible_prefixes(cols: &[KeyColumnStats], bits: u32) -> f64 {
    let mut left = bits;
    let mut d = 1.0f64;
    for c in cols {
        if left == 0 {
            break;
        }
        let take = left.min(c.width);
        d *= c.distinct_top_bits(take);
        // Avoid overflow into inf for very wide keys.
        d = d.min(1e18);
        left -= take;
    }
    d
}

/// Group structure expected after sorting the first `bits` of the key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupEstimate {
    /// Expected number of non-empty groups (`N_group`).
    pub groups: f64,
    /// Expected number of groups with ≥ 2 rows (`N_sort`).
    pub sortable: f64,
    /// Expected rows contained in sortable groups (codes the next round
    /// must sort).
    pub codes_in_sortable: f64,
    /// Average size of a sortable group (`N̄_code`), ≥ 2 when defined.
    pub avg_sortable_size: f64,
}

/// Poisson (balls-into-bins) estimate for `rows` tuples over the prefix
/// cells of the first `bits` key bits.
pub fn estimate_groups(cols: &[KeyColumnStats], rows: usize, bits: u32) -> GroupEstimate {
    let n = rows as f64;
    if rows == 0 {
        return GroupEstimate {
            groups: 0.0,
            sortable: 0.0,
            codes_in_sortable: 0.0,
            avg_sortable_size: 0.0,
        };
    }
    let d = possible_prefixes(cols, bits).max(1.0);
    let lambda = n / d;
    let e = (-lambda).exp();
    let groups = (d * (1.0 - e)).clamp(1.0, n);
    let singletons = (d * lambda * e).clamp(0.0, n);
    let sortable = (groups - singletons).max(0.0);
    let codes_in_sortable = (n - singletons).max(0.0);
    let avg = if sortable > 0.5 {
        (codes_in_sortable / sortable).max(2.0)
    } else {
        0.0
    };
    GroupEstimate {
        groups,
        sortable,
        codes_in_sortable,
        avg_sortable_size: avg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn birthday_limits() {
        assert!((birthday_distinct(1.0, 1024.0) - 1.0).abs() < 1e-9);
        // Many values into few cells -> all cells hit.
        assert!((birthday_distinct(1e6, 16.0) - 16.0).abs() < 1e-6);
        // v << m: ~v distinct.
        let d = birthday_distinct(10.0, 1e9);
        assert!((d - 10.0).abs() < 0.01);
    }

    #[test]
    fn top_bits_uniform() {
        let c = KeyColumnStats::uniform(20, 8192.0);
        assert_eq!(c.distinct_top_bits(0), 1.0);
        assert_eq!(c.distinct_top_bits(20), 8192.0);
        // 4 top bits -> at most 16 cells, all hit with 8192 values.
        assert!((c.distinct_top_bits(4) - 16.0).abs() < 1e-6);
        // Monotone in p.
        let mut prev = 0.0;
        for p in 0..=20 {
            let d = c.distinct_top_bits(p);
            assert!(d >= prev - 1e-9, "p={p}");
            prev = d;
        }
    }

    #[test]
    fn top_bits_histogram_skew() {
        // All mass in one of 16 buckets: top-4-bits has exactly 1 distinct.
        let mut h = vec![0u64; 16];
        h[3] = 1000;
        let c = KeyColumnStats {
            width: 16,
            ndv: 500.0,
            histogram: Some(h),
        };
        assert_eq!(c.distinct_top_bits(4), 1.0);
        assert_eq!(c.distinct_top_bits(1), 1.0);
        // Finer than the histogram: 500 values spread over the bucket's
        // 2^8/16 = ... sub-cells of the 8-bit prefix.
        let d = c.distinct_top_bits(8);
        assert!(d > 1.0 && d <= 16.0 + 1.0, "d={d}");
    }

    #[test]
    fn possible_prefixes_products() {
        let cols = vec![
            KeyColumnStats::uniform(10, 1024.0),
            KeyColumnStats::uniform(17, 8192.0),
        ];
        // Whole first column only.
        assert!((possible_prefixes(&cols, 10) - 1024.0).abs() < 1e-6);
        // First column + the full second: 1024 * 8192.
        assert!((possible_prefixes(&cols, 27) - 1024.0 * 8192.0).abs() < 1.0);
        // Zero bits: one cell.
        assert_eq!(possible_prefixes(&cols, 0), 1.0);
    }

    #[test]
    fn group_estimates_match_figure4b_shape() {
        // Ex3 setting: N = 2^24 rows; both columns have 2^13 NDV.
        // (We validate the *shape*: more prefix bits -> more groups,
        // smaller average group.)
        let cols = vec![
            KeyColumnStats::uniform(17, 8192.0),
            KeyColumnStats::uniform(33, 8192.0),
        ];
        let n = 1usize << 24;
        let e18 = estimate_groups(&cols, n, 18);
        let e19 = estimate_groups(&cols, n, 19);
        let e34 = estimate_groups(&cols, n, 34);
        assert!(e19.groups >= e18.groups);
        assert!(e19.avg_sortable_size <= e18.avg_sortable_size);
        // After enough bits, lambda is small and most groups singleton.
        assert!(e34.sortable < e34.groups);
        // First-round estimate with all 17 bits: ~8192 groups (ndv-capped).
        let e17 = estimate_groups(&cols, n, 17);
        assert!((e17.groups - 8192.0).abs() < 1.0);
        assert!(e17.avg_sortable_size > 2000.0);
    }

    #[test]
    fn signature_is_stable_under_small_drift_and_changes_past_threshold() {
        let base = KeyColumnStats::uniform(17, 900.0);
        // Small drift within a half-octave bucket keeps the signature.
        assert_eq!(
            base.signature(),
            KeyColumnStats::uniform(17, 950.0).signature()
        );
        assert_eq!(
            base.signature(),
            KeyColumnStats::uniform(17, 1000.0).signature()
        );
        // Large drift changes it.
        assert_ne!(
            base.signature(),
            KeyColumnStats::uniform(17, 5000.0).signature()
        );
        assert_ne!(
            base.signature(),
            KeyColumnStats::uniform(17, 100.0).signature()
        );
        // Width is part of the signature.
        assert_ne!(
            base.signature(),
            KeyColumnStats::uniform(18, 900.0).signature()
        );
        // Degenerate NDVs don't collide with real ones.
        assert_ne!(
            KeyColumnStats::uniform(8, 0.0).signature(),
            KeyColumnStats::uniform(8, 1.0).signature()
        );
    }

    #[test]
    fn signature_tracks_histogram_occupancy() {
        let mut h = vec![0u64; 16];
        h[3] = 1000;
        let lo = KeyColumnStats {
            width: 16,
            ndv: 500.0,
            histogram: Some(h.clone()),
        };
        // Same shape, same signature.
        let mut h2 = vec![0u64; 16];
        h2[3] = 900; // counts differ, occupancy identical
        let lo2 = KeyColumnStats {
            width: 16,
            ndv: 500.0,
            histogram: Some(h2),
        };
        assert_eq!(lo.signature(), lo2.signature());
        // Mass moving into a different region flips the mask.
        let mut h3 = vec![0u64; 16];
        h3[12] = 1000;
        let hi = KeyColumnStats {
            width: 16,
            ndv: 500.0,
            histogram: Some(h3),
        };
        assert_ne!(lo.signature(), hi.signature());
        // Coarser/finer histograms fold onto the same 16-bit mask.
        let mut h64 = vec![0u64; 64];
        // Buckets 12..16 of 64 fold onto mask bit 3.
        h64[12..16].fill(250);
        let folded = KeyColumnStats {
            width: 16,
            ndv: 500.0,
            histogram: Some(h64),
        };
        assert_eq!(lo.signature(), folded.signature());
    }

    #[test]
    fn zero_rows() {
        let cols = vec![KeyColumnStats::uniform(8, 10.0)];
        let e = estimate_groups(&cols, 0, 8);
        assert_eq!(e.groups, 0.0);
    }
}
