//! # mcs-cost
//!
//! The architecture-aware, calibrated cost model of §4 of *Fast
//! Multi-Column Sorting in Main-Memory Column-Stores* (SIGMOD'16).
//!
//! `T_mcs`, the estimated CPU time of a multi-column sort under a massage
//! plan, decomposes into:
//!
//! * `T_lookup` (Eq. 3) — random-gather cost, cache-hit-ratio model;
//! * `T_massage` (Eq. 4) — `I_FIP` sequential bit-repacking passes;
//! * `T_sort` (Eqs. 1, 2, 5–8) — per-round segmented SIMD merge-sort:
//!   invocation overhead + in-register + in-cache + out-of-cache terms;
//! * `T_scan` (Eq. 9) — sequential group-boundary extraction.
//!
//! Constants are **calibrated** ([`calibrate`]) by timing controlled
//! micro-experiments and solving the resulting linear systems, as in the
//! paper — not micro-benchmarked individually. Group cardinalities per
//! round come from balls-into-bins estimators over per-column statistics
//! ([`estimate_groups`]).
//!
//! ```
//! use mcs_cost::{CostModel, SortInstance};
//! use mcs_core::MassagePlan;
//!
//! // Ex1: stitching a 10-bit and a 17-bit column beats column-at-a-time.
//! let inst = SortInstance::uniform(1 << 24, &[(10, 1024.0), (17, 8192.0)]);
//! let model = CostModel::with_defaults();
//! let stitched = MassagePlan::from_widths(&[27]);
//! assert!(model.t_mcs(&inst, &stitched) < model.t_mcs(&inst, &inst.p0()));
//! ```

#![warn(missing_docs)]

mod calibrate;
mod estimate;
mod linalg;
mod machine;
mod model;

pub use calibrate::{calibrate, CalibrationOptions};
pub use estimate::{
    birthday_distinct, estimate_groups, possible_prefixes, GroupEstimate, KeyColumnStats,
};
pub use linalg::{least_squares, least_squares_nonneg, solve};
pub use machine::MachineSpec;
pub use model::{
    BankConstants, CostBreakdown, CostConstants, CostModel, PlanCost, RoundCost, SortInstance,
    OVC_MERGE_DISCOUNT, SPILL_BYTE_NS,
};
