//! Minimal dense linear algebra for calibration: Gaussian elimination and
//! least squares via normal equations. No external dependencies.

/// Solve the square system `A x = b` by Gaussian elimination with partial
/// pivoting. Returns `None` if the matrix is (numerically) singular.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|r| r.len() == n) && b.len() == n);
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let (piv, piv_val) = (col..n)
            .map(|r| (r, m[r][col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))?;
        if piv_val < 1e-12 {
            return None;
        }
        m.swap(col, piv);
        let diag = m[col][col];
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[r][col] / diag;
            if f == 0.0 {
                continue;
            }
            // Indexing two distinct rows of `m`; an iterator over one
            // row would conflict with the shared borrow of the other.
            #[allow(clippy::needless_range_loop)]
            for c in col..=n {
                m[r][c] -= f * m[col][c];
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

/// Least-squares solution of the overdetermined system `A x ≈ b`
/// (`rows ≥ cols`) via the normal equations `AᵀA x = Aᵀb`.
pub fn least_squares(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let rows = a.len();
    assert!(rows >= 1 && b.len() == rows);
    let cols = a[0].len();
    assert!(a.iter().all(|r| r.len() == cols));
    let mut ata = vec![vec![0.0; cols]; cols];
    let mut atb = vec![0.0; cols];
    for (row, &bi) in a.iter().zip(b) {
        for i in 0..cols {
            for j in 0..cols {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * bi;
        }
    }
    solve(&ata, &atb)
}

/// Least squares constrained to non-negative results: solves, then clamps
/// tiny negatives (numerical noise in calibration) to zero.
pub fn least_squares_nonneg(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    least_squares(a, b).map(|x| x.into_iter().map(|v| v.max(0.0)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        // From the paper's lookup calibration: two instantiations of Eq 3.
        let a = vec![vec![0.9, 0.1], vec![0.1, 0.9]];
        let b = vec![0.9 * 4.0 + 0.1 * 100.0, 0.1 * 4.0 + 0.9 * 100.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-9);
        assert!((x[1] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn least_squares_recovers_exact() {
        // y = 2 + 3x over 5 points, no noise.
        let a: Vec<Vec<f64>> = (0..5).map(|i| vec![1.0, i as f64]).collect();
        let b: Vec<f64> = (0..5).map(|i| 2.0 + 3.0 * i as f64).collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_with_noise() {
        let a: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0, i as f64]).collect();
        let b: Vec<f64> = (0..100)
            .map(|i| 5.0 + 0.5 * i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 5.0).abs() < 0.1);
        assert!((x[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn nonneg_clamps() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = least_squares_nonneg(&a, &[-0.5, 2.0]).unwrap();
        assert_eq!(x, vec![0.0, 2.0]);
    }

    #[test]
    fn solve_3x3() {
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] - -1.0).abs() < 1e-9);
    }
}
