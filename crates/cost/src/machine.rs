//! Hardware description used by the cost model (the paper's `M_LLC`,
//! `M_L2`, `S` and merge fan-out `F`).

use std::fs;

/// Architectural parameters of the machine the column-store runs on.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Last-level cache capacity in bytes (`M_LLC`, Eq. 3).
    pub llc_bytes: usize,
    /// L2 cache capacity in bytes (`M_L2`, Eqs. 7–8).
    pub l2_bytes: usize,
    /// SIMD register width in bits (`S`; 256 for AVX2).
    pub simd_bits: u32,
    /// Fan-out `F` of the out-of-cache merge tree (Eq. 8).
    pub fanout: usize,
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec {
            llc_bytes: 32 * 1024 * 1024,
            l2_bytes: 2 * 1024 * 1024,
            simd_bits: 256,
            fanout: 8,
        }
    }
}

impl MachineSpec {
    /// Detect cache sizes from `/sys` (Linux), falling back to defaults.
    ///
    /// Virtualized environments sometimes advertise enormous shared LLCs;
    /// `llc_bytes` is capped at 64 MiB so calibration working sets stay
    /// practical — the cap is applied consistently to both calibration and
    /// cost estimation, so plan rankings are unaffected.
    pub fn detect() -> MachineSpec {
        let mut spec = MachineSpec::default();
        let base = "/sys/devices/system/cpu/cpu0/cache";
        if let Ok(entries) = fs::read_dir(base) {
            for e in entries.flatten() {
                let p = e.path();
                let level: u32 = read_trim(&p.join("level"))
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                let ty = read_trim(&p.join("type")).unwrap_or_default();
                let size = read_trim(&p.join("size")).and_then(|s| parse_size(&s));
                if let Some(bytes) = size {
                    match (level, ty.as_str()) {
                        (2, "Unified") => spec.l2_bytes = bytes,
                        (3, "Unified") | (4, "Unified") => spec.llc_bytes = bytes,
                        _ => {}
                    }
                }
            }
        }
        spec.llc_bytes = spec.llc_bytes.min(64 * 1024 * 1024);
        spec
    }

    /// The in-cache merged-run capacity in *codes* for bank width `b` bits:
    /// `0.5 · M_L2 / (b/8)` (Eq. 7 context). Our sort carries a 4-byte oid
    /// payload per code, which the per-element footprint includes.
    pub fn in_cache_run_codes(&self, bank_bits: u32) -> f64 {
        (0.5 * self.l2_bytes as f64) / (bank_bits as f64 / 8.0 + 4.0)
    }
}

fn read_trim(p: &std::path::Path) -> Option<String> {
    fs::read_to_string(p).ok().map(|s| s.trim().to_string())
}

/// Parse `"48K"` / `"2048K"` / `"32M"` / plain bytes.
fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim();
    if let Some(v) = s.strip_suffix(['K', 'k']) {
        v.parse::<usize>().ok().map(|x| x * 1024)
    } else if let Some(v) = s.strip_suffix(['M', 'm']) {
        v.parse::<usize>().ok().map(|x| x * 1024 * 1024)
    } else if let Some(v) = s.strip_suffix(['G', 'g']) {
        v.parse::<usize>().ok().map(|x| x * 1024 * 1024 * 1024)
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_size("48K"), Some(48 * 1024));
        assert_eq!(parse_size("2048K"), Some(2048 * 1024));
        assert_eq!(parse_size("32M"), Some(32 * 1024 * 1024));
        assert_eq!(parse_size("123"), Some(123));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn detect_is_sane() {
        let m = MachineSpec::detect();
        assert!(m.l2_bytes >= 64 * 1024);
        assert!(m.llc_bytes >= m.l2_bytes);
        assert!(m.llc_bytes <= 64 * 1024 * 1024);
    }

    #[test]
    fn in_cache_run_shrinks_with_bank() {
        let m = MachineSpec::default();
        assert!(m.in_cache_run_codes(16) > m.in_cache_run_codes(32));
        assert!(m.in_cache_run_codes(32) > m.in_cache_run_codes(64));
    }
}
