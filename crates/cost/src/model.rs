//! The architecture-aware cost model (§4): Equations 1–9 with calibrated
//! constants, estimating `T_mcs`, the CPU time of a multi-column sort
//! under a given massage plan.

use mcs_columnar::size_of_width;
use mcs_core::{Bank, MassagePlan, SortSpec};

use crate::estimate::{estimate_groups, GroupEstimate, KeyColumnStats};
use crate::machine::MachineSpec;

/// Per-bank merge-sort constants (ns per code).
///
/// Deviation from the paper, for identifiability: Eq. 7 folds all
/// in-cache merge passes into one constant, which makes
/// `C_sort-network` and `C_in-cache-merge` share the coefficient `N` in
/// the calibration linear system (singular). We keep
/// `c_in_cache_merge` **per binary merge pass** — the number of in-cache
/// passes varies with the sorted size, so all four constants are
/// identifiable from the same experiment the paper describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankConstants {
    /// `C^b_sort-network` (Eq. 6): in-register sorting per code.
    pub c_sort_network: f64,
    /// `C^b_in-cache-merge` (Eq. 7, per-pass form): one binary in-cache
    /// merge pass per code.
    pub c_in_cache_merge: f64,
    /// `C^b_out-of-cache-merge` (Eq. 8): one out-of-cache pass per code.
    pub c_out_of_cache_merge: f64,
}

/// All calibrated constants of the model (ns; the paper uses cycles — a
/// constant factor at fixed frequency).
#[derive(Debug, Clone, PartialEq)]
pub struct CostConstants {
    /// `C_cache`: latency of a data item in cache (Eq. 3).
    pub c_cache: f64,
    /// `C_mem`: latency of a data item in memory (Eq. 3).
    pub c_mem: f64,
    /// `C_massage`: one four-instruction program over one row (Eq. 4).
    pub c_massage: f64,
    /// `C_scan`: sequential scan + group fill, per row (Eq. 9).
    pub c_scan: f64,
    /// `C_overhead`: merge-sort invocation overhead (Eq. 2).
    pub c_overhead: f64,
    /// Per-bank constants, indexed 16/32/64.
    pub b16: BankConstants,
    /// 32-bit bank constants.
    pub b32: BankConstants,
    /// 64-bit bank constants.
    pub b64: BankConstants,
}

impl CostConstants {
    /// Ballpark defaults (measured once on the development machine); use
    /// [`crate::calibrate::calibrate`] for real rankings.
    pub fn defaults() -> CostConstants {
        CostConstants {
            c_cache: 4.0,
            c_mem: 70.0,
            c_massage: 2.0,
            c_scan: 1.5,
            c_overhead: 150.0,
            b16: BankConstants {
                c_sort_network: 1.0,
                c_in_cache_merge: 1.0,
                c_out_of_cache_merge: 15.0,
            },
            b32: BankConstants {
                c_sort_network: 1.6,
                c_in_cache_merge: 3.2,
                c_out_of_cache_merge: 15.0,
            },
            b64: BankConstants {
                c_sort_network: 4.0,
                c_in_cache_merge: 12.0,
                c_out_of_cache_merge: 20.0,
            },
        }
    }

    /// Constants for a bank.
    pub fn bank(&self, b: Bank) -> &BankConstants {
        match b {
            Bank::B16 => &self.b16,
            Bank::B32 => &self.b32,
            Bank::B64 => &self.b64,
        }
    }
}

/// One multi-column sorting problem instance, as the optimizer sees it.
#[derive(Debug, Clone)]
pub struct SortInstance {
    /// Number of rows `N`.
    pub rows: usize,
    /// Sort columns in order (widths + directions).
    pub specs: Vec<SortSpec>,
    /// Per-column statistics, aligned with `specs`.
    pub stats: Vec<KeyColumnStats>,
    /// Whether the final grouping must be produced (GROUP BY /
    /// PARTITION BY, or any non-final round).
    pub want_final_groups: bool,
}

impl SortInstance {
    /// Uniform-distribution instance: `ndv` distinct values per column.
    pub fn uniform(rows: usize, widths_ndv: &[(u32, f64)]) -> SortInstance {
        SortInstance {
            rows,
            specs: widths_ndv.iter().map(|&(w, _)| SortSpec::asc(w)).collect(),
            stats: widths_ndv
                .iter()
                .map(|&(w, d)| KeyColumnStats::uniform(w, d))
                .collect(),
            want_final_groups: true,
        }
    }

    /// Total key width `W`.
    pub fn total_width(&self) -> u32 {
        self.specs.iter().map(|s| s.width).sum()
    }

    /// The column-at-a-time plan `P_0` for this instance.
    pub fn p0(&self) -> MassagePlan {
        MassagePlan::column_at_a_time(&self.specs)
    }
}

/// Cost breakdown of one plan (ns).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostBreakdown {
    /// `T_massage`.
    pub massage: f64,
    /// Σ `T_lookup` over rounds.
    pub lookup: f64,
    /// Σ `T_sort` over rounds.
    pub sort: f64,
    /// Σ `T_scan` over rounds.
    pub scan: f64,
}

impl CostBreakdown {
    /// `T_mcs` — the total.
    pub fn total(&self) -> f64 {
        self.massage + self.lookup + self.sort + self.scan
    }
}

/// Predicted cost of one execution round (ns) — the per-round view the
/// `EXPLAIN` report lines up against measured [`mcs_core::RoundStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundCost {
    /// Bits sorted this round.
    pub width: u32,
    /// SIMD bank of the round.
    pub bank: Bank,
    /// Predicted `T_lookup` (0 for the first round).
    pub lookup: f64,
    /// Predicted `T_sort`.
    pub sort: f64,
    /// Predicted `T_scan` (0 when the final scan is skipped).
    pub scan: f64,
    /// Estimated number of groups entering the round (1 for round 1).
    pub est_groups_in: f64,
}

impl RoundCost {
    /// Predicted round total.
    pub fn total(&self) -> f64 {
        self.lookup + self.sort + self.scan
    }
}

/// Per-round predicted cost of a whole plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCost {
    /// Predicted `T_massage` (0 for identity plans on ascending keys).
    pub massage: f64,
    /// One entry per plan round, in execution order.
    pub rounds: Vec<RoundCost>,
}

impl PlanCost {
    /// `T_mcs` — the plan total.
    pub fn total(&self) -> f64 {
        self.massage + self.rounds.iter().map(RoundCost::total).sum::<f64>()
    }

    /// Collapse to the four-phase [`CostBreakdown`].
    pub fn breakdown(&self) -> CostBreakdown {
        CostBreakdown {
            massage: self.massage,
            lookup: self.rounds.iter().map(|r| r.lookup).sum(),
            sort: self.rounds.iter().map(|r| r.sort).sum(),
            scan: self.rounds.iter().map(|r| r.scan).sum(),
        }
    }
}

/// Fraction of the calibrated out-of-cache merge cost that remains when
/// the executor runs the loser tree with offset-value codes: most matches
/// resolve on a single `u32` code comparison instead of a full key
/// comparison plus the code-update bookkeeping, which empirically shaves
/// ~15% off the per-pass cost on uniform keys. A multiplier (rather than
/// a separately calibrated constant) keeps the calibration linear system
/// unchanged.
pub const OVC_MERGE_DISCOUNT: f64 = 0.85;

/// Nanoseconds charged per byte moved through the spill path of the
/// out-of-core sort. Every spilled byte is written once (run files) and
/// read back once (the streaming merge), so the external path adds
/// `2 · spilled_bytes · SPILL_BYTE_NS` on top of the in-memory plan cost
/// — see [`CostModel::t_spill`]. Pinned at roughly 1 GB/s of effective
/// sequential spill bandwidth rather than calibrated: the constant is
/// plan-independent (every plan spills the same packed keys), so it
/// never perturbs plan *ranking*, only the absolute estimate EXPLAIN
/// reports for budgeted queries.
pub const SPILL_BYTE_NS: f64 = 1.0;

/// The calibrated cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Calibrated constants.
    pub consts: CostConstants,
    /// Machine parameters.
    pub machine: MachineSpec,
    /// Whether the executor's out-of-cache merge uses offset-value codes
    /// ([`OVC_MERGE_DISCOUNT`] is applied to `c_out_of_cache_merge` when
    /// set). Must mirror the executor's `SortConfig::use_ovc` so
    /// predictions line up with measurements; both default to `true`.
    pub ovc: bool,
}

impl CostModel {
    /// Model with default constants and a detected machine (fast; for
    /// tests and examples — benchmarks should calibrate).
    pub fn with_defaults() -> CostModel {
        CostModel {
            consts: CostConstants::defaults(),
            machine: MachineSpec::detect(),
            ovc: true,
        }
    }

    /// Predicted time (ns) the out-of-core path spends moving
    /// `spilled_bytes` of run files to disk and back: one sequential
    /// write plus one sequential read at [`SPILL_BYTE_NS`] per byte.
    /// Additive on top of the plan's in-memory cost and identical for
    /// every plan, so it leaves plan ranking untouched.
    #[inline]
    pub fn t_spill(&self, spilled_bytes: u64) -> f64 {
        2.0 * spilled_bytes as f64 * SPILL_BYTE_NS
    }

    /// Effective out-of-cache merge constant for `bank`, including the
    /// offset-value-code discount when [`CostModel::ovc`] is set.
    #[inline]
    pub fn c_out_of_cache_merge(&self, bank: Bank) -> f64 {
        let c = self.consts.bank(bank).c_out_of_cache_merge;
        if self.ovc {
            c * OVC_MERGE_DISCOUNT
        } else {
            c
        }
    }

    /// `T_lookup` (Eq. 3): `N` random accesses into a `width`-bit column.
    pub fn t_lookup(&self, n: usize, width: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let footprint = (n * size_of_width(width)) as f64;
        let h = (self.machine.llc_bytes as f64 / footprint).min(1.0);
        n as f64 * (self.consts.c_cache * h + self.consts.c_mem * (1.0 - h))
    }

    /// `T_massage` (Eq. 4).
    pub fn t_massage(&self, n: usize, i_fip: usize) -> f64 {
        i_fip as f64 * self.consts.c_massage * n as f64
    }

    /// `T_scan` (Eq. 9).
    pub fn t_scan(&self, n: usize) -> f64 {
        self.consts.c_scan * n as f64
    }

    /// Out-of-cache merge passes for `n` codes in bank `b`
    /// (`⌈log_F(n·(b/8)/0.5·M_L2)⌉`, Eq. 8; 0 when the data fits).
    pub fn merge_passes(&self, n: f64, bank: Bank) -> f64 {
        let run = self.machine.in_cache_run_codes(bank.bits());
        if n <= run {
            0.0
        } else {
            (n / run).ln() / (self.machine.fanout as f64).ln()
        }
        .ceil()
    }

    /// Binary in-cache merge passes for `n` codes in bank `b`:
    /// `⌈log2(min(n, in-cache-run) / L)⌉`, 0 when `n ≤ L`.
    pub fn in_cache_passes(&self, n: f64, bank: Bank) -> f64 {
        let l = bank.lanes() as f64;
        let run = self.machine.in_cache_run_codes(bank.bits());
        let top = n.min(run);
        if top <= l {
            0.0
        } else {
            (top / l).log2().ceil()
        }
    }

    /// `T_mergesort` (Eq. 5): one merge-sort of `n` codes in bank `b`.
    pub fn t_mergesort(&self, n: f64, bank: Bank) -> f64 {
        let bc = self.consts.bank(bank);
        let p_ic = self.in_cache_passes(n, bank);
        let p_oc = self.merge_passes(n, bank);
        bc.c_sort_network * n
            + bc.c_in_cache_merge * n * p_ic
            + self.c_out_of_cache_merge(bank) * n * p_oc
    }

    /// `T_sort(N, b)` (Eq. 2): one SIMD-sort invocation.
    pub fn t_sort_invocation(&self, n: f64, bank: Bank) -> f64 {
        if n <= 1.0 {
            return 0.0;
        }
        self.consts.c_overhead + self.t_mergesort(n, bank)
    }

    /// `T^k_sort` (Eq. 1) for a round sorting within the estimated groups.
    pub fn t_sort_round(&self, est: &GroupEstimate, bank: Bank) -> f64 {
        if est.sortable < 0.5 {
            return 0.0;
        }
        let bc = self.consts.bank(bank);
        let p_ic = self.in_cache_passes(est.avg_sortable_size, bank);
        let p_oc = self.merge_passes(est.avg_sortable_size, bank);
        est.sortable * self.consts.c_overhead
            + est.codes_in_sortable * bc.c_sort_network
            + est.codes_in_sortable * bc.c_in_cache_merge * p_ic
            + est.codes_in_sortable * self.c_out_of_cache_merge(bank) * p_oc
    }

    /// `T_sort^{j+1}` given that rounds `1..=j` cover `prefix_bits` of the
    /// key and round `j+1` uses `bank` — the quantity Algorithm 1's greedy
    /// step minimizes (its line 11).
    pub fn t_sort_after_prefix(&self, inst: &SortInstance, prefix_bits: u32, bank: Bank) -> f64 {
        let est = estimate_groups(&inst.stats, inst.rows, prefix_bits);
        self.t_sort_round(&est, bank)
    }

    /// Full per-round `T_mcs` prediction of executing `plan` on `inst` —
    /// one [`RoundCost`] per round plus the massage term. This is the
    /// model's finest-grained output; [`Self::t_mcs_breakdown`] and
    /// [`Self::t_mcs`] are sums over it.
    pub fn t_mcs_rounds(&self, inst: &SortInstance, plan: &MassagePlan) -> PlanCost {
        if mcs_faults::fault_point!(mcs_faults::points::COST_NAN) {
            return PlanCost {
                massage: f64::NAN,
                rounds: Vec::new(),
            };
        }
        let n = inst.rows;
        let in_widths: Vec<u32> = inst.specs.iter().map(|s| s.width).collect();

        // Massage: free only for the identity (column-aligned, all-ASC).
        let identity =
            plan.is_column_aligned(&in_widths) && inst.specs.iter().all(|s| !s.descending);
        let massage = if identity {
            0.0
        } else {
            self.t_massage(n, plan.i_fip(&in_widths))
        };

        let last = plan.rounds.len() - 1;
        let mut prefix_bits = 0u32;
        let mut rounds = Vec::with_capacity(plan.rounds.len());
        for (k, round) in plan.rounds.iter().enumerate() {
            let mut rc = RoundCost {
                width: round.width,
                bank: round.bank,
                lookup: 0.0,
                sort: 0.0,
                scan: 0.0,
                est_groups_in: 1.0,
            };
            if k == 0 {
                rc.sort = self.t_sort_invocation(n as f64, round.bank);
            } else {
                rc.lookup = self.t_lookup(n, round.width);
                let est = estimate_groups(&inst.stats, n, prefix_bits);
                rc.est_groups_in = est.groups;
                rc.sort = self.t_sort_round(&est, round.bank);
            }
            if k < last || inst.want_final_groups {
                rc.scan = self.t_scan(n);
            }
            prefix_bits += round.width;
            rounds.push(rc);
        }
        PlanCost { massage, rounds }
    }

    /// Full `T_mcs` (ns) of executing `plan` on `inst`, with breakdown.
    pub fn t_mcs_breakdown(&self, inst: &SortInstance, plan: &MassagePlan) -> CostBreakdown {
        self.t_mcs_rounds(inst, plan).breakdown()
    }

    /// `T_mcs` (ns).
    pub fn t_mcs(&self, inst: &SortInstance, plan: &MassagePlan) -> f64 {
        self.t_mcs_breakdown(inst, plan).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            consts: CostConstants::defaults(),
            machine: MachineSpec::default(),
            ovc: true,
        }
    }

    #[test]
    fn lookup_cost_grows_past_cache() {
        let m = model();
        // Tiny column: all cached.
        let small = m.t_lookup(1000, 32) / 1000.0;
        assert!((small - m.consts.c_cache).abs() < 1e-9);
        // Huge column: mostly memory.
        let n = 64 * 1024 * 1024;
        let big = m.t_lookup(n, 32) / n as f64;
        assert!(big > 0.8 * m.consts.c_mem);
    }

    #[test]
    fn merge_passes_zero_in_cache() {
        let m = model();
        assert_eq!(m.merge_passes(100.0, Bank::B32), 0.0);
        let run = m.machine.in_cache_run_codes(32);
        assert_eq!(m.merge_passes(run * 2.0, Bank::B32), 1.0);
        assert!(m.merge_passes(run * 100.0, Bank::B32) >= 2.0);
    }

    #[test]
    fn ex1_stitching_beats_p0() {
        // Ex1: 10-bit + 17-bit columns, 2^24 rows, 2^10/2^13 NDV.
        // The stitched 27-bit plan should beat column-at-a-time.
        let inst = SortInstance::uniform(1 << 24, &[(10, 1024.0), (17, 8192.0)]);
        let m = model();
        let p0 = inst.p0();
        let stitched = MassagePlan::from_widths(&[27]);
        assert!(
            m.t_mcs(&inst, &stitched) < m.t_mcs(&inst, &p0),
            "stitch {} vs p0 {}",
            m.t_mcs(&inst, &stitched),
            m.t_mcs(&inst, &p0)
        );
    }

    #[test]
    fn ex2_reckless_stitch_loses() {
        // Ex2: 15-bit + 31-bit; stitching to 46 bits forces a 64-bit bank
        // and should LOSE to P0 (paper Figure 3b).
        let inst = SortInstance::uniform(1 << 24, &[(15, 8192.0), (31, 8192.0)]);
        let m = model();
        let p0 = inst.p0();
        let stitched = MassagePlan::from_widths(&[46]);
        assert!(
            m.t_mcs(&inst, &stitched) > m.t_mcs(&inst, &p0),
            "stitch {} vs p0 {}",
            m.t_mcs(&inst, &stitched),
            m.t_mcs(&inst, &p0)
        );
    }

    #[test]
    fn ex3_borrow_one_bit_wins() {
        // Ex3: 17+33 bits. P_<<1 = {18/[32], 32/[32]} should beat P0 =
        // {17/[32], 33/[64]} (paper Figure 4a).
        let inst = SortInstance::uniform(1 << 24, &[(17, 8192.0), (33, 8192.0)]);
        let m = model();
        let p0 = inst.p0();
        let p1 = MassagePlan::from_widths(&[18, 32]);
        assert!(m.t_mcs(&inst, &p1) < m.t_mcs(&inst, &p0));
    }

    #[test]
    fn ex4_three_rounds_beat_two() {
        // Ex4: 48+48 bits. {32,32,32} (all 32-bit banks) should beat
        // P0 = {48/[64], 48/[64]} (paper Figure 3c).
        let inst = SortInstance::uniform(1 << 24, &[(48, 8192.0), (48, 8192.0)]);
        let m = model();
        let p0 = inst.p0();
        let p3 = MassagePlan::from_widths(&[32, 32, 32]);
        assert!(m.t_mcs(&inst, &p3) < m.t_mcs(&inst, &p0));
    }

    #[test]
    fn ovc_discount_applies_only_to_out_of_cache_merge() {
        let with_ovc = model();
        let without = CostModel {
            ovc: false,
            ..model()
        };
        // In-cache sizes: no out-of-cache passes, so no discount.
        let small = 1000.0;
        assert_eq!(with_ovc.merge_passes(small, Bank::B32), 0.0);
        assert_eq!(
            with_ovc.t_mergesort(small, Bank::B32),
            without.t_mergesort(small, Bank::B32)
        );
        // Out-of-cache sizes: exactly the discounted merge term differs.
        let big = with_ovc.machine.in_cache_run_codes(32) * 64.0;
        let p_oc = with_ovc.merge_passes(big, Bank::B32);
        assert!(p_oc >= 1.0);
        let expected_delta =
            without.consts.b32.c_out_of_cache_merge * (1.0 - OVC_MERGE_DISCOUNT) * big * p_oc;
        let delta = without.t_mergesort(big, Bank::B32) - with_ovc.t_mergesort(big, Bank::B32);
        assert!((delta - expected_delta).abs() < 1e-6);
    }

    #[test]
    fn spill_term_is_linear_and_plan_independent() {
        let m = CostModel::with_defaults();
        assert_eq!(m.t_spill(0), 0.0);
        // One write + one read per byte.
        assert!((m.t_spill(1_000) - 2_000.0 * SPILL_BYTE_NS).abs() < 1e-9);
        assert!((m.t_spill(2_000) - 2.0 * m.t_spill(1_000)).abs() < 1e-9);
        // The term ignores the model's plan-sensitive knobs entirely.
        let mut no_ovc = CostModel::with_defaults();
        no_ovc.ovc = false;
        assert_eq!(m.t_spill(4_096), no_ovc.t_spill(4_096));
    }

    #[test]
    fn breakdown_sums() {
        let inst = SortInstance::uniform(100_000, &[(12, 4096.0), (20, 50_000.0)]);
        let m = model();
        let plan = MassagePlan::from_widths(&[16, 16]);
        let b = m.t_mcs_breakdown(&inst, &plan);
        assert!((b.total() - (b.massage + b.lookup + b.sort + b.scan)).abs() < 1e-9);
        assert!(b.massage > 0.0 && b.sort > 0.0 && b.scan > 0.0 && b.lookup > 0.0);
        // P0 pays no massage.
        let b0 = m.t_mcs_breakdown(&inst, &inst.p0());
        assert_eq!(b0.massage, 0.0);
    }

    #[test]
    fn desc_p0_pays_complement() {
        let mut inst = SortInstance::uniform(10_000, &[(12, 4096.0)]);
        inst.specs[0].descending = true;
        let m = model();
        let b = m.t_mcs_breakdown(&inst, &inst.p0());
        assert!(b.massage > 0.0);
    }
}
