//! Property tests for the cost model: monotonicity and sanity of the
//! equations under arbitrary instances.

use mcs_core::{Bank, MassagePlan};
use mcs_cost::{CostModel, SortInstance};
use mcs_test_support::check;

fn model() -> CostModel {
    CostModel::with_defaults()
}

/// Costs are finite, non-negative, and grow with N.
#[test]
fn t_mcs_is_sane() {
    check("t_mcs_is_sane", 64, |rng| {
        let w1 = rng.gen_range(1..=32u32);
        let w2 = rng.gen_range(1..=32u32);
        let rows_log = rng.gen_range(4..=24u32);
        let ndv = rng.gen_range(1..=100_000u64);
        let m = model();
        let inst = SortInstance::uniform(1usize << rows_log, &[(w1, ndv as f64), (w2, ndv as f64)]);
        let p0 = inst.p0();
        let c = m.t_mcs(&inst, &p0);
        assert!(c.is_finite() && c >= 0.0);

        let inst_big = SortInstance::uniform(
            1usize << (rows_log + 1),
            &[(w1, ndv as f64), (w2, ndv as f64)],
        );
        assert!(m.t_mcs(&inst_big, &inst_big.p0()) >= c);
    });
}

/// Lookup cost per row is bounded by [C_cache, C_mem].
#[test]
fn lookup_per_row_bounds() {
    check("lookup_per_row_bounds", 64, |rng| {
        let n = rng.gen_range(1..100_000_000usize);
        let width = rng.gen_range(1..=64u32);
        let m = model();
        let per = m.t_lookup(n, width) / n as f64;
        assert!(per >= m.consts.c_cache - 1e-9);
        assert!(per <= m.consts.c_mem + 1e-9);
    });
}

/// Mergesort cost is monotone in n for a fixed bank.
#[test]
fn mergesort_monotone() {
    check("mergesort_monotone", 64, |rng| {
        let n = rng.gen_range(2..1_000_000u64);
        let m = model();
        for bank in [Bank::B16, Bank::B32, Bank::B64] {
            assert!(m.t_mergesort(n as f64, bank) <= m.t_mergesort((n * 2) as f64, bank));
        }
    });
}

/// The per-code mergesort cost respects the bank ordering the paper's
/// data-parallelism argument predicts: 16-bit banks are never costed
/// above 32-bit, nor 32 above 64 (for equal n).
#[test]
fn bank_ordering() {
    check("bank_ordering", 64, |rng| {
        let n = rng.gen_range(64..10_000_000u64);
        let m = model();
        let c16 = m.t_mergesort(n as f64, Bank::B16);
        let c32 = m.t_mergesort(n as f64, Bank::B32);
        let c64 = m.t_mergesort(n as f64, Bank::B64);
        assert!(c16 <= c32 * 1.001, "b16 {c16} > b32 {c32}");
        assert!(c32 <= c64 * 1.001, "b32 {c32} > b64 {c64}");
    });
}

/// Massage cost is linear in I_FIP and rows.
#[test]
fn massage_linear() {
    check("massage_linear", 64, |rng| {
        let n = rng.gen_range(1..10_000_000usize);
        let fips = rng.gen_range(1..16usize);
        let m = model();
        let one = m.t_massage(n, 1);
        assert!((m.t_massage(n, fips) - one * fips as f64).abs() < 1e-6 * one * fips as f64 + 1e-9);
    });
}

/// Splitting any round in two never reduces the estimated cost to
/// less than half (loose sanity: no pathological negatives/cliffs).
#[test]
fn split_round_cost_relationship() {
    check("split_round_cost_relationship", 64, |rng| {
        let w = rng.gen_range(2..=32u32);
        let rows_log = rng.gen_range(8..=22u32);
        let m = model();
        let inst = SortInstance::uniform(1usize << rows_log, &[(w, 2f64.powi(w.min(12) as i32))]);
        let whole = m.t_mcs(&inst, &MassagePlan::from_widths(&[w]));
        let split = m.t_mcs(&inst, &MassagePlan::from_widths(&[w / 2, w - w / 2]));
        assert!(split.is_finite() && whole.is_finite());
        assert!(split >= 0.25 * whole, "split {split} whole {whole}");
    });
}
