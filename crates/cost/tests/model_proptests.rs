//! Property tests for the cost model: monotonicity and sanity of the
//! equations under arbitrary instances.

use mcs_core::{Bank, MassagePlan};
use mcs_cost::{CostModel, SortInstance};
use proptest::prelude::*;

fn model() -> CostModel {
    CostModel::with_defaults()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Costs are finite, non-negative, and grow with N.
    #[test]
    fn t_mcs_is_sane(
        w1 in 1u32..=32,
        w2 in 1u32..=32,
        rows_log in 4u32..=24,
        ndv in 1u64..=100_000,
    ) {
        let m = model();
        let inst = SortInstance::uniform(1usize << rows_log,
            &[(w1, ndv as f64), (w2, ndv as f64)]);
        let p0 = inst.p0();
        let c = m.t_mcs(&inst, &p0);
        prop_assert!(c.is_finite() && c >= 0.0);

        let inst_big = SortInstance::uniform(1usize << (rows_log + 1),
            &[(w1, ndv as f64), (w2, ndv as f64)]);
        prop_assert!(m.t_mcs(&inst_big, &inst_big.p0()) >= c);
    }

    /// Lookup cost per row is bounded by [C_cache, C_mem].
    #[test]
    fn lookup_per_row_bounds(n in 1usize..100_000_000, width in 1u32..=64) {
        let m = model();
        let per = m.t_lookup(n, width) / n as f64;
        prop_assert!(per >= m.consts.c_cache - 1e-9);
        prop_assert!(per <= m.consts.c_mem + 1e-9);
    }

    /// Mergesort cost is monotone in n for a fixed bank.
    #[test]
    fn mergesort_monotone(n in 2u64..1_000_000) {
        let m = model();
        for bank in [Bank::B16, Bank::B32, Bank::B64] {
            prop_assert!(m.t_mergesort(n as f64, bank) <= m.t_mergesort((n * 2) as f64, bank));
        }
    }

    /// The per-code mergesort cost respects the bank ordering the paper's
    /// data-parallelism argument predicts: 16-bit banks are never costed
    /// above 32-bit, nor 32 above 64 (for equal n).
    #[test]
    fn bank_ordering(n in 64u64..10_000_000) {
        let m = model();
        let c16 = m.t_mergesort(n as f64, Bank::B16);
        let c32 = m.t_mergesort(n as f64, Bank::B32);
        let c64 = m.t_mergesort(n as f64, Bank::B64);
        prop_assert!(c16 <= c32 * 1.001, "b16 {c16} > b32 {c32}");
        prop_assert!(c32 <= c64 * 1.001, "b32 {c32} > b64 {c64}");
    }

    /// Massage cost is linear in I_FIP and rows.
    #[test]
    fn massage_linear(n in 1usize..10_000_000, fips in 1usize..16) {
        let m = model();
        let one = m.t_massage(n, 1);
        prop_assert!((m.t_massage(n, fips) - one * fips as f64).abs() < 1e-6 * one * fips as f64 + 1e-9);
    }

    /// Splitting any round in two never reduces the estimated cost to
    /// less than half (loose sanity: no pathological negatives/cliffs).
    #[test]
    fn split_round_cost_relationship(
        w in 2u32..=32,
        rows_log in 8u32..=22,
    ) {
        let m = model();
        let inst = SortInstance::uniform(1usize << rows_log, &[(w, 2f64.powi(w.min(12) as i32))]);
        let whole = m.t_mcs(&inst, &MassagePlan::from_widths(&[w]));
        let split = m.t_mcs(&inst, &MassagePlan::from_widths(&[w / 2, w - w / 2]));
        prop_assert!(split.is_finite() && whole.is_finite());
        prop_assert!(split >= 0.25 * whole, "split {split} whole {whole}");
    }
}
