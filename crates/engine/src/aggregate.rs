//! Group aggregation over sorted, grouped data (Figure 2's steps 4–5).

use mcs_core::GroupBounds;

use crate::query::{Agg, AggKind};

/// Compute one aggregate per group.
///
/// `col_values` supplies the (already permuted) codes of a referenced
/// column: `col_values(name)[p]` is the value at output position `p`.
pub fn aggregate_groups(
    aggs: &[Agg],
    groups: &GroupBounds,
    col_values: &dyn Fn(&str) -> Vec<u64>,
) -> Vec<(String, Vec<u64>)> {
    let mut out = Vec::with_capacity(aggs.len());
    for agg in aggs {
        let vals = match &agg.kind {
            AggKind::Count => {
                let v: Vec<u64> = groups.iter().map(|r| r.len() as u64).collect();
                v
            }
            AggKind::CountDistinct(c) => {
                let data = col_values(c);
                groups
                    .iter()
                    .map(|r| {
                        let mut seen: Vec<u64> = data[r].to_vec();
                        seen.sort_unstable();
                        seen.dedup();
                        seen.len() as u64
                    })
                    .collect()
            }
            AggKind::Sum(c) => {
                let data = col_values(c);
                groups.iter().map(|r| data[r].iter().sum::<u64>()).collect()
            }
            AggKind::Avg(c) => {
                let data = col_values(c);
                groups
                    .iter()
                    .map(|r| {
                        if r.is_empty() {
                            0
                        } else {
                            data[r.clone()].iter().sum::<u64>() / r.len() as u64
                        }
                    })
                    .collect()
            }
            AggKind::Min(c) => {
                let data = col_values(c);
                groups
                    .iter()
                    .map(|r| data[r].iter().copied().min().unwrap_or(0))
                    .collect()
            }
            AggKind::Max(c) => {
                let data = col_values(c);
                groups
                    .iter()
                    .map(|r| data[r].iter().copied().max().unwrap_or(0))
                    .collect()
            }
        };
        out.push((agg.label.clone(), vals));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn groups() -> GroupBounds {
        GroupBounds::from_offsets(vec![0, 2, 5])
    }

    fn values(name: &str) -> Vec<u64> {
        match name {
            "x" => vec![10, 20, 5, 5, 2],
            _ => panic!("unknown column {name}"),
        }
    }

    #[test]
    fn all_aggregates() {
        let aggs = vec![
            Agg::new(AggKind::Count, "cnt"),
            Agg::new(AggKind::Sum("x".into()), "sum"),
            Agg::new(AggKind::Avg("x".into()), "avg"),
            Agg::new(AggKind::Min("x".into()), "min"),
            Agg::new(AggKind::Max("x".into()), "max"),
            Agg::new(AggKind::CountDistinct("x".into()), "dcnt"),
        ];
        let out = aggregate_groups(&aggs, &groups(), &|n| values(n));
        let get = |l: &str| &out.iter().find(|(k, _)| k == l).unwrap().1;
        assert_eq!(get("cnt"), &vec![2, 3]);
        assert_eq!(get("sum"), &vec![30, 12]);
        assert_eq!(get("avg"), &vec![15, 4]);
        assert_eq!(get("min"), &vec![10, 2]);
        assert_eq!(get("max"), &vec![20, 5]);
        assert_eq!(get("dcnt"), &vec![2, 2]);
    }

    #[test]
    fn empty_groups() {
        let g = GroupBounds::from_offsets(vec![0, 0]);
        let aggs = vec![Agg::new(AggKind::Count, "c")];
        let out = aggregate_groups(&aggs, &g, &|_| vec![]);
        assert_eq!(out[0].1, vec![0]);
    }
}
