//! The engine's typed error taxonomy and the degradation-ladder
//! vocabulary.
//!
//! [`run_query`](crate::run_query) returns [`EngineError`] for conditions
//! the engine cannot execute around (unknown columns, malformed queries,
//! unsortable inputs). Recoverable faults — planner failures, useless
//! cost estimates, a failing massage plan — do *not* surface here: the
//! pipeline degrades along [`DegradeReason`]'s ladder down to the
//! always-valid column-at-a-time `P_0` plan (Lemma 1) and, if that sort
//! itself fails, to a scalar comparator sort, recording each rung in
//! [`QueryTimings::degradations`](crate::QueryTimings::degradations) and
//! the `engine.degraded` telemetry counter.

use mcs_core::{CancelCause, SortError};
use mcs_planner::SearchError;

use crate::sql::SqlError;

/// Why a query could not be executed at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A referenced column does not exist in the table.
    UnknownColumn {
        /// The missing column name.
        column: String,
        /// Which clause referenced it (`"filter"`, `"ORDER BY"`, …).
        context: &'static str,
    },
    /// A referenced table is not registered in the session's
    /// [`Database`](crate::Database).
    UnknownTable {
        /// The missing table name.
        table: String,
    },
    /// The query has no sort keys (nothing to order, group, or rank by).
    NoSortKeys {
        /// The query's name.
        query: String,
    },
    /// The plan search failed and the degradation ladder could not
    /// recover (e.g. an empty sort key — `P_0` is equally impossible).
    PlanSearch(SearchError),
    /// The multi-column sort failed on an input condition no fallback
    /// plan can fix (row count overflow, column/spec mismatch).
    Sort(SortError),
    /// The SQL text did not parse.
    Sql(SqlError),
    /// Window `ORDER BY` keys wider than one 64-bit machine word.
    WindowKeyTooWide {
        /// Total window-order key width in bits.
        bits: u32,
    },
    /// The query's deadline passed — at admission, at a phase boundary,
    /// or inside a long loop. The session arena was restored and all
    /// spilled run files deleted; the query performed no further work
    /// (the degradation ladder never re-runs past-deadline work).
    DeadlineExceeded,
    /// The query's [`CancelToken`](mcs_core::CancelToken) was fired
    /// manually. Same unwind guarantees as
    /// [`DeadlineExceeded`](EngineError::DeadlineExceeded).
    Cancelled,
    /// The admission gate could not grant a permit within the query's
    /// `queue_timeout`: the engine is saturated and sheds load instead
    /// of queueing unboundedly. No execution state was created.
    Overloaded {
        /// How long the caller waited before being shed, in nanoseconds.
        waited_ns: u64,
    },
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::UnknownColumn { column, context } => {
                write!(f, "unknown column {column:?} in {context}")
            }
            EngineError::UnknownTable { table } => {
                write!(f, "no table {table:?} registered in the database")
            }
            EngineError::NoSortKeys { query } => {
                write!(f, "query {query:?} has no sort keys")
            }
            EngineError::PlanSearch(e) => write!(f, "plan search failed: {e}"),
            EngineError::Sort(e) => write!(f, "multi-column sort failed: {e}"),
            EngineError::Sql(e) => write!(f, "SQL parse failed: {e}"),
            EngineError::WindowKeyTooWide { bits } => {
                write!(
                    f,
                    "window ORDER BY keys span {bits} bits; at most 64 are supported"
                )
            }
            EngineError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Overloaded { waited_ns } => {
                write!(
                    f,
                    "engine overloaded: no admission permit after {waited_ns} ns"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::PlanSearch(e) => Some(e),
            EngineError::Sort(e) => Some(e),
            EngineError::Sql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SearchError> for EngineError {
    fn from(e: SearchError) -> Self {
        EngineError::PlanSearch(e)
    }
}

impl From<SortError> for EngineError {
    fn from(e: SortError) -> Self {
        match e {
            // Cancellation is not a sort defect: it surfaces as the
            // engine-level outcome, not wrapped inside `Sort`.
            SortError::Cancelled(CancelCause::DeadlineExceeded) => EngineError::DeadlineExceeded,
            SortError::Cancelled(CancelCause::Cancelled) => EngineError::Cancelled,
            other => EngineError::Sort(other),
        }
    }
}

impl From<CancelCause> for EngineError {
    fn from(c: CancelCause) -> Self {
        match c {
            CancelCause::DeadlineExceeded => EngineError::DeadlineExceeded,
            CancelCause::Cancelled => EngineError::Cancelled,
        }
    }
}

impl From<SqlError> for EngineError {
    fn from(e: SqlError) -> Self {
        EngineError::Sql(e)
    }
}

/// One rung taken on the graceful-degradation ladder.
///
/// Every rung leaves the query *correct*: the fallbacks are the
/// column-at-a-time `P_0` plan — valid for any sort instance by the
/// paper's Lemma 1 — and, below it, a scalar comparator sort over the raw
/// key columns. Rungs are recorded in execution order in
/// [`QueryTimings::degradations`](crate::QueryTimings::degradations),
/// counted by the `engine.degraded` telemetry counter (with a `reason`
/// label), and annotated in EXPLAIN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// The plan search (ROGA / RRS) returned an error; fell back to `P_0`.
    PlanSearchFailed,
    /// The cost model produced a non-finite estimate for the chosen plan;
    /// its ranking is meaningless, fell back to `P_0`.
    NonFiniteCost,
    /// The search deadline starved: timed out with zero plans costed;
    /// ran `P_0` without an estimate.
    DeadlineStarved,
    /// The chosen massage plan failed validation against the key width;
    /// fell back to `P_0`.
    InvalidPlan,
    /// The out-of-core sort's spill I/O failed (run file write or read);
    /// re-ran the sort fully in memory under the same plan.
    SpillFailed,
    /// The chosen plan's execution failed (e.g. a worker panic); re-ran
    /// under `P_0`.
    ExecFailed,
    /// The `P_0` execution itself failed; sorted with the scalar
    /// reference comparator (last rung).
    ScalarFallback,
}

impl DegradeReason {
    /// Stable snake_case label (telemetry `reason` attribute, EXPLAIN).
    pub fn as_str(self) -> &'static str {
        match self {
            DegradeReason::PlanSearchFailed => "plan_search_failed",
            DegradeReason::NonFiniteCost => "non_finite_cost",
            DegradeReason::DeadlineStarved => "deadline_starved",
            DegradeReason::InvalidPlan => "invalid_plan",
            DegradeReason::SpillFailed => "spill_failed",
            DegradeReason::ExecFailed => "exec_failed",
            DegradeReason::ScalarFallback => "scalar_fallback",
        }
    }
}

impl core::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(EngineError, &str)> = vec![
            (
                EngineError::UnknownColumn {
                    column: "zip".into(),
                    context: "filter",
                },
                "zip",
            ),
            (
                EngineError::NoSortKeys {
                    query: "q99".into(),
                },
                "q99",
            ),
            (
                EngineError::UnknownTable {
                    table: "ghost".into(),
                },
                "ghost",
            ),
            (
                EngineError::PlanSearch(SearchError::EmptySortKey),
                "plan search",
            ),
            (EngineError::Sort(SortError::NoColumns), "multi-column sort"),
            (EngineError::WindowKeyTooWide { bits: 90 }, "90"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} missing {needle:?}");
        }
    }

    #[test]
    fn sources_chain() {
        let e = EngineError::Sort(SortError::NoColumns);
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::WindowKeyTooWide { bits: 70 };
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn degrade_labels_are_stable_snake_case() {
        let all = [
            DegradeReason::PlanSearchFailed,
            DegradeReason::NonFiniteCost,
            DegradeReason::DeadlineStarved,
            DegradeReason::InvalidPlan,
            DegradeReason::SpillFailed,
            DegradeReason::ExecFailed,
            DegradeReason::ScalarFallback,
        ];
        for r in all {
            let s = r.as_str();
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            assert_eq!(r.to_string(), s);
        }
    }
}
