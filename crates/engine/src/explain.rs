//! `EXPLAIN`-style plan reports: the chosen [`MassagePlan`], the cost
//! model's per-round predictions, and — after execution — the measured
//! per-round times with a predicted/actual ratio column.
//!
//! The report exists in two renderings: [`ExplainReport::render`] (full,
//! human-facing) and [`ExplainReport::render_redacted`] (every timing and
//! ratio cell replaced by a fixed placeholder), the latter byte-stable
//! across runs for golden-snapshot testing.

use mcs_core::{ExecStats, MassagePlan};
use mcs_cost::{CostModel, PlanCost, SortInstance};
use mcs_extsort::SpillStats;

use crate::pipeline::QueryTimings;

/// A predicted-vs-measured account of one executed multi-column sort.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Label shown in the header (query or experiment name).
    pub query: String,
    /// Rows sorted.
    pub rows: usize,
    /// The plan that ran.
    pub plan: MassagePlan,
    /// Per-round predictions from the cost model.
    pub predicted: PlanCost,
    /// Measured execution statistics.
    pub measured: ExecStats,
    /// Degradation-ladder rungs taken while executing (stable snake_case
    /// labels; empty on the happy path).
    pub degradations: Vec<String>,
    /// Whether every plan came from the session's plan cache (no plan
    /// search ran; see
    /// [`QueryTimings::plan_cached`](crate::QueryTimings::plan_cached)).
    pub plan_cached: bool,
    /// What the out-of-core sort path spilled (all-zero when the sort ran
    /// fully in memory — then no spill line renders).
    pub spilled: SpillStats,
    /// Predicted spill I/O time, [`CostModel::t_spill`] over
    /// [`SpillStats::bytes`].
    pub predicted_spill_ns: f64,
    /// Wall-clock the query spent queued in the admission gate before
    /// executing ([`QueryTimings::queue_ns`]; zero when admission was
    /// unbounded — then no `queued:` line renders).
    pub queue_ns: u64,
}

impl ExplainReport {
    /// Build a report from a sort instance, the plan that ran on it, and
    /// the executor's measured stats — the path for callers that invoke
    /// `multi_column_sort` directly (bench bins, examples).
    pub fn from_parts(
        query: impl Into<String>,
        inst: &SortInstance,
        plan: &MassagePlan,
        measured: &ExecStats,
        model: &CostModel,
    ) -> ExplainReport {
        ExplainReport {
            query: query.into(),
            rows: inst.rows,
            plan: plan.clone(),
            predicted: model.t_mcs_rounds(inst, plan),
            measured: measured.clone(),
            degradations: Vec::new(),
            plan_cached: false,
            spilled: SpillStats::default(),
            predicted_spill_ns: 0.0,
            queue_ns: 0,
        }
    }

    /// Build a report from an executed query's timings. Returns `None`
    /// when the query ran no multi-column sort (e.g. zero qualifying
    /// rows).
    pub fn from_timings(
        query: impl Into<String>,
        timings: &QueryTimings,
        model: &CostModel,
    ) -> Option<ExplainReport> {
        let plan = timings.plan.as_ref()?;
        let inst = timings.sort_instance.as_ref()?;
        let mut rep = ExplainReport::from_parts(query, inst, plan, &timings.mcs_stats, model);
        rep.degradations = timings
            .degradations
            .iter()
            .map(|r| r.as_str().to_string())
            .collect();
        rep.plan_cached = timings.plan_cached();
        rep.spilled = timings.spilled;
        rep.predicted_spill_ns = model.t_spill(timings.spilled.bytes);
        rep.queue_ns = timings.queue_ns;
        Some(rep)
    }

    /// Human-facing rendering with real timings.
    pub fn render(&self) -> String {
        self.render_impl(false)
    }

    /// Rendering with every timing/ratio cell replaced by a fixed-width
    /// placeholder; byte-identical across runs for a fixed instance and
    /// plan (structure, widths, banks, groups and invocation counts are
    /// deterministic — wall-clock is not).
    pub fn render_redacted(&self) -> String {
        self.render_impl(true)
    }

    fn render_impl(&self, redact: bool) -> String {
        let t = |ns: f64| -> String {
            if redact {
                "###".to_string()
            } else {
                fmt_ns(ns)
            }
        };
        let ratio = |pred: f64, meas: f64| -> String {
            if redact {
                "###".to_string()
            } else if meas <= 0.0 {
                "-".to_string()
            } else {
                format!("{:.2}", pred / meas)
            }
        };

        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN mcs: {}\nplan {}  rows {}  predicted T_mcs {}  measured {}\n",
            self.query,
            self.plan.notation(),
            self.rows,
            t(self.predicted.total()),
            t(self.measured.total_ns as f64),
        ));
        // Only annotate degraded / cache-served executions: happy-path
        // stateless reports stay byte-identical to the pre-ladder golden
        // snapshots.
        if self.plan_cached {
            out.push_str("plan: cached\n");
        }
        // Gate-queued executions attribute their wait; unqueued ones
        // (stateless runs, unbounded admission) render no line, keeping
        // every pre-gate golden snapshot stable. The wait is wall-clock,
        // so it redacts like a timing.
        if self.queue_ns > 0 {
            out.push_str(&format!(
                "queued: {} in admission gate\n",
                t(self.queue_ns as f64)
            ));
        }
        // Arena-backed executions (session path) report buffer reuse;
        // the stateless path leaves `measured.arena` empty and renders
        // no line, keeping the pre-arena golden snapshots stable. Grow/
        // reuse counts are deterministic; the byte peak is not, so it
        // redacts like a timing.
        if !self.measured.arena.is_empty() {
            let peak = if redact {
                "###".to_string()
            } else {
                self.measured.arena.bytes_peak.to_string()
            };
            out.push_str(&format!(
                "arena: peak {} bytes, grows {}, reuses {}\n",
                peak, self.measured.arena.grows, self.measured.arena.reuses
            ));
        }
        // Morsel-scheduled executions (threads > 1 over the parallel
        // cutoff) report the work-stealing counters; serial executions
        // dispatch nothing and render no line, keeping every pre-morsel
        // golden snapshot stable. Dispatched and split counts are
        // deterministic for a fixed config; how many morsels migrated via
        // steals depends on scheduling, so `stolen` redacts like a timing.
        let morsels = self.measured.morsel_counts();
        if morsels.dispatched > 0 {
            let stolen = if redact {
                "###".to_string()
            } else {
                morsels.stolen.to_string()
            };
            out.push_str(&format!(
                "morsels: dispatched {} ({} stolen, {} split)\n",
                morsels.dispatched, stolen, morsels.split
            ));
        }
        if !self.degradations.is_empty() {
            out.push_str(&format!("degraded: {}\n", self.degradations.join(" -> ")));
        }
        // Budgeted executions that actually spilled report the out-of-core
        // path; in-memory executions render no line, keeping every
        // pre-budget golden snapshot stable. Runs, bytes and merge
        // counters are deterministic for a fixed instance and budget; the
        // predicted I/O time is a model constant — only it redacts.
        if self.spilled.runs > 0 {
            out.push_str(&format!(
                "spill: {} runs, {} bytes (predicted I/O {}), merge comparisons {} ({} resolved by offset-value code)\n",
                self.spilled.runs,
                self.spilled.bytes,
                t(self.predicted_spill_ns),
                self.spilled.merge_comparisons,
                self.spilled.merge_ovc_hits,
            ));
        }
        out.push_str(&format!(
            "{:<22} {:>5} {:>5} {:>10} {:>10} {:>9}\n",
            "phase", "width", "bank", "predicted", "measured", "pred/act"
        ));
        let row = |phase: &str, width: &str, bank: &str, pred: f64, meas: f64| -> String {
            format!(
                "{:<22} {:>5} {:>5} {:>10} {:>10} {:>9}\n",
                phase,
                width,
                bank,
                t(pred),
                t(meas),
                ratio(pred, meas),
            )
        };

        out.push_str(&row(
            "massage",
            "-",
            "-",
            self.predicted.massage,
            self.measured.massage_ns as f64,
        ));
        for (k, (pc, rs)) in self
            .predicted
            .rounds
            .iter()
            .zip(&self.measured.rounds)
            .enumerate()
        {
            let width = pc.width.to_string();
            let bank = format!("[{}]", pc.bank.bits());
            if k > 0 {
                out.push_str(&row(
                    &format!("R{} lookup", k + 1),
                    &width,
                    &bank,
                    pc.lookup,
                    rs.lookup_ns as f64,
                ));
            }
            out.push_str(&row(
                &format!("R{} sort", k + 1),
                &width,
                &bank,
                pc.sort,
                rs.sort_ns as f64,
            ));
            for (name, ns) in [
                ("in-register", rs.phases.in_register_ns),
                ("in-cache merge", rs.phases.in_cache_merge_ns),
                ("multiway merge", rs.phases.multiway_merge_ns),
            ] {
                if ns > 0 && !redact {
                    out.push_str(&format!(
                        "{:<22} {:>5} {:>5} {:>10} {:>10} {:>9}\n",
                        format!("   {name}"),
                        "",
                        "",
                        "-",
                        fmt_ns(ns as f64),
                        "-",
                    ));
                }
            }
            // Out-of-cache merge comparison counters (full render only:
            // the counts depend on which groups crossed the cache
            // threshold, which the redacted golden must not pin down).
            if rs.merge.comparisons > 0 && !redact {
                out.push_str(&format!(
                    "   merge comparisons {} ({} resolved by offset-value code)\n",
                    rs.merge.comparisons, rs.merge.ovc_hits
                ));
            }
            if pc.scan > 0.0 || rs.scan_ns > 0 {
                out.push_str(&row(
                    &format!("R{} scan", k + 1),
                    &width,
                    &bank,
                    pc.scan,
                    rs.scan_ns as f64,
                ));
            }
            out.push_str(&format!(
                "   groups {} -> {}, {} sort invocations, {} codes\n",
                rs.groups_in, rs.groups_out, rs.invocations, rs.codes_sorted
            ));
        }
        out.push_str(&row(
            "total",
            "-",
            "-",
            self.predicted.total(),
            self.measured.total_ns as f64,
        ));
        out
    }
}

/// Render nanoseconds human-readably (`842 ns`, `12.4 us`, `3.217 ms`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1} us", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mcs_core::{multi_column_sort, ExecConfig};

    #[test]
    fn report_lines_up_rounds() {
        let n = 4096usize;
        let a = mcs_columnar::CodeVec::from_u64s(9, (0..n).map(|i| (i as u64 * 37) % 512));
        let b = mcs_columnar::CodeVec::from_u64s(15, (0..n).map(|i| (i as u64 * 101) % 32768));
        let inst = SortInstance::uniform(n, &[(9, 512.0), (15, 16384.0)]);
        let plan = inst.p0();
        let out = multi_column_sort(&[&a, &b], &inst.specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        let model = CostModel::with_defaults();
        let rep = ExplainReport::from_parts("unit", &inst, &plan, &out.stats, &model);
        assert_eq!(rep.predicted.rounds.len(), rep.measured.rounds.len());
        let text = rep.render();
        assert!(text.contains("EXPLAIN mcs: unit"));
        assert!(text.contains("R1 sort"));
        assert!(text.contains("R2 lookup"));
        assert!(text.contains("pred/act"));
        // Redacted rendering hides every timing but keeps the structure.
        let red = rep.render_redacted();
        assert!(red.contains("###"));
        assert!(!red.contains(" ns"));
        assert!(!red.contains(" ms"));
        assert!(red.contains("R2 sort"));
    }

    #[test]
    fn cached_plan_line_renders_only_for_cache_hits() {
        use crate::{Database, EngineConfig, OrderKey, Query, QueryOptions, Session};
        let mut t = mcs_columnar::Table::new("t");
        t.add_column(mcs_columnar::Column::from_u64s(
            "k",
            6,
            (0..256u64).map(|i| (i * 37) % 64),
        ));
        let mut db = Database::new();
        db.register(t);
        let session = Session::new(&db, EngineConfig::default());
        let mut q = Query::named("q");
        q.order_by = vec![OrderKey::asc("k")];
        q.select = vec!["k".into()];
        let model = CostModel::with_defaults();

        let cold = session.query("t", &q, QueryOptions::default()).unwrap();
        let cold_rep = ExplainReport::from_timings("q", &cold.timings, &model).unwrap();
        assert!(!cold_rep.plan_cached);
        assert!(!cold_rep.render().contains("plan: cached"));
        // Session executions run through the arena: the first one grew it.
        assert!(cold_rep.render().contains("bytes, grows 1, reuses 0\n"));

        let warm = session.query("t", &q, QueryOptions::default()).unwrap();
        let warm_rep = ExplainReport::from_timings("q", &warm.timings, &model).unwrap();
        assert!(warm_rep.plan_cached);
        assert!(warm_rep.render().contains("plan: cached\n"));
        // The annotation survives redaction (it carries no timing).
        assert!(warm_rep.render_redacted().contains("plan: cached\n"));
        // The warm rerun reused capacity; the byte peak redacts away.
        assert!(warm_rep.render().contains("grows 1, reuses 1\n"));
        assert!(warm_rep.render_redacted().contains("arena: peak ### bytes"));
    }

    #[test]
    fn stateless_reports_render_no_arena_line() {
        let n = 1024usize;
        let a = mcs_columnar::CodeVec::from_u64s(9, (0..n).map(|i| (i as u64 * 37) % 512));
        let inst = SortInstance::uniform(n, &[(9, 512.0)]);
        let plan = inst.p0();
        let out = multi_column_sort(&[&a], &inst.specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        let rep = ExplainReport::from_parts(
            "unit",
            &inst,
            &plan,
            &out.stats,
            &CostModel::with_defaults(),
        );
        assert!(!rep.render().contains("arena:"));
        assert!(!rep.render_redacted().contains("arena:"));
    }

    #[test]
    fn queued_line_renders_only_for_gate_waits() {
        let n = 512usize;
        let a = mcs_columnar::CodeVec::from_u64s(9, (0..n).map(|i| (i as u64 * 37) % 512));
        let inst = SortInstance::uniform(n, &[(9, 512.0)]);
        let plan = inst.p0();
        let out = multi_column_sort(&[&a], &inst.specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        let mut rep = ExplainReport::from_parts(
            "unit",
            &inst,
            &plan,
            &out.stats,
            &CostModel::with_defaults(),
        );
        assert!(!rep.render().contains("queued:"), "no gate, no line");
        rep.queue_ns = 12_400;
        assert!(rep.render().contains("queued: 12.4 us in admission gate\n"));
        // The wait is wall-clock: it redacts, the line itself stays.
        assert!(rep
            .render_redacted()
            .contains("queued: ### in admission gate\n"));
    }

    #[test]
    fn morsel_line_renders_only_for_parallel_executions() {
        let n = 20_000usize;
        let a = mcs_columnar::CodeVec::from_u64s(9, (0..n).map(|i| (i as u64 * 37) % 512));
        let inst = SortInstance::uniform(n, &[(9, 512.0)]);
        let plan = inst.p0();
        let model = CostModel::with_defaults();

        let serial = multi_column_sort(&[&a], &inst.specs, &plan, &ExecConfig::default())
            .expect("valid sort instance");
        let rep = ExplainReport::from_parts("unit", &inst, &plan, &serial.stats, &model);
        assert!(!rep.render().contains("morsels:"), "serial, no line");

        let cfg = ExecConfig {
            threads: 4,
            ..ExecConfig::default()
        };
        let par = multi_column_sort(&[&a], &inst.specs, &plan, &cfg).expect("valid sort instance");
        assert_eq!(par.oids, serial.oids, "steal schedule must not leak");
        let rep = ExplainReport::from_parts("unit", &inst, &plan, &par.stats, &model);
        let text = rep.render();
        assert!(
            text.contains("morsels: dispatched"),
            "parallel run renders the scheduler line: {text}"
        );
        // The steal count is scheduling-dependent: it redacts.
        let red = rep.render_redacted();
        assert!(red.contains("(### stolen"), "{red}");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(850.0), "850 ns");
        assert_eq!(fmt_ns(12_400.0), "12.4 us");
        assert_eq!(fmt_ns(3_217_000.0), "3.217 ms");
    }
}
