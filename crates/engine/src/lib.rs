//! # mcs-engine
//!
//! The query-execution engine of the SIGMOD'16 *Fast Multi-Column
//! Sorting* reproduction: ByteSlice scans → lookups → (ROGA-planned)
//! multi-column sort with code massaging → aggregation / window ranks,
//! with per-phase timings matching the paper's Figure 1 / Figure 9
//! breakdowns.
//!
//! ```
//! use mcs_columnar::{Column, Table};
//! use mcs_engine::{Agg, AggKind, Database, EngineConfig, Query, Session};
//!
//! let mut t = Table::new("sales");
//! t.add_column(Column::from_u64s("nation", 2, [1u64, 0, 1, 0]));
//! t.add_column(Column::from_u64s("ship_date", 3, [5u64, 2, 5, 1]));
//! t.add_column(Column::from_u64s("price", 8, [40u64, 30, 10, 20]));
//! let mut db = Database::new();
//! db.register(t);
//!
//! let mut q = Query::named("q1");
//! q.group_by = vec!["nation".into(), "ship_date".into()];
//! q.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "sum_price")];
//!
//! // A session plans each query shape once and caches the plan.
//! let session = Session::new(&db, EngineConfig::default());
//! let prepared = session.prepare("sales", &q)?;
//! let r = prepared.execute(&session)?;
//! assert_eq!(r.rows, 3);
//! assert_eq!(r.column_required("sum_price")?, vec![20, 30, 50]);
//! # Ok::<(), mcs_engine::EngineError>(())
//! ```

#![warn(missing_docs)]
// Library code must surface failures as typed errors, never panic on a
// recoverable path. Test modules opt back in with `#[allow]`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod aggregate;
mod error;
mod explain;
pub mod mal;
mod pipeline;
mod query;
pub mod reference;
mod session;
pub mod sql;
mod window;
pub mod wire;

pub use aggregate::aggregate_groups;
pub use error::{DegradeReason, EngineError};
pub use explain::ExplainReport;
pub use pipeline::{
    result_to_table, run_query, EngineConfig, EngineConfigBuilder, PlannerMode, QueryResult,
    QueryTimings,
};
pub use query::{Agg, AggKind, Filter, OrderKey, Query};
pub use session::{
    AdmissionGate, Database, GatePermit, PlanCacheStats, PreparedQuery, QueryOptions, Session,
    WorkerPool, DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use sql::{parse_query, SqlError};
pub use window::rank_over;

// Convenient re-exports for engine users.
pub use mcs_columnar::{Column, Predicate, Table};
pub use mcs_core::{
    lease_footprint_bytes, ArenaStats, CancelCause, CancelToken, ExecArena, ExecConfig,
    MassagePlan, SortSpec, CHECK_INTERVAL,
};
pub use mcs_extsort::SpillStats;
