//! Appendix B — the `Fast-MCS` optimizer module, MonetDB-style.
//!
//! The paper's reference integration adds a module to MonetDB's MAL
//! optimizer pipeline that (a) recognizes the MAL instruction idiom for
//! multi-column sorting (a `SIMD-Sort`, then alternating `Lookup` /
//! `SIMD-Sort` with group info), (b) invokes the plan search, and (c)
//! rewrites the instructions to use `Code-Massage` and fewer sorts.
//!
//! This module reproduces that pass over a small MAL-like IR, e.g. the
//! paper's example
//!
//! ```text
//! (permuted_oid, group_info) := SIMD-Sort(a, 16, NULL)
//! permuted_b                 := Lookup(b, permuted_oid)
//! (final_oid, final_gi)      := SIMD-Sort(permuted_b, 16, group_info)
//! ```
//!
//! becomes, when stitching wins,
//!
//! ```text
//! super_column          := Code-Massage(a, b, 'stitch')
//! (final_oid, final_gi) := SIMD-Sort(super_column, 32, NULL)
//! ```

use std::collections::HashMap;

use mcs_core::{MassagePlan, SortSpec};
use mcs_cost::{CostModel, KeyColumnStats, SortInstance};
use mcs_planner::{roga, RogaOptions};

/// A MAL-like instruction (the subset Fast-MCS cares about).
#[derive(Debug, Clone, PartialEq)]
pub enum MalInstr {
    /// `(oid_out, groups_out) := SIMD-Sort(input, bank, groups_in)`.
    SimdSort {
        /// Column variable to sort.
        input: String,
        /// Bank width in bits.
        bank: u32,
        /// Incoming group info (`None` = NULL, first round).
        groups_in: Option<String>,
        /// Produced permutation variable.
        oid_out: String,
        /// Produced group-info variable.
        groups_out: String,
    },
    /// `out := Lookup(column, oid)`.
    Lookup {
        /// Base column.
        column: String,
        /// Permutation variable.
        oid: String,
        /// Output (permuted) column variable.
        out: String,
    },
    /// `outs… := Code-Massage(inputs…, plan)`.
    CodeMassage {
        /// Input column variables, sort order.
        inputs: Vec<String>,
        /// The massage plan.
        plan: MassagePlan,
        /// One output variable per round.
        outputs: Vec<String>,
    },
    /// Any other instruction, passed through untouched.
    Other(String),
}

impl core::fmt::Display for MalInstr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MalInstr::SimdSort {
                input,
                bank,
                groups_in,
                oid_out,
                groups_out,
            } => write!(
                f,
                "({oid_out}, {groups_out}) := SIMD-Sort({input}, {bank}, {})",
                groups_in.as_deref().unwrap_or("NULL")
            ),
            MalInstr::Lookup { column, oid, out } => {
                write!(f, "{out} := Lookup({column}, {oid})")
            }
            MalInstr::CodeMassage {
                inputs,
                plan,
                outputs,
            } => write!(
                f,
                "({}) := Code-Massage({}, '{}')",
                outputs.join(", "),
                inputs.join(", "),
                plan.notation()
            ),
            MalInstr::Other(s) => f.write_str(s),
        }
    }
}

/// A MAL-like plan: a straight-line instruction sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MalPlan {
    /// The instructions.
    pub instrs: Vec<MalInstr>,
}

impl core::fmt::Display for MalPlan {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in &self.instrs {
            writeln!(f, "{i}")?;
        }
        Ok(())
    }
}

/// A recognized multi-column sort idiom inside a [`MalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct McsIdiom {
    /// Index of the first instruction of the idiom.
    pub start: usize,
    /// Number of instructions covered.
    pub len: usize,
    /// Base columns in sort order.
    pub columns: Vec<String>,
}

/// Recognize the column-at-a-time multi-column-sorting idiom: a
/// `SIMD-Sort(c₁, …, NULL)` followed by `(Lookup(cᵢ, oid); SIMD-Sort(…,
/// groups))` pairs whose data dependencies chain correctly.
pub fn find_mcs_idiom(plan: &MalPlan) -> Option<McsIdiom> {
    let instrs = &plan.instrs;
    for start in 0..instrs.len() {
        let MalInstr::SimdSort {
            input,
            groups_in: None,
            oid_out,
            groups_out,
            ..
        } = &instrs[start]
        else {
            continue;
        };
        let mut columns = vec![input.clone()];
        let mut cur_oid = oid_out.clone();
        let mut cur_groups = groups_out.clone();
        let mut at = start + 1;
        while at + 1 < instrs.len() {
            let MalInstr::Lookup { column, oid, out } = &instrs[at] else {
                break;
            };
            if *oid != cur_oid {
                break;
            }
            let MalInstr::SimdSort {
                input: s_in,
                groups_in: Some(gi),
                oid_out: o2,
                groups_out: g2,
                ..
            } = &instrs[at + 1]
            else {
                break;
            };
            if s_in != out || *gi != cur_groups {
                break;
            }
            columns.push(column.clone());
            cur_oid = o2.clone();
            cur_groups = g2.clone();
            at += 2;
        }
        if columns.len() >= 2 {
            return Some(McsIdiom {
                start,
                len: at - start,
                columns,
            });
        }
    }
    None
}

/// Column metadata the optimizer needs: width, NDV, direction.
#[derive(Debug, Clone)]
pub struct MalColumnInfo {
    /// Code width in bits.
    pub width: u32,
    /// Distinct values (for the cost model's estimators).
    pub ndv: f64,
    /// DESC?
    pub descending: bool,
}

/// The `Fast-MCS` pass: find the idiom, search for a massage plan, and —
/// when the chosen plan differs from column-at-a-time — rewrite the
/// instructions to `Code-Massage` + one `SIMD-Sort` per round. Returns
/// the (possibly unchanged) plan and the massage plan that was chosen.
pub fn fast_mcs_rewrite(
    plan: &MalPlan,
    catalog: &HashMap<String, MalColumnInfo>,
    rows: usize,
    model: &CostModel,
    rho: Option<f64>,
) -> (MalPlan, Option<MassagePlan>) {
    let Some(idiom) = find_mcs_idiom(plan) else {
        return (plan.clone(), None);
    };
    let specs: Vec<SortSpec> = idiom
        .columns
        .iter()
        .map(|c| {
            let info = catalog
                .get(c)
                .unwrap_or_else(|| panic!("no catalog entry for column {c}"));
            SortSpec {
                width: info.width,
                descending: info.descending,
            }
        })
        .collect();
    let stats: Vec<KeyColumnStats> = idiom
        .columns
        .iter()
        .map(|c| KeyColumnStats::uniform(catalog[c].width, catalog[c].ndv))
        .collect();
    let inst = SortInstance {
        rows,
        specs: specs.clone(),
        stats,
        want_final_groups: true,
    };
    // A failed search is not fatal to the pass: the idiom simply stays
    // un-rewritten (column-at-a-time semantics, always valid).
    let Ok(found) = roga(
        &inst,
        model,
        &RogaOptions {
            rho,
            permute_columns: false,
        },
    ) else {
        return (plan.clone(), None);
    };

    // Column-at-a-time chosen: leave the MAL plan untouched.
    let in_widths: Vec<u32> = specs.iter().map(|s| s.width).collect();
    if found.plan.is_column_aligned(&in_widths) && specs.iter().all(|s| !s.descending) {
        return (plan.clone(), Some(found.plan));
    }

    // Rewrite: Code-Massage producing one variable per round, then the
    // sort chain over the massaged columns.
    let mut new_instrs: Vec<MalInstr> = plan.instrs[..idiom.start].to_vec();
    let round_vars: Vec<String> = (0..found.plan.num_rounds())
        .map(|i| format!("massaged_{i}"))
        .collect();
    new_instrs.push(MalInstr::CodeMassage {
        inputs: idiom.columns.clone(),
        plan: found.plan.clone(),
        outputs: round_vars.clone(),
    });
    let mut prev_oid: Option<String> = None;
    let mut prev_groups: Option<String> = None;
    let last = found.plan.num_rounds() - 1;
    for (i, round) in found.plan.rounds.iter().enumerate() {
        let col = if let Some(oid) = &prev_oid {
            let permuted = format!("permuted_{}", round_vars[i]);
            new_instrs.push(MalInstr::Lookup {
                column: round_vars[i].clone(),
                oid: oid.clone(),
                out: permuted.clone(),
            });
            permuted
        } else {
            round_vars[i].clone()
        };
        let oid_out = if i == last {
            "final_oid".to_string()
        } else {
            format!("oid_{i}")
        };
        let groups_out = if i == last {
            "final_group_info".to_string()
        } else {
            format!("group_info_{i}")
        };
        new_instrs.push(MalInstr::SimdSort {
            input: col,
            bank: round.bank.bits(),
            groups_in: prev_groups.clone(),
            oid_out: oid_out.clone(),
            groups_out: groups_out.clone(),
        });
        prev_oid = Some(oid_out);
        prev_groups = Some(groups_out);
    }
    new_instrs.extend_from_slice(&plan.instrs[idiom.start + idiom.len..]);
    (MalPlan { instrs: new_instrs }, Some(found.plan))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// The paper's Appendix B example: sort columns a (10-bit) and b
    /// (17-bit) with 16-bit banks, column-at-a-time.
    fn paper_example() -> MalPlan {
        MalPlan {
            instrs: vec![
                MalInstr::SimdSort {
                    input: "a".into(),
                    bank: 16,
                    groups_in: None,
                    oid_out: "permuted_oid".into(),
                    groups_out: "group_info".into(),
                },
                MalInstr::Lookup {
                    column: "b".into(),
                    oid: "permuted_oid".into(),
                    out: "permuted_b".into(),
                },
                MalInstr::SimdSort {
                    input: "permuted_b".into(),
                    bank: 32,
                    groups_in: Some("group_info".into()),
                    oid_out: "final_oid".into(),
                    groups_out: "final_group_info".into(),
                },
            ],
        }
    }

    fn catalog() -> HashMap<String, MalColumnInfo> {
        let mut c = HashMap::new();
        c.insert(
            "a".into(),
            MalColumnInfo {
                width: 10,
                ndv: 1024.0,
                descending: false,
            },
        );
        c.insert(
            "b".into(),
            MalColumnInfo {
                width: 17,
                ndv: 8192.0,
                descending: false,
            },
        );
        c
    }

    #[test]
    fn recognizes_the_idiom() {
        let idiom = find_mcs_idiom(&paper_example()).expect("idiom");
        assert_eq!(idiom.start, 0);
        assert_eq!(idiom.len, 3);
        assert_eq!(idiom.columns, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn does_not_match_broken_chains() {
        // Wrong oid dependency.
        let mut p = paper_example();
        if let MalInstr::Lookup { oid, .. } = &mut p.instrs[1] {
            *oid = "some_other_oid".into();
        }
        assert!(find_mcs_idiom(&p).is_none());
    }

    #[test]
    fn rewrites_to_stitch_like_appendix_b() {
        let model = CostModel::with_defaults();
        // Large N: stitching clearly wins for 10+17 bits.
        let (rewritten, chosen) =
            fast_mcs_rewrite(&paper_example(), &catalog(), 1 << 24, &model, None);
        let chosen = chosen.expect("plan chosen");
        assert!(
            !chosen.is_column_aligned(&[10, 17]),
            "expected a massaged plan, got {chosen}"
        );
        // First instruction is the Code-Massage, then one sort per round.
        assert!(matches!(rewritten.instrs[0], MalInstr::CodeMassage { .. }));
        let sorts = rewritten
            .instrs
            .iter()
            .filter(|i| matches!(i, MalInstr::SimdSort { .. }))
            .count();
        assert_eq!(sorts, chosen.num_rounds());
        // Printable, roughly like the paper's snippet.
        let text = rewritten.to_string();
        assert!(text.contains("Code-Massage(a, b"), "{text}");
        assert!(text.contains("final_oid"), "{text}");
    }

    #[test]
    fn passthrough_when_no_idiom() {
        let p = MalPlan {
            instrs: vec![MalInstr::Other("x := garbageCollector()".into())],
        };
        let model = CostModel::with_defaults();
        let (out, chosen) = fast_mcs_rewrite(&p, &HashMap::new(), 1000, &model, None);
        assert_eq!(out, p);
        assert!(chosen.is_none());
    }

    #[test]
    fn surrounding_instructions_preserved() {
        let mut p = paper_example();
        p.instrs.insert(0, MalInstr::Other("pre := Scan(t)".into()));
        p.instrs.push(MalInstr::Other(
            "post := Aggregate(final_group_info)".into(),
        ));
        let model = CostModel::with_defaults();
        let (out, _) = fast_mcs_rewrite(&p, &catalog(), 1 << 24, &model, None);
        assert_eq!(
            out.instrs.first(),
            Some(&MalInstr::Other("pre := Scan(t)".into()))
        );
        assert_eq!(
            out.instrs.last(),
            Some(&MalInstr::Other(
                "post := Aggregate(final_group_info)".into()
            ))
        );
    }
}
