//! The physical query pipeline: ByteSlice scans → lookups → (planned)
//! multi-column sort → aggregation / windowing, with per-phase timings.
//!
//! This is the execution structure of the paper's prototype (§6 and the
//! Figure 11 reference architecture): filters run as fast scans on the
//! WideTable, sorting columns are gathered via lookups, the optimizer
//! (ROGA, or column-at-a-time when massaging is off) picks a plan, and
//! the multi-column sort executor produces the order and grouping the
//! aggregates or window ranks consume.
//!
//! ## Degradation ladder
//!
//! Failures the engine can execute around never abort a query. The
//! ladder, each rung recorded in [`QueryTimings::degradations`] and the
//! `engine.degraded` telemetry counter:
//!
//! 1. plan search fails / cost estimate non-finite / deadline starves /
//!    chosen plan invalid → run column-at-a-time `P_0`, which is valid
//!    for any instance by the paper's Lemma 1;
//! 2. the sort execution itself fails (e.g. a worker-thread panic) →
//!    re-run under `P_0`;
//! 3. the `P_0` sort fails too → scalar comparator sort over the raw key
//!    columns (no SIMD, no massage — always executable).
//!
//! Only input conditions no plan can fix ([`EngineError`]) surface as
//! errors from [`run_query`].

use std::time::{Duration, Instant};

use mcs_columnar::{BitVec, CodeVec, Column, Table};
use mcs_core::{
    multi_column_sort, multi_column_sort_with, tuple_cmp, ExecArena, ExecConfig, ExecStats,
    GroupBounds, MassagePlan, MultiColumnSortOutput, SortError, SortSpec,
};
use mcs_cost::{CostModel, KeyColumnStats, SortInstance};
use mcs_extsort::{external_multi_column_sort_with, SpillStats};
use mcs_planner::{roga, rrs, PlanFingerprint, RogaOptions, RrsOptions, SearchError};
use mcs_telemetry as telemetry;

use crate::aggregate::aggregate_groups;
use crate::error::{DegradeReason, EngineError};
use crate::query::{AggKind, OrderKey, Query};
use crate::session::PlanCache;
use crate::window::rank_over;

/// How the engine picks massage plans.
#[derive(Debug, Clone)]
pub enum PlannerMode {
    /// Always column-at-a-time (`P_0`) — "code massaging disabled".
    ColumnAtATime,
    /// ROGA (Algorithm 1) with time threshold `ρ`.
    Roga {
        /// Fraction of the best plan's estimated time (None = no limit).
        rho: Option<f64>,
    },
    /// Recursive random search with a fixed budget (baseline).
    Rrs {
        /// Search budget.
        budget: Duration,
    },
    /// A fixed plan supplied by the caller (experiments).
    Fixed(MassagePlan),
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Multi-column sort execution settings.
    pub exec: ExecConfig,
    /// Plan selection mode.
    pub planner: PlannerMode,
    /// Cost model used by the planner.
    pub model: CostModel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            exec: ExecConfig::default(),
            planner: PlannerMode::Roga { rho: Some(0.001) },
            model: CostModel::with_defaults(),
        }
    }
}

impl EngineConfig {
    /// Massaging disabled: the state-of-the-art column-at-a-time baseline.
    pub fn without_massaging() -> EngineConfig {
        EngineConfig {
            planner: PlannerMode::ColumnAtATime,
            ..EngineConfig::default()
        }
    }

    /// Start building a config with chainable setters.
    ///
    /// ```
    /// use mcs_engine::{EngineConfig, PlannerMode};
    /// let cfg = EngineConfig::builder()
    ///     .planner(PlannerMode::Roga { rho: None })
    ///     .threads(4)
    ///     .build();
    /// assert_eq!(cfg.exec.threads, 4);
    /// ```
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            cfg: EngineConfig::default(),
        }
    }
}

/// Chainable builder for [`EngineConfig`] (see [`EngineConfig::builder`]).
/// Every unset field keeps its [`Default`] value.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Set the plan-selection mode.
    pub fn planner(mut self, planner: PlannerMode) -> Self {
        self.cfg.planner = planner;
        self
    }

    /// Set the multi-column sort execution settings.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.cfg.exec = exec;
        self
    }

    /// Set the cost model used by the planner.
    pub fn model(mut self, model: CostModel) -> Self {
        self.cfg.model = model;
        self
    }

    /// Convenience: set only the intra-query worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.exec.threads = threads;
        self
    }

    /// Cap the multi-column sort's resident memory at `bytes`: queries
    /// whose leased sort footprint
    /// ([`mcs_core::lease_footprint_bytes`]) would exceed the budget run
    /// through the out-of-core path of `mcs-extsort` (chunk → spill →
    /// streaming merge) instead of the in-memory executor, with
    /// byte-identical results. Unset (the default) never spills.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.cfg.exec.memory_budget_bytes = Some(bytes);
        self
    }

    /// Enable or disable offset-value coding in the out-of-cache merge,
    /// keeping the executor knob and the cost model's merge discount in
    /// lockstep (setting only one of them would make EXPLAIN's predicted
    /// merge cost drift from the measured one). Defaults to enabled.
    pub fn ovc(mut self, on: bool) -> Self {
        self.cfg.exec.sort.use_ovc = on;
        self.cfg.model.ovc = on;
        self
    }

    /// Finish building.
    pub fn build(self) -> EngineConfig {
        self.cfg
    }
}

/// Per-phase wall-clock breakdown of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryTimings {
    /// Filter scans (ByteSlice, early-stopping).
    pub filter_scan_ns: u64,
    /// Lookups gathering sort-key and aggregate columns.
    pub gather_ns: u64,
    /// Plan search (ROGA / RRS).
    pub plan_search_ns: u64,
    /// Multi-column sorting (massage + all rounds).
    pub mcs_ns: u64,
    /// Second-stage multi-column sort over grouped results
    /// (ORDER BY over aggregates, as in TPC-H Q13).
    pub post_sort_ns: u64,
    /// Aggregation / window-rank evaluation.
    pub aggregate_ns: u64,
    /// End-to-end.
    pub total_ns: u64,
    /// Detailed multi-column sort stats.
    pub mcs_stats: ExecStats,
    /// The plan that was executed (`None` if no multi-column sort ran, or
    /// the scalar fallback — which runs no massage plan — carried it).
    pub plan: Option<MassagePlan>,
    /// The sort instance the planner saw (rows, specs, column stats) —
    /// what EXPLAIN needs to re-derive per-round cost predictions.
    pub sort_instance: Option<SortInstance>,
    /// Degradation-ladder rungs taken while executing, in order (empty on
    /// the happy path).
    pub degradations: Vec<DegradeReason>,
    /// Plan-cache hits during this execution (sessions only; a stateless
    /// [`run_query`] has no cache and leaves this `0`).
    pub plan_cache_hits: u32,
    /// Plan-cache misses during this execution.
    pub plan_cache_misses: u32,
    /// Wall-clock spent queued in the session's
    /// [`AdmissionGate`](crate::AdmissionGate) before execution began.
    /// Zero for stateless
    /// runs and for sessions without bounded admission — the conditional
    /// EXPLAIN `queued:` line renders only when this is non-zero, so
    /// tail latency can be attributed to queueing vs executing.
    pub queue_ns: u64,
    /// What the out-of-core sort path spilled (all-zero when every sort
    /// ran in memory — the case whenever
    /// [`ExecConfig::memory_budget_bytes`] is unset).
    pub spilled: SpillStats,
}

impl QueryTimings {
    /// Everything except multi-column sorting (the paper's
    /// "Scan+Lookup+Aggregation+…" bar).
    pub fn non_mcs_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.mcs_ns + self.post_sort_ns + self.plan_search_ns)
    }

    /// Whether *every* plan this execution needed came from the session's
    /// plan cache (so no plan search ran at all and
    /// [`plan_search_ns`](QueryTimings::plan_search_ns) is zero).
    pub fn plan_cached(&self) -> bool {
        self.plan_cache_hits > 0 && self.plan_cache_misses == 0
    }
}

/// A materialized query result.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output columns, in declaration order: group keys then aggregates,
    /// or the projection plus `rank` for window queries.
    pub columns: Vec<(String, Vec<u64>)>,
    /// Number of output rows.
    pub rows: usize,
    /// Phase timings.
    pub timings: QueryTimings,
}

impl QueryResult {
    /// Fetch an output column by name.
    pub fn column(&self, name: &str) -> Option<&[u64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Fetch an output column by name, or a typed
    /// [`UnknownColumn`](EngineError::UnknownColumn) error naming it.
    pub fn column_required(&self, name: &str) -> Result<&[u64], EngineError> {
        self.column(name).ok_or_else(|| EngineError::UnknownColumn {
            column: name.to_string(),
            context: "result",
        })
    }
}

/// Push a degradation rung: remembered in the timings, counted under
/// `engine.degraded` with a `reason` label, and given a zero-duration
/// marker span carrying the detail.
fn record_degradation(timings: &mut QueryTimings, reason: DegradeReason, detail: &str) {
    timings.degradations.push(reason);
    if telemetry::is_enabled() {
        telemetry::counter_add("engine.degraded", 1);
        telemetry::record_span(
            "engine.degraded",
            0,
            vec![
                ("reason", reason.as_str().into()),
                ("detail", detail.to_string().into()),
            ],
        );
    }
}

/// Execute `query` against `table`, returning a typed error for
/// conditions the engine cannot execute around (see [`EngineError`]).
/// Recoverable faults degrade along the module-level ladder instead.
///
/// This stateless entry point plans every query from scratch. A
/// [`Session`](crate::Session) runs the same pipeline with a shared plan
/// cache, skipping the search for repeated query shapes.
pub fn run_query(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
) -> Result<QueryResult, EngineError> {
    run_query_impl(table, query, cfg, None, None)
}

/// The shared pipeline body behind [`run_query`] (no cache, no arena) and
/// the session path (`cache = Some(…)`, `arena = Some(…)`), plus the
/// cancellation-outcome accounting every path shares.
pub(crate) fn run_query_impl(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    cache: Option<&PlanCache>,
    arena: Option<&mut ExecArena>,
) -> Result<QueryResult, EngineError> {
    let result = run_query_body(table, query, cfg, cache, arena);
    if telemetry::is_enabled() {
        let counter = match &result {
            Err(EngineError::DeadlineExceeded) => Some("engine.deadline_exceeded"),
            Err(EngineError::Cancelled) => Some("engine.cancelled"),
            _ => None,
        };
        if let Some(name) = counter {
            telemetry::counter_add(name, 1);
            telemetry::record_span(name, 0, vec![("query", query.name.clone().into())]);
        }
    }
    result
}

fn run_query_body(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    cache: Option<&PlanCache>,
    arena: Option<&mut ExecArena>,
) -> Result<QueryResult, EngineError> {
    let t_total = Instant::now();
    let mut timings = QueryTimings::default();

    // Fail fast: an already-expired deadline (or pre-fired token) returns
    // before any phase runs — no filter scan, no gather, no plan search,
    // no sort. The executor re-polls the same token at every later phase
    // boundary and inside the long loops.
    if let Err(cause) = cfg.exec.sort.cancel.check() {
        return Err(cause.into());
    }

    let oids = filter_oids(table, query, &mut timings)?;

    let result = if !query.partition_by.is_empty() {
        execute_window(table, query, cfg, &oids, &mut timings, cache, arena)?
    } else if !query.group_by.is_empty() {
        execute_grouped(table, query, cfg, &oids, &mut timings, cache, arena)?
    } else {
        execute_orderby(table, query, cfg, &oids, &mut timings, cache, arena)?
    };

    timings.total_ns = t_total.elapsed().as_nanos() as u64;
    if telemetry::is_enabled() {
        telemetry::record_span(
            "engine.query",
            timings.total_ns,
            vec![
                ("query", query.name.clone().into()),
                ("rows_in", oids.len().into()),
                (
                    "rows_out",
                    result.first().map_or(0, |(_, v)| v.len()).into(),
                ),
            ],
        );
        telemetry::counter_add("engine.queries", 1);
    }
    Ok(QueryResult {
        rows: result.first().map_or(0, |(_, v)| v.len()),
        columns: result,
        timings,
    })
}

/// Run `query`'s filters: ByteSlice scans, ANDed; no filters selects the
/// whole table.
fn filter_oids(
    table: &Table,
    query: &Query,
    timings: &mut QueryTimings,
) -> Result<Vec<u32>, EngineError> {
    let t = Instant::now();
    let mut acc: Option<BitVec> = None;
    for f in &query.filters {
        let col = table
            .column(&f.column)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: f.column.clone(),
                context: "filter",
            })?;
        let bv = col.byteslice().scan(&f.predicate);
        acc = Some(match acc {
            None => bv,
            Some(mut a) => {
                a.and_assign(&bv);
                a
            }
        });
    }
    let oids: Vec<u32> = match acc {
        Some(a) => a.to_oids(),
        None => (0..table.rows() as u32).collect(),
    };
    timings.filter_scan_ns += t.elapsed().as_nanos() as u64;
    Ok(oids)
}

/// Run the planning front half of `query` — filters, sort-key gathering
/// and statistics, plan search — populating `cache`, without executing
/// the sort. This is [`Session::prepare`](crate::Session::prepare)'s
/// engine half.
pub(crate) fn warm_plan(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    cache: &PlanCache,
) -> Result<(), EngineError> {
    let mut timings = QueryTimings::default();
    let keys = query.sort_keys();
    if keys.is_empty() {
        return Err(EngineError::NoSortKeys {
            query: query.name.clone(),
        });
    }
    let oids = filter_oids(table, query, &mut timings)?;
    if oids.is_empty() {
        // Nothing qualifies: execution short-circuits before planning too.
        return Ok(());
    }
    let want_groups = !query.group_by.is_empty() || !query.partition_by.is_empty();
    let (_cols, _specs, inst) = prepare_sort(table, &keys, &oids, want_groups, &mut timings)?;
    let _ = pick_plan(&inst, query.order_free(), cfg, &mut timings, Some(cache))?;
    Ok(())
}

/// Gather the sort-key columns (restricted to `oids`) and build the
/// planner's instance.
fn prepare_sort(
    table: &Table,
    keys: &[OrderKey],
    oids: &[u32],
    want_final_groups: bool,
    timings: &mut QueryTimings,
) -> Result<(Vec<CodeVec>, Vec<SortSpec>, SortInstance), EngineError> {
    let t = Instant::now();
    let mut cols: Vec<CodeVec> = Vec::with_capacity(keys.len());
    let mut specs: Vec<SortSpec> = Vec::with_capacity(keys.len());
    let mut stats: Vec<KeyColumnStats> = Vec::with_capacity(keys.len());
    for k in keys {
        let col = table
            .column(&k.column)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: k.column.clone(),
                context: "sort key",
            })?;
        cols.push(col.gather(oids));
        specs.push(SortSpec {
            width: col.width(),
            descending: k.descending,
        });
        let mut s = KeyColumnStats::from_stats(col.width(), col.stats());
        // Filtering can only reduce cardinality.
        s.ndv = s.ndv.min(oids.len() as f64).max(1.0);
        stats.push(s);
    }
    timings.gather_ns += t.elapsed().as_nanos() as u64;
    let inst = SortInstance {
        rows: oids.len(),
        specs: specs.clone(),
        stats,
        want_final_groups,
    };
    Ok((cols, specs, inst))
}

/// Run the planner, returning the plan and the column order to apply,
/// recording search time.
///
/// On the session path a plan cache is consulted first: a fingerprint hit
/// returns the cached plan with **no** search and **no** contribution to
/// `plan_search_ns`; a miss searches as usual and, when the search
/// succeeded cleanly (no degradation rung taken), publishes the result
/// for the next equal-fingerprint query. Only the searched modes
/// (ROGA / RRS) cache — fixed and column-at-a-time picks cost nothing.
///
/// First rung of the degradation ladder: a failed search, a starved
/// deadline, or a non-finite cost estimate falls back to `P_0` on the
/// identity order (recording why) instead of failing the query. Only an
/// empty sort key — for which `P_0` is equally impossible — is an error.
fn pick_plan(
    inst: &SortInstance,
    order_free: bool,
    cfg: &EngineConfig,
    timings: &mut QueryTimings,
    cache: Option<&PlanCache>,
) -> Result<(MassagePlan, Vec<usize>), EngineError> {
    let cache = cache.filter(|_| {
        matches!(
            &cfg.planner,
            PlannerMode::Roga { .. } | PlannerMode::Rrs { .. }
        )
    });
    let fp = cache.map(|_| PlanFingerprint::of(inst, order_free));
    if let (Some(c), Some(f)) = (cache, &fp) {
        if let Some(hit) = c.lookup(f) {
            timings.plan_cache_hits += 1;
            return Ok(hit);
        }
        c.note_miss();
        timings.plan_cache_misses += 1;
    }
    let rungs_before = timings.degradations.len();

    let t = Instant::now();
    let identity: Vec<usize> = (0..inst.specs.len()).collect();
    let searched = match &cfg.planner {
        PlannerMode::ColumnAtATime => Ok(None),
        PlannerMode::Fixed(p) => {
            // Experiments may hand the engine arbitrary plans; an invalid
            // one degrades to P0 rather than reaching the executor.
            if let Err(e) = p.validate(inst.total_width()) {
                record_degradation(timings, DegradeReason::InvalidPlan, &e.to_string());
                Ok(None)
            } else {
                Ok(Some((p.clone(), identity.clone(), f64::NAN, false)))
            }
        }
        PlannerMode::Roga { rho } => roga(
            inst,
            &cfg.model,
            &RogaOptions {
                rho: *rho,
                permute_columns: order_free,
            },
        )
        .map(|r| {
            Some((
                r.plan,
                r.column_order,
                r.est_cost,
                r.timed_out && r.plans_costed == 0,
            ))
        }),
        PlannerMode::Rrs { budget } => rrs(
            inst,
            &cfg.model,
            &RrsOptions {
                budget: *budget,
                permute_columns: order_free,
                ..Default::default()
            },
        )
        .map(|r| Some((r.plan, r.column_order, r.est_cost, r.plans_costed == 0))),
    };

    let picked = match searched {
        // Nothing can plan a zero-width key; P0 would be just as invalid.
        Err(SearchError::EmptySortKey) => {
            return Err(EngineError::PlanSearch(SearchError::EmptySortKey))
        }
        Err(e) => {
            record_degradation(timings, DegradeReason::PlanSearchFailed, &e.to_string());
            (inst.p0(), identity)
        }
        Ok(None) => (inst.p0(), identity),
        Ok(Some((plan, order, est_cost, starved))) => {
            if starved {
                // The deadline fired before anything was costed: the
                // search result is P0-by-default with no usable estimate.
                record_degradation(
                    timings,
                    DegradeReason::DeadlineStarved,
                    "search deadline fired with zero plans costed",
                );
                (inst.p0(), identity)
            } else if matches!(
                &cfg.planner,
                PlannerMode::Roga { .. } | PlannerMode::Rrs { .. }
            ) && !est_cost.is_finite()
            {
                // Cost-model breakdown (NaN/∞ estimates): the plan
                // ranking is meaningless, so trust Lemma 1 over it.
                record_degradation(
                    timings,
                    DegradeReason::NonFiniteCost,
                    &format!("estimated cost {est_cost}"),
                );
                (inst.p0(), identity)
            } else {
                (plan, order)
            }
        }
    };
    timings.plan_search_ns += t.elapsed().as_nanos() as u64;
    // Publish only clean search results: a degraded pick (P0 stand-in) is
    // this query's problem, not a plan worth pinning for every future
    // equal-fingerprint query — and never poisons the shared cache.
    if let (Some(c), Some(f)) = (cache, fp) {
        if timings.degradations.len() == rungs_before {
            c.insert(f, picked.0.clone(), picked.1.clone());
        }
    }
    Ok(picked)
}

/// Whether a sort failure can be executed around by another plan. Input
/// conditions (no columns, spec mismatch, row-count overflow) cannot —
/// and neither can [`SortError::Cancelled`]: a cancelled or timed-out
/// query must surface immediately, never re-run its work on a lower
/// rung. Cancellation is deliberately absent from this whitelist.
fn sort_error_recoverable(e: &SortError) -> bool {
    matches!(
        e,
        SortError::InvalidPlan(_)
            | SortError::WorkerPanicked { .. }
            | SortError::Injected(_)
            | SortError::Spill(_)
    )
}

/// One sort attempt under one plan, dispatching between the in-memory
/// executor and the out-of-core path: when a memory budget is set and
/// the plan's leased footprint exceeds it, the sort runs through
/// `mcs-extsort` (recording what spilled in `timings`). A spill I/O
/// failure is the mildest rung of the ladder — the in-memory sort is
/// still perfectly executable, so it reruns here under the *same* plan
/// (recorded as [`DegradeReason::SpillFailed`]) before the caller ever
/// considers `P_0`.
fn sort_once(
    pcols: &[&CodeVec],
    pspecs: &[SortSpec],
    plan: &MassagePlan,
    exec: &ExecConfig,
    mut arena: Option<&mut ExecArena>,
    timings: &mut QueryTimings,
) -> Result<MultiColumnSortOutput, SortError> {
    let n = pcols.first().map_or(0, |c| c.len());
    if let Some(budget) = exec.memory_budget_bytes {
        if mcs_core::lease_footprint_bytes(plan, n) > budget {
            // The external path needs an arena for its chunk sorts; the
            // stateless entry point gets a throwaway one.
            let mut local = ExecArena::new();
            let a = match arena.as_deref_mut() {
                Some(a) => a,
                None => &mut local,
            };
            match external_multi_column_sort_with(pcols, pspecs, plan, exec, a, budget) {
                Ok((out, spill)) => {
                    timings.spilled.runs += spill.runs;
                    timings.spilled.bytes += spill.bytes;
                    timings.spilled.merge_comparisons += spill.merge_comparisons;
                    timings.spilled.merge_ovc_hits += spill.merge_ovc_hits;
                    return Ok(out);
                }
                Err(SortError::Spill(msg)) => {
                    record_degradation(timings, DegradeReason::SpillFailed, &msg);
                    // Deadline-aware ladder: a fired token skips the
                    // in-memory retry below — a timed-out query must
                    // never double the work it already spent.
                    exec.sort.cancel.check()?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    match arena {
        Some(a) => multi_column_sort_with(pcols, pspecs, plan, exec, a),
        None => multi_column_sort(pcols, pspecs, plan, exec),
    }
}

/// Execute the sort under `plan`, degrading to `P_0` and then to the
/// scalar comparator sort (rungs 2 and 3 of the ladder). Returns the
/// output and the plan that actually ran (`None` = scalar fallback).
fn sort_with_ladder(
    pcols: &[&CodeVec],
    pspecs: &[SortSpec],
    plan: MassagePlan,
    exec: &ExecConfig,
    timings: &mut QueryTimings,
    mut arena: Option<&mut ExecArena>,
) -> Result<(MultiColumnSortOutput, Option<MassagePlan>), EngineError> {
    let total: u32 = pspecs.iter().map(|s| s.width).sum();
    // Belt and braces: a plan that fails validation degrades here even if
    // the planner produced it.
    let plan = match plan.validate(total) {
        Ok(()) => plan,
        Err(e) => {
            record_degradation(timings, DegradeReason::InvalidPlan, &e.to_string());
            MassagePlan::column_at_a_time(pspecs)
        }
    };
    // Every rung draws from the same arena when one is provided — the
    // executor restores it on failure, so rung N+1 reuses rung N's
    // buffers rather than starting cold.
    let first = sort_once(pcols, pspecs, &plan, exec, arena.as_deref_mut(), timings);
    let err = match first {
        Ok(out) => return Ok((out, Some(plan))),
        Err(e) => e,
    };
    if !sort_error_recoverable(&err) {
        // `.into()` so a mid-sort cancellation surfaces as
        // `DeadlineExceeded`/`Cancelled`, not wrapped inside `Sort`.
        return Err(err.into());
    }
    record_degradation(timings, DegradeReason::ExecFailed, &err.to_string());

    // Deadline-aware ladder: every rung below re-runs the sort from
    // scratch, so once the token has fired the ladder stops — a timeout
    // can never double the work.
    if let Err(cause) = exec.sort.cancel.check() {
        return Err(cause.into());
    }

    // Rung 2: P0 (skipped when the failing plan already was P0 — identical
    // input, identical outcome).
    let p0 = MassagePlan::column_at_a_time(pspecs);
    if plan != p0 {
        match sort_once(pcols, pspecs, &p0, exec, arena, timings) {
            Ok(out) => return Ok((out, Some(p0))),
            Err(e) if sort_error_recoverable(&e) => {
                record_degradation(timings, DegradeReason::ScalarFallback, &e.to_string());
            }
            Err(e) => return Err(e.into()),
        }
    } else {
        record_degradation(
            timings,
            DegradeReason::ScalarFallback,
            "failing plan already was P0",
        );
    }

    // Same gate before the scalar rung: it re-sorts everything too.
    if let Err(cause) = exec.sort.cancel.check() {
        return Err(cause.into());
    }

    // Rung 3: scalar comparator sort — no SIMD, no massage, no threads.
    Ok((scalar_fallback_sort(pcols, pspecs, exec), None))
}

/// The bottom of the ladder: a stable scalar sort by the §3 tuple
/// comparator over the raw key columns, grouping built from tie runs.
/// Slow, but free of every machinery the ladder is escaping.
fn scalar_fallback_sort(
    pcols: &[&CodeVec],
    pspecs: &[SortSpec],
    exec: &ExecConfig,
) -> MultiColumnSortOutput {
    let t0 = Instant::now();
    let n = pcols.first().map_or(0, |c| c.len());
    let mut oids: Vec<u32> = (0..n as u32).collect();
    oids.sort_by(|&a, &b| tuple_cmp(pcols, pspecs, a, b));
    let groups = if exec.want_final_groups {
        let mut offsets: Vec<u32> = vec![0];
        for p in 1..n {
            if tuple_cmp(pcols, pspecs, oids[p - 1], oids[p]) != core::cmp::Ordering::Equal {
                offsets.push(p as u32);
            }
        }
        offsets.push(n as u32);
        if n == 0 {
            GroupBounds::whole(0)
        } else {
            GroupBounds::from_offsets(offsets)
        }
    } else {
        GroupBounds::whole(n)
    };
    let stats = ExecStats {
        total_ns: t0.elapsed().as_nanos() as u64,
        ..ExecStats::default()
    };
    MultiColumnSortOutput {
        oids,
        groups,
        stats,
    }
}

/// Sort the gathered key columns under the chosen plan; returns the
/// permutation (positions into `oids`) and grouping.
#[allow(clippy::too_many_arguments)]
fn run_mcs(
    cols: &[CodeVec],
    specs: &[SortSpec],
    inst: &SortInstance,
    order_free: bool,
    cfg: &EngineConfig,
    timings: &mut QueryTimings,
    cache: Option<&PlanCache>,
    arena: Option<&mut ExecArena>,
) -> Result<MultiColumnSortOutput, EngineError> {
    let (plan, order) = pick_plan(inst, order_free, cfg, timings, cache)?;
    let (pcols, pspecs): (Vec<&CodeVec>, Vec<SortSpec>) = (
        order.iter().map(|&i| &cols[i]).collect(),
        order.iter().map(|&i| specs[i]).collect(),
    );
    let t = Instant::now();
    let (out, ran_plan) = sort_with_ladder(&pcols, &pspecs, plan, &cfg.exec, timings, arena)?;
    timings.mcs_ns += t.elapsed().as_nanos() as u64;
    timings.mcs_stats = out.stats.clone();
    timings.plan = ran_plan;
    // Record the instance in planner column order so EXPLAIN's predictions
    // price exactly the plan that ran.
    timings.sort_instance = Some(mcs_planner::permute_instance(inst, &order));
    Ok(out)
}

fn execute_orderby(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    oids: &[u32],
    timings: &mut QueryTimings,
    cache: Option<&PlanCache>,
    arena: Option<&mut ExecArena>,
) -> Result<Vec<(String, Vec<u64>)>, EngineError> {
    let keys = query.sort_keys();
    if keys.is_empty() {
        return Err(EngineError::NoSortKeys {
            query: query.name.clone(),
        });
    }
    let (cols, specs, inst) = prepare_sort(table, &keys, oids, false, timings)?;
    let out = run_mcs(&cols, &specs, &inst, false, cfg, timings, cache, arena)?;

    // Final oids into the base table.
    let final_oids: Vec<u32> = out.oids.iter().map(|&p| oids[p as usize]).collect();

    let t = Instant::now();
    let mut result = Vec::new();
    for name in &query.select {
        let col = table
            .column(name)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: name.clone(),
                context: "SELECT",
            })?;
        result.push((name.clone(), col.gather(&final_oids).iter_u64().collect()));
    }
    timings.gather_ns += t.elapsed().as_nanos() as u64;
    Ok(result)
}

/// The column an aggregate reads, if any.
fn agg_column(kind: &AggKind) -> Option<&str> {
    match kind {
        AggKind::Count => None,
        AggKind::CountDistinct(c)
        | AggKind::Sum(c)
        | AggKind::Avg(c)
        | AggKind::Min(c)
        | AggKind::Max(c) => Some(c),
    }
}

fn execute_grouped(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    oids: &[u32],
    timings: &mut QueryTimings,
    cache: Option<&PlanCache>,
    mut arena: Option<&mut ExecArena>,
) -> Result<Vec<(String, Vec<u64>)>, EngineError> {
    // No qualifying rows: zero groups, empty output columns.
    if oids.is_empty() {
        let mut result: Vec<(String, Vec<u64>)> =
            query.group_by.iter().map(|g| (g.clone(), vec![])).collect();
        result.extend(query.aggregates.iter().map(|a| (a.label.clone(), vec![])));
        return Ok(result);
    }

    let keys = query.sort_keys();
    let (cols, specs, inst) = prepare_sort(table, &keys, oids, true, timings)?;
    let out = run_mcs(
        &cols,
        &specs,
        &inst,
        query.order_free(),
        cfg,
        timings,
        cache,
        arena.as_deref_mut(),
    )?;
    let final_oids: Vec<u32> = out.oids.iter().map(|&p| oids[p as usize]).collect();

    // Aggregate per group (Figure 2 steps 4-5): check every referenced
    // column up front so the gather closure below stays infallible, then
    // gather each once in output order.
    for agg in &query.aggregates {
        if let Some(c) = agg_column(&agg.kind) {
            if table.column(c).is_none() {
                return Err(EngineError::UnknownColumn {
                    column: c.to_string(),
                    context: "aggregate",
                });
            }
        }
    }
    let t = Instant::now();
    let fetch = |name: &str| -> Vec<u64> {
        table
            .column(name)
            .map(|c| c.gather(&final_oids).iter_u64().collect())
            .unwrap_or_default()
    };
    let agg_out = aggregate_groups(&query.aggregates, &out.groups, &fetch);

    // Group-key output columns: first row of each group.
    let mut result: Vec<(String, Vec<u64>)> = Vec::new();
    for (gi, g) in query.group_by.iter().enumerate() {
        let gathered = &cols[gi];
        let vals: Vec<u64> = out
            .groups
            .iter()
            .map(|r| gathered.get(out.oids[r.start] as usize))
            .collect();
        result.push((g.clone(), vals));
    }
    result.extend(agg_out);
    let agg_elapsed = t.elapsed().as_nanos() as u64;
    timings.aggregate_ns += agg_elapsed;
    if telemetry::is_enabled() {
        telemetry::record_span(
            "engine.aggregate",
            agg_elapsed,
            vec![
                ("groups", out.groups.num_groups().into()),
                ("aggregates", query.aggregates.len().into()),
            ],
        );
    }

    // ORDER BY over group keys / aggregate labels: a second multi-column
    // sort on the grouped table (this is TPC-H Q13's situation).
    if !query.order_by.is_empty() {
        let t = Instant::now();
        let n_groups = result.first().map_or(0, |(_, v)| v.len());
        let mut ob_cols: Vec<CodeVec> = Vec::new();
        let mut ob_specs: Vec<SortSpec> = Vec::new();
        for k in &query.order_by {
            let vals = result
                .iter()
                .find(|(n, _)| n == &k.column)
                .ok_or_else(|| EngineError::UnknownColumn {
                    column: k.column.clone(),
                    context: "ORDER BY over grouped result",
                })?
                .1
                .clone();
            let width = mcs_columnar::width_for_max(vals.iter().copied().max().unwrap_or(0));
            ob_cols.push(CodeVec::from_u64s(width, vals));
            ob_specs.push(SortSpec {
                width,
                descending: k.descending,
            });
        }
        let refs: Vec<&CodeVec> = ob_cols.iter().collect();
        // The grouped table is small; keep it simple and column-at-a-time
        // unless massaging is enabled (then P0 vs ROGA is the planner's
        // call with fresh statistics).
        let inst2 = SortInstance {
            rows: n_groups,
            specs: ob_specs.clone(),
            stats: ob_specs
                .iter()
                .zip(&ob_cols)
                .map(|(s, c)| {
                    let mut set: Vec<u64> = c.iter_u64().collect();
                    set.sort_unstable();
                    set.dedup();
                    KeyColumnStats::uniform(s.width, set.len() as f64)
                })
                .collect(),
            want_final_groups: false,
        };
        let (plan2, order2) = pick_plan(&inst2, false, cfg, timings, cache)?;
        let (pcols, pspecs): (Vec<&CodeVec>, Vec<SortSpec>) = (
            order2.iter().map(|&i| refs[i]).collect(),
            order2.iter().map(|&i| ob_specs[i]).collect(),
        );
        let (sorted, _) = sort_with_ladder(&pcols, &pspecs, plan2, &cfg.exec, timings, arena)?;
        for (_, vals) in result.iter_mut() {
            *vals = sorted.oids.iter().map(|&p| vals[p as usize]).collect();
        }
        timings.post_sort_ns += t.elapsed().as_nanos() as u64;
    }
    Ok(result)
}

#[allow(clippy::too_many_arguments)]
fn execute_window(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    oids: &[u32],
    timings: &mut QueryTimings,
    cache: Option<&PlanCache>,
    arena: Option<&mut ExecArena>,
) -> Result<Vec<(String, Vec<u64>)>, EngineError> {
    let keys = query.sort_keys();
    let (cols, specs, inst) = prepare_sort(table, &keys, oids, true, timings)?;
    // Window key: direction-adjusted concatenation of the window-order
    // columns — bounded by one machine word, checked before sorting so a
    // too-wide query fails fast without wasted work.
    let np = query.partition_by.len();
    let wo_specs = &specs[np..];
    let total_wo: u32 = wo_specs.iter().map(|s| s.width).sum();
    if total_wo > 64 {
        return Err(EngineError::WindowKeyTooWide { bits: total_wo });
    }
    let out = run_mcs(
        &cols,
        &specs,
        &inst,
        query.order_free(),
        cfg,
        timings,
        cache,
        arena,
    )?;
    let final_oids: Vec<u32> = out.oids.iter().map(|&p| oids[p as usize]).collect();

    let t = Instant::now();
    // Partition bounds = ties on the partition keys only: recompute by
    // scanning the sorted partition-key columns (they are the first
    // `partition_by.len()` sort keys).
    let mut parts = mcs_core::GroupBounds::whole(out.oids.len());
    for c in cols.iter().take(np) {
        let permuted: Vec<u64> = out.oids.iter().map(|&p| c.get(p as usize)).collect();
        parts = parts.refine_by(&permuted);
    }
    let wo_cols: Vec<&CodeVec> = cols.iter().skip(np).collect();
    let mut window_keys = vec![0u64; out.oids.len()];
    for (c, s) in wo_cols.iter().zip(wo_specs) {
        for (p, wk) in window_keys.iter_mut().enumerate() {
            let mut v = c.get(out.oids[p] as usize);
            if s.descending {
                v ^= mcs_core::width_mask(s.width);
            }
            *wk = (*wk << s.width) | v;
        }
    }
    let ranks = rank_over(&parts, &window_keys);

    let mut result = Vec::new();
    for name in &query.select {
        let col = table
            .column(name)
            .ok_or_else(|| EngineError::UnknownColumn {
                column: name.clone(),
                context: "SELECT",
            })?;
        result.push((name.clone(), col.gather(&final_oids).iter_u64().collect()));
    }
    result.push(("rank".to_string(), ranks));
    let rank_elapsed = t.elapsed().as_nanos() as u64;
    timings.aggregate_ns += rank_elapsed;
    if telemetry::is_enabled() {
        telemetry::record_span(
            "engine.window.rank",
            rank_elapsed,
            vec![
                ("partitions", parts.num_groups().into()),
                ("rows", out.oids.len().into()),
            ],
        );
    }
    Ok(result)
}

/// Materialize a query result as a new [`Table`] (multi-stage queries such
/// as TPC-H Q13 feed one query's output into another).
pub fn result_to_table(name: impl Into<String>, result: &QueryResult) -> Table {
    let mut t = Table::new(name);
    for (cname, vals) in &result.columns {
        let width = mcs_columnar::width_for_max(vals.iter().copied().max().unwrap_or(0));
        t.add_column(Column::from_u64s(
            cname.clone(),
            width,
            vals.iter().copied(),
        ));
    }
    t
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::query::{Agg, Filter};
    use mcs_columnar::Predicate;

    fn small_table() -> Table {
        let mut t = Table::new("sales");
        t.add_column(Column::from_u64s("nation", 2, [1u64, 0, 1, 0, 2, 2]));
        t.add_column(Column::from_u64s("ship_date", 3, [5u64, 2, 5, 1, 3, 3]));
        t.add_column(Column::from_u64s("price", 8, [40u64, 30, 10, 20, 50, 60]));
        t
    }

    // Old panic site: the filter scan's `expect_column`.
    #[test]
    fn unknown_filter_column_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("q");
        q.order_by = vec![OrderKey::asc("nation")];
        q.select = vec!["nation".into()];
        q.filters = vec![Filter {
            column: "zip".into(),
            predicate: Predicate::Lt(3),
        }];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownColumn {
                column: "zip".into(),
                context: "filter"
            }
        );
    }

    // Old panic site: `prepare_sort`'s `expect_column` on a sort key.
    #[test]
    fn unknown_sort_key_column_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("q");
        q.order_by = vec![OrderKey::asc("no_such_key")];
        q.select = vec!["nation".into()];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnknownColumn {
                context: "sort key",
                ..
            }
        ));
    }

    // Old panic site: `assert!(!keys.is_empty())` in execute_orderby.
    #[test]
    fn query_without_sort_keys_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("bare");
        q.select = vec!["nation".into()];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert_eq!(
            err,
            EngineError::NoSortKeys {
                query: "bare".into()
            }
        );
    }

    #[test]
    fn unknown_select_column_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("q");
        q.order_by = vec![OrderKey::asc("nation")];
        q.select = vec!["nation".into(), "ghost".into()];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnknownColumn {
                context: "SELECT",
                ..
            }
        ));
    }

    // Old panic site: the aggregate fetch closure's `expect_column`.
    #[test]
    fn unknown_aggregate_column_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("q");
        q.group_by = vec!["nation".into()];
        q.aggregates = vec![Agg::new(AggKind::Sum("ghost".into()), "s")];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnknownColumn {
                context: "aggregate",
                ..
            }
        ));
    }

    // Old panic site: `unwrap_or_else(|| panic!("ORDER BY column ..."))`
    // on the grouped-result post-sort.
    #[test]
    fn unknown_grouped_order_by_column_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("q");
        q.group_by = vec!["nation".into()];
        q.aggregates = vec![Agg::new(AggKind::Count, "cnt")];
        q.order_by = vec![OrderKey::desc("not_a_label")];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::UnknownColumn {
                context: "ORDER BY over grouped result",
                ..
            }
        ));
    }

    // Old panic site: `assert!(total_wo <= 64)` in execute_window. The
    // check now fires *before* any sorting work.
    #[test]
    fn too_wide_window_key_is_a_typed_error() {
        let mut t = Table::new("wide");
        t.add_column(Column::from_u64s("p", 2, [0u64, 1, 0, 1]));
        t.add_column(Column::from_u64s("a", 40, [7u64, 5, 3, 1]));
        t.add_column(Column::from_u64s("b", 40, [1u64, 2, 3, 4]));
        let mut q = Query::named("w");
        q.partition_by = vec!["p".into()];
        q.window_order = vec![OrderKey::asc("a"), OrderKey::asc("b")];
        q.select = vec!["p".into()];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert_eq!(err, EngineError::WindowKeyTooWide { bits: 80 });
    }

    // Old panic site: `multi_column_sort(...).expect(...)` in run_mcs. An
    // invalid fixed plan now degrades to P0 instead of reaching the
    // executor, and the rung is recorded.
    #[test]
    fn invalid_fixed_plan_degrades_to_p0() {
        let t = small_table();
        let mut q = Query::named("q");
        q.order_by = vec![OrderKey::asc("nation"), OrderKey::asc("ship_date")];
        q.select = vec!["price".into()];
        let cfg = EngineConfig {
            // Total key width is 5 bits; a 9-bit plan is invalid.
            planner: PlannerMode::Fixed(MassagePlan::from_widths(&[9])),
            ..EngineConfig::default()
        };
        let r = run_query(&t, &q, &cfg).expect("degrades, does not fail");
        assert_eq!(r.timings.degradations, vec![DegradeReason::InvalidPlan]);
        let ran = r.timings.plan.as_ref().expect("a plan ran");
        assert_eq!(ran.num_rounds(), 2, "fell back to column-at-a-time");
        // Correctness is untouched: nation ASC, ship_date ASC.
        assert_eq!(r.column("price").unwrap(), vec![20, 30, 40, 10, 50, 60]);
    }

    #[test]
    fn column_required_names_the_missing_column() {
        let t = small_table();
        let mut q = Query::named("q");
        q.order_by = vec![OrderKey::asc("nation")];
        q.select = vec!["price".into()];
        let r = run_query(&t, &q, &EngineConfig::default()).unwrap();
        assert_eq!(r.column_required("price").unwrap().len(), 6);
        assert_eq!(
            r.column_required("ghost").unwrap_err(),
            EngineError::UnknownColumn {
                column: "ghost".into(),
                context: "result",
            }
        );
    }

    #[test]
    fn builder_matches_default_and_overrides() {
        let built = EngineConfig::builder().build();
        assert!(matches!(built.planner, PlannerMode::Roga { rho: Some(r) } if r == 0.001));
        let cfg = EngineConfig::builder()
            .planner(PlannerMode::ColumnAtATime)
            .threads(3)
            .model(CostModel::with_defaults())
            .exec(ExecConfig {
                threads: 2,
                ..ExecConfig::default()
            })
            .build();
        // Later setters win: exec() replaced the whole struct after
        // threads() touched one field.
        assert_eq!(cfg.exec.threads, 2);
        assert!(matches!(cfg.planner, PlannerMode::ColumnAtATime));
    }

    #[test]
    fn scalar_fallback_sort_matches_comparator_order() {
        let a = CodeVec::from_u64s(3, [5u64, 2, 5, 1, 3, 3]);
        let b = CodeVec::from_u64s(8, [40u64, 30, 10, 20, 50, 60]);
        let specs = [
            SortSpec {
                width: 3,
                descending: false,
            },
            SortSpec {
                width: 8,
                descending: true,
            },
        ];
        let exec = ExecConfig {
            want_final_groups: true,
            ..ExecConfig::default()
        };
        let out = scalar_fallback_sort(&[&a, &b], &specs, &exec);
        assert_eq!(out.oids, vec![3, 1, 5, 4, 0, 2]);
        // Groups = ties on (a, b): all distinct here.
        assert_eq!(out.groups.num_groups(), 6);
        // And the trivial-grouping path.
        let exec2 = ExecConfig {
            want_final_groups: false,
            ..ExecConfig::default()
        };
        assert_eq!(
            scalar_fallback_sort(&[&a, &b], &specs, &exec2)
                .groups
                .num_groups(),
            1
        );
    }

    #[test]
    fn no_sort_keys_is_a_typed_error() {
        let t = small_table();
        let mut q = Query::named("boom");
        q.select = vec!["nation".into()];
        let err = run_query(&t, &q, &EngineConfig::default()).unwrap_err();
        assert!(matches!(err, EngineError::NoSortKeys { ref query } if query == "boom"));
        assert!(err.to_string().contains("no sort keys"));
    }
}
