//! The physical query pipeline: ByteSlice scans → lookups → (planned)
//! multi-column sort → aggregation / windowing, with per-phase timings.
//!
//! This is the execution structure of the paper's prototype (§6 and the
//! Figure 11 reference architecture): filters run as fast scans on the
//! WideTable, sorting columns are gathered via lookups, the optimizer
//! (ROGA, or column-at-a-time when massaging is off) picks a plan, and
//! the multi-column sort executor produces the order and grouping the
//! aggregates or window ranks consume.

use std::time::{Duration, Instant};

use mcs_columnar::{BitVec, CodeVec, Column, Table};
use mcs_core::{multi_column_sort, ExecConfig, ExecStats, MassagePlan, SortSpec};
use mcs_cost::{CostModel, KeyColumnStats, SortInstance};
use mcs_planner::{roga, rrs, RogaOptions, RrsOptions};
use mcs_telemetry as telemetry;

use crate::aggregate::aggregate_groups;
use crate::query::{OrderKey, Query};
use crate::window::rank_over;

/// How the engine picks massage plans.
#[derive(Debug, Clone)]
pub enum PlannerMode {
    /// Always column-at-a-time (`P_0`) — "code massaging disabled".
    ColumnAtATime,
    /// ROGA (Algorithm 1) with time threshold `ρ`.
    Roga {
        /// Fraction of the best plan's estimated time (None = no limit).
        rho: Option<f64>,
    },
    /// Recursive random search with a fixed budget (baseline).
    Rrs {
        /// Search budget.
        budget: Duration,
    },
    /// A fixed plan supplied by the caller (experiments).
    Fixed(MassagePlan),
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Multi-column sort execution settings.
    pub exec: ExecConfig,
    /// Plan selection mode.
    pub planner: PlannerMode,
    /// Cost model used by the planner.
    pub model: CostModel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            exec: ExecConfig::default(),
            planner: PlannerMode::Roga { rho: Some(0.001) },
            model: CostModel::with_defaults(),
        }
    }
}

impl EngineConfig {
    /// Massaging disabled: the state-of-the-art column-at-a-time baseline.
    pub fn without_massaging() -> EngineConfig {
        EngineConfig {
            planner: PlannerMode::ColumnAtATime,
            ..EngineConfig::default()
        }
    }
}

/// Per-phase wall-clock breakdown of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryTimings {
    /// Filter scans (ByteSlice, early-stopping).
    pub filter_scan_ns: u64,
    /// Lookups gathering sort-key and aggregate columns.
    pub gather_ns: u64,
    /// Plan search (ROGA / RRS).
    pub plan_search_ns: u64,
    /// Multi-column sorting (massage + all rounds).
    pub mcs_ns: u64,
    /// Second-stage multi-column sort over grouped results
    /// (ORDER BY over aggregates, as in TPC-H Q13).
    pub post_sort_ns: u64,
    /// Aggregation / window-rank evaluation.
    pub aggregate_ns: u64,
    /// End-to-end.
    pub total_ns: u64,
    /// Detailed multi-column sort stats.
    pub mcs_stats: ExecStats,
    /// The plan that was executed.
    pub plan: Option<MassagePlan>,
    /// The sort instance the planner saw (rows, specs, column stats) —
    /// what EXPLAIN needs to re-derive per-round cost predictions.
    pub sort_instance: Option<SortInstance>,
}

impl QueryTimings {
    /// Everything except multi-column sorting (the paper's
    /// "Scan+Lookup+Aggregation+…" bar).
    pub fn non_mcs_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.mcs_ns + self.post_sort_ns + self.plan_search_ns)
    }
}

/// A materialized query result.
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Output columns, in declaration order: group keys then aggregates,
    /// or the projection plus `rank` for window queries.
    pub columns: Vec<(String, Vec<u64>)>,
    /// Number of output rows.
    pub rows: usize,
    /// Phase timings.
    pub timings: QueryTimings,
}

impl QueryResult {
    /// Fetch an output column by name.
    pub fn column(&self, name: &str) -> Option<&Vec<u64>> {
        self.columns.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }
}

/// Execute `query` against `table`.
pub fn execute(table: &Table, query: &Query, cfg: &EngineConfig) -> QueryResult {
    let t_total = Instant::now();
    let mut timings = QueryTimings::default();

    // 1. Filters: ByteSlice scans, ANDed.
    let t = Instant::now();
    let oids: Vec<u32> = if query.filters.is_empty() {
        (0..table.rows() as u32).collect()
    } else {
        let mut acc: Option<BitVec> = None;
        for f in &query.filters {
            let col = table.expect_column(&f.column);
            let bv = col.byteslice().scan(&f.predicate);
            acc = Some(match acc {
                None => bv,
                Some(mut a) => {
                    a.and_assign(&bv);
                    a
                }
            });
        }
        acc.unwrap().to_oids()
    };
    timings.filter_scan_ns = t.elapsed().as_nanos() as u64;

    let result = if !query.partition_by.is_empty() {
        execute_window(table, query, cfg, &oids, &mut timings)
    } else if !query.group_by.is_empty() {
        execute_grouped(table, query, cfg, &oids, &mut timings)
    } else {
        execute_orderby(table, query, cfg, &oids, &mut timings)
    };

    timings.total_ns = t_total.elapsed().as_nanos() as u64;
    if telemetry::is_enabled() {
        telemetry::record_span(
            "engine.query",
            timings.total_ns,
            vec![
                ("query", query.name.clone().into()),
                ("rows_in", oids.len().into()),
                (
                    "rows_out",
                    result.first().map_or(0, |(_, v)| v.len()).into(),
                ),
            ],
        );
        telemetry::counter_add("engine.queries", 1);
    }
    QueryResult {
        rows: result.first().map_or(0, |(_, v)| v.len()),
        columns: result,
        timings,
    }
}

/// Gather the sort-key columns (restricted to `oids`) and build the
/// planner's instance.
fn prepare_sort(
    table: &Table,
    keys: &[OrderKey],
    oids: &[u32],
    want_final_groups: bool,
    timings: &mut QueryTimings,
) -> (Vec<CodeVec>, Vec<SortSpec>, SortInstance) {
    let t = Instant::now();
    let mut cols: Vec<CodeVec> = Vec::with_capacity(keys.len());
    let mut specs: Vec<SortSpec> = Vec::with_capacity(keys.len());
    let mut stats: Vec<KeyColumnStats> = Vec::with_capacity(keys.len());
    for k in keys {
        let col = table.expect_column(&k.column);
        cols.push(col.gather(oids));
        specs.push(SortSpec {
            width: col.width(),
            descending: k.descending,
        });
        let mut s = KeyColumnStats::from_stats(col.width(), col.stats());
        // Filtering can only reduce cardinality.
        s.ndv = s.ndv.min(oids.len() as f64).max(1.0);
        stats.push(s);
    }
    timings.gather_ns += t.elapsed().as_nanos() as u64;
    let inst = SortInstance {
        rows: oids.len(),
        specs: specs.clone(),
        stats,
        want_final_groups,
    };
    (cols, specs, inst)
}

/// Run the planner, returning the plan, the column order to apply, and
/// recording search time.
fn pick_plan(
    inst: &SortInstance,
    order_free: bool,
    cfg: &EngineConfig,
    timings: &mut QueryTimings,
) -> (MassagePlan, Vec<usize>) {
    let t = Instant::now();
    let identity: Vec<usize> = (0..inst.specs.len()).collect();
    let picked = match &cfg.planner {
        PlannerMode::ColumnAtATime => (inst.p0(), identity),
        PlannerMode::Fixed(p) => (p.clone(), identity),
        PlannerMode::Roga { rho } => {
            let r = roga(
                inst,
                &cfg.model,
                &RogaOptions {
                    rho: *rho,
                    permute_columns: order_free,
                },
            );
            (r.plan, r.column_order)
        }
        PlannerMode::Rrs { budget } => {
            let r = rrs(
                inst,
                &cfg.model,
                &RrsOptions {
                    budget: *budget,
                    permute_columns: order_free,
                    ..Default::default()
                },
            );
            (r.plan, r.column_order)
        }
    };
    timings.plan_search_ns += t.elapsed().as_nanos() as u64;
    picked
}

/// Sort the gathered key columns under the chosen plan; returns the
/// permutation (positions into `oids`) and grouping.
fn run_mcs(
    cols: &[CodeVec],
    specs: &[SortSpec],
    inst: &SortInstance,
    order_free: bool,
    cfg: &EngineConfig,
    timings: &mut QueryTimings,
) -> mcs_core::MultiColumnSortOutput {
    let (plan, order) = pick_plan(inst, order_free, cfg, timings);
    let (pcols, pspecs): (Vec<&CodeVec>, Vec<SortSpec>) = (
        order.iter().map(|&i| &cols[i]).collect(),
        order.iter().map(|&i| specs[i]).collect(),
    );
    let t = Instant::now();
    let out = multi_column_sort(&pcols, &pspecs, &plan, &cfg.exec)
        .expect("engine-constructed plan covers the key");
    timings.mcs_ns += t.elapsed().as_nanos() as u64;
    timings.mcs_stats = out.stats.clone();
    timings.plan = Some(plan);
    // Record the instance in planner column order so EXPLAIN's predictions
    // price exactly the plan that ran.
    timings.sort_instance = Some(mcs_planner::permute_instance(inst, &order));
    out
}

fn execute_orderby(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    oids: &[u32],
    timings: &mut QueryTimings,
) -> Vec<(String, Vec<u64>)> {
    let keys = query.sort_keys();
    assert!(!keys.is_empty(), "query {} has no sort keys", query.name);
    let (cols, specs, inst) = prepare_sort(table, &keys, oids, false, timings);
    let out = run_mcs(&cols, &specs, &inst, false, cfg, timings);

    // Final oids into the base table.
    let final_oids: Vec<u32> = out.oids.iter().map(|&p| oids[p as usize]).collect();

    let t = Instant::now();
    let mut result = Vec::new();
    for name in &query.select {
        let col = table.expect_column(name);
        result.push((name.clone(), col.gather(&final_oids).iter_u64().collect()));
    }
    timings.gather_ns += t.elapsed().as_nanos() as u64;
    result
}

fn execute_grouped(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    oids: &[u32],
    timings: &mut QueryTimings,
) -> Vec<(String, Vec<u64>)> {
    // No qualifying rows: zero groups, empty output columns.
    if oids.is_empty() {
        let mut result: Vec<(String, Vec<u64>)> =
            query.group_by.iter().map(|g| (g.clone(), vec![])).collect();
        result.extend(query.aggregates.iter().map(|a| (a.label.clone(), vec![])));
        return result;
    }

    let keys = query.sort_keys();
    let (cols, specs, inst) = prepare_sort(table, &keys, oids, true, timings);
    let out = run_mcs(&cols, &specs, &inst, query.order_free(), cfg, timings);
    let final_oids: Vec<u32> = out.oids.iter().map(|&p| oids[p as usize]).collect();

    // Aggregate per group (Figure 2 steps 4-5): gather each referenced
    // column once in output order.
    let t = Instant::now();
    let fetch = |name: &str| -> Vec<u64> {
        table
            .expect_column(name)
            .gather(&final_oids)
            .iter_u64()
            .collect()
    };
    let agg_out = aggregate_groups(&query.aggregates, &out.groups, &fetch);

    // Group-key output columns: first row of each group.
    let mut result: Vec<(String, Vec<u64>)> = Vec::new();
    for (gi, g) in query.group_by.iter().enumerate() {
        let gathered = &cols[gi];
        let vals: Vec<u64> = out
            .groups
            .iter()
            .map(|r| gathered.get(out.oids[r.start] as usize))
            .collect();
        result.push((g.clone(), vals));
    }
    result.extend(agg_out);
    let agg_elapsed = t.elapsed().as_nanos() as u64;
    timings.aggregate_ns += agg_elapsed;
    if telemetry::is_enabled() {
        telemetry::record_span(
            "engine.aggregate",
            agg_elapsed,
            vec![
                ("groups", out.groups.num_groups().into()),
                ("aggregates", query.aggregates.len().into()),
            ],
        );
    }

    // ORDER BY over group keys / aggregate labels: a second multi-column
    // sort on the grouped table (this is TPC-H Q13's situation).
    if !query.order_by.is_empty() {
        let t = Instant::now();
        let n_groups = result.first().map_or(0, |(_, v)| v.len());
        let mut ob_cols: Vec<CodeVec> = Vec::new();
        let mut ob_specs: Vec<SortSpec> = Vec::new();
        for k in &query.order_by {
            let vals = result
                .iter()
                .find(|(n, _)| n == &k.column)
                .unwrap_or_else(|| panic!("ORDER BY column {} not in result", k.column))
                .1
                .clone();
            let width = mcs_columnar::width_for_max(vals.iter().copied().max().unwrap_or(0));
            ob_cols.push(CodeVec::from_u64s(width, vals));
            ob_specs.push(SortSpec {
                width,
                descending: k.descending,
            });
        }
        let refs: Vec<&CodeVec> = ob_cols.iter().collect();
        // The grouped table is small; keep it simple and column-at-a-time
        // unless massaging is enabled (then P0 vs ROGA is the planner's
        // call with fresh statistics).
        let inst2 = SortInstance {
            rows: n_groups,
            specs: ob_specs.clone(),
            stats: ob_specs
                .iter()
                .zip(&ob_cols)
                .map(|(s, c)| {
                    let mut set: Vec<u64> = c.iter_u64().collect();
                    set.sort_unstable();
                    set.dedup();
                    KeyColumnStats::uniform(s.width, set.len() as f64)
                })
                .collect(),
            want_final_groups: false,
        };
        let (plan2, order2) = pick_plan(&inst2, false, cfg, timings);
        let (pcols, pspecs): (Vec<&CodeVec>, Vec<SortSpec>) = (
            order2.iter().map(|&i| refs[i]).collect(),
            order2.iter().map(|&i| ob_specs[i]).collect(),
        );
        let sorted =
            multi_column_sort(&pcols, &pspecs, &plan2, &cfg.exec).expect("valid sort instance");
        for (_, vals) in result.iter_mut() {
            *vals = sorted.oids.iter().map(|&p| vals[p as usize]).collect();
        }
        timings.post_sort_ns += t.elapsed().as_nanos() as u64;
    }
    result
}

fn execute_window(
    table: &Table,
    query: &Query,
    cfg: &EngineConfig,
    oids: &[u32],
    timings: &mut QueryTimings,
) -> Vec<(String, Vec<u64>)> {
    let keys = query.sort_keys();
    let (cols, specs, inst) = prepare_sort(table, &keys, oids, true, timings);
    let out = run_mcs(&cols, &specs, &inst, query.order_free(), cfg, timings);
    let final_oids: Vec<u32> = out.oids.iter().map(|&p| oids[p as usize]).collect();

    let t = Instant::now();
    // Partition bounds = ties on the partition keys only: recompute by
    // scanning the sorted partition-key columns (they are the first
    // `partition_by.len()` sort keys).
    let np = query.partition_by.len();
    let mut parts = mcs_core::GroupBounds::whole(out.oids.len());
    for c in cols.iter().take(np) {
        let permuted: Vec<u64> = out.oids.iter().map(|&p| c.get(p as usize)).collect();
        parts = parts.refine_by(&permuted);
    }
    // Window key: direction-adjusted concatenation of the window-order
    // columns in output order.
    let wo_cols: Vec<&CodeVec> = cols.iter().skip(np).collect();
    let wo_specs = &specs[np..];
    let mut window_keys = vec![0u64; out.oids.len()];
    let total_wo: u32 = wo_specs.iter().map(|s| s.width).sum();
    assert!(
        total_wo <= 64,
        "window ORDER BY keys wider than 64 bits are not supported"
    );
    for (c, s) in wo_cols.iter().zip(wo_specs) {
        for (p, wk) in window_keys.iter_mut().enumerate() {
            let mut v = c.get(out.oids[p] as usize);
            if s.descending {
                v ^= mcs_core::width_mask(s.width);
            }
            *wk = (*wk << s.width) | v;
        }
    }
    let ranks = rank_over(&parts, &window_keys);

    let mut result = Vec::new();
    for name in &query.select {
        let col = table.expect_column(name);
        result.push((name.clone(), col.gather(&final_oids).iter_u64().collect()));
    }
    result.push(("rank".to_string(), ranks));
    let rank_elapsed = t.elapsed().as_nanos() as u64;
    timings.aggregate_ns += rank_elapsed;
    if telemetry::is_enabled() {
        telemetry::record_span(
            "engine.window.rank",
            rank_elapsed,
            vec![
                ("partitions", parts.num_groups().into()),
                ("rows", out.oids.len().into()),
            ],
        );
    }
    result
}

/// Materialize a query result as a new [`Table`] (multi-stage queries such
/// as TPC-H Q13 feed one query's output into another).
pub fn result_to_table(name: impl Into<String>, result: &QueryResult) -> Table {
    let mut t = Table::new(name);
    for (cname, vals) in &result.columns {
        let width = mcs_columnar::width_for_max(vals.iter().copied().max().unwrap_or(0));
        t.add_column(Column::from_u64s(
            cname.clone(),
            width,
            vals.iter().copied(),
        ));
    }
    t
}
