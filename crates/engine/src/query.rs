//! Logical query description.
//!
//! Queries are the subset of SQL the paper's evaluation needs: conjunctive
//! range/equality filters over one (wide) table, `GROUP BY` with
//! aggregates, `ORDER BY` (over columns or aggregate outputs, ASC/DESC),
//! and SQL:2003 `RANK() OVER (PARTITION BY … ORDER BY …)` windows.

use mcs_columnar::Predicate;

/// A conjunctive filter term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Column the predicate applies to.
    pub column: String,
    /// Predicate over the column's *codes*.
    pub predicate: Predicate,
}

/// Aggregate kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)`
    Count,
    /// `COUNT(DISTINCT col)`
    CountDistinct(String),
    /// `SUM(col)` over codes (encodings are affine, so sums of codes map
    /// back to sums of values up to a per-group-count offset).
    Sum(String),
    /// `AVG(col)` over codes, rounded down.
    Avg(String),
    /// `MIN(col)`
    Min(String),
    /// `MAX(col)`
    Max(String),
}

/// A labelled aggregate (`SUM(price) AS revenue`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agg {
    /// What to compute.
    pub kind: AggKind,
    /// Output column label (referencable from `order_by`).
    pub label: String,
}

impl Agg {
    /// Convenience constructor.
    pub fn new(kind: AggKind, label: impl Into<String>) -> Agg {
        Agg {
            kind,
            label: label.into(),
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Column name or aggregate label.
    pub column: String,
    /// `DESC`?
    pub descending: bool,
}

impl OrderKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> OrderKey {
        OrderKey {
            column: column.into(),
            descending: false,
        }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> OrderKey {
        OrderKey {
            column: column.into(),
            descending: true,
        }
    }
}

/// A logical query over one table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Query {
    /// Query identifier (for reporting).
    pub name: String,
    /// Conjunctive WHERE clause.
    pub filters: Vec<Filter>,
    /// Projected columns (used by ORDER BY-only and window queries).
    pub select: Vec<String>,
    /// GROUP BY attributes.
    pub group_by: Vec<String>,
    /// Aggregates (require `group_by`).
    pub aggregates: Vec<Agg>,
    /// ORDER BY keys: plain columns, or (for grouped queries) group-by
    /// columns and aggregate labels.
    pub order_by: Vec<OrderKey>,
    /// `PARTITION BY` attributes of a `RANK()` window.
    pub partition_by: Vec<String>,
    /// `ORDER BY` inside the window (requires `partition_by`).
    pub window_order: Vec<OrderKey>,
}

impl Query {
    /// New empty query with a name.
    pub fn named(name: impl Into<String>) -> Query {
        Query {
            name: name.into(),
            ..Query::default()
        }
    }

    /// The columns whose multi-column sort this query triggers, in sort
    /// order, with directions — the planner's input.
    ///
    /// * window queries sort `partition_by ++ window_order`;
    /// * grouped queries sort `group_by`;
    /// * otherwise `order_by`.
    pub fn sort_keys(&self) -> Vec<OrderKey> {
        if !self.partition_by.is_empty() {
            let mut keys: Vec<OrderKey> = self
                .partition_by
                .iter()
                .map(|c| OrderKey::asc(c.clone()))
                .collect();
            keys.extend(self.window_order.iter().cloned());
            keys
        } else if !self.group_by.is_empty() {
            self.group_by
                .iter()
                .map(|c| OrderKey::asc(c.clone()))
                .collect()
        } else {
            self.order_by.clone()
        }
    }

    /// Whether the sort-column order is free (GROUP BY / PARTITION BY
    /// without a window order constrain nothing; ORDER BY fixes the
    /// sequence). Determines whether the planner may permute columns.
    pub fn order_free(&self) -> bool {
        if !self.partition_by.is_empty() {
            // Partition keys could permute among themselves, but the
            // window order is positional; be conservative.
            self.window_order.is_empty()
        } else {
            !self.group_by.is_empty()
        }
    }

    /// Number of attributes in the triggered multi-column sort.
    pub fn sort_width(&self) -> usize {
        self.sort_keys().len()
    }

    /// Whether this query triggers a multi-column (≥ 2 attribute) sort.
    pub fn is_multi_column(&self) -> bool {
        self.sort_width() >= 2
    }

    /// Number of attributes in the widest multi-column sort anywhere in
    /// the pipeline. A grouped (or windowed) query with an ORDER BY over
    /// group keys / aggregate labels triggers a *second* sort on the
    /// grouped table (TPC-H Q13's situation), which `sort_width` — the
    /// planner-facing width of the primary sort — does not count.
    pub fn max_sort_width(&self) -> usize {
        let resort = if self.group_by.is_empty() && self.partition_by.is_empty() {
            0
        } else {
            self.order_by.len()
        };
        self.sort_width().max(resort)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_keys_selection() {
        let mut q = Query::named("g");
        q.group_by = vec!["a".into(), "b".into()];
        q.order_by = vec![OrderKey::desc("x")];
        assert_eq!(q.sort_keys(), vec![OrderKey::asc("a"), OrderKey::asc("b")]);
        assert!(q.order_free());

        let mut q = Query::named("w");
        q.partition_by = vec!["p".into()];
        q.window_order = vec![OrderKey::asc("o")];
        assert_eq!(q.sort_keys(), vec![OrderKey::asc("p"), OrderKey::asc("o")]);
        assert!(!q.order_free());
        assert!(q.is_multi_column());

        let mut q = Query::named("o");
        q.order_by = vec![OrderKey::asc("a"), OrderKey::desc("b")];
        assert_eq!(q.sort_keys().len(), 2);
        assert!(!q.order_free());
    }
}
