//! A deliberately naive row-at-a-time reference executor.
//!
//! Used only for correctness testing: it evaluates the same [`Query`]
//! semantics with `BTreeMap`s and stable comparator sorts, no SIMD, no
//! encoding tricks. Every integration test compares the fast pipeline
//! against this oracle.

// Test-support code: the oracle asserts by design, it never ships on a
// production query path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeMap;

use mcs_columnar::Table;

use crate::query::{AggKind, OrderKey, Query};

/// Reference result: named columns of u64 codes.
pub type RefResult = Vec<(String, Vec<u64>)>;

fn filtered_rows(table: &Table, query: &Query) -> Vec<usize> {
    (0..table.rows())
        .filter(|&r| {
            query.filters.iter().all(|f| {
                let v = table.expect_column(&f.column).get(r);
                f.predicate.eval(v)
            })
        })
        .collect()
}

fn key_of(table: &Table, keys: &[OrderKey], r: usize) -> Vec<(u64, bool)> {
    keys.iter()
        .map(|k| (table.expect_column(&k.column).get(r), k.descending))
        .collect()
}

fn cmp_keys(a: &[(u64, bool)], b: &[(u64, bool)]) -> std::cmp::Ordering {
    for ((va, d), (vb, _)) in a.iter().zip(b) {
        let o = if *d { vb.cmp(va) } else { va.cmp(vb) };
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    std::cmp::Ordering::Equal
}

/// Naively evaluate `query` over `table`.
pub fn naive_execute(table: &Table, query: &Query) -> RefResult {
    let rows = filtered_rows(table, query);

    if !query.partition_by.is_empty() {
        return naive_window(table, query, rows);
    }
    if !query.group_by.is_empty() {
        return naive_grouped(table, query, rows);
    }

    // ORDER BY + projection.
    let mut rows = rows;
    rows.sort_by(|&a, &b| {
        cmp_keys(
            &key_of(table, &query.order_by, a),
            &key_of(table, &query.order_by, b),
        )
    });
    query
        .select
        .iter()
        .map(|name| {
            let col = table.expect_column(name);
            (name.clone(), rows.iter().map(|&r| col.get(r)).collect())
        })
        .collect()
}

fn naive_grouped(table: &Table, query: &Query, rows: Vec<usize>) -> RefResult {
    // Group rows by the group-by key vector.
    let mut groups: BTreeMap<Vec<u64>, Vec<usize>> = BTreeMap::new();
    for r in rows {
        let key: Vec<u64> = query
            .group_by
            .iter()
            .map(|g| table.expect_column(g).get(r))
            .collect();
        groups.entry(key).or_default().push(r);
    }

    // Evaluate aggregates per group.
    struct GroupRow {
        keys: Vec<u64>,
        aggs: Vec<u64>,
    }
    let mut out_rows: Vec<GroupRow> = Vec::new();
    for (keys, members) in &groups {
        let mut aggs = Vec::new();
        for a in &query.aggregates {
            let v = match &a.kind {
                AggKind::Count => members.len() as u64,
                AggKind::CountDistinct(c) => {
                    let mut vals: Vec<u64> = members
                        .iter()
                        .map(|&r| table.expect_column(c).get(r))
                        .collect();
                    vals.sort_unstable();
                    vals.dedup();
                    vals.len() as u64
                }
                AggKind::Sum(c) => members.iter().map(|&r| table.expect_column(c).get(r)).sum(),
                AggKind::Avg(c) => {
                    let s: u64 = members.iter().map(|&r| table.expect_column(c).get(r)).sum();
                    s / members.len() as u64
                }
                AggKind::Min(c) => members
                    .iter()
                    .map(|&r| table.expect_column(c).get(r))
                    .min()
                    .unwrap_or(0),
                AggKind::Max(c) => members
                    .iter()
                    .map(|&r| table.expect_column(c).get(r))
                    .max()
                    .unwrap_or(0),
            };
            aggs.push(v);
        }
        out_rows.push(GroupRow {
            keys: keys.clone(),
            aggs,
        });
    }

    // ORDER BY over group keys / aggregate labels.
    if !query.order_by.is_empty() {
        let col_index = |name: &str| -> (bool, usize) {
            if let Some(i) = query.group_by.iter().position(|g| g == name) {
                (true, i)
            } else if let Some(i) = query.aggregates.iter().position(|a| a.label == name) {
                (false, i)
            } else {
                panic!("ORDER BY column {name} not found");
            }
        };
        let keys: Vec<(bool, usize, bool)> = query
            .order_by
            .iter()
            .map(|k| {
                let (is_key, i) = col_index(&k.column);
                (is_key, i, k.descending)
            })
            .collect();
        out_rows.sort_by(|a, b| {
            for &(is_key, i, desc) in &keys {
                let (va, vb) = if is_key {
                    (a.keys[i], b.keys[i])
                } else {
                    (a.aggs[i], b.aggs[i])
                };
                let o = if desc { vb.cmp(&va) } else { va.cmp(&vb) };
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let mut result: RefResult = Vec::new();
    for (i, g) in query.group_by.iter().enumerate() {
        result.push((g.clone(), out_rows.iter().map(|r| r.keys[i]).collect()));
    }
    for (i, a) in query.aggregates.iter().enumerate() {
        result.push((
            a.label.clone(),
            out_rows.iter().map(|r| r.aggs[i]).collect(),
        ));
    }
    result
}

fn naive_window(table: &Table, query: &Query, rows: Vec<usize>) -> RefResult {
    // Sort by partition keys then window order.
    let mut sort_keys: Vec<OrderKey> = query
        .partition_by
        .iter()
        .map(|c| OrderKey::asc(c.clone()))
        .collect();
    sort_keys.extend(query.window_order.iter().cloned());
    let mut rows = rows;
    rows.sort_by(|&a, &b| cmp_keys(&key_of(table, &sort_keys, a), &key_of(table, &sort_keys, b)));

    // RANK within partitions.
    let part_key = |r: usize| -> Vec<u64> {
        query
            .partition_by
            .iter()
            .map(|c| table.expect_column(c).get(r))
            .collect()
    };
    let win_key = |r: usize| key_of(table, &query.window_order, r);
    let mut ranks = vec![0u64; rows.len()];
    let mut part_start = 0usize;
    for i in 0..rows.len() {
        if i > 0 && part_key(rows[i]) != part_key(rows[i - 1]) {
            part_start = i;
        }
        if i == part_start {
            ranks[i] = 1;
        } else if cmp_keys(&win_key(rows[i]), &win_key(rows[i - 1])) == std::cmp::Ordering::Equal {
            ranks[i] = ranks[i - 1];
        } else {
            ranks[i] = (i - part_start + 1) as u64;
        }
    }

    let mut result: RefResult = query
        .select
        .iter()
        .map(|name| {
            let col = table.expect_column(name);
            (name.clone(), rows.iter().map(|&r| col.get(r)).collect())
        })
        .collect();
    result.push(("rank".to_string(), ranks));
    result
}

/// Compare two results as *multisets of rows* (orders may differ on ties).
/// Panics with context when they disagree.
pub fn assert_same_rows(got: &RefResult, want: &RefResult) {
    assert_eq!(
        got.len(),
        want.len(),
        "column count: got {:?} want {:?}",
        got.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        want.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    for ((gn, gv), (wn, wv)) in got.iter().zip(want) {
        assert_eq!(gn, wn, "column name mismatch");
        assert_eq!(gv.len(), wv.len(), "row count in {gn}");
    }
    let nrows = got.first().map_or(0, |(_, v)| v.len());
    let to_rows = |r: &RefResult| -> Vec<Vec<u64>> {
        let mut rows: Vec<Vec<u64>> = (0..nrows)
            .map(|i| r.iter().map(|(_, v)| v[i]).collect())
            .collect();
        rows.sort_unstable();
        rows
    };
    assert_eq!(to_rows(got), to_rows(want), "row multiset mismatch");
}

/// Compare two results *including row order* (for ORDER BY queries the
/// sorted prefix of each row must be ordered; ties may permute, so this
/// checks the full rows lexicographically only where the sort keys are
/// strictly ordered). Simpler contract: assert the sequences of sort-key
/// tuples match exactly.
pub fn assert_same_order(got: &RefResult, want: &RefResult, key_cols: &[String]) {
    for k in key_cols {
        let g = &got.iter().find(|(n, _)| n == k).expect("key col").1;
        let w = &want.iter().find(|(n, _)| n == k).expect("key col").1;
        assert_eq!(g, w, "ordered column {k} differs");
    }
    assert_same_rows(got, want);
}
