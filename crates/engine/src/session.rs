//! Sessions: a shared immutable [`Database`], prepared queries whose
//! plans live in a fingerprint-keyed [plan cache](PlanCacheStats), and
//! concurrent query serving over `std::thread::scope`.
//!
//! The paper prices plan search (ROGA) as a per-query cost; under
//! repeated query shapes that cost is pure overhead after the first
//! execution. A [`Session`] keeps one [`MassagePlan`] per distinct
//! [`PlanFingerprint`] — sort-key widths and directions, bucketed row
//! count, quantized column statistics — so [`Session::prepare`] pays for
//! stats collection and ROGA once and every later
//! [`PreparedQuery::execute`] with an equal fingerprint skips the search
//! entirely (`plan_search_ns == 0`,
//! [`QueryTimings::plan_cached`](crate::QueryTimings::plan_cached)).
//! Statistics drift past a quantization boundary changes the
//! fingerprint, which *is* the invalidation rule: the lookup misses and
//! a fresh search replaces the stale entry.
//!
//! Concurrency: tables and cached plans are immutable once published, so
//! [`Session::run_concurrent`] serves independent queries from scoped
//! threads over the shared database, admission-limited by a
//! dependency-free counting semaphore ([`AdmissionGate`]). Inter-query
//! and intra-query parallelism compose through one [`WorkerPool`]: every
//! query keeps one implicit worker (progress is never blocked on the
//! pool) and borrows its *extra* morsel workers from the shared pool
//! without blocking, so a saturated batch degrades queries to fewer
//! threads instead of oversubscribing the machine.
//!
//! Memory: the session keeps a pool of [`ExecArena`]s, one per
//! in-flight query. Every execution borrows an arena for its working
//! buffers and returns it afterwards, so a warm prepared query re-runs
//! its round loop without heap allocations; [`Session::arena_stats`]
//! reports the pool's aggregate reuse counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mcs_columnar::Table;
use mcs_core::{ArenaStats, CancelToken, ExecArena, MassagePlan};
use mcs_planner::PlanFingerprint;
use mcs_telemetry as telemetry;

use crate::error::EngineError;
use crate::pipeline::{run_query_impl, warm_plan, EngineConfig, QueryResult};
use crate::query::Query;

/// Default number of cached plans per session.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// A set of registered, immutable, named tables queries run against.
#[derive(Debug, Default)]
pub struct Database {
    tables: Vec<Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Register `table` under its own name, replacing any same-named
    /// table. Returns `&mut self` for chaining.
    pub fn register(&mut self, table: Table) -> &mut Database {
        self.tables.retain(|t| t.name() != table.name());
        self.tables.push(table);
        self
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// All registered tables, in registration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }
}

#[derive(Debug)]
struct CacheEntry {
    plan: MassagePlan,
    column_order: Vec<usize>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<PlanFingerprint, CacheEntry>,
    tick: u64,
}

/// The session's fingerprint-keyed plan cache (LRU, bounded capacity).
///
/// Shared by every query the session runs; thread-safe. Hits, misses,
/// and evictions are counted both here (exact, per session — see
/// [`PlanCacheStats`]) and on the global telemetry counters
/// `planner.cache.{hit,miss,evict}`.
#[derive(Debug)]
pub(crate) struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(CacheInner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A poisoned cache mutex only means another query panicked mid-
    /// lookup; the map itself is always consistent, so keep serving.
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn lookup(&self, fp: &PlanFingerprint) -> Option<(MassagePlan, Vec<usize>)> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(fp)?;
        entry.last_used = tick;
        let hit = (entry.plan.clone(), entry.column_order.clone());
        drop(inner);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if telemetry::is_enabled() {
            telemetry::counter_add("planner.cache.hit", 1);
        }
        Some(hit)
    }

    /// Count a lookup miss (the caller decides whether a search follows).
    pub(crate) fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if telemetry::is_enabled() {
            telemetry::counter_add("planner.cache.miss", 1);
        }
    }

    /// Publish a cleanly-searched plan, evicting the least-recently-used
    /// entry when full. A zero-capacity cache (the benchmark's "cold"
    /// mode) drops everything immediately.
    pub(crate) fn insert(&self, fp: PlanFingerprint, plan: MassagePlan, column_order: Vec<usize>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let mut evicted = false;
        if !inner.map.contains_key(&fp) && inner.map.len() >= self.capacity {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
                evicted = true;
            }
        }
        inner.map.insert(
            fp,
            CacheEntry {
                plan,
                column_order,
                last_used: tick,
            },
        );
        drop(inner);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            if telemetry::is_enabled() {
                telemetry::counter_add("planner.cache.evict", 1);
            }
        }
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.lock().map.len(),
        }
    }
}

/// A point-in-time snapshot of one session's plan-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served from the cache (no plan search ran).
    pub hits: u64,
    /// Lookups that fell through to a fresh plan search.
    pub misses: u64,
    /// Entries evicted to make room (LRU).
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// Per-query execution limits: a deadline, an externally fireable
/// cancel token, and a bound on admission-gate queueing.
///
/// The default is unlimited on every axis and costs one branch per
/// cancellation poll (the token stays the allocation-free
/// [`CancelToken::none`]).
///
/// ```
/// use std::time::Duration;
/// use mcs_engine::QueryOptions;
///
/// let opts = QueryOptions::default()
///     .with_timeout(Duration::from_millis(50))
///     .with_queue_timeout(Duration::from_millis(10));
/// assert!(opts.deadline.is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Absolute point in time after which the query gives up, surfacing
    /// [`EngineError::DeadlineExceeded`]. Polled at every phase boundary
    /// and inside the long loops (every
    /// [`CHECK_INTERVAL`](mcs_core::CHECK_INTERVAL) iterations).
    pub deadline: Option<Instant>,
    /// Longest a query may wait for an admission-gate permit in
    /// [`Session::run_concurrent`] before being shed with
    /// [`EngineError::Overloaded`]. `None` queues unboundedly.
    pub queue_timeout: Option<Duration>,
    /// A token the caller can fire from another thread to abandon the
    /// query ([`EngineError::Cancelled`]). Combined with
    /// [`deadline`](QueryOptions::deadline) when both are set: whichever
    /// fires first wins.
    pub cancel: CancelToken,
}

impl QueryOptions {
    /// Set an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Set the deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> QueryOptions {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Bound admission-gate queueing (see
    /// [`queue_timeout`](QueryOptions::queue_timeout)).
    pub fn with_queue_timeout(mut self, timeout: Duration) -> QueryOptions {
        self.queue_timeout = Some(timeout);
        self
    }

    /// Attach an externally fireable cancel token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> QueryOptions {
        self.cancel = cancel;
        self
    }

    /// The single token the pipeline polls: the caller's token tightened
    /// by the deadline, a fresh deadline-only token, or the free
    /// [`CancelToken::none`] when neither limit is set.
    pub(crate) fn effective_token(&self) -> CancelToken {
        match (self.cancel.is_live(), self.deadline) {
            (true, Some(d)) => {
                let t = self.cancel.clone();
                t.set_deadline(d);
                t
            }
            (true, None) => self.cancel.clone(),
            (false, Some(d)) => CancelToken::with_deadline(d),
            (false, None) => CancelToken::none(),
        }
    }
}

/// A query-serving context over a shared [`Database`]: one engine
/// config, one plan cache, any number of (possibly concurrent) queries.
///
/// ```
/// use mcs_columnar::{Column, Table};
/// use mcs_engine::{Database, EngineConfig, Query, OrderKey, Session};
///
/// let mut t = Table::new("sales");
/// t.add_column(Column::from_u64s("qty", 4, [3u64, 1, 2]));
/// let mut db = Database::new();
/// db.register(t);
///
/// let session = Session::new(&db, EngineConfig::default());
/// let mut q = Query::named("by_qty");
/// q.order_by = vec![OrderKey::asc("qty")];
/// q.select = vec!["qty".into()];
/// let prepared = session.prepare("sales", &q)?;   // plans once
/// let r = prepared.execute(&session)?;            // serves cached plan
/// assert_eq!(r.column_required("qty")?, vec![1, 2, 3]);
/// # Ok::<(), mcs_engine::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Session<'db> {
    db: &'db Database,
    cfg: EngineConfig,
    cache: PlanCache,
    /// Pooled execution arenas: each query pops one (or starts fresh
    /// when the pool is empty, e.g. under new peak concurrency) and
    /// pushes it back when done, so buffers are reused across queries
    /// without blocking concurrent executions on each other.
    arenas: Mutex<Vec<ExecArena>>,
    /// Shared budget of *extra* intra-query morsel workers (see
    /// [`WorkerPool`]).
    workers: WorkerPool,
}

impl<'db> Session<'db> {
    /// A session with the default plan-cache capacity
    /// ([`DEFAULT_PLAN_CACHE_CAPACITY`]).
    pub fn new(db: &'db Database, cfg: EngineConfig) -> Session<'db> {
        Session::with_cache_capacity(db, cfg, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// A session holding at most `capacity` cached plans. `0` disables
    /// caching — every execution plans from scratch (the throughput
    /// benchmark's "cold" mode).
    pub fn with_cache_capacity(
        db: &'db Database,
        cfg: EngineConfig,
        capacity: usize,
    ) -> Session<'db> {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cap = cores.max(cfg.exec.threads);
        Session {
            db,
            cfg,
            cache: PlanCache::new(capacity),
            arenas: Mutex::new(Vec::new()),
            workers: WorkerPool::new(cap),
        }
    }

    /// Override the session-wide worker cap (see [`WorkerPool`]). The
    /// default is `available_parallelism().max(cfg.exec.threads)`; the
    /// server sizes it from its `batch_threads_cap` so one pool governs
    /// both batch fan-out and per-query morsel workers.
    pub fn with_worker_cap(mut self, cap: usize) -> Session<'db> {
        self.workers = WorkerPool::new(cap);
        self
    }

    /// The shared intra-query worker pool (its cap and currently free
    /// extra slots).
    pub fn worker_pool(&self) -> &WorkerPool {
        &self.workers
    }

    /// The shared database this session serves queries from.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    /// The engine configuration every query in this session runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Exact plan-cache counters for this session.
    pub fn cache_stats(&self) -> PlanCacheStats {
        self.cache.stats()
    }

    /// Aggregate [`ExecArena`] reuse counters across the session's
    /// arena pool: `grows`/`reuses` sum every execution's accounting,
    /// `bytes_peak` sums the per-arena high-water marks (the pool's
    /// total held memory at peak). Arenas borrowed by in-flight queries
    /// are not counted until they return.
    pub fn arena_stats(&self) -> ArenaStats {
        let arenas = self.lock_arenas();
        let mut total = ArenaStats::default();
        for arena in arenas.iter() {
            let s = arena.stats();
            total.bytes_peak += s.bytes_peak;
            total.grows += s.grows;
            total.reuses += s.reuses;
        }
        total
    }

    /// Like [`PlanCache::lock`]: a poisoned pool mutex only means a
    /// query panicked while popping/pushing; the `Vec` stays consistent.
    fn lock_arenas(&self) -> MutexGuard<'_, Vec<ExecArena>> {
        self.arenas.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn take_arena(&self) -> ExecArena {
        self.lock_arenas().pop().unwrap_or_default()
    }

    fn put_arena(&self, arena: ExecArena) {
        self.lock_arenas().push(arena);
    }

    fn resolve(&self, table: &str) -> Result<&'db Table, EngineError> {
        self.db
            .table(table)
            .ok_or_else(|| EngineError::UnknownTable {
                table: table.to_string(),
            })
    }

    /// Plan `query` against `table` now — filters, statistics, ROGA —
    /// caching the chosen plan, and return a handle that executes
    /// without re-planning (for as long as the fingerprint still
    /// matches).
    pub fn prepare(&self, table: &str, query: &Query) -> Result<PreparedQuery, EngineError> {
        let t = self.resolve(table)?;
        warm_plan(t, query, &self.cfg, &self.cache)?;
        Ok(PreparedQuery {
            table: table.to_string(),
            query: query.clone(),
        })
    }

    /// Execute `query` against `table` through the session's plan cache,
    /// under `opts`' deadline / cancel token — **the** query entry point.
    ///
    /// The default [`QueryOptions`] is unlimited on every axis and adds
    /// no overhead; with a deadline or token set, the pipeline polls at
    /// every phase boundary and inside the long loops, surfacing
    /// [`DeadlineExceeded`](EngineError::DeadlineExceeded) or
    /// [`Cancelled`](EngineError::Cancelled). An already-expired deadline
    /// returns without executing any phase. On every outcome — including
    /// cancellation — the borrowed arena is restored and returned to the
    /// pool, so the session keeps serving.
    ///
    /// `opts.queue_timeout` has no effect here (there is no admission
    /// gate on the single-query path); see [`Session::run_concurrent`].
    ///
    /// When `cfg.exec.threads > 1` the query borrows its extra morsel
    /// workers from the session's shared [`WorkerPool`] without
    /// blocking: under concurrent load it runs with however many extras
    /// were free (down to fully serial), so intra-query parallelism
    /// composes with [`run_concurrent`](Session::run_concurrent) instead
    /// of multiplying with it.
    pub fn query(
        &self,
        table: &str,
        query: &Query,
        opts: QueryOptions,
    ) -> Result<QueryResult, EngineError> {
        let t = self.resolve(table)?;
        let token = opts.effective_token();
        let want = self.cfg.exec.threads.max(1);
        let extras = self.workers.try_take(want - 1);
        let threads = 1 + extras;
        let mut arena = self.take_arena();
        let result = if token.is_live() || threads != self.cfg.exec.threads {
            // The token and thread grant travel inside the exec config,
            // which every layer (executor, segmented sort, merge,
            // extsort) already threads.
            let mut cfg = self.cfg.clone();
            cfg.exec.sort.cancel = token;
            cfg.exec.threads = threads;
            run_query_impl(t, query, &cfg, Some(&self.cache), Some(&mut arena))
        } else {
            run_query_impl(t, query, &self.cfg, Some(&self.cache), Some(&mut arena))
        };
        // Return the arena and the borrowed workers even on error: the
        // executor restores its buffers on every exit path, so both stay
        // reusable.
        self.put_arena(arena);
        self.workers.put(extras);
        result
    }

    /// Execute independent prepared queries concurrently over the shared
    /// database, at most `threads` in flight at once, returning results
    /// in input order.
    ///
    /// Queries are independent: each gets its own [`QueryResult`] or
    /// [`EngineError`]; one query's failure (or degradation) does not
    /// affect the others. A panicking query thread propagates after the
    /// scope joins.
    ///
    /// Every query runs with `opts`' deadline/cancel token, and when
    /// `opts.queue_timeout` is set a query that cannot get an admission
    /// permit in time is **shed** with
    /// [`Overloaded`](EngineError::Overloaded) instead of queueing
    /// unboundedly — counted by the `engine.shed` telemetry counter.
    /// Admitted queries report their gate wait in
    /// [`QueryTimings::queue_ns`](crate::QueryTimings::queue_ns).
    pub fn run_concurrent(
        &self,
        prepared: &[PreparedQuery],
        threads: usize,
        opts: QueryOptions,
    ) -> Vec<Result<QueryResult, EngineError>> {
        let t0 = Instant::now();
        let opts = &opts;
        let gate = AdmissionGate::new(threads.max(1));
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = prepared
                .iter()
                .map(|p| {
                    let gate = &gate;
                    s.spawn(move || {
                        let t_q = Instant::now();
                        let _permit = match opts.queue_timeout {
                            Some(timeout) => match gate.acquire_timeout(timeout) {
                                Ok(permit) => permit,
                                Err(e) => {
                                    if telemetry::is_enabled() {
                                        telemetry::counter_add("engine.shed", 1);
                                        telemetry::record_span(
                                            "engine.shed",
                                            t_q.elapsed().as_nanos() as u64,
                                            vec![("query", p.query.name.clone().into())],
                                        );
                                    }
                                    return Err(e);
                                }
                            },
                            None => gate.acquire(),
                        };
                        let queue_ns = t_q.elapsed().as_nanos() as u64;
                        let mut r = self.query(&p.table, &p.query, opts.clone())?;
                        r.timings.queue_ns = queue_ns;
                        Ok(r)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        if telemetry::is_enabled() {
            telemetry::record_span(
                "session.run_concurrent",
                t0.elapsed().as_nanos() as u64,
                vec![
                    ("queries", prepared.len().into()),
                    ("threads", threads.max(1).into()),
                ],
            );
        }
        results
    }
}

/// A query whose plan the owning [`Session`] has already searched and
/// cached. Cheap to clone; reusable across
/// [`run_concurrent`](Session::run_concurrent) batches.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    table: String,
    query: Query,
}

impl PreparedQuery {
    /// The table this query runs against.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The underlying query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Execute through `session`'s plan cache. On a warm cache this
    /// skips plan search entirely: `timings.plan_search_ns == 0` and
    /// [`plan_cached()`](crate::QueryTimings::plan_cached) is true.
    pub fn execute(&self, session: &Session<'_>) -> Result<QueryResult, EngineError> {
        session.query(&self.table, &self.query, QueryOptions::default())
    }
}

/// A session-wide budget of *extra* intra-query morsel workers, shared
/// by every query the session runs (single-shot, concurrent batches,
/// and the server's batch path alike).
///
/// The protocol is non-blocking by design: every query always keeps one
/// implicit worker — admission control is the [`AdmissionGate`]'s job,
/// not the pool's, so a query never waits here — and asks the pool for
/// up to `cfg.exec.threads - 1` extras. Whatever fraction is free is
/// granted atomically and returned when the query finishes. A pool with
/// cap `C` therefore bounds the session's total *extra* workers at
/// `C - 1` no matter how many queries are in flight: a saturated
/// concurrent batch degrades each query toward serial execution instead
/// of oversubscribing the machine with `threads × queries` workers.
#[derive(Debug)]
pub struct WorkerPool {
    /// Free extra-worker slots, `cap - 1` when idle.
    extra: AtomicUsize,
    cap: usize,
}

impl WorkerPool {
    /// A pool for `cap` total workers (at least one), i.e. `cap - 1`
    /// grantable extras.
    pub fn new(cap: usize) -> WorkerPool {
        let cap = cap.max(1);
        WorkerPool {
            extra: AtomicUsize::new(cap - 1),
            cap,
        }
    }

    /// The total worker cap this pool was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Extra-worker slots currently free (`cap - 1` when no query holds
    /// any). Advisory: concurrent grants may change it immediately.
    pub fn available(&self) -> usize {
        self.extra.load(Ordering::Acquire)
    }

    /// Take up to `want` extra slots without blocking; returns how many
    /// were granted (possibly zero). Pair with [`put`](WorkerPool::put).
    pub fn try_take(&self, want: usize) -> usize {
        let mut free = self.extra.load(Ordering::Acquire);
        loop {
            let take = want.min(free);
            if take == 0 {
                return 0;
            }
            match self.extra.compare_exchange_weak(
                free,
                free - take,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return take,
                Err(now) => free = now,
            }
        }
    }

    /// Return `n` previously granted slots.
    pub fn put(&self, n: usize) {
        if n > 0 {
            self.extra.fetch_add(n, Ordering::AcqRel);
        }
    }
}

/// A dependency-free counting semaphore bounding concurrent query
/// admission (Mutex + Condvar; permits are RAII).
///
/// ## Wakeup and fairness semantics
///
/// Releasing a permit calls `notify_all`, not `notify_one`: with
/// [`acquire_timeout`](AdmissionGate::acquire_timeout) in the mix, a
/// single notification can land on a waiter that is concurrently timing
/// out — it returns [`Overloaded`](EngineError::Overloaded) without
/// consuming the permit or re-notifying, stranding a free permit while
/// every other waiter sleeps. Waking everyone lets all waiters race for
/// the freed permit; the losers go straight back to sleep. Gates are
/// small (a handful of threads), so the thundering herd is cheap, and
/// the broadcast guarantees progress: **some** waiter always wins a
/// freed permit.
///
/// Admission order is therefore *not* strictly FIFO — whichever woken
/// waiter reacquires the mutex first wins, which tracks OS scheduling.
/// What is guaranteed: no waiter is stranded while a permit is free, no
/// waiter waits longer than its timeout before a typed rejection, and
/// every waiter eventually admits under a finite workload (each of the
/// bounded permit-holders releases exactly once). The fairness test in
/// this module pins the no-stranding property with mixed timed/untimed
/// waiters.
#[derive(Debug)]
pub struct AdmissionGate {
    permits: Mutex<usize>,
    available: Condvar,
}

impl AdmissionGate {
    /// A gate admitting at most `permits` holders at once.
    pub fn new(permits: usize) -> AdmissionGate {
        AdmissionGate {
            permits: Mutex::new(permits),
            available: Condvar::new(),
        }
    }

    /// Block until a permit is free and take it; released on drop.
    pub fn acquire(&self) -> GatePermit<'_> {
        let mut free = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        while *free == 0 {
            free = self.available.wait(free).unwrap_or_else(|e| e.into_inner());
        }
        *free -= 1;
        GatePermit { gate: self }
    }

    /// Wait at most `timeout` for a permit. On expiry the caller is
    /// **shed** with a typed [`Overloaded`](EngineError::Overloaded)
    /// carrying how long it waited — the overload-control contract:
    /// under saturation, callers get a fast rejection instead of an
    /// unbounded queue.
    pub fn acquire_timeout(&self, timeout: Duration) -> Result<GatePermit<'_>, EngineError> {
        let t0 = Instant::now();
        let free = self.permits.lock().unwrap_or_else(|e| e.into_inner());
        let (mut free, _timed_out) = self
            .available
            .wait_timeout_while(free, timeout, |f| *f == 0)
            .unwrap_or_else(|e| e.into_inner());
        // Judge by the predicate, not the timeout flag: a permit freed
        // at the same instant the wait expired is still a permit.
        if *free == 0 {
            return Err(EngineError::Overloaded {
                waited_ns: t0.elapsed().as_nanos() as u64,
            });
        }
        *free -= 1;
        Ok(GatePermit { gate: self })
    }
}

/// An admission permit; dropping it readmits the next waiter.
#[must_use = "dropping the permit immediately readmits the next waiter"]
#[derive(Debug)]
pub struct GatePermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut free = self.gate.permits.lock().unwrap_or_else(|e| e.into_inner());
        *free += 1;
        // notify_all, not notify_one: a single notification can be
        // consumed by a timed waiter that is already giving up, which
        // would strand this permit while untimed waiters sleep forever
        // (see the fairness notes on `AdmissionGate`).
        self.gate.available.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::query::OrderKey;
    use mcs_columnar::Column;

    fn db_with_sales() -> Database {
        let mut t = Table::new("sales");
        t.add_column(Column::from_u64s("nation", 2, [1u64, 0, 1, 0, 2, 2]));
        t.add_column(Column::from_u64s("ship_date", 3, [5u64, 2, 5, 1, 3, 3]));
        t.add_column(Column::from_u64s("price", 8, [40u64, 30, 10, 20, 50, 60]));
        let mut db = Database::new();
        db.register(t);
        db
    }

    fn orderby_query() -> Query {
        let mut q = Query::named("by_keys");
        q.order_by = vec![OrderKey::asc("nation"), OrderKey::asc("ship_date")];
        q.select = vec!["price".into()];
        q
    }

    #[test]
    fn register_replaces_same_named_table() {
        let mut db = db_with_sales();
        assert_eq!(db.table("sales").unwrap().rows(), 6);
        let mut t2 = Table::new("sales");
        t2.add_column(Column::from_u64s("nation", 2, [1u64]));
        db.register(t2);
        assert_eq!(db.tables().len(), 1);
        assert_eq!(db.table("sales").unwrap().rows(), 1);
        assert!(db.table("ghost").is_none());
    }

    #[test]
    fn unknown_table_is_a_typed_error() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let err = session.prepare("ghost", &orderby_query()).unwrap_err();
        assert_eq!(
            err,
            EngineError::UnknownTable {
                table: "ghost".into()
            }
        );
    }

    // The ISSUE's acceptance check: a warm-cache PreparedQuery::execute
    // spends zero time in plan search and reports the hit.
    #[test]
    fn warm_execute_skips_plan_search_entirely() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let prepared = session.prepare("sales", &orderby_query()).unwrap();
        let warm = session.cache_stats();
        assert_eq!((warm.misses, warm.entries), (1, 1), "prepare planned once");

        let r = prepared.execute(&session).unwrap();
        assert_eq!(r.timings.plan_search_ns, 0, "no search ran");
        assert_eq!(r.timings.plan_cache_hits, 1);
        assert_eq!(r.timings.plan_cache_misses, 0);
        assert!(r.timings.plan_cached());
        assert_eq!(
            r.column_required("price").unwrap(),
            vec![20, 30, 40, 10, 50, 60]
        );

        let stats = session.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn session_reuses_its_arena_across_executions() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        assert!(session.arena_stats().is_empty(), "nothing executed yet");
        let prepared = session.prepare("sales", &orderby_query()).unwrap();
        let first = prepared.execute(&session).unwrap();
        assert!(
            !first.timings.mcs_stats.arena.is_empty(),
            "session executions run through the arena"
        );
        for _ in 0..3 {
            prepared.execute(&session).unwrap();
        }
        let stats = session.arena_stats();
        assert_eq!(stats.grows + stats.reuses, 4, "one accounting per run");
        assert!(stats.reuses >= 3, "identical reruns reuse capacity");
        assert!(stats.bytes_peak > 0);
    }

    #[test]
    fn session_results_match_the_stateless_path() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let q = orderby_query();
        let via_session = session.query("sales", &q, QueryOptions::default()).unwrap();
        let stateless = crate::run_query(db.table("sales").unwrap(), &q, session.config()).unwrap();
        assert_eq!(via_session.columns, stateless.columns);
    }

    #[test]
    fn zero_capacity_cache_always_plans_fresh() {
        let db = db_with_sales();
        let session = Session::with_cache_capacity(&db, EngineConfig::default(), 0);
        let prepared = session.prepare("sales", &orderby_query()).unwrap();
        for _ in 0..3 {
            let r = prepared.execute(&session).unwrap();
            assert_eq!(r.timings.plan_cache_hits, 0);
            assert!(!r.timings.plan_cached());
        }
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4, "prepare + 3 executes all missed");
        assert_eq!(stats.entries, 0);
    }

    // BENCH_throughput.json's cold TPC-H Q1 cells report
    // `cache_misses: 33` for one prepare plus a 16-query batch. That is
    // not a double-count: a grouped + ORDER BY query performs TWO
    // plan-cache lookups per execution — the main sort over the group
    // keys, plus the post-sort of the grouped result (`inst2` in
    // `execute_grouped`) — while a pure ORDER BY query performs one.
    // This test pins both arithmetics against `Session::cache_stats`.
    #[test]
    fn grouped_order_by_performs_two_cache_lookups_per_execution() {
        use crate::query::{Agg, AggKind};
        let db = db_with_sales();

        let mut q = Query::named("grouped_ordered");
        q.group_by = vec!["nation".into(), "ship_date".into()];
        q.aggregates = vec![Agg::new(AggKind::Count, "cnt")];
        q.order_by = vec![OrderKey::asc("nation"), OrderKey::asc("ship_date")];

        // Cold (capacity 0, the benchmark's cold mode): every lookup
        // misses, so Q executions after one prepare miss 1 + 2·Q times.
        let session = Session::with_cache_capacity(&db, EngineConfig::default(), 0);
        let prepared = session.prepare("sales", &q).unwrap();
        assert_eq!(
            session.cache_stats().misses,
            1,
            "prepare plans the main sort once"
        );
        for _ in 0..16 {
            prepared.execute(&session).unwrap();
        }
        let cold = session.cache_stats();
        assert_eq!(cold.hits, 0);
        assert_eq!(
            cold.misses,
            1 + 16 * 2,
            "two lookups per grouped+ordered execution"
        );

        // The same batch with a pure ORDER BY query: one lookup each.
        let session = Session::with_cache_capacity(&db, EngineConfig::default(), 0);
        let prepared = session.prepare("sales", &orderby_query()).unwrap();
        for _ in 0..16 {
            prepared.execute(&session).unwrap();
        }
        assert_eq!(session.cache_stats().misses, 1 + 16);

        // Warm: both fingerprints cache after the first execution — two
        // misses ever (main sort at prepare, post-sort on execution 1),
        // every later lookup a hit.
        let session = Session::new(&db, EngineConfig::default());
        let prepared = session.prepare("sales", &q).unwrap();
        for _ in 0..16 {
            prepared.execute(&session).unwrap();
        }
        let warm = session.cache_stats();
        assert_eq!(warm.misses, 2, "main-sort plan + post-sort plan");
        assert_eq!(
            warm.hits,
            16 * 2 - 1,
            "all 32 execution lookups hit except inst2's first"
        );
        assert_eq!(warm.entries, 2);
    }

    #[test]
    fn cache_evicts_least_recently_used_at_capacity() {
        let cache = PlanCache::new(2);
        let fps: Vec<PlanFingerprint> = [100usize, 200, 300]
            .iter()
            .map(|&ndv| {
                let inst = mcs_cost::SortInstance::uniform(1 << 12, &[(17, ndv as f64)]);
                PlanFingerprint::of(&inst, false)
            })
            .collect();
        let plan = MassagePlan::from_widths(&[17]);
        cache.insert(fps[0].clone(), plan.clone(), vec![0]);
        cache.insert(fps[1].clone(), plan.clone(), vec![0]);
        assert!(cache.lookup(&fps[0]).is_some(), "refresh fps[0]");
        cache.insert(fps[2].clone(), plan, vec![0]);
        let stats = cache.stats();
        assert_eq!((stats.evictions, stats.entries), (1, 2));
        assert!(cache.lookup(&fps[1]).is_none(), "fps[1] was the LRU");
        assert!(cache.lookup(&fps[0]).is_some());
        assert!(cache.lookup(&fps[2]).is_some());
    }

    #[test]
    fn column_at_a_time_sessions_bypass_the_cache() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::without_massaging());
        let prepared = session.prepare("sales", &orderby_query()).unwrap();
        let r = prepared.execute(&session).unwrap();
        assert_eq!(r.timings.plan_cache_hits + r.timings.plan_cache_misses, 0);
        assert_eq!(session.cache_stats(), PlanCacheStats::default());
    }

    #[test]
    fn run_concurrent_returns_per_query_results_in_order() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let good = session.prepare("sales", &orderby_query()).unwrap();
        // A prepared query can also be built for a table that later
        // fails resolution only at execute; simulate a per-query error
        // with an unknown SELECT column instead.
        let mut bad_q = orderby_query();
        bad_q.select = vec!["ghost".into()];
        let bad = PreparedQuery {
            table: "sales".into(),
            query: bad_q,
        };
        let batch = vec![good.clone(), bad, good];
        let results = session.run_concurrent(&batch, 4, QueryOptions::default());
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1].as_ref().unwrap_err(),
            EngineError::UnknownColumn { .. }
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn expired_deadline_fails_fast_without_executing_any_phase() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let opts = QueryOptions::default().with_deadline(Instant::now());
        let err = session.query("sales", &orderby_query(), opts).unwrap_err();
        assert_eq!(err, EngineError::DeadlineExceeded);
        // Nothing executed: no plan search, no cache traffic, no arena
        // accounting — the entry check fired before every phase.
        assert_eq!(session.cache_stats(), PlanCacheStats::default());
        assert!(session.arena_stats().is_empty());
        // The same session still answers the same query afterwards.
        let r = session
            .query("sales", &orderby_query(), QueryOptions::default())
            .unwrap();
        assert_eq!(
            r.column_required("price").unwrap(),
            vec![20, 30, 40, 10, 50, 60]
        );
    }

    #[test]
    fn fired_cancel_token_surfaces_as_cancelled() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let opts = QueryOptions::default().with_cancel(token);
        let err = session.query("sales", &orderby_query(), opts).unwrap_err();
        assert_eq!(err, EngineError::Cancelled);
    }

    #[test]
    fn default_options_match_the_plain_path() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let q = orderby_query();
        let plain = session.query("sales", &q, QueryOptions::default()).unwrap();
        // A generous deadline changes nothing.
        let relaxed = session
            .query(
                "sales",
                &q,
                QueryOptions::default().with_timeout(Duration::from_secs(3600)),
            )
            .unwrap();
        assert_eq!(plain.columns, relaxed.columns);
    }

    #[test]
    fn worker_pool_grants_extras_without_blocking() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.cap(), 4);
        assert_eq!(pool.available(), 3);
        assert_eq!(pool.try_take(2), 2);
        assert_eq!(pool.try_take(5), 1, "grants what is free, not more");
        assert_eq!(pool.try_take(1), 0, "empty pool grants zero, never waits");
        pool.put(3);
        assert_eq!(pool.available(), 3);
        // Degenerate caps still leave the implicit worker.
        assert_eq!(WorkerPool::new(0).cap(), 1);
        assert_eq!(WorkerPool::new(1).available(), 0);
    }

    #[test]
    fn queries_return_borrowed_workers_on_every_outcome() {
        let db = db_with_sales();
        let mut cfg = EngineConfig::default();
        cfg.exec.threads = 4;
        let session = Session::new(&db, cfg).with_worker_cap(4);
        let q = orderby_query();
        session.query("sales", &q, QueryOptions::default()).unwrap();
        assert_eq!(
            session.worker_pool().available(),
            3,
            "extras returned after success"
        );
        let err = session
            .query("ghost_table", &q, QueryOptions::default())
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable { .. }));
        assert_eq!(
            session.worker_pool().available(),
            3,
            "extras returned after failure"
        );
        // A saturated pool degrades to serial execution but still
        // answers correctly — intra-query parallelism is best-effort.
        let hog = session.worker_pool().try_take(3);
        assert_eq!(hog, 3);
        let r = session.query("sales", &q, QueryOptions::default()).unwrap();
        assert_eq!(
            r.column_required("price").unwrap(),
            vec![20, 30, 40, 10, 50, 60]
        );
        session.worker_pool().put(hog);
    }

    #[test]
    fn acquire_timeout_sheds_when_saturated() {
        let gate = AdmissionGate::new(2);
        let held_a = gate.acquire();
        let held_b = gate.acquire();
        let err = gate
            .acquire_timeout(Duration::from_millis(10))
            .expect_err("saturated gate must shed");
        match err {
            EngineError::Overloaded { waited_ns } => {
                assert!(waited_ns >= 10_000_000, "shed early after {waited_ns} ns");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        drop(held_a);
        let reacquired = gate.acquire_timeout(Duration::from_secs(5));
        assert!(reacquired.is_ok(), "freed permit admits a bounded waiter");
        drop(reacquired);
        drop(held_b);
    }

    // The wakeup-audit pin: a 1-permit gate with mixed timed and untimed
    // waiters must admit every one of them — no permit may be stranded
    // by a wakeup landing on a waiter that gave up (the notify_all
    // contract documented on `AdmissionGate`).
    #[test]
    fn mixed_timed_and_untimed_waiters_all_admit() {
        use std::sync::atomic::AtomicUsize;
        let gate = AdmissionGate::new(1);
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for i in 0..6 {
                let gate = &gate;
                let admitted = &admitted;
                s.spawn(move || {
                    let _permit = if i % 2 == 0 {
                        gate.acquire()
                    } else {
                        gate.acquire_timeout(Duration::from_secs(30))
                            .expect("long-timeout waiter must admit, not shed")
                    };
                    admitted.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        assert_eq!(admitted.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn run_concurrent_sheds_overflow_and_times_queueing() {
        let db = db_with_sales();
        let session = Session::new(&db, EngineConfig::default());
        let good = session.prepare("sales", &orderby_query()).unwrap();
        let batch = vec![good; 8];
        // Unbounded queueing (the default): nobody sheds.
        let results = session.run_concurrent(&batch, 2, QueryOptions::default());
        assert!(results.iter().all(|r| r.is_ok()));
        // A generous queue timeout on a tiny workload: still nobody
        // sheds, and admitted queries report their gate wait.
        let opts = QueryOptions::default().with_queue_timeout(Duration::from_secs(30));
        let results = session.run_concurrent(&batch, 2, opts);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn admission_gate_bounds_in_flight_work() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let gate = AdmissionGate::new(2);
        let active = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let _permit = gate.acquire();
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "gate admitted too many");
    }
}
