//! A small SQL front-end for the engine — enough surface to express
//! every query shape in the paper's evaluation:
//!
//! ```sql
//! SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty
//! FROM tpch_wide
//! WHERE l_shipdate <= 2300 AND l_quantity BETWEEN 5 AND 45
//! GROUP BY l_returnflag, l_linestatus
//! ORDER BY l_returnflag, l_linestatus DESC
//! ```
//!
//! and SQL:2003 windows:
//!
//! ```sql
//! SELECT OriginAirportID, Passengers,
//!        RANK() OVER (PARTITION BY OriginAirportID ORDER BY Passengers)
//! FROM ticket WHERE ItinGeoType = 1
//! ```
//!
//! Literals are integer *codes* (string predicates go through an
//! order-preserving [`mcs_columnar::Dictionary`] before parsing). The
//! parser is a hand-written tokenizer + recursive descent; errors carry
//! the offending token.

use mcs_columnar::Predicate;

use crate::query::{Agg, AggKind, Filter, OrderKey, Query};

/// Parse error with positional context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Human-readable message.
    pub message: String,
}

impl core::fmt::Display for SqlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for SqlError {}

fn err<T>(message: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError {
        message: message.into(),
    })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(u64),
    Symbol(char),
    Le,
    Ge,
    Ne,
    Eof,
}

fn keyword(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn tokenize(input: &str) -> Result<Vec<Tok>, SqlError> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        if c.is_whitespace() {
            i += 1;
        } else if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push(Tok::Ident(input[start..i].to_string()));
        } else if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && (b[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: u64 = input[start..i].parse().map_err(|_| SqlError {
                message: format!("bad number {}", &input[start..i]),
            })?;
            out.push(Tok::Number(n));
        } else if c == '<' && i + 1 < b.len() && b[i + 1] == b'=' {
            out.push(Tok::Le);
            i += 2;
        } else if c == '>' && i + 1 < b.len() && b[i + 1] == b'=' {
            out.push(Tok::Ge);
            i += 2;
        } else if (c == '<' && i + 1 < b.len() && b[i + 1] == b'>')
            || (c == '!' && i + 1 < b.len() && b[i + 1] == b'=')
        {
            out.push(Tok::Ne);
            i += 2;
        } else if "(),*=<>".contains(c) {
            out.push(Tok::Symbol(c));
            i += 1;
        } else {
            return err(format!("unexpected character '{c}'"));
        }
    }
    out.push(Tok::Eof);
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.at].clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if keyword(self.peek(), kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            err(format!("expected {kw}, found {:?}", self.peek()))
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), SqlError> {
        match self.next() {
            Tok::Symbol(s) if s == c => Ok(()),
            t => err(format!("expected '{c}', found {t:?}")),
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            t => err(format!("expected identifier, found {t:?}")),
        }
    }

    fn number(&mut self) -> Result<u64, SqlError> {
        match self.next() {
            Tok::Number(n) => Ok(n),
            t => err(format!("expected number, found {t:?}")),
        }
    }

    fn order_key(&mut self) -> Result<OrderKey, SqlError> {
        let col = self.ident()?;
        let descending = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        Ok(OrderKey {
            column: col,
            descending,
        })
    }

    fn order_list(&mut self) -> Result<Vec<OrderKey>, SqlError> {
        let mut keys = vec![self.order_key()?];
        while matches!(self.peek(), Tok::Symbol(',')) {
            self.next();
            keys.push(self.order_key()?);
        }
        Ok(keys)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, SqlError> {
        let mut cols = vec![self.ident()?];
        while matches!(self.peek(), Tok::Symbol(',')) {
            self.next();
            cols.push(self.ident()?);
        }
        Ok(cols)
    }
}

/// One SELECT item.
enum SelectItem {
    Column(String),
    Aggregate(Agg),
    Rank {
        partition_by: Vec<String>,
        order: Vec<OrderKey>,
    },
}

fn parse_select_item(p: &mut Parser) -> Result<SelectItem, SqlError> {
    let name = p.ident()?;
    let upper = name.to_ascii_uppercase();
    // RANK() OVER (PARTITION BY ... ORDER BY ...)
    if upper == "RANK" {
        p.expect_sym('(')?;
        p.expect_sym(')')?;
        p.expect_kw("OVER")?;
        p.expect_sym('(')?;
        p.expect_kw("PARTITION")?;
        p.expect_kw("BY")?;
        let partition_by = p.ident_list()?;
        p.expect_kw("ORDER")?;
        p.expect_kw("BY")?;
        let order = p.order_list()?;
        p.expect_sym(')')?;
        return Ok(SelectItem::Rank {
            partition_by,
            order,
        });
    }
    // Aggregates.
    let kind = match upper.as_str() {
        "COUNT" => {
            p.expect_sym('(')?;
            let k = if matches!(p.peek(), Tok::Symbol('*')) {
                p.next();
                AggKind::Count
            } else if p.eat_kw("DISTINCT") {
                AggKind::CountDistinct(p.ident()?)
            } else {
                // COUNT(col) == COUNT(*) for our non-null codes.
                let _ = p.ident()?;
                AggKind::Count
            };
            p.expect_sym(')')?;
            Some(k)
        }
        "SUM" | "AVG" | "MIN" | "MAX" => {
            p.expect_sym('(')?;
            let col = p.ident()?;
            p.expect_sym(')')?;
            Some(match upper.as_str() {
                "SUM" => AggKind::Sum(col),
                "AVG" => AggKind::Avg(col),
                "MIN" => AggKind::Min(col),
                _ => AggKind::Max(col),
            })
        }
        _ => None,
    };
    if let Some(kind) = kind {
        let label = if p.eat_kw("AS") {
            p.ident()?
        } else {
            default_label(&kind)
        };
        return Ok(SelectItem::Aggregate(Agg { kind, label }));
    }
    Ok(SelectItem::Column(name))
}

fn default_label(kind: &AggKind) -> String {
    match kind {
        AggKind::Count => "count".into(),
        AggKind::CountDistinct(c) => format!("count_distinct_{c}"),
        AggKind::Sum(c) => format!("sum_{c}"),
        AggKind::Avg(c) => format!("avg_{c}"),
        AggKind::Min(c) => format!("min_{c}"),
        AggKind::Max(c) => format!("max_{c}"),
    }
}

fn parse_condition(p: &mut Parser) -> Result<Filter, SqlError> {
    let column = p.ident()?;
    let pred = if p.eat_kw("BETWEEN") {
        let lo = p.number()?;
        p.expect_kw("AND")?;
        let hi = p.number()?;
        Predicate::Between(lo, hi)
    } else {
        match p.next() {
            Tok::Symbol('=') => Predicate::Eq(p.number()?),
            Tok::Symbol('<') => Predicate::Lt(p.number()?),
            Tok::Symbol('>') => Predicate::Gt(p.number()?),
            Tok::Le => Predicate::Le(p.number()?),
            Tok::Ge => Predicate::Ge(p.number()?),
            Tok::Ne => Predicate::Ne(p.number()?),
            t => return err(format!("expected comparison operator, found {t:?}")),
        }
    };
    Ok(Filter {
        column,
        predicate: pred,
    })
}

/// Parse `sql` into a [`Query`]. Returns the query and the FROM table
/// name.
pub fn parse_query(sql: &str) -> Result<(Query, String), SqlError> {
    let mut p = Parser {
        toks: tokenize(sql)?,
        at: 0,
    };
    p.expect_kw("SELECT")?;

    let mut items = vec![parse_select_item(&mut p)?];
    while matches!(p.peek(), Tok::Symbol(',')) {
        p.next();
        items.push(parse_select_item(&mut p)?);
    }

    p.expect_kw("FROM")?;
    let table = p.ident()?;

    let mut q = Query::named("sql");
    if p.eat_kw("WHERE") {
        q.filters.push(parse_condition(&mut p)?);
        while p.eat_kw("AND") {
            q.filters.push(parse_condition(&mut p)?);
        }
    }
    if p.eat_kw("GROUP") {
        p.expect_kw("BY")?;
        q.group_by = p.ident_list()?;
    }
    if p.eat_kw("ORDER") {
        p.expect_kw("BY")?;
        q.order_by = p.order_list()?;
    }
    match p.peek() {
        Tok::Eof => {}
        t => return err(format!("trailing tokens starting at {t:?}")),
    }

    // Distribute SELECT items.
    for item in items {
        match item {
            SelectItem::Column(c) => q.select.push(c),
            SelectItem::Aggregate(a) => q.aggregates.push(a),
            SelectItem::Rank {
                partition_by,
                order,
            } => {
                if !q.partition_by.is_empty() {
                    return err("only one RANK() window supported");
                }
                q.partition_by = partition_by;
                q.window_order = order;
            }
        }
    }

    // Semantic checks mirroring the executor's expectations.
    if !q.aggregates.is_empty() && q.group_by.is_empty() {
        return err("aggregates require GROUP BY");
    }
    if !q.partition_by.is_empty() && !q.group_by.is_empty() {
        return err("RANK() windows cannot be combined with GROUP BY (run two stages)");
    }
    if !q.partition_by.is_empty() && !q.order_by.is_empty() {
        return err("ORDER BY alongside a window is not supported");
    }
    if q.group_by.is_empty() && q.partition_by.is_empty() && q.order_by.is_empty() {
        return err("query needs GROUP BY, ORDER BY or a RANK() window");
    }
    Ok((q, table))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_group_by_aggregates() {
        let (q, table) = parse_query(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, COUNT(*) \
             FROM tpch_wide WHERE l_shipdate <= 2300 AND l_quantity BETWEEN 5 AND 45 \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus DESC",
        )
        .unwrap();
        assert_eq!(table, "tpch_wide");
        assert_eq!(q.group_by, vec!["l_returnflag", "l_linestatus"]);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.aggregates[0].label, "sum_qty");
        assert_eq!(q.aggregates[1].kind, AggKind::Count);
        assert_eq!(q.filters.len(), 2);
        assert!(matches!(q.filters[0].predicate, Predicate::Le(2300)));
        assert!(matches!(q.filters[1].predicate, Predicate::Between(5, 45)));
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[1].descending);
    }

    #[test]
    fn parses_rank_window() {
        let (q, table) = parse_query(
            "SELECT OriginAirportID, Passengers, \
             RANK() OVER (PARTITION BY OriginAirportID, DistanceGroup ORDER BY Passengers DESC) \
             FROM ticket WHERE ItinGeoType = 1",
        )
        .unwrap();
        assert_eq!(table, "ticket");
        assert_eq!(q.partition_by.len(), 2);
        assert_eq!(q.window_order.len(), 1);
        assert!(q.window_order[0].descending);
        assert_eq!(q.select, vec!["OriginAirportID", "Passengers"]);
    }

    #[test]
    fn parses_order_by_only() {
        let (q, _) = parse_query("SELECT a, b FROM t WHERE a <> 3 ORDER BY a ASC, b DESC").unwrap();
        assert!(q.group_by.is_empty());
        assert!(matches!(q.filters[0].predicate, Predicate::Ne(3)));
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn count_distinct() {
        let (q, _) = parse_query(
            "SELECT p_brand, COUNT(DISTINCT ps_suppkey) AS supplier_cnt FROM ps \
             GROUP BY p_brand ORDER BY supplier_cnt DESC",
        )
        .unwrap();
        assert_eq!(
            q.aggregates[0].kind,
            AggKind::CountDistinct("ps_suppkey".into())
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT a FROM t WHERE a ~ 3 ORDER BY a").is_err());
        assert!(parse_query("SELECT SUM(x) FROM t").is_err()); // agg without GROUP BY
        assert!(parse_query("SELECT a FROM t").is_err()); // no sort/group
        assert!(parse_query("SELECT a FROM t ORDER BY a extra").is_err());
    }

    #[test]
    fn parsed_query_executes() {
        use crate::{run_query, EngineConfig};
        use mcs_columnar::{Column, Table};
        let mut t = Table::new("t");
        t.add_column(Column::from_u64s("g", 2, [1u64, 0, 1, 0]));
        t.add_column(Column::from_u64s("x", 4, [1u64, 2, 3, 4]));
        let (q, _) =
            parse_query("SELECT g, SUM(x) AS s FROM t GROUP BY g ORDER BY s DESC").unwrap();
        let r = run_query(&t, &q, &EngineConfig::default()).unwrap();
        assert_eq!(r.column("s").unwrap(), vec![6, 4]);
        assert_eq!(r.column("g").unwrap(), vec![0, 1]);
    }
}
