//! `RANK() OVER (PARTITION BY … ORDER BY …)` evaluation over the sorted,
//! partitioned output of a multi-column sort.

use mcs_core::GroupBounds;

/// Compute SQL `RANK()` per output position.
///
/// `partitions` are the tie groups on the PARTITION BY keys; within each
/// partition the rows are already sorted by the window order and
/// `window_keys[p]` gives the combined (direction-adjusted) window sort
/// key at output position `p`. Ties share a rank; the next distinct value
/// jumps to `position + 1` (standard `RANK`, with gaps).
pub fn rank_over(partitions: &GroupBounds, window_keys: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; window_keys.len()];
    for part in partitions.iter() {
        let mut rank = 1u64;
        for (off, p) in part.clone().enumerate() {
            if off > 0 && window_keys[p] != window_keys[p - 1] {
                rank = off as u64 + 1;
            }
            out[p] = rank;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_with_gaps() {
        // One partition, keys 5,5,7,9,9,9 -> ranks 1,1,3,4,4,4.
        let parts = GroupBounds::from_offsets(vec![0, 6]);
        let keys = vec![5, 5, 7, 9, 9, 9];
        assert_eq!(rank_over(&parts, &keys), vec![1, 1, 3, 4, 4, 4]);
    }

    #[test]
    fn ranks_reset_per_partition() {
        let parts = GroupBounds::from_offsets(vec![0, 3, 6]);
        let keys = vec![1, 2, 2, 1, 1, 5];
        assert_eq!(rank_over(&parts, &keys), vec![1, 2, 2, 1, 1, 3]);
    }

    #[test]
    fn empty() {
        let parts = GroupBounds::whole(0);
        assert!(rank_over(&parts, &[]).is_empty());
    }

    #[test]
    fn empty_partition_between_real_ones() {
        // Offsets [0, 2, 2, 4]: the middle partition covers no rows and
        // must not disturb its neighbours' ranks.
        let parts = GroupBounds::from_offsets(vec![0, 2, 2, 4]);
        let keys = vec![3, 3, 1, 2];
        assert_eq!(rank_over(&parts, &keys), vec![1, 1, 1, 2]);
    }

    #[test]
    fn single_row_partitions_all_rank_one() {
        let parts = GroupBounds::from_offsets(vec![0, 1, 2, 3, 4]);
        let keys = vec![9, 1, 9, 1];
        assert_eq!(rank_over(&parts, &keys), vec![1, 1, 1, 1]);
    }

    #[test]
    fn all_ties_spanning_whole_relation() {
        let n = 257usize;
        let parts = GroupBounds::whole(n);
        let keys = vec![7u64; n];
        assert_eq!(rank_over(&parts, &keys), vec![1u64; n]);
    }
}
