//! The network wire format: a dependency-free binary codec for the
//! public query API, plus the length-prefixed frame protocol the
//! `mcs-server` / `mcs-client` crates speak over TCP.
//!
//! ## Layers
//!
//! 1. **Value codec** — [`Wire`] gives [`Query`], [`QueryOptions`],
//!    [`QueryResult`], and [`RemoteError`] a `to_bytes`/`from_bytes`
//!    pair with typed [`WireError`]s. Everything is little-endian,
//!    length-prefixed, and bounded: a hostile length prefix can never
//!    make the decoder allocate more than the payload it arrived in.
//! 2. **Frame layer** — every message travels as one [`Frame`]:
//!
//!    ```text
//!    ┌────────────┬─────────┬────────┬──────────────┬─────────┬─────────────┐
//!    │ magic      │ version │ kind   │ request id   │ len     │ payload     │
//!    │ 4B "MCSQ"  │ 1B      │ 1B     │ 8B LE        │ 4B LE   │ len bytes   │
//!    └────────────┴─────────┴────────┴──────────────┴─────────┴─────────────┘
//!    ```
//!
//!    Request ids are chosen by the client and echoed verbatim in the
//!    response, so clients may pipeline several requests before reading
//!    any response. Payloads above [`MAX_PAYLOAD`] are rejected without
//!    being read.
//! 3. **Message grammar** — [`Request`] (prepare / execute / batch /
//!    close) and [`Response`] (prepared / result / batch / error /
//!    goodbye), each a frame kind plus a value-codec payload.
//!
//! ## Error codes
//!
//! [`ErrorCode`] assigns every [`EngineError`] variant a stable numeric
//! code (1–10) so remote clients see `Overloaded`, `DeadlineExceeded`,
//! and friends exactly as in-process callers do; codes 64+ are
//! protocol-level conditions (malformed frame, unsupported version, …)
//! that have no in-process counterpart.
//!
//! ## What does not cross the wire
//!
//! * [`QueryOptions::deadline`] is an [`Instant`], meaningless on
//!   another machine: it is encoded as the *remaining* time budget at
//!   encode time and re-anchored to the receiver's clock on decode.
//! * [`QueryOptions::cancel`] tokens are process-local; a decoded
//!   options struct always carries the inert default token.
//! * [`QueryResult`] timings are execution-local diagnostics; only the
//!   result columns and row count are encoded, and a decoded result
//!   carries default timings.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

use mcs_columnar::Predicate;

use crate::error::EngineError;
use crate::pipeline::QueryResult;
use crate::query::{Agg, AggKind, Filter, OrderKey, Query};
use crate::session::QueryOptions;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"MCSQ";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Frame header length in bytes (magic + version + kind + id + len).
pub const HEADER_LEN: usize = 18;
/// Largest accepted frame payload (64 MiB).
pub const MAX_PAYLOAD: u32 = 64 << 20;
/// Largest accepted string (names, messages) in bytes.
pub const MAX_STR: usize = 1 << 20;
/// Largest accepted collection count (filters, columns, batch items).
pub const MAX_ITEMS: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Decode errors
// ---------------------------------------------------------------------------

/// Why a byte payload failed to decode. Every variant is a *typed*
/// rejection — the decoder never panics on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value it was announcing.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag byte outside the known range.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadUtf8 {
        /// What was being decoded.
        what: &'static str,
    },
    /// A length prefix exceeded its sanity bound.
    TooLong {
        /// What was being decoded.
        what: &'static str,
        /// The announced length.
        len: u64,
        /// The maximum accepted.
        max: u64,
    },
    /// The value decoded cleanly but bytes were left over.
    Trailing {
        /// How many undecoded bytes remained.
        len: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "payload truncated while decoding {what}"),
            WireError::BadTag { what, tag } => write!(f, "unknown tag {tag} decoding {what}"),
            WireError::BadUtf8 { what } => write!(f, "invalid UTF-8 decoding {what}"),
            WireError::TooLong { what, len, max } => {
                write!(f, "{what} length {len} exceeds the wire maximum {max}")
            }
            WireError::Trailing { len } => write!(f, "{len} trailing bytes after decoded value"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Primitive reader/writer
// ---------------------------------------------------------------------------

/// Cursor over a received payload. All reads are bounds-checked; a
/// length prefix can never cause an allocation larger than what the
/// payload physically contains.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn opt_u64(&mut self, what: &'static str) -> Result<Option<u64>, WireError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            tag => Err(WireError::BadTag { what, tag }),
        }
    }

    /// A `count` prefix for elements of at least `min_elem_bytes` each:
    /// rejected if it exceeds [`MAX_ITEMS`] or promises more elements
    /// than the remaining bytes could possibly hold.
    fn count(&mut self, min_elem_bytes: usize, what: &'static str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n > MAX_ITEMS {
            return Err(WireError::TooLong {
                what,
                len: n as u64,
                max: MAX_ITEMS as u64,
            });
        }
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated { what });
        }
        Ok(n)
    }

    fn string(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        if len > MAX_STR {
            return Err(WireError::TooLong {
                what,
                len: len as u64,
                max: MAX_STR as u64,
            });
        }
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8 { what })
    }

    fn u64s(&mut self, what: &'static str) -> Result<Vec<u64>, WireError> {
        let n = self.u64(what)? as usize;
        if self.remaining() < n.saturating_mul(8) {
            return Err(WireError::Truncated { what });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64(what)?);
        }
        Ok(v)
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Encoding enforces the same bound decoding does, truncation-free:
    // callers never hold >1 MiB names, so this is a debug guard only.
    debug_assert!(s.len() <= MAX_STR);
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    put_u64(out, v.len() as u64);
    for x in v {
        put_u64(out, *x);
    }
}

// ---------------------------------------------------------------------------
// The Wire trait + impls for the public API types
// ---------------------------------------------------------------------------

/// Binary encode/decode for one value.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one value from `r`, leaving it positioned after the value.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode from exactly `bytes` — trailing bytes are a typed error.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::Trailing { len: r.remaining() });
        }
        Ok(v)
    }
}

impl Wire for Predicate {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Predicate::Lt(x) => {
                out.push(0);
                put_u64(out, x);
            }
            Predicate::Le(x) => {
                out.push(1);
                put_u64(out, x);
            }
            Predicate::Gt(x) => {
                out.push(2);
                put_u64(out, x);
            }
            Predicate::Ge(x) => {
                out.push(3);
                put_u64(out, x);
            }
            Predicate::Eq(x) => {
                out.push(4);
                put_u64(out, x);
            }
            Predicate::Ne(x) => {
                out.push(5);
                put_u64(out, x);
            }
            Predicate::Between(lo, hi) => {
                out.push(6);
                put_u64(out, lo);
                put_u64(out, hi);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        const WHAT: &str = "Predicate";
        Ok(match r.u8(WHAT)? {
            0 => Predicate::Lt(r.u64(WHAT)?),
            1 => Predicate::Le(r.u64(WHAT)?),
            2 => Predicate::Gt(r.u64(WHAT)?),
            3 => Predicate::Ge(r.u64(WHAT)?),
            4 => Predicate::Eq(r.u64(WHAT)?),
            5 => Predicate::Ne(r.u64(WHAT)?),
            6 => Predicate::Between(r.u64(WHAT)?, r.u64(WHAT)?),
            tag => return Err(WireError::BadTag { what: WHAT, tag }),
        })
    }
}

impl Wire for Filter {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.column);
        self.predicate.encode(out);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Filter {
            column: r.string("Filter.column")?,
            predicate: Predicate::decode(r)?,
        })
    }
}

impl Wire for OrderKey {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.column);
        out.push(u8::from(self.descending));
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let column = r.string("OrderKey.column")?;
        let descending = match r.u8("OrderKey.descending")? {
            0 => false,
            1 => true,
            tag => {
                return Err(WireError::BadTag {
                    what: "OrderKey.descending",
                    tag,
                })
            }
        };
        Ok(OrderKey { column, descending })
    }
}

impl Wire for AggKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AggKind::Count => out.push(0),
            AggKind::CountDistinct(c) => {
                out.push(1);
                put_str(out, c);
            }
            AggKind::Sum(c) => {
                out.push(2);
                put_str(out, c);
            }
            AggKind::Avg(c) => {
                out.push(3);
                put_str(out, c);
            }
            AggKind::Min(c) => {
                out.push(4);
                put_str(out, c);
            }
            AggKind::Max(c) => {
                out.push(5);
                put_str(out, c);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        const WHAT: &str = "AggKind";
        Ok(match r.u8(WHAT)? {
            0 => AggKind::Count,
            1 => AggKind::CountDistinct(r.string(WHAT)?),
            2 => AggKind::Sum(r.string(WHAT)?),
            3 => AggKind::Avg(r.string(WHAT)?),
            4 => AggKind::Min(r.string(WHAT)?),
            5 => AggKind::Max(r.string(WHAT)?),
            tag => return Err(WireError::BadTag { what: WHAT, tag }),
        })
    }
}

impl Wire for Agg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.kind.encode(out);
        put_str(out, &self.label);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Agg {
            kind: AggKind::decode(r)?,
            label: r.string("Agg.label")?,
        })
    }
}

fn encode_vec<T: Wire>(out: &mut Vec<u8>, items: &[T]) {
    debug_assert!(items.len() <= MAX_ITEMS);
    put_u32(out, items.len() as u32);
    for item in items {
        item.encode(out);
    }
}

fn decode_vec<T: Wire>(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<T>, WireError> {
    let n = r.count(1, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(T::decode(r)?);
    }
    Ok(v)
}

fn encode_strs(out: &mut Vec<u8>, items: &[String]) {
    debug_assert!(items.len() <= MAX_ITEMS);
    put_u32(out, items.len() as u32);
    for s in items {
        put_str(out, s);
    }
}

fn decode_strs(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<String>, WireError> {
    let n = r.count(4, what)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.string(what)?);
    }
    Ok(v)
}

impl Wire for Query {
    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        encode_vec(out, &self.filters);
        encode_strs(out, &self.select);
        encode_strs(out, &self.group_by);
        encode_vec(out, &self.aggregates);
        encode_vec(out, &self.order_by);
        encode_strs(out, &self.partition_by);
        encode_vec(out, &self.window_order);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Query {
            name: r.string("Query.name")?,
            filters: decode_vec(r, "Query.filters")?,
            select: decode_strs(r, "Query.select")?,
            group_by: decode_strs(r, "Query.group_by")?,
            aggregates: decode_vec(r, "Query.aggregates")?,
            order_by: decode_vec(r, "Query.order_by")?,
            partition_by: decode_strs(r, "Query.partition_by")?,
            window_order: decode_vec(r, "Query.window_order")?,
        })
    }
}

impl Wire for QueryOptions {
    /// The deadline crosses the wire as *remaining budget*: an
    /// [`Instant`] is clock-local, so encode captures
    /// `deadline - now` (saturating at zero — an already-expired
    /// deadline arrives as a zero budget and fails fast on the server,
    /// exactly like in-process execution) and decode re-anchors it to
    /// the receiving clock. The cancel token is process-local and never
    /// encoded; decoded options carry the inert default token.
    fn encode(&self, out: &mut Vec<u8>) {
        let timeout_ns = self.deadline.map(|d| {
            u64::try_from(
                d.saturating_duration_since(Instant::now())
                    .as_nanos()
                    .min(u128::from(u64::MAX)),
            )
            .unwrap_or(u64::MAX)
        });
        put_opt_u64(out, timeout_ns);
        put_opt_u64(
            out,
            self.queue_timeout
                .map(|d| u64::try_from(d.as_nanos().min(u128::from(u64::MAX))).unwrap_or(u64::MAX)),
        );
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let deadline = r
            .opt_u64("QueryOptions.timeout_ns")?
            // A budget too large for the Instant arithmetic means
            // "effectively unbounded": drop the deadline rather than
            // panic on a hostile u64::MAX.
            .and_then(|ns| Instant::now().checked_add(Duration::from_nanos(ns)));
        let queue_timeout = r
            .opt_u64("QueryOptions.queue_timeout_ns")?
            .map(Duration::from_nanos);
        Ok(QueryOptions {
            deadline,
            queue_timeout,
            ..QueryOptions::default()
        })
    }
}

impl Wire for QueryResult {
    /// Only the result data (columns + row count) crosses the wire;
    /// [`QueryResult::timings`] are execution-local diagnostics and a
    /// decoded result carries the default (all-zero) timings.
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.columns.len() as u32);
        for (name, values) in &self.columns {
            put_str(out, name);
            put_u64s(out, values);
        }
        put_u64(out, self.rows as u64);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.count(12, "QueryResult.columns")?;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.string("QueryResult.column.name")?;
            let values = r.u64s("QueryResult.column.values")?;
            columns.push((name, values));
        }
        let rows = r.u64("QueryResult.rows")? as usize;
        Ok(QueryResult {
            columns,
            rows,
            timings: Default::default(),
        })
    }
}

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// Stable numeric error codes: 1–10 mirror the [`EngineError`] taxonomy
/// one-to-one; 64+ are protocol-level conditions with no in-process
/// counterpart. Codes are wire ABI — they never change meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`EngineError::UnknownColumn`].
    UnknownColumn = 1,
    /// [`EngineError::UnknownTable`].
    UnknownTable = 2,
    /// [`EngineError::NoSortKeys`].
    NoSortKeys = 3,
    /// [`EngineError::PlanSearch`].
    PlanSearch = 4,
    /// [`EngineError::Sort`].
    Sort = 5,
    /// [`EngineError::Sql`].
    Sql = 6,
    /// [`EngineError::WindowKeyTooWide`] (`aux` carries the bit width).
    WindowKeyTooWide = 7,
    /// [`EngineError::DeadlineExceeded`].
    DeadlineExceeded = 8,
    /// [`EngineError::Cancelled`].
    Cancelled = 9,
    /// [`EngineError::Overloaded`] (`aux` carries `waited_ns`).
    Overloaded = 10,
    /// The frame header or payload could not be parsed; the server
    /// closes the connection after sending this.
    MalformedFrame = 64,
    /// The frame announced a protocol version this peer does not speak.
    UnsupportedVersion = 65,
    /// The frame announced a payload larger than [`MAX_PAYLOAD`].
    OversizedFrame = 66,
    /// The frame was well-formed but its payload did not decode as the
    /// announced message kind.
    BadRequest = 67,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown = 68,
}

impl ErrorCode {
    /// The numeric wire code.
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decode a numeric wire code.
    pub fn from_code(code: u16) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::UnknownColumn,
            2 => ErrorCode::UnknownTable,
            3 => ErrorCode::NoSortKeys,
            4 => ErrorCode::PlanSearch,
            5 => ErrorCode::Sort,
            6 => ErrorCode::Sql,
            7 => ErrorCode::WindowKeyTooWide,
            8 => ErrorCode::DeadlineExceeded,
            9 => ErrorCode::Cancelled,
            10 => ErrorCode::Overloaded,
            64 => ErrorCode::MalformedFrame,
            65 => ErrorCode::UnsupportedVersion,
            66 => ErrorCode::OversizedFrame,
            67 => ErrorCode::BadRequest,
            68 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }

    /// The code an [`EngineError`] maps to (total: every variant has
    /// exactly one code).
    pub fn of(e: &EngineError) -> ErrorCode {
        match e {
            EngineError::UnknownColumn { .. } => ErrorCode::UnknownColumn,
            EngineError::UnknownTable { .. } => ErrorCode::UnknownTable,
            EngineError::NoSortKeys { .. } => ErrorCode::NoSortKeys,
            EngineError::PlanSearch(_) => ErrorCode::PlanSearch,
            EngineError::Sort(_) => ErrorCode::Sort,
            EngineError::Sql(_) => ErrorCode::Sql,
            EngineError::WindowKeyTooWide { .. } => ErrorCode::WindowKeyTooWide,
            EngineError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            EngineError::Cancelled => ErrorCode::Cancelled,
            EngineError::Overloaded { .. } => ErrorCode::Overloaded,
        }
    }

    /// Stable snake_case label (logs, metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::UnknownColumn => "unknown_column",
            ErrorCode::UnknownTable => "unknown_table",
            ErrorCode::NoSortKeys => "no_sort_keys",
            ErrorCode::PlanSearch => "plan_search",
            ErrorCode::Sort => "sort",
            ErrorCode::Sql => "sql",
            ErrorCode::WindowKeyTooWide => "window_key_too_wide",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::OversizedFrame => "oversized_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed error as it travels on the wire: a stable [`ErrorCode`], the
/// human-readable message, and one code-specific auxiliary value
/// (`waited_ns` for [`Overloaded`](ErrorCode::Overloaded), the bit
/// width for [`WindowKeyTooWide`](ErrorCode::WindowKeyTooWide), zero
/// otherwise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// Stable numeric code.
    pub code: ErrorCode,
    /// Human-readable detail (the in-process `Display` rendering).
    pub message: String,
    /// Code-specific auxiliary value.
    pub aux: u64,
}

impl RemoteError {
    /// A protocol-level error (codes 64+).
    pub fn protocol(code: ErrorCode, message: impl Into<String>) -> RemoteError {
        RemoteError {
            code,
            message: message.into(),
            aux: 0,
        }
    }

    /// Reconstruct the in-process [`EngineError`] for the variants whose
    /// payload survives the wire losslessly. Structured inner errors
    /// (plan search, sort, SQL) and protocol codes return `None`; their
    /// detail is in [`message`](RemoteError::message).
    pub fn engine_error(&self) -> Option<EngineError> {
        Some(match self.code {
            ErrorCode::DeadlineExceeded => EngineError::DeadlineExceeded,
            ErrorCode::Cancelled => EngineError::Cancelled,
            ErrorCode::Overloaded => EngineError::Overloaded {
                waited_ns: self.aux,
            },
            ErrorCode::WindowKeyTooWide => EngineError::WindowKeyTooWide {
                bits: u32::try_from(self.aux).unwrap_or(u32::MAX),
            },
            _ => return None,
        })
    }
}

impl From<&EngineError> for RemoteError {
    fn from(e: &EngineError) -> RemoteError {
        let aux = match e {
            EngineError::Overloaded { waited_ns } => *waited_ns,
            EngineError::WindowKeyTooWide { bits } => u64::from(*bits),
            _ => 0,
        };
        RemoteError {
            code: ErrorCode::of(e),
            message: e.to_string(),
            aux,
        }
    }
}

impl core::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "remote error {} ({}): {}",
            self.code.code(),
            self.code,
            self.message
        )
    }
}

impl std::error::Error for RemoteError {}

impl Wire for ErrorCode {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u16(out, self.code());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let code = r.u16("ErrorCode")?;
        ErrorCode::from_code(code).ok_or(WireError::BadTag {
            what: "ErrorCode",
            tag: code.min(255) as u8,
        })
    }
}

impl Wire for RemoteError {
    fn encode(&self, out: &mut Vec<u8>) {
        self.code.encode(out);
        put_str(out, &self.message);
        put_u64(out, self.aux);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RemoteError {
            code: ErrorCode::decode(r)?,
            message: r.string("RemoteError.message")?,
            aux: r.u64("RemoteError.aux")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Frame layer
// ---------------------------------------------------------------------------

/// The message kind carried in a frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgKind {
    /// Request: plan `query` against `table` and cache the plan.
    Prepare = 0x01,
    /// Request: execute one query under per-request options.
    Execute = 0x02,
    /// Request: execute a batch concurrently.
    Batch = 0x03,
    /// Request: close the connection cleanly.
    Close = 0x04,
    /// Response to [`Prepare`](MsgKind::Prepare).
    Prepared = 0x81,
    /// Response carrying a [`QueryResult`].
    Result = 0x82,
    /// Response carrying per-item batch results.
    BatchResult = 0x83,
    /// Response carrying a [`RemoteError`].
    Error = 0x84,
    /// Response to [`Close`](MsgKind::Close) (also sent on shutdown).
    Goodbye = 0x85,
}

impl MsgKind {
    /// Decode a kind byte.
    pub fn from_u8(b: u8) -> Option<MsgKind> {
        Some(match b {
            0x01 => MsgKind::Prepare,
            0x02 => MsgKind::Execute,
            0x03 => MsgKind::Batch,
            0x04 => MsgKind::Close,
            0x81 => MsgKind::Prepared,
            0x82 => MsgKind::Result,
            0x83 => MsgKind::BatchResult,
            0x84 => MsgKind::Error,
            0x85 => MsgKind::Goodbye,
            _ => return None,
        })
    }
}

/// Why a frame could not be read off the stream.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(std::io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// What arrived instead.
        got: [u8; 4],
    },
    /// The version byte is not one this build speaks.
    UnsupportedVersion {
        /// The announced version.
        got: u8,
    },
    /// The kind byte is not a known [`MsgKind`].
    BadKind {
        /// The offending byte.
        kind: u8,
        /// The request id parsed from the header (echoable).
        request_id: u64,
    },
    /// The announced payload exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The announced length.
        len: u32,
        /// The request id parsed from the header (echoable).
        request_id: u64,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::BadMagic { got } => write!(f, "bad frame magic {got:?}"),
            FrameError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got} (expected {VERSION})")
            }
            FrameError::BadKind { kind, .. } => write!(f, "unknown frame kind {kind:#04x}"),
            FrameError::Oversized { len, .. } => {
                write!(f, "frame payload {len} bytes exceeds maximum {MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// One length-prefixed protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message kind.
    pub kind: MsgKind,
    /// Client-chosen id, echoed verbatim in the response (pipelining).
    pub request_id: u64,
    /// The message payload ([`Wire`]-encoded).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Serialize header + payload into one buffer (a single `write_all`
    /// keeps frames intact under concurrent writers).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.kind as u8);
        put_u64(&mut out, self.request_id);
        put_u32(&mut out, self.payload.len() as u32);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Write this frame to `w` and flush.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        w.write_all(&self.to_bytes())?;
        w.flush()
    }

    /// Read one frame off `r`, validating the header before any payload
    /// allocation. Oversized frames are rejected *without* reading their
    /// payload.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, FrameError> {
        let mut header = [0u8; HEADER_LEN];
        r.read_exact(&mut header)?;
        let got = [header[0], header[1], header[2], header[3]];
        if got != MAGIC {
            return Err(FrameError::BadMagic { got });
        }
        if header[4] != VERSION {
            return Err(FrameError::UnsupportedVersion { got: header[4] });
        }
        let request_id = u64::from_le_bytes([
            header[6], header[7], header[8], header[9], header[10], header[11], header[12],
            header[13],
        ]);
        let kind = MsgKind::from_u8(header[5]).ok_or(FrameError::BadKind {
            kind: header[5],
            request_id,
        })?;
        let len = u32::from_le_bytes([header[14], header[15], header[16], header[17]]);
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized { len, request_id });
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame {
            kind,
            request_id,
            payload,
        })
    }
}

// ---------------------------------------------------------------------------
// Message grammar
// ---------------------------------------------------------------------------

/// A client → server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Plan `query` against `table` now, warming the connection
    /// session's plan cache.
    Prepare {
        /// Target table name.
        table: String,
        /// The query to plan.
        query: Query,
    },
    /// Execute one query under per-request [`QueryOptions`].
    Execute {
        /// Target table name.
        table: String,
        /// The query to run.
        query: Query,
        /// Per-request limits (deadline, queue timeout).
        options: QueryOptions,
    },
    /// Execute `items` concurrently (at most `threads` in flight),
    /// returning per-item results in input order.
    Batch {
        /// `(table, query)` pairs.
        items: Vec<(String, Query)>,
        /// Intra-batch concurrency.
        threads: u32,
        /// Limits applied to every item.
        options: QueryOptions,
    },
    /// Close the connection cleanly; the server answers
    /// [`Response::Goodbye`].
    Close,
}

impl Request {
    /// The frame kind this request travels under.
    pub fn kind(&self) -> MsgKind {
        match self {
            Request::Prepare { .. } => MsgKind::Prepare,
            Request::Execute { .. } => MsgKind::Execute,
            Request::Batch { .. } => MsgKind::Batch,
            Request::Close => MsgKind::Close,
        }
    }

    /// Encode into a frame carrying `request_id`.
    pub fn to_frame(&self, request_id: u64) -> Frame {
        let mut payload = Vec::new();
        match self {
            Request::Prepare { table, query } => {
                put_str(&mut payload, table);
                query.encode(&mut payload);
            }
            Request::Execute {
                table,
                query,
                options,
            } => {
                put_str(&mut payload, table);
                query.encode(&mut payload);
                options.encode(&mut payload);
            }
            Request::Batch {
                items,
                threads,
                options,
            } => {
                debug_assert!(items.len() <= MAX_ITEMS);
                put_u32(&mut payload, items.len() as u32);
                for (table, query) in items {
                    put_str(&mut payload, table);
                    query.encode(&mut payload);
                }
                put_u32(&mut payload, *threads);
                options.encode(&mut payload);
            }
            Request::Close => {}
        }
        Frame {
            kind: self.kind(),
            request_id,
            payload,
        }
    }

    /// Decode a request payload for `kind` (trailing bytes are a typed
    /// error).
    pub fn decode(kind: MsgKind, payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match kind {
            MsgKind::Prepare => Request::Prepare {
                table: r.string("Prepare.table")?,
                query: Query::decode(&mut r)?,
            },
            MsgKind::Execute => Request::Execute {
                table: r.string("Execute.table")?,
                query: Query::decode(&mut r)?,
                options: QueryOptions::decode(&mut r)?,
            },
            MsgKind::Batch => {
                let n = r.count(5, "Batch.items")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let table = r.string("Batch.table")?;
                    let query = Query::decode(&mut r)?;
                    items.push((table, query));
                }
                Request::Batch {
                    items,
                    threads: r.u32("Batch.threads")?,
                    options: QueryOptions::decode(&mut r)?,
                }
            }
            MsgKind::Close => Request::Close,
            other => {
                return Err(WireError::BadTag {
                    what: "Request.kind",
                    tag: other as u8,
                })
            }
        };
        if r.remaining() != 0 {
            return Err(WireError::Trailing { len: r.remaining() });
        }
        Ok(req)
    }
}

/// A server → client message.
#[derive(Debug)]
pub enum Response {
    /// The prepare succeeded; the plan is cached server-side.
    Prepared,
    /// One query's result.
    Result(Box<QueryResult>),
    /// Per-item batch outcomes, in input order.
    Batch(Vec<Result<QueryResult, RemoteError>>),
    /// The request failed with a typed error.
    Error(RemoteError),
    /// The connection is closing cleanly.
    Goodbye,
}

impl Response {
    /// The frame kind this response travels under.
    pub fn kind(&self) -> MsgKind {
        match self {
            Response::Prepared => MsgKind::Prepared,
            Response::Result(_) => MsgKind::Result,
            Response::Batch(_) => MsgKind::BatchResult,
            Response::Error(_) => MsgKind::Error,
            Response::Goodbye => MsgKind::Goodbye,
        }
    }

    /// Encode into a frame echoing `request_id`.
    pub fn to_frame(&self, request_id: u64) -> Frame {
        let mut payload = Vec::new();
        match self {
            Response::Prepared | Response::Goodbye => {}
            Response::Result(r) => r.encode(&mut payload),
            Response::Batch(items) => {
                debug_assert!(items.len() <= MAX_ITEMS);
                put_u32(&mut payload, items.len() as u32);
                for item in items {
                    match item {
                        Ok(r) => {
                            payload.push(1);
                            r.encode(&mut payload);
                        }
                        Err(e) => {
                            payload.push(0);
                            e.encode(&mut payload);
                        }
                    }
                }
            }
            Response::Error(e) => e.encode(&mut payload),
        }
        Frame {
            kind: self.kind(),
            request_id,
            payload,
        }
    }

    /// Decode a response payload for `kind` (trailing bytes are a typed
    /// error).
    pub fn decode(kind: MsgKind, payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match kind {
            MsgKind::Prepared => Response::Prepared,
            MsgKind::Result => Response::Result(Box::new(QueryResult::decode(&mut r)?)),
            MsgKind::BatchResult => {
                let n = r.count(1, "BatchResult.items")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    match r.u8("BatchResult.tag")? {
                        1 => items.push(Ok(QueryResult::decode(&mut r)?)),
                        0 => items.push(Err(RemoteError::decode(&mut r)?)),
                        tag => {
                            return Err(WireError::BadTag {
                                what: "BatchResult.tag",
                                tag,
                            })
                        }
                    }
                }
                Response::Batch(items)
            }
            MsgKind::Error => Response::Error(RemoteError::decode(&mut r)?),
            MsgKind::Goodbye => Response::Goodbye,
            other => {
                return Err(WireError::BadTag {
                    what: "Response.kind",
                    tag: other as u8,
                })
            }
        };
        if r.remaining() != 0 {
            return Err(WireError::Trailing { len: r.remaining() });
        }
        Ok(resp)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_are_pinned_wire_abi() {
        // These numbers are the wire contract; changing any is a
        // protocol break and must fail review.
        let pinned = [
            (ErrorCode::UnknownColumn, 1),
            (ErrorCode::UnknownTable, 2),
            (ErrorCode::NoSortKeys, 3),
            (ErrorCode::PlanSearch, 4),
            (ErrorCode::Sort, 5),
            (ErrorCode::Sql, 6),
            (ErrorCode::WindowKeyTooWide, 7),
            (ErrorCode::DeadlineExceeded, 8),
            (ErrorCode::Cancelled, 9),
            (ErrorCode::Overloaded, 10),
            (ErrorCode::MalformedFrame, 64),
            (ErrorCode::UnsupportedVersion, 65),
            (ErrorCode::OversizedFrame, 66),
            (ErrorCode::BadRequest, 67),
            (ErrorCode::ShuttingDown, 68),
        ];
        for (code, num) in pinned {
            assert_eq!(code.code(), num, "{code:?}");
            assert_eq!(ErrorCode::from_code(num), Some(code));
        }
        assert_eq!(ErrorCode::from_code(0), None);
        assert_eq!(ErrorCode::from_code(11), None);
        assert_eq!(ErrorCode::from_code(u16::MAX), None);
    }

    #[test]
    fn engine_error_mapping_is_total_and_roundtrips_the_lossless_variants() {
        let e = EngineError::Overloaded { waited_ns: 12345 };
        let w = RemoteError::from(&e);
        assert_eq!(w.code, ErrorCode::Overloaded);
        assert_eq!(w.aux, 12345);
        assert_eq!(w.engine_error(), Some(e));

        let e = EngineError::WindowKeyTooWide { bits: 70 };
        let w = RemoteError::from(&e);
        assert_eq!(w.engine_error(), Some(e));

        assert_eq!(
            RemoteError::from(&EngineError::DeadlineExceeded).engine_error(),
            Some(EngineError::DeadlineExceeded)
        );
        assert_eq!(
            RemoteError::from(&EngineError::Cancelled).engine_error(),
            Some(EngineError::Cancelled)
        );
        // Structured inner errors keep their detail in the message only.
        let e = EngineError::UnknownTable {
            table: "ghost".into(),
        };
        let w = RemoteError::from(&e);
        assert_eq!(w.code, ErrorCode::UnknownTable);
        assert!(w.message.contains("ghost"));
        assert_eq!(w.engine_error(), None);
    }

    #[test]
    fn frame_header_layout_is_pinned() {
        let f = Frame {
            kind: MsgKind::Execute,
            request_id: 0x0102030405060708,
            payload: vec![0xAA, 0xBB],
        };
        let bytes = f.to_bytes();
        assert_eq!(&bytes[0..4], b"MCSQ");
        assert_eq!(bytes[4], VERSION);
        assert_eq!(bytes[5], 0x02);
        assert_eq!(
            &bytes[6..14],
            &0x0102030405060708u64.to_le_bytes(),
            "request id is little-endian at offset 6"
        );
        assert_eq!(&bytes[14..18], &2u32.to_le_bytes());
        assert_eq!(&bytes[18..], &[0xAA, 0xBB]);
        assert_eq!(bytes.len(), HEADER_LEN + 2);

        let back = Frame::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn frame_rejections_are_typed() {
        let good = Frame {
            kind: MsgKind::Close,
            request_id: 7,
            payload: Vec::new(),
        }
        .to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::read_from(&mut &bad_magic[..]),
            Err(FrameError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(matches!(
            Frame::read_from(&mut &bad_version[..]),
            Err(FrameError::UnsupportedVersion { got: 99 })
        ));

        let mut bad_kind = good.clone();
        bad_kind[5] = 0x7F;
        assert!(matches!(
            Frame::read_from(&mut &bad_kind[..]),
            Err(FrameError::BadKind {
                kind: 0x7F,
                request_id: 7
            })
        ));

        let mut oversized = good.clone();
        oversized[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut &oversized[..]),
            Err(FrameError::Oversized { request_id: 7, .. })
        ));

        let truncated = &good[..HEADER_LEN - 3];
        assert!(matches!(
            Frame::read_from(&mut &truncated[..]),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn hostile_length_prefixes_cannot_force_allocation() {
        // A u64-count vector claiming 2^61 elements in a 16-byte buffer
        // must be rejected before any allocation is attempted.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, u64::MAX / 4);
        put_u64(&mut bytes, 42);
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.u64s("values"),
            Err(WireError::Truncated { what: "values" })
        );

        // Same for string lengths...
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX);
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.string("s"), Err(WireError::TooLong { .. })));

        // ...and collection counts.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, (MAX_ITEMS + 1) as u32);
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.count(1, "c"), Err(WireError::TooLong { .. })));
    }

    #[test]
    fn query_options_reanchor_the_deadline_on_decode() {
        let opts = QueryOptions::default()
            .with_timeout(Duration::from_secs(10))
            .with_queue_timeout(Duration::from_millis(250));
        let back = QueryOptions::from_bytes(&opts.to_bytes()).unwrap();
        let remaining = back
            .deadline
            .expect("deadline survives")
            .saturating_duration_since(Instant::now());
        assert!(remaining <= Duration::from_secs(10));
        assert!(remaining > Duration::from_secs(9), "{remaining:?}");
        assert_eq!(back.queue_timeout, Some(Duration::from_millis(250)));
        assert!(!back.cancel.is_live(), "tokens never cross the wire");

        // No limits at all: one tag byte per option.
        let none = QueryOptions::default();
        assert_eq!(none.to_bytes(), vec![0, 0]);

        // A hostile u64::MAX budget decodes as "no deadline", not a panic.
        let mut bytes = Vec::new();
        put_opt_u64(&mut bytes, Some(u64::MAX));
        put_opt_u64(&mut bytes, None);
        let back = QueryOptions::from_bytes(&bytes).unwrap();
        assert!(back.deadline.is_none() || back.deadline.is_some());
    }
}
