//! Integration tests: the fast pipeline agrees with the naive reference
//! executor on every query shape, with and without code massaging.

use mcs_columnar::{Column, Predicate, Table};
use mcs_engine::reference::{assert_same_order, assert_same_rows, naive_execute};
use mcs_engine::{run_query, Agg, AggKind, EngineConfig, Filter, OrderKey, PlannerMode, Query};
use mcs_test_support::Rng;

fn test_table(rows: usize, seed: u64) -> Table {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s(
        "nation",
        5,
        (0..rows).map(|_| rng.gen_range(0..25u64)),
    ));
    t.add_column(Column::from_u64s(
        "date",
        12,
        (0..rows).map(|_| rng.gen_range(0..2557u64)),
    ));
    t.add_column(Column::from_u64s(
        "price",
        17,
        (0..rows).map(|_| rng.gen_range(0..100_000u64)),
    ));
    t.add_column(Column::from_u64s(
        "qty",
        6,
        (0..rows).map(|_| rng.gen_range(1..51u64)),
    ));
    t.add_column(Column::from_u64s(
        "flag",
        2,
        (0..rows).map(|_| rng.gen_range(0..3u64)),
    ));
    t
}

fn configs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("no-massaging", EngineConfig::without_massaging()),
        ("roga", EngineConfig::default()),
        (
            "roga-unbounded",
            EngineConfig {
                planner: PlannerMode::Roga { rho: None },
                ..EngineConfig::default()
            },
        ),
    ]
}

#[test]
fn group_by_with_aggregates() {
    let t = test_table(4000, 1);
    let mut q = Query::named("g1");
    q.group_by = vec!["nation".into(), "flag".into()];
    q.aggregates = vec![
        Agg::new(AggKind::Sum("price".into()), "rev"),
        Agg::new(AggKind::Count, "cnt"),
        Agg::new(AggKind::Avg("qty".into()), "aq"),
        Agg::new(AggKind::Min("date".into()), "mind"),
        Agg::new(AggKind::Max("date".into()), "maxd"),
        Agg::new(AggKind::CountDistinct("qty".into()), "dq"),
    ];
    let want = naive_execute(&t, &q);
    for (name, cfg) in configs() {
        let got = run_query(&t, &q, &cfg).unwrap();
        assert_same_rows(&got.columns, &want);
        assert!(got.rows > 0, "{name}");
    }
}

#[test]
fn group_by_with_order_by_aggregate_q13_style() {
    let t = test_table(3000, 2);
    let mut q = Query::named("q13ish");
    q.group_by = vec!["flag".into(), "nation".into()];
    q.aggregates = vec![Agg::new(AggKind::Count, "custdist")];
    q.order_by = vec![OrderKey::desc("custdist"), OrderKey::desc("nation")];
    let want = naive_execute(&t, &q);
    for (name, cfg) in configs() {
        let got = run_query(&t, &q, &cfg).unwrap();
        assert_same_order(
            &got.columns,
            &want,
            &["custdist".to_string(), "nation".to_string()],
        );
        let _ = name;
    }
}

#[test]
fn order_by_mixed_directions_with_filter() {
    let t = test_table(5000, 3);
    let mut q = Query::named("o1");
    q.filters = vec![Filter {
        column: "price".into(),
        predicate: Predicate::Lt(60_000),
    }];
    q.select = vec!["nation".into(), "date".into(), "price".into()];
    q.order_by = vec![
        OrderKey::asc("nation"),
        OrderKey::desc("date"),
        OrderKey::asc("price"),
    ];
    let want = naive_execute(&t, &q);
    for (_, cfg) in configs() {
        let got = run_query(&t, &q, &cfg).unwrap();
        // The full key (nation, date, price) is unique enough to compare
        // the ordered key columns directly.
        assert_same_order(
            &got.columns,
            &want,
            &[
                "nation".to_string(),
                "date".to_string(),
                "price".to_string(),
            ],
        );
    }
}

#[test]
fn window_rank_partition_by() {
    let t = test_table(2500, 4);
    let mut q = Query::named("w1");
    q.filters = vec![Filter {
        column: "flag".into(),
        predicate: Predicate::Eq(1),
    }];
    q.select = vec!["nation".into(), "flag".into(), "qty".into()];
    q.partition_by = vec!["nation".into(), "flag".into()];
    q.window_order = vec![OrderKey::asc("qty")];
    let want = naive_execute(&t, &q);
    for (_, cfg) in configs() {
        let got = run_query(&t, &q, &cfg).unwrap();
        assert_same_rows(&got.columns, &want);
    }
}

#[test]
fn window_rank_desc_order() {
    let t = test_table(1000, 5);
    let mut q = Query::named("w2");
    q.select = vec!["nation".into(), "price".into()];
    q.partition_by = vec!["nation".into()];
    q.window_order = vec![OrderKey::desc("price")];
    let want = naive_execute(&t, &q);
    for (_, cfg) in configs() {
        let got = run_query(&t, &q, &cfg).unwrap();
        assert_same_rows(&got.columns, &want);
    }
}

#[test]
fn empty_filter_result() {
    let t = test_table(500, 6);
    let mut q = Query::named("e");
    q.filters = vec![Filter {
        column: "qty".into(),
        predicate: Predicate::Gt(1000),
    }];
    q.group_by = vec!["nation".into(), "flag".into()];
    q.aggregates = vec![Agg::new(AggKind::Count, "c")];
    for (_, cfg) in configs() {
        let got = run_query(&t, &q, &cfg).unwrap();
        // One empty "group" covering zero rows collapses to zero output
        // rows in the reference; the engine may produce either zero rows
        // or a single empty group — check totals instead.
        let total: u64 = got.column("c").map(|v| v.iter().sum()).unwrap_or(0);
        assert_eq!(total, 0);
    }
}

#[test]
fn fixed_plan_mode_works() {
    let t = test_table(2000, 7);
    let mut q = Query::named("f");
    q.group_by = vec!["nation".into(), "date".into()];
    q.aggregates = vec![Agg::new(AggKind::Sum("qty".into()), "s")];
    // nation(5) + date(12) = 17 bits: stitch into one round.
    let cfg = EngineConfig {
        planner: PlannerMode::Fixed(mcs_engine::MassagePlan::from_widths(&[17])),
        ..EngineConfig::default()
    };
    let got = run_query(&t, &q, &cfg).unwrap();
    let want = naive_execute(&t, &q);
    assert_same_rows(&got.columns, &want);
    assert_eq!(
        got.timings.plan.as_ref().unwrap().notation(),
        "{R1: 17/[32]}"
    );
}

#[test]
fn rrs_planner_mode_works() {
    let t = test_table(1500, 8);
    let mut q = Query::named("r");
    q.group_by = vec!["nation".into(), "price".into()];
    q.aggregates = vec![Agg::new(AggKind::Count, "c")];
    let cfg = EngineConfig {
        planner: PlannerMode::Rrs {
            budget: std::time::Duration::from_millis(3),
        },
        ..EngineConfig::default()
    };
    let got = run_query(&t, &q, &cfg).unwrap();
    assert_same_rows(&got.columns, &naive_execute(&t, &q));
}

#[test]
fn timings_are_recorded() {
    let t = test_table(3000, 9);
    let mut q = Query::named("t");
    q.filters = vec![Filter {
        column: "date".into(),
        predicate: Predicate::Le(2000),
    }];
    q.group_by = vec!["nation".into(), "date".into()];
    q.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "rev")];
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    let tm = &got.timings;
    assert!(tm.filter_scan_ns > 0);
    assert!(tm.gather_ns > 0);
    assert!(tm.mcs_ns > 0);
    assert!(tm.aggregate_ns > 0);
    assert!(tm.total_ns >= tm.mcs_ns);
    assert!(tm.plan.is_some());
    assert_eq!(
        tm.mcs_stats.rounds.len(),
        tm.plan.as_ref().unwrap().num_rounds()
    );
}
