//! Edge cases for the PARTITION BY / RANK() path.

use mcs_columnar::{Column, Table};
use mcs_engine::reference::{assert_same_rows, naive_execute};
use mcs_engine::{run_query, EngineConfig, OrderKey, Query};

fn table() -> Table {
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s("p", 3, [1u64, 1, 1, 2, 2, 3, 3, 3, 3]));
    t.add_column(Column::from_u64s("a", 4, [5u64, 5, 3, 9, 9, 1, 2, 2, 2]));
    t.add_column(Column::from_u64s("b", 4, [1u64, 2, 3, 4, 4, 5, 6, 7, 7]));
    t
}

#[test]
fn multi_key_window_order() {
    let mut q = Query::named("w");
    q.select = vec!["p".into(), "a".into(), "b".into()];
    q.partition_by = vec!["p".into()];
    q.window_order = vec![OrderKey::asc("a"), OrderKey::desc("b")];
    let t = table();
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    let want = naive_execute(&t, &q);
    assert_same_rows(&got.columns, &want);
}

#[test]
fn all_rows_one_partition() {
    let mut q = Query::named("w");
    q.select = vec!["a".into()];
    q.partition_by = vec!["p".into()];
    q.window_order = vec![OrderKey::asc("a")];
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s("p", 1, [0u64; 6]));
    t.add_column(Column::from_u64s("a", 4, [3u64, 1, 4, 1, 5, 9]));
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    let ranks = got.column("rank").unwrap();
    // Sorted a: 1,1,3,4,5,9 -> ranks 1,1,3,4,5,6.
    assert_eq!(ranks, &vec![1, 1, 3, 4, 5, 6]);
}

#[test]
fn every_row_its_own_partition() {
    let mut q = Query::named("w");
    q.select = vec!["p".into()];
    q.partition_by = vec!["p".into()];
    q.window_order = vec![OrderKey::asc("a")];
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s("p", 4, [0u64, 1, 2, 3, 4]));
    t.add_column(Column::from_u64s("a", 4, [9u64, 8, 7, 6, 5]));
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    assert_eq!(got.column("rank").unwrap(), &vec![1, 1, 1, 1, 1]);
}

#[test]
fn all_ties_in_window_order() {
    let mut q = Query::named("w");
    q.select = vec!["p".into()];
    q.partition_by = vec!["p".into()];
    q.window_order = vec![OrderKey::asc("a")];
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s("p", 1, [0u64, 0, 0, 1, 1]));
    t.add_column(Column::from_u64s("a", 4, [7u64; 5]));
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    assert_eq!(got.column("rank").unwrap(), &vec![1, 1, 1, 1, 1]);
}

#[test]
fn empty_table_window() {
    let mut q = Query::named("w");
    q.select = vec!["p".into()];
    q.partition_by = vec!["p".into()];
    q.window_order = vec![OrderKey::asc("a")];
    let mut t = Table::new("t");
    t.add_column(Column::from_u64s("p", 1, std::iter::empty()));
    t.add_column(Column::from_u64s("a", 4, std::iter::empty()));
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    assert_eq!(got.rows, 0);
}

#[test]
fn desc_window_with_reference() {
    let t = table();
    let mut q = Query::named("w");
    q.select = vec!["p".into(), "b".into()];
    q.partition_by = vec!["p".into()];
    q.window_order = vec![OrderKey::desc("b")];
    let got = run_query(&t, &q, &EngineConfig::default()).unwrap();
    let want = naive_execute(&t, &q);
    assert_same_rows(&got.columns, &want);
}
