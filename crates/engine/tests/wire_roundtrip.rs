//! Property tests for the wire codec: every value the public API can
//! produce must survive `to_bytes` → `from_bytes` unchanged, and every
//! mutation of a valid encoding must decode to a *typed* error — the
//! decoder may reject, it may even accept a different valid value, but
//! it must never panic.

use std::time::{Duration, Instant};

use mcs_columnar::Predicate;
use mcs_engine::wire::{
    ErrorCode, Frame, MsgKind, RemoteError, Request, Response, Wire, WireError,
};
use mcs_engine::{Agg, AggKind, EngineError, Filter, OrderKey, Query, QueryOptions, QueryResult};
use mcs_test_support::{check, Rng};

fn arb_name(rng: &mut Rng) -> String {
    let alphabets = [
        "abcdefghijklmnopqrstuvwxyz_",
        "αβγδε",       // multi-byte UTF-8 must survive
        "a b.c-d\"\\", // JSON/shell-hostile characters are fine on a binary wire
    ];
    let alphabet: Vec<char> = alphabets[rng.gen_range(0..alphabets.len())]
        .chars()
        .collect();
    let len = rng.gen_range(0..12usize);
    (0..len).map(|_| *rng.choose(&alphabet)).collect()
}

fn arb_predicate(rng: &mut Rng) -> Predicate {
    let v = rng.next_u64();
    match rng.gen_range(0..7u32) {
        0 => Predicate::Lt(v),
        1 => Predicate::Le(v),
        2 => Predicate::Gt(v),
        3 => Predicate::Ge(v),
        4 => Predicate::Eq(v),
        5 => Predicate::Ne(v),
        _ => Predicate::Between(v.min(v.rotate_left(17)), v.max(v.rotate_left(17))),
    }
}

fn arb_agg(rng: &mut Rng) -> Agg {
    let col = arb_name(rng);
    let kind = match rng.gen_range(0..6u32) {
        0 => AggKind::Count,
        1 => AggKind::CountDistinct(col),
        2 => AggKind::Sum(col),
        3 => AggKind::Avg(col),
        4 => AggKind::Min(col),
        _ => AggKind::Max(col),
    };
    Agg::new(kind, arb_name(rng))
}

fn arb_order_key(rng: &mut Rng) -> OrderKey {
    OrderKey {
        column: arb_name(rng),
        descending: rng.gen_bool(0.5),
    }
}

/// A query drawn from the full grammar: filters, projections, grouping,
/// aggregates, ordering, and windows, in every combination — including
/// shapes the engine would reject (the codec is shape-agnostic).
fn arb_query(rng: &mut Rng) -> Query {
    let mut q = Query::named(arb_name(rng));
    for _ in 0..rng.gen_range(0..4usize) {
        q.filters.push(Filter {
            column: arb_name(rng),
            predicate: arb_predicate(rng),
        });
    }
    for _ in 0..rng.gen_range(0..4usize) {
        q.select.push(arb_name(rng));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        q.group_by.push(arb_name(rng));
    }
    for _ in 0..rng.gen_range(0..3usize) {
        q.aggregates.push(arb_agg(rng));
    }
    for _ in 0..rng.gen_range(0..4usize) {
        q.order_by.push(arb_order_key(rng));
    }
    for _ in 0..rng.gen_range(0..3usize) {
        q.partition_by.push(arb_name(rng));
    }
    for _ in 0..rng.gen_range(0..3usize) {
        q.window_order.push(arb_order_key(rng));
    }
    q
}

fn arb_result(rng: &mut Rng) -> QueryResult {
    let cols = rng.gen_range(0..4usize);
    let rows = rng.gen_range(0..16usize);
    QueryResult {
        columns: (0..cols)
            .map(|_| {
                let n = rng.gen_range(0..16usize);
                (arb_name(rng), (0..n).map(|_| rng.next_u64()).collect())
            })
            .collect(),
        rows,
        timings: Default::default(),
    }
}

fn arb_engine_error(rng: &mut Rng) -> EngineError {
    match rng.gen_range(0..6u32) {
        0 => EngineError::UnknownTable {
            table: arb_name(rng),
        },
        1 => EngineError::NoSortKeys {
            query: arb_name(rng),
        },
        2 => EngineError::WindowKeyTooWide {
            bits: rng.gen_range(65..4096u64) as u32,
        },
        3 => EngineError::DeadlineExceeded,
        4 => EngineError::Cancelled,
        _ => EngineError::Overloaded {
            waited_ns: rng.next_u64(),
        },
    }
}

#[test]
fn queries_roundtrip_over_the_full_grammar() {
    check("wire.query_roundtrip", 300, |rng| {
        let q = arb_query(rng);
        let bytes = q.to_bytes();
        let back = Query::from_bytes(&bytes).unwrap_or_else(|e| panic!("{q:?}: {e}"));
        assert_eq!(back, q);
    });
}

#[test]
fn results_roundtrip_with_data_intact() {
    check("wire.result_roundtrip", 200, |rng| {
        let r = arb_result(rng);
        let back = QueryResult::from_bytes(&r.to_bytes()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back.columns, r.columns);
        assert_eq!(back.rows, r.rows);
    });
}

#[test]
fn remote_errors_roundtrip_and_keep_their_aux_payload() {
    check("wire.error_roundtrip", 200, |rng| {
        let e = arb_engine_error(rng);
        let w = RemoteError::from(&e);
        let back = RemoteError::from_bytes(&w.to_bytes()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back, w);
        assert_eq!(ErrorCode::of(&e), back.code);
        // Lossless variants reconstruct the exact in-process error.
        if matches!(
            e,
            EngineError::DeadlineExceeded
                | EngineError::Cancelled
                | EngineError::Overloaded { .. }
                | EngineError::WindowKeyTooWide { .. }
        ) {
            assert_eq!(back.engine_error(), Some(e));
        }
    });
}

#[test]
fn options_roundtrip_within_clock_skew() {
    check("wire.options_roundtrip", 100, |rng| {
        let mut opts = QueryOptions::default();
        if rng.gen_bool(0.7) {
            opts = opts.with_timeout(Duration::from_millis(rng.gen_range(1..60_000u64)));
        }
        if rng.gen_bool(0.7) {
            opts = opts.with_queue_timeout(Duration::from_nanos(rng.next_u64() >> 20));
        }
        let before = opts
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()));
        let back = QueryOptions::from_bytes(&opts.to_bytes()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(back.queue_timeout, opts.queue_timeout);
        assert_eq!(back.deadline.is_some(), opts.deadline.is_some());
        if let (Some(b), Some(orig)) = (back.deadline, before) {
            let after = b.saturating_duration_since(Instant::now());
            // Encode→decode re-anchors the remaining budget; it can only
            // shrink (time passed), never grow.
            assert!(after <= orig, "{after:?} > {orig:?}");
            assert!(
                orig - after < Duration::from_secs(5),
                "lost {:?}",
                orig - after
            );
        }
    });
}

#[test]
fn requests_and_responses_roundtrip_through_frames() {
    check("wire.request_roundtrip", 150, |rng| {
        let req = match rng.gen_range(0..4u32) {
            0 => Request::Prepare {
                table: arb_name(rng),
                query: arb_query(rng),
            },
            1 => Request::Execute {
                table: arb_name(rng),
                query: arb_query(rng),
                options: QueryOptions::default(),
            },
            2 => Request::Batch {
                items: (0..rng.gen_range(0..4usize))
                    .map(|_| (arb_name(rng), arb_query(rng)))
                    .collect(),
                threads: rng.gen_range(1..9u64) as u32,
                options: QueryOptions::default(),
            },
            _ => Request::Close,
        };
        let id = rng.next_u64();
        let frame = req.to_frame(id);
        let mut stream: &[u8] = &frame.to_bytes();
        let read = Frame::read_from(&mut stream).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(read.request_id, id);
        assert_eq!(read.kind, req.kind());
        let back = Request::decode(read.kind, &read.payload).unwrap_or_else(|e| panic!("{e}"));
        match (&req, &back) {
            (
                Request::Prepare { table, query },
                Request::Prepare {
                    table: t2,
                    query: q2,
                },
            ) => {
                assert_eq!((table, query), (t2, q2));
            }
            (
                Request::Execute { table, query, .. },
                Request::Execute {
                    table: t2,
                    query: q2,
                    ..
                },
            ) => {
                assert_eq!((table, query), (t2, q2));
            }
            (
                Request::Batch { items, threads, .. },
                Request::Batch {
                    items: i2,
                    threads: n2,
                    ..
                },
            ) => {
                assert_eq!((items, threads), (i2, n2));
            }
            (Request::Close, Request::Close) => {}
            (a, b) => panic!("kind mismatch: {a:?} vs {b:?}"),
        }
    });

    check("wire.response_roundtrip", 150, |rng| {
        let resp = match rng.gen_range(0..5u32) {
            0 => Response::Prepared,
            1 => Response::Result(Box::new(arb_result(rng))),
            2 => Response::Batch(
                (0..rng.gen_range(0..4usize))
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            Ok(arb_result(rng))
                        } else {
                            Err(RemoteError::from(&arb_engine_error(rng)))
                        }
                    })
                    .collect(),
            ),
            3 => Response::Error(RemoteError::from(&arb_engine_error(rng))),
            _ => Response::Goodbye,
        };
        let frame = resp.to_frame(42);
        let mut stream: &[u8] = &frame.to_bytes();
        let read = Frame::read_from(&mut stream).unwrap_or_else(|e| panic!("{e}"));
        let back = Response::decode(read.kind, &read.payload).unwrap_or_else(|e| panic!("{e}"));
        match (&resp, &back) {
            (Response::Prepared, Response::Prepared) | (Response::Goodbye, Response::Goodbye) => {}
            (Response::Result(a), Response::Result(b)) => {
                assert_eq!(a.columns, b.columns);
                assert_eq!(a.rows, b.rows);
            }
            (Response::Batch(a), Response::Batch(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    match (x, y) {
                        (Ok(x), Ok(y)) => assert_eq!((&x.columns, x.rows), (&y.columns, y.rows)),
                        (Err(x), Err(y)) => assert_eq!(x, y),
                        _ => panic!("ok/err mismatch"),
                    }
                }
            }
            (Response::Error(a), Response::Error(b)) => assert_eq!(a, b),
            (a, b) => panic!("kind mismatch: {a:?} vs {b:?}"),
        }
    });
}

#[test]
fn mutated_encodings_never_panic_the_decoder() {
    check("wire.mutation_no_panic", 400, |rng| {
        let q = arb_query(rng);
        let mut bytes = Request::Execute {
            table: arb_name(rng),
            query: q,
            options: QueryOptions::default().with_timeout(Duration::from_secs(1)),
        }
        .to_frame(rng.next_u64())
        .to_bytes();

        // Truncate, extend, or flip — each must yield Err or a different
        // valid value, never a panic.
        match rng.gen_range(0..3u32) {
            0 => {
                let keep = rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
            }
            1 => {
                for _ in 0..rng.gen_range(1..8usize) {
                    bytes.push(rng.gen_range(0..256u64) as u8);
                }
            }
            _ => {
                for _ in 0..rng.gen_range(1..5usize) {
                    let i = rng.gen_range(0..bytes.len());
                    let bit = rng.gen_range(0..8u32);
                    bytes[i] ^= 1 << bit;
                }
            }
        }

        let mut stream: &[u8] = &bytes;
        if let Ok(frame) = Frame::read_from(&mut stream) {
            // Header survived; the payload decode must still be total.
            let _ = Request::decode(frame.kind, &frame.payload);
            let _ = Response::decode(frame.kind, &frame.payload);
        }
    });
}

#[test]
fn truncations_of_every_length_yield_typed_errors() {
    let mut rng = Rng::seed_from_u64(0xD15C);
    let q = arb_query(&mut rng);
    let bytes = q.to_bytes();
    for cut in 0..bytes.len() {
        match Query::from_bytes(&bytes[..cut]) {
            Err(
                WireError::Truncated { .. } | WireError::BadTag { .. } | WireError::BadUtf8 { .. },
            ) => {}
            Err(e) => panic!("cut={cut}: unexpected error class {e:?}"),
            // A prefix that happens to decode fully would have trailing
            // garbage relative to the full value — impossible here, but a
            // shorter *valid* value is acceptable by the codec contract.
            Ok(v) => assert_ne!(v, q, "cut={cut} decoded the full value from a prefix"),
        }
    }
}

#[test]
fn frame_kinds_partition_into_requests_and_responses() {
    for kind in [
        MsgKind::Prepare,
        MsgKind::Execute,
        MsgKind::Batch,
        MsgKind::Close,
    ] {
        assert!(
            Response::decode(kind, &[]).is_err(),
            "{kind:?} must not parse as a response"
        );
    }
    for kind in [
        MsgKind::Prepared,
        MsgKind::Result,
        MsgKind::BatchResult,
        MsgKind::Error,
        MsgKind::Goodbye,
    ] {
        assert!(
            Request::decode(kind, &[]).is_err(),
            "{kind:?} must not parse as a request"
        );
    }
}
