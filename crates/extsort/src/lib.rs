//! # mcs-extsort
//!
//! The out-of-core path of the multi-column sort: when a caller sets a
//! resident-memory budget smaller than the sort's leased footprint
//! ([`mcs_core::lease_footprint_bytes`]), the input is split into
//! budget-sized chunks, each chunk is sorted in memory by the existing
//! massaged SIMD sort (leasing buffers from the caller's
//! [`mcs_core::ExecArena`]), the sorted chunks are spilled to disk as
//! self-describing little-endian run files, and the runs are k-way
//! merged back through the streaming offset-value-coded loser tree of
//! [`mcs_simd_sort::StreamMerger`] behind bounded read-ahead buffers —
//! so merge comparisons stay code-resolved out-of-core (Do & Graefe,
//! *Robust and Efficient Sorting with Offset-Value Coding*).
//!
//! Run files store each row's direction-adjusted sort key packed into
//! `⌈W/64⌉` big-endian-ordered words plus its global oid; offset-value
//! codes are **not** stored — they are rebuilt for free while streaming
//! a run back, coding each head against its run predecessor (the run's
//! first element against the all-zero key). See `DESIGN.md` §13.
//!
//! The external path produces output **byte-identical** to the
//! in-memory path: the core executor canonicalizes ties to row order,
//! chunks are contiguous row ranges, and the merge tree breaks key ties
//! toward the lower run index, so ties drain in global row order either
//! way. `tests/differential_oracle.rs` asserts this across the full
//! plan/bank/thread/direction/OVC matrix.

#![warn(missing_docs)]
// Library code must surface failures as typed errors, never panic on a
// recoverable path. Test modules opt back in with `#[allow]`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod runfile;
mod sort;

pub use runfile::{RunFileError, RunFileReader, RunFileWriter, RunHeader, RUN_MAGIC, RUN_VERSION};
pub use sort::{
    chunk_rows_for_budget, external_multi_column_sort_with, live_spill_dirs, run_entry_bytes,
    SpillStats,
};
