//! The spilled-run file format: self-describing, little-endian, typed
//! errors on every malformed input.
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "MCSRUN1\0"
//! 8       2     version (currently 1), u16 LE
//! 10      2     key_words ⌈W/64⌉ ≥ 1, u16 LE
//! 12      4     entry_bytes = key_words·8 + 4, u32 LE
//! 16      8     count (entries), u64 LE
//! 24      …     count entries: key_words × u64 LE (most significant
//!               word first), then the u32 LE oid
//! ```
//!
//! Entries are written in sorted order; offset-value codes are not
//! stored (they are a function of adjacent keys and are rebuilt against
//! the run predecessor while streaming the file back). The header is
//! validated on open — wrong magic, unsupported version, inconsistent
//! shape, or a count that disagrees with the file length each return a
//! distinct [`RunFileError`] instead of panicking; a file that shrinks
//! between open and read surfaces as [`RunFileError::Truncated`] from
//! [`RunFileReader::read_entry`].

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// First 8 bytes of every run file.
pub const RUN_MAGIC: [u8; 8] = *b"MCSRUN1\0";

/// Format version this build writes and accepts.
pub const RUN_VERSION: u16 = 1;

/// Fixed header size in bytes.
const HEADER_BYTES: u64 = 24;

/// Why a run file could not be written or read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunFileError {
    /// Underlying I/O failure (`io::Error` is not `Eq`, so the message
    /// is carried as text).
    Io(String),
    /// The file does not start with [`RUN_MAGIC`].
    BadMagic([u8; 8]),
    /// The version field names a format this build does not speak.
    BadVersion(u16),
    /// `key_words` / `entry_bytes` are zero or mutually inconsistent.
    BadShape {
        /// Declared key words per entry.
        key_words: u16,
        /// Declared bytes per entry.
        entry_bytes: u32,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header implies.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A fault-injection point fired (chaos testing only).
    Injected(&'static str),
}

impl core::fmt::Display for RunFileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RunFileError::Io(msg) => write!(f, "run file I/O error: {msg}"),
            RunFileError::BadMagic(m) => write!(f, "bad run file magic {m:02x?}"),
            RunFileError::BadVersion(v) => write!(f, "unsupported run file version {v}"),
            RunFileError::BadShape {
                key_words,
                entry_bytes,
            } => write!(
                f,
                "inconsistent run file shape: {key_words} key words, {entry_bytes} entry bytes"
            ),
            RunFileError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated run file: {expected} bytes expected, {got} present"
                )
            }
            RunFileError::Injected(name) => write!(f, "injected fault: {name}"),
        }
    }
}

impl std::error::Error for RunFileError {}

impl From<std::io::Error> for RunFileError {
    fn from(e: std::io::Error) -> Self {
        RunFileError::Io(e.to_string())
    }
}

/// The validated header of a run file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunHeader {
    /// `u64` words per key, most significant first.
    pub key_words: usize,
    /// Entries in the file.
    pub count: u64,
}

impl RunHeader {
    /// Bytes of one entry.
    pub fn entry_bytes(&self) -> usize {
        self.key_words * 8 + 4
    }
}

/// Streaming writer for one sorted run.
pub struct RunFileWriter {
    w: BufWriter<File>,
    header: RunHeader,
    written: u64,
}

impl RunFileWriter {
    /// Create `path` and write the header for `count` entries of
    /// `key_words`-word keys. Traverses the `extsort.spill.write` fault
    /// point.
    pub fn create(
        path: &Path,
        key_words: usize,
        count: u64,
    ) -> Result<RunFileWriter, RunFileError> {
        if mcs_faults::fault_point!(mcs_faults::points::EXTSORT_SPILL_WRITE) {
            return Err(RunFileError::Injected(
                mcs_faults::points::EXTSORT_SPILL_WRITE,
            ));
        }
        let header = RunHeader { key_words, count };
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(&RUN_MAGIC)?;
        w.write_all(&RUN_VERSION.to_le_bytes())?;
        w.write_all(&(key_words as u16).to_le_bytes())?;
        w.write_all(&(header.entry_bytes() as u32).to_le_bytes())?;
        w.write_all(&count.to_le_bytes())?;
        Ok(RunFileWriter {
            w,
            header,
            written: 0,
        })
    }

    /// Append one entry (`words.len()` must equal the header's
    /// `key_words`).
    pub fn write_entry(&mut self, words: &[u64], oid: u32) -> Result<(), RunFileError> {
        debug_assert_eq!(words.len(), self.header.key_words);
        for w in words {
            self.w.write_all(&w.to_le_bytes())?;
        }
        self.w.write_all(&oid.to_le_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Flush and return the file's total size in bytes. Fails if the
    /// entry count does not match what the header promised.
    pub fn finish(mut self) -> Result<u64, RunFileError> {
        if self.written != self.header.count {
            return Err(RunFileError::Truncated {
                expected: HEADER_BYTES + self.header.count * self.header.entry_bytes() as u64,
                got: HEADER_BYTES + self.written * self.header.entry_bytes() as u64,
            });
        }
        self.w.flush()?;
        Ok(HEADER_BYTES + self.written * self.header.entry_bytes() as u64)
    }
}

/// Streaming reader over one run file, with a bounded read-ahead buffer.
pub struct RunFileReader {
    r: BufReader<File>,
    /// The validated header.
    pub header: RunHeader,
    read: u64,
    buf: Vec<u8>,
}

impl core::fmt::Debug for RunFileReader {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RunFileReader")
            .field("header", &self.header)
            .field("read", &self.read)
            .finish_non_exhaustive()
    }
}

impl RunFileReader {
    /// Open and validate `path` with the default read-ahead buffer.
    pub fn open(path: &Path) -> Result<RunFileReader, RunFileError> {
        Self::with_capacity(64 * 1024, path)
    }

    /// Open and validate `path`; `capacity` bounds the read-ahead buffer
    /// (the merge's per-run budget share).
    pub fn with_capacity(capacity: usize, path: &Path) -> Result<RunFileReader, RunFileError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut r = BufReader::with_capacity(capacity.max(256), file);
        let mut head = [0u8; HEADER_BYTES as usize];
        if file_len < HEADER_BYTES {
            return Err(RunFileError::Truncated {
                expected: HEADER_BYTES,
                got: file_len,
            });
        }
        r.read_exact(&mut head)?;
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&head[0..8]);
        if magic != RUN_MAGIC {
            return Err(RunFileError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([head[8], head[9]]);
        if version != RUN_VERSION {
            return Err(RunFileError::BadVersion(version));
        }
        let key_words = u16::from_le_bytes([head[10], head[11]]);
        let entry_bytes = u32::from_le_bytes([head[12], head[13], head[14], head[15]]);
        if key_words == 0 || entry_bytes as u64 != key_words as u64 * 8 + 4 {
            return Err(RunFileError::BadShape {
                key_words,
                entry_bytes,
            });
        }
        let count = u64::from_le_bytes([
            head[16], head[17], head[18], head[19], head[20], head[21], head[22], head[23],
        ]);
        // Saturating: a fuzzed count near u64::MAX must report Truncated,
        // not overflow.
        let expected = count
            .saturating_mul(entry_bytes as u64)
            .saturating_add(HEADER_BYTES);
        if file_len < expected {
            return Err(RunFileError::Truncated {
                expected,
                got: file_len,
            });
        }
        let header = RunHeader {
            key_words: key_words as usize,
            count,
        };
        Ok(RunFileReader {
            r,
            header,
            read: 0,
            buf: vec![0u8; header.entry_bytes()],
        })
    }

    /// Read the next entry's key words into `words` and return its oid,
    /// or `None` when the run is exhausted. Traverses the
    /// `extsort.spill.read` fault point.
    pub fn read_entry(&mut self, words: &mut [u64]) -> Result<Option<u32>, RunFileError> {
        if self.read == self.header.count {
            return Ok(None);
        }
        if mcs_faults::fault_point!(mcs_faults::points::EXTSORT_SPILL_READ) {
            return Err(RunFileError::Injected(
                mcs_faults::points::EXTSORT_SPILL_READ,
            ));
        }
        debug_assert_eq!(words.len(), self.header.key_words);
        if let Err(e) = self.r.read_exact(&mut self.buf) {
            // The open-time length check passed, so a short read here
            // means the file shrank underneath us.
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                return Err(RunFileError::Truncated {
                    expected: HEADER_BYTES + self.header.count * self.header.entry_bytes() as u64,
                    got: HEADER_BYTES + self.read * self.header.entry_bytes() as u64,
                });
            }
            return Err(e.into());
        }
        for (i, w) in words.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.buf[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(b);
        }
        let o = self.header.key_words * 8;
        let oid = u32::from_le_bytes([
            self.buf[o],
            self.buf[o + 1],
            self.buf[o + 2],
            self.buf[o + 3],
        ]);
        self.read += 1;
        Ok(Some(oid))
    }
}
