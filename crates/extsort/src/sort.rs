//! The external multi-column sort: budgeted chunks → spilled runs →
//! streaming offset-value-coded k-way merge.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;

use mcs_columnar::CodeVec;
use mcs_core::{
    lease_footprint_bytes, multi_column_sort_with, width_mask, ExecArena, ExecConfig, ExecStats,
    GroupBounds, MassagePlan, MultiColumnSortOutput, SortError, SortSpec, CHECK_INTERVAL,
};
use mcs_simd_sort::{
    ovc_encode, take_merge_counters, MergeScratch, StreamHead, StreamMerger, StreamSource,
};
use mcs_telemetry as telemetry;

use crate::runfile::{RunFileError, RunFileReader, RunFileWriter};

/// What the external path spilled, for `QueryTimings` / EXPLAIN and the
/// `scale_sweep` benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Sorted runs written to disk (0 = the in-memory path ran).
    pub runs: u64,
    /// Total run-file bytes written.
    pub bytes: u64,
    /// Loser-tree matches played by the final streaming merge.
    pub merge_comparisons: u64,
    /// Merge matches decided by offset-value codes alone.
    pub merge_ovc_hits: u64,
}

/// Bytes of one run-file entry for `specs`: the packed `⌈W/64⌉`-word
/// direction-adjusted key plus the u32 oid.
pub fn run_entry_bytes(specs: &[SortSpec]) -> usize {
    key_words(specs) * 8 + 4
}

fn key_words(specs: &[SortSpec]) -> usize {
    let total: u32 = specs.iter().map(|s| s.width).sum();
    (total as usize).div_ceil(64).max(1)
}

/// Rows per chunk so that one chunk's in-memory sort stays within
/// `budget_bytes` of leased footprint. Derived from
/// [`lease_footprint_bytes`], which is linear in the row count; always
/// at least 1 so pathological budgets degrade to tiny runs instead of
/// failing.
pub fn chunk_rows_for_budget(plan: &MassagePlan, budget_bytes: usize) -> usize {
    const PROBE: usize = 4096;
    let per_row = lease_footprint_bytes(plan, PROBE).div_ceil(PROBE).max(1);
    (budget_bytes / per_row).max(1)
}

/// Number of [`SpillDir`]s currently alive in this process.
static LIVE_SPILL_DIRS: AtomicU64 = AtomicU64::new(0);

/// How many spill directories (each holding one external sort's run
/// files) are currently alive in this process. Every exit path of
/// [`external_multi_column_sort_with`] — success, I/O error, injected
/// fault, or cancellation — drops its RAII `SpillDir` guard, so this
/// returns to its prior value after every call; the leak tests pin that.
pub fn live_spill_dirs() -> u64 {
    LIVE_SPILL_DIRS.load(AtomicOrdering::SeqCst)
}

/// Self-cleaning spill directory under the OS temp dir: an RAII guard
/// over every run file of one external sort. `Drop` removes the whole
/// directory, so any unwind — merge error, injected fault, cancellation
/// mid-spill — deletes every spilled file without per-file bookkeeping.
struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    fn create() -> Result<SpillDir, SortError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mcs-extsort-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, AtomicOrdering::Relaxed)
        ));
        std::fs::create_dir_all(&path)
            .map_err(|e| SortError::Spill(format!("create spill dir: {e}")))?;
        LIVE_SPILL_DIRS.fetch_add(1, AtomicOrdering::SeqCst);
        Ok(SpillDir { path })
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: a leaked temp dir must not mask the real error.
        let _ = std::fs::remove_dir_all(&self.path);
        LIVE_SPILL_DIRS.fetch_sub(1, AtomicOrdering::SeqCst);
    }
}

/// Per-column bit offsets of the packed key (from the least significant
/// end), most significant column first — column `j` occupies bits
/// `[shift_j, shift_j + width_j)`.
fn column_shifts(specs: &[SortSpec]) -> Vec<u32> {
    let total: u32 = specs.iter().map(|s| s.width).sum();
    let mut acc = total;
    specs
        .iter()
        .map(|s| {
            acc -= s.width;
            acc
        })
        .collect()
}

/// Pack row `row`'s direction-adjusted codes into `words` (most
/// significant word first, right-aligned) so that lexicographic word
/// comparison equals the `ORDER BY` tuple comparison.
fn pack_row(words: &mut [u64], cols: &[&CodeVec], specs: &[SortSpec], shifts: &[u32], row: usize) {
    for w in words.iter_mut() {
        *w = 0;
    }
    let kw = words.len();
    for ((c, s), &sh) in cols.iter().zip(specs).zip(shifts) {
        let mut v = c.get(row);
        if s.descending {
            v ^= width_mask(s.width);
        }
        let lo = (sh / 64) as usize;
        let b = sh % 64;
        words[kw - 1 - lo] |= v << b;
        if b != 0 && b + s.width > 64 {
            words[kw - 2 - lo] |= v >> (64 - b);
        }
    }
}

fn spill_err(e: RunFileError) -> SortError {
    SortError::Spill(e.to_string())
}

/// One spilled run behind a bounded read-ahead buffer, streaming heads
/// for the merge. `words` holds the live head; `emitted` the element
/// most recently surrendered to the tree (the merge's group-boundary
/// scan reads it after each pop).
struct RunCursor {
    reader: RunFileReader,
    words: Vec<u64>,
    emitted: Vec<u64>,
}

impl RunCursor {
    fn open(capacity: usize, path: &Path, kw: usize) -> Result<RunCursor, RunFileError> {
        let reader = RunFileReader::with_capacity(capacity, path)?;
        if reader.header.key_words != kw {
            return Err(RunFileError::BadShape {
                key_words: reader.header.key_words as u16,
                entry_bytes: reader.header.entry_bytes() as u32,
            });
        }
        Ok(RunCursor {
            reader,
            words: vec![0; kw],
            emitted: vec![0; kw],
        })
    }
}

/// The merge's [`StreamSource`] over all spilled runs. Offset-value
/// codes are rebuilt here, at run-boundary granularity: each head is
/// coded against its run predecessor's first word, the first element of
/// a run against the all-zero key — exactly the invariant the loser
/// tree's common-base argument needs, with zero bytes of code storage
/// in the run files.
struct RunsSource {
    cursors: Vec<RunCursor>,
}

impl RunsSource {
    /// The element run `run` most recently surrendered to the tree.
    fn emitted(&self, run: usize) -> &[u64] {
        &self.cursors[run].emitted
    }
}

impl StreamSource for RunsSource {
    type Error = RunFileError;

    fn next(&mut self, run: usize) -> Result<Option<StreamHead>, RunFileError> {
        let c = &mut self.cursors[run];
        // The head we are about to replace is the element being popped.
        let prev_w0 = c.words[0];
        c.emitted.copy_from_slice(&c.words);
        match c.reader.read_entry(&mut c.words)? {
            Some(oid) => Ok(Some(StreamHead {
                word0: c.words[0],
                code: ovc_encode(c.words[0], prev_w0),
                oid,
            })),
            None => Ok(None),
        }
    }

    fn cmp_heads(&self, a: usize, b: usize) -> core::cmp::Ordering {
        self.cursors[a].words.cmp(&self.cursors[b].words)
    }
}

/// Element-wise accumulation of per-chunk executor stats (ns and
/// counters sum; `max_group` takes the max; the probe sums only while
/// every chunk reported).
fn accumulate(acc: &mut ExecStats, s: &ExecStats) {
    acc.massage_ns += s.massage_ns;
    acc.total_ns += s.total_ns;
    if acc.rounds.len() < s.rounds.len() {
        acc.rounds
            .resize(s.rounds.len(), mcs_core::RoundStats::default());
    }
    for (a, r) in acc.rounds.iter_mut().zip(&s.rounds) {
        a.lookup_ns += r.lookup_ns;
        a.sort_ns += r.sort_ns;
        a.scan_ns += r.scan_ns;
        a.invocations += r.invocations;
        a.codes_sorted += r.codes_sorted;
        a.groups_in += r.groups_in;
        a.groups_out += r.groups_out;
        a.max_group = a.max_group.max(r.max_group);
        a.phases.add(r.phases);
        a.merge.add(r.merge);
    }
    acc.round_loop_allocs = match (acc.round_loop_allocs, s.round_loop_allocs) {
        (Some(x), Some(y)) => Some(x + y),
        _ => None,
    };
}

/// Sort `inputs` under `plan` within `budget_bytes` of resident memory:
/// chunk → in-memory sort (through `arena`) → spill run file → streaming
/// OVC merge. Output is byte-identical to
/// [`multi_column_sort_with`] — same oids, and the same group offsets
/// when `cfg.want_final_groups` is set (when it is not, the external
/// path returns the trivial single group where the in-memory path
/// returns its pre-final refinement; callers that consume groups must
/// request final groups).
///
/// When the whole input fits the budget in one chunk, this delegates to
/// the in-memory sort and reports zero spilled runs.
pub fn external_multi_column_sort_with(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    cfg: &ExecConfig,
    arena: &mut ExecArena,
    budget_bytes: usize,
) -> Result<(MultiColumnSortOutput, SpillStats), SortError> {
    let n = inputs.first().map_or(0, |c| c.len());
    let chunk_rows = chunk_rows_for_budget(plan, budget_bytes);
    if chunk_rows >= n {
        let out = multi_column_sort_with(inputs, specs, plan, cfg, arena)?;
        return Ok((out, SpillStats::default()));
    }

    let total_t = Instant::now();
    let kw = key_words(specs);
    let shifts = column_shifts(specs);
    let dir = SpillDir::create()?;

    // Chunk configs run without final groups (the merge derives the
    // global grouping) and without a budget (each chunk fits by
    // construction).
    let mut chunk_cfg = cfg.clone();
    chunk_cfg.want_final_groups = false;
    chunk_cfg.memory_budget_bytes = None;

    let mut spill = SpillStats::default();
    let mut stats = ExecStats {
        round_loop_allocs: Some(0),
        ..ExecStats::default()
    };
    let mut files: Vec<PathBuf> = Vec::new();
    let mut words = vec![0u64; kw];

    let mut start = 0usize;
    while start < n {
        // Chunk boundary: the chunk sort below polls the token itself
        // (its cancellation unwinds here through `?`, dropping `dir`).
        cfg.sort.cancel.check()?;
        let end = (start + chunk_rows).min(n);
        let chunk_idx = files.len();

        let tc = Instant::now();
        let chunk_cols: Vec<CodeVec> = inputs.iter().map(|c| c.slice(start..end)).collect();
        let refs: Vec<&CodeVec> = chunk_cols.iter().collect();
        let out = multi_column_sort_with(&refs, specs, plan, &chunk_cfg, arena)?;
        telemetry::record_span(
            "mcs.extsort.chunk_sort",
            tc.elapsed().as_nanos() as u64,
            vec![("chunk", chunk_idx.into()), ("rows", (end - start).into())],
        );
        accumulate(&mut stats, &out.stats);

        mcs_faults::delay_point(mcs_faults::points::EXEC_DELAY_SPILL);
        let tw = Instant::now();
        let path = dir.path.join(format!("run-{chunk_idx}.mcsrun"));
        let mut w = RunFileWriter::create(&path, kw, (end - start) as u64).map_err(spill_err)?;
        for (i, &local) in out.oids.iter().enumerate() {
            if i % CHECK_INTERVAL == 0 {
                cfg.sort.cancel.check()?;
            }
            pack_row(&mut words, &refs, specs, &shifts, local as usize);
            w.write_entry(&words, start as u32 + local)
                .map_err(spill_err)?;
        }
        let bytes = w.finish().map_err(spill_err)?;
        telemetry::record_span(
            "mcs.extsort.spill_write",
            tw.elapsed().as_nanos() as u64,
            vec![("run", chunk_idx.into()), ("bytes", bytes.into())],
        );
        spill.runs += 1;
        spill.bytes += bytes;
        files.push(path);
        start = end;
    }

    // Streaming merge: every run behind an equal share of the budget as
    // read-ahead (clamped to something sensible either way).
    mcs_faults::delay_point(mcs_faults::points::EXEC_DELAY_MERGE);
    cfg.sort.cancel.check()?;
    let tm = Instant::now();
    let per_run = (budget_bytes / files.len().max(1)).clamp(4096, 1 << 20);
    let mut cursors = Vec::with_capacity(files.len());
    for p in &files {
        cursors.push(RunCursor::open(per_run, p, kw).map_err(spill_err)?);
    }
    let mut source = RunsSource { cursors };
    let mut scratch = MergeScratch::new();
    let runs = files.len();
    let mut merger = StreamMerger::new(&mut source, runs, &mut scratch).map_err(spill_err)?;
    let mut oids: Vec<u32> = Vec::with_capacity(n);
    let mut offsets: Vec<u32> = vec![0];
    let mut prev = vec![0u64; kw];
    while let Some((run, oid, code)) = merger.pop().map_err(spill_err)? {
        if oids.len().is_multiple_of(CHECK_INTERVAL) {
            cfg.sort.cancel.check()?;
        }
        if cfg.want_final_groups {
            let cur = merger.source().emitted(run);
            // The popped code is relative to the previous output: a
            // nonzero code proves a new key (first words differ); a zero
            // code only proves equal first words, so compare the rest.
            if !oids.is_empty() && (code != 0 || cur != prev.as_slice()) {
                offsets.push(oids.len() as u32);
            }
            prev.copy_from_slice(cur);
        }
        oids.push(oid);
    }
    offsets.push(n as u32);
    let counters = take_merge_counters();
    spill.merge_comparisons = counters.comparisons;
    spill.merge_ovc_hits = counters.ovc_hits;
    telemetry::record_span(
        "mcs.extsort.merge",
        tm.elapsed().as_nanos() as u64,
        vec![
            ("runs", runs.into()),
            ("rows", n.into()),
            ("comparisons", counters.comparisons.into()),
            ("ovc_hits", counters.ovc_hits.into()),
        ],
    );

    let groups = if cfg.want_final_groups {
        GroupBounds::from_offsets(offsets)
    } else {
        GroupBounds::whole(n)
    };
    stats.arena = arena.stats();
    stats.total_ns = total_t.elapsed().as_nanos() as u64;
    Ok((
        MultiColumnSortOutput {
            oids,
            groups,
            stats,
        },
        spill,
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn specs(widths: &[(u32, bool)]) -> Vec<SortSpec> {
        widths
            .iter()
            .map(|&(w, d)| SortSpec {
                width: w,
                descending: d,
            })
            .collect()
    }

    #[test]
    fn packed_rows_order_like_tuples() {
        // 3 columns, 70 bits total -> 2 words; DESC in the middle.
        let sp = specs(&[(30, false), (20, true), (20, false)]);
        let shifts = column_shifts(&sp);
        assert_eq!(shifts, vec![40, 20, 0]);
        let c0 = CodeVec::from_u64s(30, [5u64, 5, 5, 9]);
        let c1 = CodeVec::from_u64s(20, [7u64, 8, 7, 1]);
        let c2 = CodeVec::from_u64s(20, [3u64, 0, 4, 2]);
        let cols: Vec<&CodeVec> = vec![&c0, &c1, &c2];
        let mut packed: Vec<Vec<u64>> = Vec::new();
        for row in 0..4 {
            let mut w = vec![0u64; 2];
            pack_row(&mut w, &cols, &sp, &shifts, row);
            packed.push(w);
        }
        // Tuple order with DESC col 1: (5,8,0) < (5,7,3) < (5,7,4) < (9,1,2).
        let mut idx = [0usize, 1, 2, 3];
        idx.sort_by(|&a, &b| packed[a].cmp(&packed[b]));
        assert_eq!(idx, [1, 0, 2, 3]);
    }

    #[test]
    fn external_matches_in_memory_byte_for_byte() {
        let mut rng = mcs_test_support::Rng::seed_from_u64(0xE47);
        let n = 500usize;
        let c0 = CodeVec::from_u64s(9, (0..n).map(|_| rng.gen_range(0..12)).collect::<Vec<_>>());
        let c1 = CodeVec::from_u64s(33, (0..n).map(|_| rng.gen_range(0..40)).collect::<Vec<_>>());
        let inputs: Vec<&CodeVec> = vec![&c0, &c1];
        let sp = specs(&[(9, false), (33, true)]);
        let plan = MassagePlan::column_at_a_time(&sp);
        let cfg = ExecConfig::default();

        let mut arena = ExecArena::new();
        let want = multi_column_sort_with(&inputs, &sp, &plan, &cfg, &mut arena).unwrap();

        // A budget forcing several runs.
        let budget = lease_footprint_bytes(&plan, n) / 8;
        let mut arena2 = ExecArena::new();
        let (got, spill) =
            external_multi_column_sort_with(&inputs, &sp, &plan, &cfg, &mut arena2, budget)
                .unwrap();
        assert!(spill.runs >= 4, "expected >= 4 runs, got {}", spill.runs);
        assert!(spill.bytes > 0);
        assert!(spill.merge_comparisons > 0);
        assert_eq!(got.oids, want.oids);
        assert_eq!(got.groups.offsets, want.groups.offsets);
    }

    #[test]
    fn unbounded_budget_never_spills() {
        let c0 = CodeVec::from_u64s(10, [3u64, 1, 2, 1]);
        let inputs: Vec<&CodeVec> = vec![&c0];
        let sp = specs(&[(10, false)]);
        let plan = MassagePlan::column_at_a_time(&sp);
        let mut arena = ExecArena::new();
        let (out, spill) = external_multi_column_sort_with(
            &inputs,
            &sp,
            &plan,
            &ExecConfig::default(),
            &mut arena,
            usize::MAX,
        )
        .unwrap();
        assert_eq!(spill, SpillStats::default());
        assert_eq!(out.oids, vec![1, 3, 2, 0]);
    }
}
