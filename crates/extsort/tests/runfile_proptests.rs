//! Property tests for the spilled-run file format: whatever is encoded
//! decodes back bit-for-bit, and every malformed input — truncations,
//! corrupted headers, wrong magic — surfaces as a typed
//! [`RunFileError`], never a panic.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mcs_extsort::{RunFileError, RunFileReader, RunFileWriter, RUN_MAGIC, RUN_VERSION};
use mcs_test_support::{check, Rng};

/// A unique temp path per call (tests run concurrently).
fn temp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "mcs-runfile-test-{}-{}-{}.mcsrun",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// RAII deletion so failing assertions don't strand files in /tmp.
struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn write_run(path: &Path, key_words: usize, entries: &[(Vec<u64>, u32)]) {
    let mut w = RunFileWriter::create(path, key_words, entries.len() as u64).expect("create");
    for (words, oid) in entries {
        w.write_entry(words, *oid).expect("write_entry");
    }
    w.finish().expect("finish");
}

#[test]
fn roundtrip_random_runs() {
    check("runfile_roundtrip", 64, |rng: &mut Rng| {
        let kw = rng.gen_range(1..5usize);
        let count = rng.gen_range(0..200usize);
        let entries: Vec<(Vec<u64>, u32)> = (0..count)
            .map(|_| {
                (
                    (0..kw).map(|_| rng.next_u64()).collect(),
                    rng.next_u64() as u32,
                )
            })
            .collect();
        let path = temp_path("roundtrip");
        let _guard = Cleanup(path.clone());
        write_run(&path, kw, &entries);

        let mut r = RunFileReader::open(&path).expect("open");
        assert_eq!(r.header.key_words, kw);
        assert_eq!(r.header.count, count as u64);
        let mut words = vec![0u64; kw];
        for (want_words, want_oid) in &entries {
            let oid = r
                .read_entry(&mut words)
                .expect("read_entry")
                .expect("entry");
            assert_eq!(oid, *want_oid);
            assert_eq!(&words, want_words);
        }
        // Exhaustion is a stable None, not an error — twice.
        assert_eq!(r.read_entry(&mut words).expect("past end"), None);
        assert_eq!(r.read_entry(&mut words).expect("past end again"), None);
    });
}

#[test]
fn empty_and_single_element_runs_roundtrip() {
    let path = temp_path("empty");
    let _guard = Cleanup(path.clone());
    write_run(&path, 2, &[]);
    let mut r = RunFileReader::open(&path).expect("open empty");
    let mut words = vec![0u64; 2];
    assert_eq!(r.read_entry(&mut words).expect("empty run"), None);

    let path1 = temp_path("single");
    let _guard1 = Cleanup(path1.clone());
    write_run(&path1, 1, &[(vec![u64::MAX], 7)]);
    let mut r = RunFileReader::open(&path1).expect("open single");
    let mut words = vec![0u64; 1];
    assert_eq!(r.read_entry(&mut words).expect("read"), Some(7));
    assert_eq!(words, vec![u64::MAX]);
    assert_eq!(r.read_entry(&mut words).expect("exhausted"), None);
}

#[test]
fn finish_rejects_entry_count_mismatch() {
    let path = temp_path("short-write");
    let _guard = Cleanup(path.clone());
    let mut w = RunFileWriter::create(&path, 1, 3).expect("create");
    w.write_entry(&[1], 0).expect("write");
    let err = w.finish().expect_err("2 entries missing");
    assert!(matches!(err, RunFileError::Truncated { .. }), "{err:?}");
}

/// Truncating a valid file at every possible byte length must yield a
/// typed error from open or from a subsequent read — never a panic and
/// never silently short data.
#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let path = temp_path("trunc-src");
    let _guard = Cleanup(path.clone());
    let entries: Vec<(Vec<u64>, u32)> = (0..5u64).map(|i| (vec![i, i * 3], i as u32)).collect();
    write_run(&path, 2, &entries);
    let full = std::fs::read(&path).expect("read back");

    for len in 0..full.len() {
        let tpath = temp_path("trunc");
        let _tguard = Cleanup(tpath.clone());
        std::fs::write(&tpath, &full[..len]).expect("write truncated");
        match RunFileReader::open(&tpath) {
            Err(RunFileError::Truncated { expected, got }) => {
                assert!(
                    got < expected,
                    "truncated to {len}: got {got} >= {expected}"
                );
            }
            Err(e) => panic!("truncated to {len}: unexpected error {e:?}"),
            Ok(mut r) => {
                // Header parsed and length check passed — impossible for
                // a shorter-than-declared file, so this can't happen for
                // len < full.len(); drain defensively to prove no panic.
                let mut words = vec![0u64; 2];
                while let Some(_oid) = r.read_entry(&mut words).expect("read") {}
                panic!("truncated to {len} < {} opened cleanly", full.len());
            }
        }
    }

    // The un-truncated original still opens and drains cleanly.
    let mut r = RunFileReader::open(&path).expect("open full");
    let mut words = vec![0u64; 2];
    let mut n = 0;
    while r.read_entry(&mut words).expect("read full").is_some() {
        n += 1;
    }
    assert_eq!(n, 5);
}

/// A file that shrinks *after* the open-time length validation surfaces
/// as `Truncated` from `read_entry`, not a panic.
#[test]
fn file_shrinking_after_open_is_a_typed_read_error() {
    let path = temp_path("shrink");
    let _guard = Cleanup(path.clone());
    // Enough entries that the file exceeds the reader's minimum 256-byte
    // read-ahead buffer — a file fully absorbed at open time is immune
    // to shrinking afterwards, which is fine but not what this tests.
    let entries: Vec<(Vec<u64>, u32)> = (0..40u64).map(|i| (vec![i], i as u32)).collect();
    write_run(&path, 1, &entries);
    let full = std::fs::read(&path).expect("read back");
    let mut r = RunFileReader::with_capacity(1, &path).expect("open");
    std::fs::write(&path, &full[..full.len() - 30]).expect("shrink");
    let mut words = vec![0u64; 1];
    let mut saw_truncated = false;
    for _ in 0..entries.len() {
        match r.read_entry(&mut words) {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(RunFileError::Truncated { .. }) => {
                saw_truncated = true;
                break;
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(saw_truncated, "shrunk file read to completion");
}

#[test]
fn corrupted_headers_are_typed_errors() {
    let path = temp_path("hdr-src");
    let _guard = Cleanup(path.clone());
    write_run(&path, 1, &[(vec![42], 0)]);
    let full = std::fs::read(&path).expect("read back");

    let reopen = |bytes: &[u8], tag: &str| -> Result<RunFileReader, RunFileError> {
        let p = temp_path(tag);
        std::fs::write(&p, bytes).expect("write corrupted");
        let r = RunFileReader::open(&p);
        let _ = std::fs::remove_file(&p);
        r
    };

    // Magic: flip the first byte.
    let mut bad = full.clone();
    bad[0] ^= 0xFF;
    match reopen(&bad, "magic") {
        Err(RunFileError::BadMagic(m)) => assert_ne!(m, RUN_MAGIC),
        other => panic!("expected BadMagic, got {other:?}"),
    }

    // Version: bump it.
    let mut bad = full.clone();
    bad[8..10].copy_from_slice(&(RUN_VERSION + 1).to_le_bytes());
    match reopen(&bad, "version") {
        Err(RunFileError::BadVersion(v)) => assert_eq!(v, RUN_VERSION + 1),
        other => panic!("expected BadVersion, got {other:?}"),
    }

    // Shape: zero key words.
    let mut bad = full.clone();
    bad[10..12].copy_from_slice(&0u16.to_le_bytes());
    match reopen(&bad, "shape-zero") {
        Err(RunFileError::BadShape { key_words, .. }) => assert_eq!(key_words, 0),
        other => panic!("expected BadShape, got {other:?}"),
    }

    // Shape: entry_bytes disagreeing with key_words.
    let mut bad = full.clone();
    bad[12..16].copy_from_slice(&99u32.to_le_bytes());
    match reopen(&bad, "shape-skew") {
        Err(RunFileError::BadShape { entry_bytes, .. }) => assert_eq!(entry_bytes, 99),
        other => panic!("expected BadShape, got {other:?}"),
    }

    // Count: header promises more entries than the file holds.
    let mut bad = full.clone();
    bad[16..24].copy_from_slice(&1_000u64.to_le_bytes());
    match reopen(&bad, "count") {
        Err(RunFileError::Truncated { expected, got }) => {
            assert!(expected > got);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }

    // Random header corruption never panics: any outcome must be a typed
    // error or a clean open (flips that hit ignored bits, e.g. high
    // count bytes already zero, can be harmless).
    check("runfile_header_fuzz", 64, |rng: &mut Rng| {
        let mut bad = full.clone();
        let i = rng.gen_range(0..24usize);
        bad[i] ^= 1 << rng.gen_range(0..8u32);
        match reopen(&bad, "fuzz") {
            Ok(mut r) => {
                let mut words = vec![0u64; r.header.key_words];
                while let Some(_oid) = r.read_entry(&mut words).expect("read fuzzed") {}
            }
            Err(
                RunFileError::BadMagic(_)
                | RunFileError::BadVersion(_)
                | RunFileError::BadShape { .. }
                | RunFileError::Truncated { .. }
                | RunFileError::Io(_),
            ) => {}
            Err(e) => panic!("unexpected error class {e:?}"),
        }
    });
}
