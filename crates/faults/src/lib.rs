//! # mcs-faults
//!
//! Deterministic fault injection for the code-massage workspace. Library
//! crates wire named [`fault_point!`] hooks into the places production
//! assumptions can break — planner search, cost evaluation, per-round
//! sorting, worker spawn — and the chaos suite arms them one at a time to
//! prove the pipeline degrades gracefully instead of aborting.
//!
//! The crate follows the `mcs-telemetry` pattern: everything exists in two
//! builds selected by the `enabled` cargo feature (off by default):
//!
//! * **enabled** (`--features faults` anywhere up the dependency chain) —
//!   fault points consult a process-global registry of armed faults.
//!   Arming is explicit and deterministic: a fault fires always, once, on
//!   the n-th traversal, or with a seeded pseudo-random probability — no
//!   wall-clock, no global entropy, so every chaos run is replayable.
//! * **disabled** — [`should_fire`] is a `const fn` returning `false`,
//!   `fault_point!` folds to a constant, and the hot paths pay nothing.
//!
//! Even in the enabled build, unarmed processes pay a single relaxed
//! atomic load per traversal: the registry mutex is only touched while at
//! least one fault is armed.
//!
//! ```
//! use mcs_faults::{fault_point, points, FireMode};
//!
//! fn search() -> Result<&'static str, &'static str> {
//!     if fault_point!(points::PLANNER_SEARCH) {
//!         return Err("injected");
//!     }
//!     Ok("plan")
//! }
//!
//! assert_eq!(search(), Ok("plan")); // nothing armed (or feature off)
//! # #[cfg(feature = "enabled")]
//! mcs_faults::with_armed(&[(points::PLANNER_SEARCH, FireMode::Always)], || {
//!     assert_eq!(search(), Err("injected"));
//! });
//! assert_eq!(search(), Ok("plan")); // disarmed again
//! ```
//!
//! ## Registering fault points
//!
//! Every wired name lives in [`points`] as a `const`, and [`points::ALL`]
//! is the registry of record: a new `fault_point!` site must add its name
//! there (and to the chaos suite) so it cannot be dropped silently. The
//! constants exist in both builds, so tests can pin the names without the
//! feature on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The canonical fault-point names wired into the workspace.
///
/// Names are dotted `crate.site` paths mirroring the telemetry span
/// naming. Keep [`points::ALL`] in sync — `tests/chaos.rs` and the span registry
/// test iterate it.
pub mod points {
    /// Planner search (ROGA / RRS) fails outright before costing a plan.
    pub const PLANNER_SEARCH: &str = "planner.search.fail";
    /// The ρ deadline starves the search: it returns timed-out with zero
    /// plans costed and no finite cost estimate.
    pub const PLANNER_STARVE: &str = "planner.search.starve";
    /// The cost model yields non-finite (NaN) estimates.
    pub const COST_NAN: &str = "cost.eval.nan";
    /// A sorting round of the multi-column sort executor fails.
    pub const CORE_ROUND_SORT: &str = "core.round.sort";
    /// A parallel-sort worker thread panics after being spawned.
    pub const SIMD_WORKER_PANIC: &str = "simd.worker.panic";
    /// Writing a sorted run file to spill storage fails.
    pub const EXTSORT_SPILL_WRITE: &str = "extsort.spill.write";
    /// Reading a spilled run back during the external merge fails.
    pub const EXTSORT_SPILL_READ: &str = "extsort.spill.read";
    /// Latency injected before the massage phase (see [`delay_point`]).
    ///
    /// [`delay_point`]: crate::delay_point
    pub const EXEC_DELAY_MASSAGE: &str = "exec.delay.massage";
    /// Latency injected at the top of each executor round.
    pub const EXEC_DELAY_ROUND: &str = "exec.delay.round";
    /// Latency injected before the external sort's streaming merge.
    pub const EXEC_DELAY_MERGE: &str = "exec.delay.merge";
    /// Latency injected before each spilled-run write.
    pub const EXEC_DELAY_SPILL: &str = "exec.delay.spill";

    /// Every registered fault point.
    pub const ALL: &[&str] = &[
        PLANNER_SEARCH,
        PLANNER_STARVE,
        COST_NAN,
        CORE_ROUND_SORT,
        SIMD_WORKER_PANIC,
        EXTSORT_SPILL_WRITE,
        EXTSORT_SPILL_READ,
        EXEC_DELAY_MASSAGE,
        EXEC_DELAY_ROUND,
        EXEC_DELAY_MERGE,
        EXEC_DELAY_SPILL,
    ];
}

/// When an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireMode {
    /// Fire on every traversal.
    Always,
    /// Fire on the first traversal only, then stay dormant.
    Once,
    /// Fire on the `n`-th traversal (1-based) only.
    Nth(u64),
    /// Fire pseudo-randomly with probability `millionths / 1_000_000`,
    /// from a dedicated xorshift64* stream seeded with `seed` — the
    /// sequence of fire/no-fire decisions is a pure function of the seed
    /// and the traversal order.
    Probability {
        /// Firing probability in millionths (1_000_000 = always).
        millionths: u32,
        /// Seed of the per-fault decision stream.
        seed: u64,
    },
}

/// Check an armed fault and report whether it fires at this traversal.
///
/// This is what [`fault_point!`] expands to; instrumented code should use
/// the macro so call sites stay greppable.
#[macro_export]
macro_rules! fault_point {
    ($name:expr) => {
        $crate::should_fire($name)
    };
}

#[cfg(feature = "enabled")]
mod active {
    use super::FireMode;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct FaultState {
        mode: FireMode,
        traversals: u64,
        fired: u64,
        rng: u64,
    }

    /// Number of currently armed faults — the lock-free fast path.
    static ARMED: AtomicUsize = AtomicUsize::new(0);

    fn registry() -> MutexGuard<'static, HashMap<String, FaultState>> {
        static R: OnceLock<Mutex<HashMap<String, FaultState>>> = OnceLock::new();
        R.get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn xorshift64star(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Arm `name` with the given firing mode, replacing any previous
    /// arming (and resetting its traversal/fired counts).
    pub fn arm(name: &str, mode: FireMode) {
        let mut r = registry();
        let seed = match mode {
            // xorshift needs a non-zero state; any other seed is used as-is
            // so distinct seeds give distinct streams.
            FireMode::Probability { seed: 0, .. } => 0x9E37_79B9_7F4A_7C15,
            FireMode::Probability { seed, .. } => seed,
            _ => 1,
        };
        if r.insert(
            name.to_string(),
            FaultState {
                mode,
                traversals: 0,
                fired: 0,
                rng: seed,
            },
        )
        .is_none()
        {
            ARMED.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Disarm `name`. Returns whether it was armed.
    pub fn disarm(name: &str) -> bool {
        let was = registry().remove(name).is_some();
        if was {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
        was
    }

    /// Disarm every fault and reset the injected delay to zero.
    pub fn disarm_all() {
        let mut r = registry();
        let n = r.len();
        r.clear();
        ARMED.fetch_sub(n, Ordering::SeqCst);
        super::delay::set_delay_micros(0);
    }

    /// Whether the fault `name` fires at this traversal. Counts the
    /// traversal when the fault is armed; unarmed processes take only a
    /// relaxed atomic load.
    pub fn should_fire(name: &str) -> bool {
        if ARMED.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let mut r = registry();
        let Some(s) = r.get_mut(name) else {
            return false;
        };
        s.traversals += 1;
        let fire = match s.mode {
            FireMode::Always => true,
            FireMode::Once => s.fired == 0,
            FireMode::Nth(n) => s.traversals == n,
            FireMode::Probability { millionths, .. } => {
                xorshift64star(&mut s.rng) % 1_000_000 < u64::from(millionths)
            }
        };
        if fire {
            s.fired += 1;
        }
        fire
    }

    /// How many times the armed fault `name` has been traversed (0 when
    /// not armed; counts reset on re-arm).
    pub fn traversals(name: &str) -> u64 {
        registry().get(name).map_or(0, |s| s.traversals)
    }

    /// How many times the armed fault `name` has fired.
    pub fn fired(name: &str) -> u64 {
        registry().get(name).map_or(0, |s| s.fired)
    }

    /// Whether any build up the feature chain armed live fault points.
    pub const fn is_enabled() -> bool {
        true
    }

    fn chaos_lock() -> MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        L.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Run `f` with the given faults armed, serialized against other
    /// [`with_armed`] callers (the registry is process-global, so chaos
    /// tests in one binary must not overlap), and disarm everything after
    /// — including on panic.
    pub fn with_armed<T>(faults: &[(&str, FireMode)], f: impl FnOnce() -> T) -> T {
        struct DisarmOnDrop;
        impl Drop for DisarmOnDrop {
            fn drop(&mut self) {
                disarm_all();
            }
        }
        let _serial = chaos_lock();
        let _cleanup = DisarmOnDrop;
        for &(name, mode) in faults {
            arm(name, mode);
        }
        f()
    }
}

#[cfg(not(feature = "enabled"))]
mod active {
    use super::FireMode;

    /// No-op: the fault stays a no-op in this build.
    #[inline(always)]
    pub fn arm(_name: &str, _mode: FireMode) {}

    /// No-op; never armed.
    #[inline(always)]
    pub fn disarm(_name: &str) -> bool {
        false
    }

    /// No-op.
    #[inline(always)]
    pub fn disarm_all() {}

    /// Never fires in this build.
    #[inline(always)]
    pub const fn should_fire(_name: &str) -> bool {
        false
    }

    /// Always 0 in this build.
    #[inline(always)]
    pub fn traversals(_name: &str) -> u64 {
        0
    }

    /// Always 0 in this build.
    #[inline(always)]
    pub fn fired(_name: &str) -> u64 {
        0
    }

    /// Whether any build up the feature chain armed live fault points.
    #[inline(always)]
    pub const fn is_enabled() -> bool {
        false
    }

    /// Runs `f` directly; nothing is armed in this build.
    #[inline(always)]
    pub fn with_armed<T>(_faults: &[(&str, FireMode)], f: impl FnOnce() -> T) -> T {
        f()
    }
}

pub use active::{arm, disarm, disarm_all, fired, is_enabled, should_fire, traversals, with_armed};

mod delay {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Microseconds a firing delay point sleeps. Process-global so one
    /// knob drives every armed `exec.delay.*` point; reset to 0 by
    /// `disarm_all` (and therefore by `with_armed`'s cleanup).
    static DELAY_MICROS: AtomicU64 = AtomicU64::new(0);

    /// Set how long a firing delay point sleeps, in microseconds.
    pub fn set_delay_micros(micros: u64) {
        DELAY_MICROS.store(micros, Ordering::SeqCst);
    }

    /// The currently configured delay in microseconds.
    pub fn delay_micros() -> u64 {
        DELAY_MICROS.load(Ordering::Relaxed)
    }
}

pub use delay::{delay_micros, set_delay_micros};

/// Traverse a latency fault point: when `name` is armed and fires, sleep
/// for the globally configured [`delay_micros`]. Unlike error-injecting
/// [`fault_point!`] sites, a delay point never alters control flow — it
/// only stretches the phase it guards, so chaos tests can force a
/// deadline to expire *inside* a chosen phase deterministically.
///
/// In the disabled build (and for unarmed points, and at the default
/// zero delay) this is a no-op.
#[inline]
pub fn delay_point(name: &str) {
    if should_fire(name) {
        let micros = delay_micros();
        if micros > 0 {
            std::thread::sleep(std::time::Duration::from_micros(micros));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;

        #[test]
        fn unarmed_points_never_fire() {
            with_armed(&[], || {
                assert!(!fault_point!(points::PLANNER_SEARCH));
                assert_eq!(traversals(points::PLANNER_SEARCH), 0);
            });
        }

        #[test]
        fn always_fires_and_counts() {
            with_armed(&[(points::COST_NAN, FireMode::Always)], || {
                assert!(should_fire(points::COST_NAN));
                assert!(should_fire(points::COST_NAN));
                assert_eq!(traversals(points::COST_NAN), 2);
                assert_eq!(fired(points::COST_NAN), 2);
                // A different point stays cold.
                assert!(!should_fire(points::CORE_ROUND_SORT));
            });
            assert!(!should_fire(points::COST_NAN), "disarmed after with_armed");
        }

        #[test]
        fn once_fires_exactly_once() {
            with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
                assert!(should_fire(points::SIMD_WORKER_PANIC));
                assert!(!should_fire(points::SIMD_WORKER_PANIC));
                assert!(!should_fire(points::SIMD_WORKER_PANIC));
                assert_eq!(fired(points::SIMD_WORKER_PANIC), 1);
                assert_eq!(traversals(points::SIMD_WORKER_PANIC), 3);
            });
        }

        #[test]
        fn nth_fires_on_exact_traversal() {
            with_armed(&[(points::CORE_ROUND_SORT, FireMode::Nth(3))], || {
                assert!(!should_fire(points::CORE_ROUND_SORT));
                assert!(!should_fire(points::CORE_ROUND_SORT));
                assert!(should_fire(points::CORE_ROUND_SORT));
                assert!(!should_fire(points::CORE_ROUND_SORT));
                assert_eq!(fired(points::CORE_ROUND_SORT), 1);
            });
        }

        #[test]
        fn probability_is_deterministic_per_seed() {
            let run = |seed: u64| -> Vec<bool> {
                with_armed(
                    &[(
                        points::PLANNER_STARVE,
                        FireMode::Probability {
                            millionths: 500_000,
                            seed,
                        },
                    )],
                    || {
                        (0..64)
                            .map(|_| should_fire(points::PLANNER_STARVE))
                            .collect()
                    },
                )
            };
            let a = run(42);
            let b = run(42);
            assert_eq!(a, b, "same seed, same decisions");
            assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
            let c = run(43);
            assert_ne!(a, c, "different seed, different stream");
        }

        #[test]
        fn disarm_on_panic_inside_with_armed() {
            let r = std::panic::catch_unwind(|| {
                with_armed(&[(points::COST_NAN, FireMode::Always)], || {
                    panic!("boom");
                })
            });
            assert!(r.is_err());
            assert!(!should_fire(points::COST_NAN), "cleanup ran despite panic");
        }

        #[test]
        fn rearm_resets_counts() {
            with_armed(&[(points::COST_NAN, FireMode::Always)], || {
                assert!(should_fire(points::COST_NAN));
                arm(points::COST_NAN, FireMode::Once);
                assert_eq!(traversals(points::COST_NAN), 0);
                assert!(should_fire(points::COST_NAN));
                assert!(!should_fire(points::COST_NAN));
            });
        }
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!is_enabled());
        arm(points::COST_NAN, FireMode::Always);
        assert!(!fault_point!(points::COST_NAN));
        assert_eq!(traversals(points::COST_NAN), 0);
        assert_eq!(fired(points::COST_NAN), 0);
        let ran = with_armed(&[(points::COST_NAN, FireMode::Always)], || {
            !should_fire(points::COST_NAN)
        });
        assert!(ran);
        disarm_all();
    }

    #[test]
    fn registry_lists_every_point() {
        assert_eq!(points::ALL.len(), 11);
        let mut sorted = points::ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), points::ALL.len(), "duplicate point names");
    }

    #[test]
    fn unarmed_delay_point_is_a_no_op() {
        // Regardless of build: nothing armed, nothing slept — and a
        // configured delay alone does not make unarmed points sleep.
        set_delay_micros(50_000);
        let t = std::time::Instant::now();
        delay_point(points::EXEC_DELAY_ROUND);
        assert!(t.elapsed() < std::time::Duration::from_millis(40));
        set_delay_micros(0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn armed_delay_point_sleeps_and_with_armed_resets_delay() {
        with_armed(&[(points::EXEC_DELAY_MERGE, FireMode::Always)], || {
            set_delay_micros(20_000);
            let t = std::time::Instant::now();
            delay_point(points::EXEC_DELAY_MERGE);
            assert!(
                t.elapsed() >= std::time::Duration::from_millis(15),
                "armed delay point must stretch the phase"
            );
            assert!(fired(points::EXEC_DELAY_MERGE) > 0);
        });
        assert_eq!(delay_micros(), 0, "disarm_all resets the delay");
    }
}
