//! # mcs-morsel
//!
//! A dependency-free work-stealing scheduler for morsel-driven
//! parallelism, after the worker-local, skew-resistant design of MPSM
//! (Albutiu et al., *Massively Parallel Sort-Merge Joins in Main Memory
//! Multi-Core Database Systems*, VLDB'12) and the morsel-driven execution
//! of HyPer (Leis et al., SIGMOD'14).
//!
//! The unit of work is a *morsel*: a small, fixed-size slice of the input
//! (a row range, or a span of whole groups). Workers are seeded with
//! contiguous morsel ranges — mirroring the static partitioning the
//! scheduler replaces, so a uniform workload runs with zero steals — and
//! each worker consumes its own deque LIFO (newest first, cache-warm).
//! A worker that runs dry *steals a chunk* (half the victim's deque, FIFO
//! side) from the first non-empty victim, so one straggling giant morsel
//! no longer leaves the other workers idle.
//!
//! The implementation is a lock-sharded deque — one `Mutex<VecDeque>`
//! per worker — rather than a lock-free Chase-Lev deque: morsels are
//! sized so that scheduling cost is amortized over thousands of rows,
//! correctness is pinned by tests, and the locks are uncontended except
//! at the steal points the design exists to create.
//!
//! ```
//! use mcs_morsel::MorselQueue;
//!
//! let mut q = MorselQueue::new(2);
//! q.seed_partitioned((0..8).collect());
//! let mut got = Vec::new();
//! while let Some((item, _stolen)) = q.pop(0) {
//!     got.push(item);
//! }
//! got.sort_unstable();
//! assert_eq!(got, (0..8).collect::<Vec<_>>());
//! assert_eq!(q.counts().dispatched, 8);
//! ```

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A row-range morsel: `len` rows starting at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row of the range.
    pub start: usize,
    /// Number of rows.
    pub len: usize,
}

impl Morsel {
    /// The range's one-past-the-end row.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Split `0..n` into row-range morsels of roughly `target` rows
/// (at least one morsel even for `n == 0`; the last may be short).
pub fn row_morsels(n: usize, target: usize) -> Vec<Morsel> {
    let target = target.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(target).max(1));
    let mut start = 0usize;
    loop {
        let len = target.min(n - start);
        out.push(Morsel { start, len });
        start += len;
        if start >= n {
            break;
        }
    }
    out
}

/// Scheduler counters, harvested with [`MorselQueue::counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MorselCounts {
    /// Morsels handed to workers for execution (own-deque pops *and*
    /// steals; every executed morsel counts exactly once).
    pub dispatched: u64,
    /// Morsels that migrated to another worker via a steal. Chunked
    /// steals count every transferred morsel, executed or re-stolen.
    pub stolen: u64,
    /// Oversized work items the caller split into multiple morsels
    /// (counted by the caller via [`MorselQueue::note_split`]).
    pub split: u64,
}

impl MorselCounts {
    /// Accumulate `other` into `self`.
    pub fn add(&mut self, other: MorselCounts) {
        self.dispatched += other.dispatched;
        self.stolen += other.stolen;
        self.split += other.split;
    }

    /// Whether any work was scheduled.
    pub fn is_empty(&self) -> bool {
        self.dispatched == 0 && self.stolen == 0 && self.split == 0
    }
}

/// A work-stealing queue of morsels over `W` workers.
///
/// Usage contract: seed every morsel (with [`MorselQueue::seed_partitioned`]
/// or [`MorselQueue::push`]) *before* workers start popping — the queue
/// distributes a fixed batch of work; it is not a producer/consumer
/// channel. [`MorselQueue::pop`] returning `None` then means the batch is
/// globally exhausted (every shard empty), so each worker simply loops
/// until `None`.
#[derive(Debug)]
pub struct MorselQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    dispatched: AtomicU64,
    stolen: AtomicU64,
    split: AtomicU64,
}

impl<T> MorselQueue<T> {
    /// A queue over `workers` worker deques (`workers >= 1` enforced).
    pub fn new(workers: usize) -> MorselQueue<T> {
        let workers = workers.max(1);
        MorselQueue {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            dispatched: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            split: AtomicU64::new(0),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// A poisoned shard only means another worker panicked mid-pop; the
    /// deque itself is always consistent, so keep scheduling (the caller
    /// surfaces the worker panic through its own join handling).
    fn lock(&self, w: usize) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.shards[w].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Seed `items` across the workers in contiguous ranges: item `i` of
    /// `m` goes to worker `i·W/m`. This mirrors the static partitioning
    /// the scheduler replaces — a balanced workload never steals — while
    /// skewed ranges get rebalanced by stealing.
    pub fn seed_partitioned(&mut self, items: Vec<T>) {
        let w = self.workers();
        let m = items.len();
        for (i, item) in items.into_iter().enumerate() {
            let shard = (i * w / m.max(1)).min(w - 1);
            self.lock(shard).push_back(item);
        }
    }

    /// Push one morsel onto `worker`'s deque (back side: the owner pops
    /// it next, LIFO).
    pub fn push(&self, worker: usize, item: T) {
        self.lock(worker).push_back(item);
    }

    /// Record that the caller split one oversized work item into
    /// multiple morsels.
    pub fn note_split(&self, items: u64) {
        self.split.fetch_add(items, Ordering::Relaxed);
    }

    /// Take the next morsel for `worker`: its own deque first (LIFO),
    /// then a chunked steal — half of the first non-empty victim's deque,
    /// FIFO side — with the surplus re-queued locally. Returns the morsel
    /// and whether it arrived via a steal; `None` means every deque is
    /// empty (the batch is exhausted — see the usage contract).
    pub fn pop(&self, worker: usize) -> Option<(T, bool)> {
        if let Some(item) = self.lock(worker).pop_back() {
            self.dispatched.fetch_add(1, Ordering::Relaxed);
            return Some((item, false));
        }
        let w = self.workers();
        for off in 1..w {
            let victim = (worker + off) % w;
            let batch = {
                let mut v = self.lock(victim);
                let k = v.len();
                if k == 0 {
                    continue;
                }
                // Chunked steal: take the older half so the victim keeps
                // its cache-warm LIFO end.
                let take = k.div_ceil(2);
                v.drain(..take).collect::<Vec<T>>()
            };
            self.stolen.fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.dispatched.fetch_add(1, Ordering::Relaxed);
            let mut it = batch.into_iter();
            let first = it.next().expect("stole a non-empty batch");
            let mut own = self.lock(worker);
            for item in it {
                own.push_back(item);
            }
            return Some((first, true));
        }
        None
    }

    /// Snapshot of the scheduler counters.
    pub fn counts(&self) -> MorselCounts {
        MorselCounts {
            dispatched: self.dispatched.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            split: self.split.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn row_morsels_cover_the_range_exactly() {
        for (n, target) in [
            (0usize, 7usize),
            (1, 7),
            (7, 7),
            (8, 7),
            (100, 7),
            (100, 1000),
        ] {
            let ms = row_morsels(n, target);
            assert!(!ms.is_empty());
            let mut at = 0usize;
            for m in &ms {
                assert_eq!(m.start, at, "n={n} target={target}");
                assert!(m.len <= target);
                at = m.end();
            }
            assert_eq!(at, n, "n={n} target={target}");
        }
    }

    #[test]
    fn owner_pops_lifo_stealer_takes_fifo_half() {
        let q: MorselQueue<u32> = MorselQueue::new(2);
        for v in [10u32, 11, 12, 13] {
            q.push(0, v);
        }
        // Owner: newest first.
        assert_eq!(q.pop(0), Some((13, false)));
        // Stealer: takes the older half (two of three → [10, 11]),
        // executes the first, keeps the rest locally.
        assert_eq!(q.pop(1), Some((10, true)));
        assert_eq!(q.pop(1), Some((11, false)));
        // The victim keeps its own remaining newest item.
        assert_eq!(q.pop(0), Some((12, false)));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), None);
        let c = q.counts();
        assert_eq!(c.dispatched, 4);
        assert_eq!(c.stolen, 2);
    }

    #[test]
    fn seeding_is_contiguous_range_partitioned() {
        let mut q: MorselQueue<usize> = MorselQueue::new(4);
        q.seed_partitioned((0..8).collect());
        // Worker 2 owns items 4 and 5; LIFO pops 5 first.
        assert_eq!(q.pop(2), Some((5, false)));
        assert_eq!(q.pop(2), Some((4, false)));
    }

    #[test]
    fn every_item_executes_exactly_once_under_concurrency() {
        let workers = 4usize;
        let items = 10_000usize;
        let q: MorselQueue<usize> = MorselQueue::new(workers);
        // Heavily skewed seeding: everything lands on worker 0.
        for i in 0..items {
            q.push(0, i);
        }
        let seen = Mutex::new(BTreeSet::new());
        std::thread::scope(|s| {
            for w in 0..workers {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    while let Some((item, _)) = q.pop(w) {
                        assert!(
                            seen.lock().unwrap().insert(item),
                            "item {item} executed twice"
                        );
                    }
                });
            }
        });
        assert_eq!(seen.lock().unwrap().len(), items);
        let c = q.counts();
        assert_eq!(c.dispatched, items as u64);
    }

    #[test]
    fn split_counter_is_caller_driven() {
        let q: MorselQueue<u32> = MorselQueue::new(1);
        q.note_split(3);
        assert_eq!(q.counts().split, 3);
        assert!(!q.counts().is_empty());
        assert!(MorselCounts::default().is_empty());
    }

    #[test]
    fn counts_accumulate() {
        let mut a = MorselCounts {
            dispatched: 1,
            stolen: 2,
            split: 3,
        };
        a.add(MorselCounts {
            dispatched: 10,
            stolen: 20,
            split: 30,
        });
        assert_eq!(
            a,
            MorselCounts {
                dispatched: 11,
                stolen: 22,
                split: 33,
            }
        );
    }

    #[test]
    fn empty_queue_pops_none_for_every_worker() {
        let q: MorselQueue<u8> = MorselQueue::new(3);
        for w in 0..3 {
            assert_eq!(q.pop(w), None);
        }
        assert_eq!(q.counts(), MorselCounts::default());
    }
}
