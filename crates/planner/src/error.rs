//! Typed failures of the plan search.

/// Why a plan search could not produce any result.
///
/// Note that deadline expiry is *not* an error: a timed-out search still
/// returns its incumbent (at worst `P_0`) with
/// [`SearchResult::timed_out`](crate::SearchResult::timed_out) set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchError {
    /// The sort instance has no key bits — nothing to plan for.
    EmptySortKey,
    /// [`offline_rho`](crate::offline_rho) was given an empty ρ ladder.
    EmptyRhoLadder,
    /// A fault-injection point fired (chaos testing only; carries the
    /// fault-point name).
    Injected(&'static str),
}

impl core::fmt::Display for SearchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SearchError::EmptySortKey => write!(f, "sort key has zero total width"),
            SearchError::EmptyRhoLadder => write!(f, "ρ calibration ladder is empty"),
            SearchError::Injected(name) => write!(f, "injected fault: {name}"),
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(SearchError::EmptySortKey.to_string().contains("zero"));
        assert!(SearchError::EmptyRhoLadder.to_string().contains("ladder"));
        assert!(SearchError::Injected("planner.search.fail")
            .to_string()
            .contains("planner.search.fail"));
    }
}
