//! The "perfect cost model" `A_i` (§6.1): exhaustively enumerate feasible
//! plans and *measure their actual execution times* on real data. Used to
//! compute the `rank` metric of Table 1 and the Figure 7 scatter.
//!
//! The full space is `2^{W-1}` compositions; the paper notes that
//! obtaining the `A_i`'s "took us weeks". We bound the enumeration by a
//! round cap and a plan cap so a ranking run stays laptop-scale — the
//! caps are reported alongside results.

use std::time::Instant;

use mcs_columnar::CodeVec;
use mcs_core::{multi_column_sort, ExecConfig, MassagePlan, SortError, SortSpec};

use crate::space::enumerate_compositions;

/// A plan together with its measured execution time.
#[derive(Debug, Clone)]
pub struct MeasuredPlan {
    /// The plan.
    pub plan: MassagePlan,
    /// Measured wall-clock of the multi-column sort (ns).
    pub actual_ns: u64,
}

/// Options for exhaustive measurement.
#[derive(Debug, Clone)]
pub struct ExhaustiveOptions {
    /// Maximum rounds to enumerate (default: 4 — optima in the paper's
    /// workloads always have few rounds).
    pub max_rounds: u32,
    /// Hard cap on the number of plans to execute.
    pub max_plans: usize,
    /// Repetitions per plan (median taken).
    pub repeats: usize,
    /// Execution configuration.
    pub exec: ExecConfig,
}

impl Default for ExhaustiveOptions {
    fn default() -> Self {
        ExhaustiveOptions {
            max_rounds: 4,
            max_plans: 3000,
            repeats: 1,
            exec: ExecConfig::default(),
        }
    }
}

/// Enumerate (capped) feasible plans for the key width of `specs` and
/// execute each on the given columns, returning plans with measured
/// times, **sorted fastest-first**. Plans whose execution fails (which
/// only happens on malformed inputs or under fault injection) are
/// skipped rather than aborting the whole enumeration.
pub fn measure_all_plans(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    opts: &ExhaustiveOptions,
) -> Vec<MeasuredPlan> {
    let total: u32 = specs.iter().map(|s| s.width).sum();
    // Enumerate generously, then stride-sample down to the execution cap
    // so the sample spans the whole space instead of its lexicographic
    // prefix.
    let all = enumerate_compositions(total, opts.max_rounds, opts.max_plans.saturating_mul(64));
    let plans: Vec<MassagePlan> = if all.len() > opts.max_plans {
        let stride = all.len() as f64 / opts.max_plans as f64;
        (0..opts.max_plans)
            .map(|i| all[(i as f64 * stride) as usize].clone())
            .collect()
    } else {
        all
    };
    let mut out: Vec<MeasuredPlan> = plans
        .into_iter()
        .filter_map(|plan| {
            let actual_ns = measure_plan(inputs, specs, &plan, opts).ok()?;
            Some(MeasuredPlan { plan, actual_ns })
        })
        .collect();
    out.sort_by_key(|m| m.actual_ns);
    out
}

/// The rank (1-based) of `plan` within `measured` (fastest = 1). Plans
/// not present rank after everything.
pub fn rank_of(plan: &MassagePlan, measured: &[MeasuredPlan]) -> usize {
    measured
        .iter()
        .position(|m| m.plan == *plan)
        .map(|p| p + 1)
        .unwrap_or(measured.len() + 1)
}

/// Measure one plan's actual execution time (same protocol as
/// [`measure_all_plans`]), propagating execution failures instead of
/// panicking.
pub fn measure_plan(
    inputs: &[&CodeVec],
    specs: &[SortSpec],
    plan: &MassagePlan,
    opts: &ExhaustiveOptions,
) -> Result<u64, SortError> {
    let mut best = u64::MAX;
    for _ in 0..opts.repeats.max(1) {
        let t = Instant::now();
        let r = multi_column_sort(inputs, specs, plan, &opts.exec)?;
        let ns = t.elapsed().as_nanos() as u64;
        std::hint::black_box(&r.oids);
        best = best.min(ns);
    }
    Ok(best)
}

/// Rank a plan by its own measured time within a measured population:
/// `1 + |{plans strictly faster}|`. Robust to the plan not being part of
/// the (possibly sampled) population.
pub fn rank_by_time(actual_ns: u64, measured: &[MeasuredPlan]) -> usize {
    measured.partition_point(|m| m.actual_ns < actual_ns) + 1
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_ranks() {
        let n = 2000usize;
        let a = CodeVec::from_u64s(5, (0..n).map(|i| (i % 32) as u64));
        let b = CodeVec::from_u64s(4, (0..n).map(|i| (i % 16) as u64));
        let specs = vec![SortSpec::asc(5), SortSpec::asc(4)];
        let opts = ExhaustiveOptions {
            max_rounds: 3,
            max_plans: 500,
            ..Default::default()
        };
        let measured = measure_all_plans(&[&a, &b], &specs, &opts);
        // Compositions of 9 into <=3 parts: C(8,0)+C(8,1)+C(8,2) = 37.
        assert_eq!(measured.len(), 37);
        assert!(measured
            .windows(2)
            .all(|w| w[0].actual_ns <= w[1].actual_ns));
        let p0 = MassagePlan::column_at_a_time(&specs);
        let r = rank_of(&p0, &measured);
        assert!((1..=37).contains(&r));
        let missing = MassagePlan::from_widths(&[1; 9]);
        assert_eq!(rank_of(&missing, &measured), 38);
    }
}
