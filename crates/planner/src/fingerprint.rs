//! Plan fingerprints: the cache key of the engine's session-level plan
//! cache.
//!
//! Running ROGA on every query is Table 2's per-query search cost; under
//! repeated query shapes over slowly-changing tables that work is pure
//! waste. A [`PlanFingerprint`] summarizes everything the plan search
//! actually *consumes* from a [`SortInstance`] — the sort-key widths and
//! ASC/DESC shape, whether the final grouping is needed, whether the
//! column order is free to permute, the row count, and the per-column
//! statistics — so two instances with equal fingerprints are, to the
//! planner, the same problem and can share one cached plan.
//!
//! The continuous inputs are **quantized**: the row count to its power of
//! two, the statistics through
//! [`KeyColumnStats::signature`](mcs_cost::KeyColumnStats::signature) (√2×-bucketed
//! NDV plus a histogram-occupancy mask). Quantization is also the cache's
//! invalidation rule: while a table's statistics drift within a bucket the
//! fingerprint — and the cached plan — keep matching, and once drift
//! crosses a bucket boundary (≈2× rows, ≈√2× NDV, data moving between
//! histogram regions) the fingerprint changes, the lookup misses, and a
//! fresh search replaces the stale entry.

use mcs_cost::SortInstance;

/// The quantized identity of a plan-search problem.
///
/// Equal fingerprints ⇒ the plan search would be given equivalent inputs,
/// so its result can be reused. See the module docs for what is exact and
/// what is bucketed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanFingerprint {
    /// Per sort column, in query order: `(width, descending, stats
    /// signature)`. Widths and directions are exact — a plan is only
    /// valid for its exact key shape; the statistics are quantized.
    columns: Vec<(u32, bool, u64)>,
    /// `floor(log2(rows))` (`0` for an empty instance): a cached plan
    /// survives row-count drift up to 2×.
    rows_bucket: u32,
    /// Whether the final grouping must be produced (changes the cost of
    /// the last round's boundary scan, so it is part of the problem).
    want_final_groups: bool,
    /// Whether the search was free to permute the column order (GROUP BY)
    /// or had to preserve it (ORDER BY). A permuted plan must never be
    /// served to an order-constrained query.
    order_free: bool,
}

impl PlanFingerprint {
    /// Fingerprint `inst` as the plan search would see it.
    pub fn of(inst: &SortInstance, order_free: bool) -> PlanFingerprint {
        let columns = inst
            .specs
            .iter()
            .zip(&inst.stats)
            .map(|(spec, stats)| (spec.width, spec.descending, stats.signature()))
            .collect();
        PlanFingerprint {
            columns,
            rows_bucket: (inst.rows.max(1) as u64).ilog2(),
            want_final_groups: inst.want_final_groups,
            order_free,
        }
    }

    /// Number of sort columns the fingerprinted instance had.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mcs_core::SortSpec;
    use mcs_cost::KeyColumnStats;

    fn inst(rows: usize, widths_ndv: &[(u32, f64)]) -> SortInstance {
        SortInstance::uniform(rows, widths_ndv)
    }

    #[test]
    fn equal_instances_share_a_fingerprint() {
        let a = inst(1 << 20, &[(10, 1024.0), (17, 8192.0)]);
        let b = inst(1 << 20, &[(10, 1024.0), (17, 8192.0)]);
        assert_eq!(PlanFingerprint::of(&a, true), PlanFingerprint::of(&b, true));
    }

    #[test]
    fn small_drift_matches_large_drift_misses() {
        let base = PlanFingerprint::of(&inst(1_100_000, &[(17, 900.0)]), true);
        // Rows within the same power of two, NDV within its half-octave
        // bucket: same key.
        assert_eq!(
            base,
            PlanFingerprint::of(&inst(1_900_000, &[(17, 1000.0)]), true)
        );
        // Rows doubling crosses the bucket.
        assert_ne!(
            base,
            PlanFingerprint::of(&inst(2_200_000, &[(17, 900.0)]), true)
        );
        // NDV drifting far past √2× crosses its bucket.
        assert_ne!(
            base,
            PlanFingerprint::of(&inst(1_100_000, &[(17, 4000.0)]), true)
        );
    }

    #[test]
    fn shape_flags_and_direction_are_exact() {
        let i = inst(4096, &[(10, 100.0), (17, 500.0)]);
        let base = PlanFingerprint::of(&i, true);
        assert_ne!(base, PlanFingerprint::of(&i, false), "order_free differs");
        let mut grouped_off = i.clone();
        grouped_off.want_final_groups = false;
        assert_ne!(base, PlanFingerprint::of(&grouped_off, true));
        let mut desc = i.clone();
        desc.specs[1] = SortSpec {
            width: 17,
            descending: true,
        };
        assert_ne!(base, PlanFingerprint::of(&desc, true), "ASC/DESC differs");
        let narrower = inst(4096, &[(10, 100.0), (16, 500.0)]);
        assert_ne!(base, PlanFingerprint::of(&narrower, true), "width differs");
        assert_eq!(base.num_columns(), 2);
    }

    #[test]
    fn usable_as_a_hash_map_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        let i = inst(4096, &[(10, 100.0)]);
        m.insert(PlanFingerprint::of(&i, true), 7u32);
        assert_eq!(m.get(&PlanFingerprint::of(&i, true)), Some(&7));
        // A KeyColumnStats change that survives quantization still hits.
        let mut j = i.clone();
        j.stats[0] = KeyColumnStats::uniform(10, 105.0);
        assert_eq!(m.get(&PlanFingerprint::of(&j, true)), Some(&7));
    }

    #[test]
    fn empty_and_tiny_instances_do_not_panic() {
        let empty = SortInstance {
            rows: 0,
            specs: vec![],
            stats: vec![],
            want_final_groups: false,
        };
        let fp = PlanFingerprint::of(&empty, false);
        assert_eq!(fp.num_columns(), 0);
        let one = inst(1, &[(1, 1.0)]);
        let _ = PlanFingerprint::of(&one, false);
    }
}
