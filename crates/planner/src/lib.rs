//! # mcs-planner
//!
//! Plan search for code massaging (§5 of the SIGMOD'16 paper):
//!
//! * [`roga`] — the paper's **ro**und-based **g**reedy **a**lgorithm
//!   (Algorithm 1): round-count by round-count, valid bank combinations,
//!   exhaustive width assignment for `k ≤ 2`, greedy `T_sort^{j+1}`-
//!   minimizing assignment for `k ≥ 3`, under the time threshold `ρ`;
//! * [`rrs`] — the recursive-random-search baseline of §6.1;
//! * [`measure_all_plans`] — the exhaustive, actually-executed "perfect
//!   model" `A_i` used to compute plan ranks (Table 1, Figure 7);
//! * [`space`] — plan-space combinatorics, including the Lemma 2 round
//!   bound and Property-1 bank-combination pruning.
//!
//! ```
//! use mcs_cost::{CostModel, SortInstance};
//! use mcs_planner::{roga, RogaOptions};
//!
//! let inst = SortInstance::uniform(1 << 24, &[(17, 8192.0), (33, 8192.0)]);
//! let model = CostModel::with_defaults();
//! let found = roga(&inst, &model, &RogaOptions::default()).expect("non-empty sort key");
//! // The search never does worse than column-at-a-time.
//! assert!(found.est_cost <= model.t_mcs(&inst, &inst.p0()));
//! ```

#![warn(missing_docs)]
// Library code must surface failures as typed errors, never panic on a
// recoverable path. Test modules opt back in with `#[allow]`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod error;
mod exhaustive;
mod fingerprint;
mod rho_auto;
mod roga;
mod rrs;
pub mod space;

pub use error::SearchError;
pub use exhaustive::{
    measure_all_plans, measure_plan, rank_by_time, rank_of, ExhaustiveOptions, MeasuredPlan,
};
pub use fingerprint::PlanFingerprint;
pub use rho_auto::{offline_rho, online_roga, RHO_LADDER};
pub use roga::{permute_instance, roga, RogaOptions, SearchResult};
pub use rrs::{rrs, RrsOptions};
pub use space::{bank_combos, enumerate_compositions, max_rounds, permutations, width_assignments};
