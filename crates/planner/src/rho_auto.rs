//! Automatic selection of the time threshold ρ — the two approaches the
//! paper sketches as future work in Appendix C, implemented.
//!
//! * [`offline_rho`] — run the search over a set of sample queries with a
//!   ladder of ρ values (cost-model only, no execution) and return the
//!   smallest ρ at which every query already reaches the best plan it
//!   would reach at the loosest ρ.
//! * [`online_roga`] — start at a low watermark ρ and double it while the
//!   incumbent plan keeps improving, capped at a high watermark.

use mcs_cost::{CostModel, SortInstance};
use mcs_telemetry as telemetry;

use crate::error::SearchError;
use crate::roga::{roga, RogaOptions, SearchResult};

/// The ρ ladder of Appendix C: from "very stringent" to "very loose".
pub const RHO_LADDER: [f64; 6] = [0.0001, 0.0005, 0.001, 0.005, 0.01, 0.1];

/// Offline calibration: the smallest ρ from `ladder` that lets *every*
/// sample query reach the same estimated plan cost it reaches at the
/// largest ρ. Only the cost model is invoked — "the process is fast and
/// incurs very little overhead" (App. C).
///
/// Fails with [`SearchError::EmptyRhoLadder`] on an empty ladder (there
/// is no ρ to return) and propagates search failures on the samples.
pub fn offline_rho(
    samples: &[SortInstance],
    model: &CostModel,
    ladder: &[f64],
    permute_columns: bool,
) -> Result<f64, SearchError> {
    let mut sorted = ladder.to_vec();
    sorted.sort_by(f64::total_cmp);
    let Some(&loosest) = sorted.last() else {
        return Err(SearchError::EmptyRhoLadder);
    };

    // Best reachable cost per query at the loosest setting.
    let mut targets: Vec<f64> = Vec::with_capacity(samples.len());
    for inst in samples {
        let r = roga(
            inst,
            model,
            &RogaOptions {
                rho: Some(loosest),
                permute_columns,
            },
        )?;
        targets.push(r.est_cost);
    }

    for &rho in &sorted {
        let mut ok = true;
        for (inst, &target) in samples.iter().zip(&targets) {
            let r = roga(
                inst,
                model,
                &RogaOptions {
                    rho: Some(rho),
                    permute_columns,
                },
            )?;
            if r.est_cost > target * 1.0001 {
                ok = false;
                break;
            }
        }
        if ok {
            return Ok(rho);
        }
    }
    Ok(loosest)
}

/// Online calibration: run ROGA at `rho_low`; while the search hit its
/// deadline *and* the last doubling improved the plan, double ρ — capped
/// at `rho_high` (App. C's low/high watermarks, e.g. 0.01 % and 10 %).
///
/// A doubling whose search was *starved* — the deadline fired before it
/// could cost more than a handful of plans — carries no no-improvement
/// signal (on a slow or loaded machine the low watermark can be a
/// few microseconds), so it never stops the doubling on its own.
pub fn online_roga(
    inst: &SortInstance,
    model: &CostModel,
    rho_low: f64,
    rho_high: f64,
    permute_columns: bool,
) -> Result<(SearchResult, f64), SearchError> {
    let mut rho = rho_low;
    let mut best = roga(
        inst,
        model,
        &RogaOptions {
            rho: Some(rho),
            permute_columns,
        },
    )?;
    record_ladder_step(0, rho, &best, false);
    let mut step = 0usize;
    while best.timed_out && rho < rho_high {
        let next_rho = (rho * 2.0).min(rho_high);
        let r = roga(
            inst,
            model,
            &RogaOptions {
                rho: Some(next_rho),
                permute_columns,
            },
        )?;
        let improved = r.est_cost < best.est_cost * 0.9999;
        let finished = !r.timed_out;
        let starved = r.timed_out && r.plans_costed < 64;
        step += 1;
        record_ladder_step(step, next_rho, &r, starved);
        if r.est_cost <= best.est_cost {
            best = r;
        }
        rho = next_rho;
        if finished || (!improved && !starved) {
            break;
        }
    }
    Ok((best, rho))
}

/// One `planner.roga.ladder` span per doubling of the online search,
/// carrying the ρ tried, the plans costed within its deadline, and
/// whether the step was starved.
fn record_ladder_step(step: usize, rho: f64, r: &SearchResult, starved: bool) {
    if telemetry::is_enabled() {
        telemetry::record_span(
            "planner.roga.ladder",
            r.elapsed.as_nanos() as u64,
            vec![
                ("step", step.into()),
                ("rho", rho.into()),
                ("plans_costed", r.plans_costed.into()),
                ("est_cost_ns", r.est_cost.into()),
                ("timed_out", r.timed_out.into()),
                ("starved", starved.into()),
            ],
        );
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mcs_cost::CostModel;

    fn samples() -> Vec<SortInstance> {
        vec![
            SortInstance::uniform(1 << 20, &[(10, 1024.0), (17, 8192.0)]),
            SortInstance::uniform(1 << 20, &[(17, 8192.0), (33, 8192.0)]),
            SortInstance::uniform(1 << 18, &[(5, 25.0), (8, 150.0), (6, 50.0)]),
        ]
    }

    #[test]
    fn offline_returns_ladder_member() {
        let model = CostModel::with_defaults();
        let rho = offline_rho(&samples(), &model, &RHO_LADDER, false).expect("non-empty ladder");
        assert!(RHO_LADDER.contains(&rho));
        // Small instances finish fast, so even a small rho suffices.
        assert!(rho <= 0.1);
    }

    #[test]
    fn empty_ladder_is_a_typed_error() {
        let model = CostModel::with_defaults();
        let r = offline_rho(&samples(), &model, &[], false);
        assert_eq!(r, Err(SearchError::EmptyRhoLadder));
    }

    #[test]
    fn online_matches_unbounded_quality_on_small_spaces() {
        let model = CostModel::with_defaults();
        for inst in samples() {
            let (r, final_rho) =
                online_roga(&inst, &model, 0.0001, 0.1, false).expect("non-empty key");
            let unbounded = roga(
                &inst,
                &model,
                &RogaOptions {
                    rho: None,
                    permute_columns: false,
                },
            )
            .expect("non-empty key");
            assert!(
                r.est_cost <= unbounded.est_cost * 1.2,
                "online {} vs unbounded {}",
                r.est_cost,
                unbounded.est_cost
            );
            assert!(final_rho <= 0.1);
        }
    }
}
