//! ROGA — the round-based greedy plan search algorithm (Algorithm 1).
//!
//! Candidate plans are explored round-count by round-count (`k = 1, 2, …`
//! up to the Lemma-2 bound). Within each `k`, every valid bank
//! combination spans a subspace; for `k ≤ 2` all canonical width
//! assignments are costed exhaustively (as in the paper's walkthrough),
//! while for `k ≥ 3` bits are assigned greedily: `a_j` is chosen to
//! minimize the estimated sorting cost of round `j+1`. A stopwatch
//! enforces the time threshold `ρ`: search stops once the elapsed time
//! exceeds `ρ · T_mcs(P*)` of the best plan found so far.

use std::time::Instant;

use mcs_core::{Bank, MassagePlan, Round};
use mcs_cost::{CostModel, SortInstance};
use mcs_telemetry as telemetry;

use crate::error::SearchError;
use crate::space::{bank_combos, max_rounds, permutations, width_assignments};

/// Options of the plan search.
#[derive(Debug, Clone)]
pub struct RogaOptions {
    /// Time threshold `ρ` as a fraction of the best plan's estimated
    /// execution time (paper default 0.1 % = `0.001`). `None` disables
    /// the deadline (the paper's "N/S").
    pub rho: Option<f64>,
    /// Explore column permutations (GROUP BY / PARTITION BY semantics —
    /// the sorting sequence among columns is free; `m!` larger space).
    pub permute_columns: bool,
}

impl Default for RogaOptions {
    fn default() -> Self {
        RogaOptions {
            rho: Some(0.001),
            permute_columns: false,
        }
    }
}

/// Outcome of a plan search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The chosen plan.
    pub plan: MassagePlan,
    /// Column order the plan applies to (identity unless
    /// `permute_columns` found a better order).
    pub column_order: Vec<usize>,
    /// Estimated cost `T_mcs` of the chosen plan (ns).
    pub est_cost: f64,
    /// Number of complete plans costed.
    pub plans_costed: usize,
    /// Wall-clock time of the search.
    pub elapsed: std::time::Duration,
    /// Whether the `ρ` deadline fired before the space was exhausted.
    pub timed_out: bool,
}

/// Apply a column order to an instance.
pub fn permute_instance(inst: &SortInstance, order: &[usize]) -> SortInstance {
    SortInstance {
        rows: inst.rows,
        specs: order.iter().map(|&i| inst.specs[i]).collect(),
        stats: order.iter().map(|&i| inst.stats[i].clone()).collect(),
        want_final_groups: inst.want_final_groups,
    }
}

/// Run ROGA on `inst` with `model`.
///
/// Fails with [`SearchError::EmptySortKey`] on a zero-width instance
/// (there is nothing to plan); a fired deadline is *not* an error — the
/// incumbent (at worst `P_0`) is returned with `timed_out` set.
pub fn roga(
    inst: &SortInstance,
    model: &CostModel,
    opts: &RogaOptions,
) -> Result<SearchResult, SearchError> {
    let w = inst.total_width();
    if w == 0 {
        return Err(SearchError::EmptySortKey);
    }
    let start = Instant::now();
    if mcs_faults::fault_point!(mcs_faults::points::PLANNER_SEARCH) {
        return Err(SearchError::Injected(mcs_faults::points::PLANNER_SEARCH));
    }
    if mcs_faults::fault_point!(mcs_faults::points::PLANNER_STARVE) {
        // Simulated total starvation: the deadline fired before even P0
        // could be costed. The plan is still valid (Lemma 1), but the
        // caller gets no usable estimate and should degrade.
        return Ok(SearchResult {
            plan: inst.p0(),
            column_order: (0..inst.specs.len()).collect(),
            est_cost: f64::INFINITY,
            plans_costed: 0,
            elapsed: start.elapsed(),
            timed_out: true,
        });
    }

    let orders: Vec<Vec<usize>> = if opts.permute_columns {
        permutations(inst.specs.len())
    } else {
        vec![(0..inst.specs.len()).collect()]
    };

    // Initialize the global optimum with P0 on the given order.
    let mut best_plan = inst.p0();
    let mut best_cost = model.t_mcs(inst, &best_plan);
    let mut best_order: Vec<usize> = (0..inst.specs.len()).collect();
    let mut plans_costed = 1usize;
    let mut timed_out = false;

    let k_max = max_rounds(w, Bank::B16.bits());

    'outer: for order in &orders {
        let pinst = permute_instance(inst, order);
        for k in 1..=k_max {
            for combo in bank_combos(w, k) {
                if let Some(rho) = opts.rho {
                    if start.elapsed().as_nanos() as f64 > rho * best_cost {
                        timed_out = true;
                        break 'outer;
                    }
                }
                if k <= 2 {
                    // Exhaustive within the combo (paper's k=1,2 treatment).
                    for widths in width_assignments(w, &combo) {
                        let plan = MassagePlan::new(
                            widths
                                .iter()
                                .zip(&combo)
                                .map(|(&width, &bank)| Round { width, bank })
                                .collect(),
                        );
                        let cost = model.t_mcs(&pinst, &plan);
                        plans_costed += 1;
                        if cost < best_cost {
                            best_cost = cost;
                            best_plan = plan;
                            best_order = order.clone();
                        }
                    }
                } else if let Some(plan) = greedy_assign(&pinst, model, w, &combo) {
                    let cost = model.t_mcs(&pinst, &plan);
                    plans_costed += 1;
                    if cost < best_cost {
                        best_cost = cost;
                        best_plan = plan;
                        best_order = order.clone();
                    }
                }
            }
        }
    }

    if telemetry::is_enabled() {
        telemetry::record_span(
            "planner.roga",
            start.elapsed().as_nanos() as u64,
            vec![
                ("plans_costed", plans_costed.into()),
                ("est_cost_ns", best_cost.into()),
                ("timed_out", timed_out.into()),
                ("plan", best_plan.notation().into()),
            ],
        );
        telemetry::counter_add("planner.plans_costed", plans_costed as u64);
        if timed_out {
            telemetry::counter_add("planner.deadline_hits", 1);
        }
    }
    Ok(SearchResult {
        plan: best_plan,
        column_order: best_order,
        est_cost: best_cost,
        plans_costed,
        elapsed: start.elapsed(),
        timed_out,
    })
}

/// Greedy width assignment for a `k ≥ 3` bank combo (Algorithm 1 lines
/// 9–16): pick `a_j` minimizing the estimated `T_sort^{j+1}`, honoring
/// feasibility (enough capacity must remain for the later rounds, and
/// every later round needs ≥ 1 bit). Returns `None` if the combo admits
/// no canonical assignment on this instance.
fn greedy_assign(
    inst: &SortInstance,
    model: &CostModel,
    total_width: u32,
    combo: &[Bank],
) -> Option<MassagePlan> {
    let k = combo.len();
    let mut widths: Vec<u32> = Vec::with_capacity(k);
    let mut assigned = 0u32;
    for j in 0..k - 1 {
        let b = combo[j];
        let cap_rest: u32 = combo[j + 1..].iter().map(|x| x.bits()).sum();
        let rounds_rest = (k - 1 - j) as u32;
        let left = total_width - assigned;
        let lo_bank = match b {
            Bank::B16 => 1,
            Bank::B32 => 17,
            Bank::B64 => 33,
        };
        let min_a = lo_bank.max(left.saturating_sub(cap_rest)).max(1);
        let max_a = b.bits().min(left.saturating_sub(rounds_rest));
        if min_a > max_a {
            return None;
        }
        let mut best_a = min_a;
        let mut best_t = f64::INFINITY;
        for a in min_a..=max_a {
            let t = model.t_sort_after_prefix(inst, assigned + a, combo[j + 1]);
            if t < best_t {
                best_t = t;
                best_a = a;
            }
        }
        widths.push(best_a);
        assigned += best_a;
    }
    // Remaining bits to the last round (line 16).
    let last = total_width - assigned;
    let b_last = *combo.last()?;
    if last == 0 || last > b_last.bits() || Bank::min_for_width(last) != b_last {
        return None;
    }
    widths.push(last);
    Some(MassagePlan::new(
        widths
            .iter()
            .zip(combo)
            .map(|(&width, &bank)| Round { width, bank })
            .collect(),
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mcs_cost::CostModel;

    fn model() -> CostModel {
        CostModel::with_defaults()
    }

    #[test]
    fn roga_finds_stitch_for_ex1() {
        // Ex1 (10+17 bits, 2^24 rows): the known-good plan is the 27-bit
        // stitch; ROGA must return something at least as cheap as both the
        // stitch and P0.
        let inst = SortInstance::uniform(1 << 24, &[(10, 1024.0), (17, 8192.0)]);
        let m = model();
        let r = roga(&inst, &m, &RogaOptions::default()).expect("non-empty key");
        let stitch = MassagePlan::from_widths(&[27]);
        assert!(r.est_cost <= m.t_mcs(&inst, &stitch) + 1.0);
        assert!(r.est_cost <= m.t_mcs(&inst, &inst.p0()) + 1.0);
        assert!(r.plans_costed > 1);
    }

    #[test]
    fn roga_beats_p0_on_ex3() {
        // Ex3 (17+33): the optimum P_<<1 = {18/[32], 32/[32]}.
        let inst = SortInstance::uniform(1 << 24, &[(17, 8192.0), (33, 8192.0)]);
        let m = model();
        let r = roga(&inst, &m, &RogaOptions::default()).expect("non-empty key");
        let p_ll1 = MassagePlan::from_widths(&[18, 32]);
        assert!(
            r.est_cost <= m.t_mcs(&inst, &p_ll1) + 1.0,
            "roga {} ({}) vs P<<1 {}",
            r.est_cost,
            r.plan,
            m.t_mcs(&inst, &p_ll1)
        );
    }

    #[test]
    fn roga_never_worse_than_p0() {
        let m = model();
        for (rows, cols) in [
            (1usize << 20, vec![(12u32, 4096.0), (17, 131072.0)]),
            (1 << 18, vec![(48, 8192.0), (48, 8192.0)]),
            (1 << 16, vec![(7, 100.0), (9, 400.0), (30, 1e6)]),
            (1 << 14, vec![(64, 1e4)]),
        ] {
            let inst = SortInstance::uniform(rows, &cols);
            let r = roga(&inst, &m, &RogaOptions::default()).expect("non-empty key");
            assert!(r.est_cost <= m.t_mcs(&inst, &inst.p0()) + 1.0);
            assert!(r.plan.validate(inst.total_width()).is_ok());
        }
    }

    #[test]
    fn group_by_permutations_help() {
        // Low-NDV column second: for GROUP BY, putting it first can shrink
        // round-2 work. With permutations allowed the result can only be
        // at least as good.
        let inst = SortInstance::uniform(1 << 20, &[(30, 1e6), (4, 16.0)]);
        let m = model();
        let fixed = roga(
            &inst,
            &m,
            &RogaOptions {
                permute_columns: false,
                ..Default::default()
            },
        )
        .expect("non-empty key");
        let free = roga(
            &inst,
            &m,
            &RogaOptions {
                permute_columns: true,
                rho: None,
            },
        )
        .expect("non-empty key");
        assert!(free.est_cost <= fixed.est_cost + 1.0);
    }

    #[test]
    fn rho_deadline_fires_on_wide_keys() {
        // A very wide key (many columns) with a tiny rho must time out.
        let cols: Vec<(u32, f64)> = (0..7).map(|_| (20u32, 1e5)).collect();
        let inst = SortInstance::uniform(1 << 22, &cols);
        let m = model();
        let r = roga(
            &inst,
            &m,
            &RogaOptions {
                rho: Some(1e-9),
                permute_columns: false,
            },
        )
        .expect("non-empty key");
        assert!(r.timed_out);
        // Still returns a valid plan (at worst P0).
        assert!(r.plan.validate(inst.total_width()).is_ok());
    }

    #[test]
    fn empty_sort_key_is_a_typed_error() {
        let inst = SortInstance::uniform(1 << 10, &[]);
        let r = roga(&inst, &model(), &RogaOptions::default()).map(|r| r.plans_costed);
        assert_eq!(r, Err(SearchError::EmptySortKey));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_search_failure_and_starvation() {
        use mcs_faults::{points, with_armed, FireMode};
        let inst = SortInstance::uniform(1 << 20, &[(10, 1024.0), (17, 8192.0)]);
        let m = model();

        with_armed(&[(points::PLANNER_SEARCH, FireMode::Always)], || {
            let r = roga(&inst, &m, &RogaOptions::default()).map(|r| r.plans_costed);
            assert_eq!(r, Err(SearchError::Injected(points::PLANNER_SEARCH)));
        });

        with_armed(&[(points::PLANNER_STARVE, FireMode::Always)], || {
            let r = roga(&inst, &m, &RogaOptions::default()).expect("starvation is not an error");
            assert!(r.timed_out);
            assert_eq!(r.plans_costed, 0);
            assert!(!r.est_cost.is_finite());
            // Lemma 1: the starved result still carries a valid plan.
            assert!(r.plan.validate(inst.total_width()).is_ok());
        });
    }

    #[test]
    fn greedy_assign_respects_bank_floors() {
        let inst = SortInstance::uniform(1 << 16, &[(20, 1e5), (20, 1e5), (19, 1e5)]);
        let m = model();
        let plan = greedy_assign(&inst, &m, 59, &[Bank::B32, Bank::B16, Bank::B32]);
        if let Some(p) = plan {
            assert!(p.validate(59).is_ok());
            assert_eq!(Bank::min_for_width(p.rounds[0].width), Bank::B32);
            assert_eq!(Bank::min_for_width(p.rounds[1].width), Bank::B16);
        }
    }
}
