//! RRS — recursive random search (Ye & Kalyanaraman [41]), the baseline
//! plan-search algorithm of §6.1.
//!
//! RRS treats plan search as black-box optimization over the composition
//! space: an *explore* phase samples random plans to find a promising
//! center; an *exploit* phase samples shrinking neighborhoods around the
//! incumbent, re-centering on improvement; when the neighborhood
//! collapses, exploration restarts. The same cost model prices samples,
//! and the search is stopped at the same wall-clock budget as ROGA (the
//! paper stops RRS "when ROGA stops").

use std::time::{Duration, Instant};

use mcs_core::MassagePlan;
use mcs_cost::{CostModel, SortInstance};
use mcs_test_support::Rng;

use crate::error::SearchError;
use crate::roga::{permute_instance, SearchResult};
use crate::space::{max_rounds, permutations};

/// RRS tuning.
#[derive(Debug, Clone)]
pub struct RrsOptions {
    /// Wall-clock budget; typically the `elapsed` of a ROGA run.
    pub budget: Duration,
    /// Samples per explore phase.
    pub explore_samples: usize,
    /// Samples per neighborhood level in the exploit phase.
    pub exploit_samples: usize,
    /// Explore column permutations (GROUP BY semantics).
    pub permute_columns: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RrsOptions {
    fn default() -> Self {
        RrsOptions {
            budget: Duration::from_millis(5),
            explore_samples: 40,
            exploit_samples: 12,
            permute_columns: false,
            seed: 0x5EED,
        }
    }
}

/// A random composition of `total` bits into at most `k_max` parts ≤ 64.
fn random_plan(rng: &mut Rng, total: u32, k_max: u32) -> MassagePlan {
    // Pick a round count biased toward few rounds (where optima live) —
    // but never below ⌈total/64⌉, which no composition can undercut —
    // then cut the key at k-1 random positions, rejecting cuts that leave
    // a part wider than a 64-bit bank. The round count is resampled on
    // every attempt so rejection always terminates.
    let k_min = total.div_ceil(64).max(1);
    let k_cap = k_max.min(total).max(k_min);
    let span = (k_cap - k_min).min(5);
    let widths = loop {
        let k = k_min + rng.gen_range(0..=span);
        let mut cuts: Vec<u32> = (0..k - 1).map(|_| rng.gen_range(1..total.max(2))).collect();
        cuts.push(0);
        cuts.push(total);
        cuts.sort_unstable();
        cuts.dedup();
        let ws: Vec<u32> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
        if !ws.is_empty() && ws.iter().all(|&w| (1..=64).contains(&w)) {
            break ws;
        }
    };
    MassagePlan::from_widths(&widths)
}

/// Perturb `plan` by moving one boundary by up to `delta` bits, or
/// merging/splitting a round.
fn neighbor(rng: &mut Rng, plan: &MassagePlan, total: u32, delta: u32) -> MassagePlan {
    let mut widths = plan.widths();
    let action = rng.gen_range(0..10u32);
    match action {
        0 if widths.len() >= 2 => {
            // Merge two adjacent rounds if the result fits a bank.
            let i = rng.gen_range(0..widths.len() - 1);
            if widths[i] + widths[i + 1] <= 64 {
                let w = widths.remove(i + 1);
                widths[i] += w;
            }
        }
        1 if widths.iter().any(|&w| w >= 2) => {
            // Split one round.
            let candidates: Vec<usize> = (0..widths.len()).filter(|&i| widths[i] >= 2).collect();
            let i = candidates[rng.gen_range(0..candidates.len())];
            let cut = rng.gen_range(1..widths[i]);
            let rest = widths[i] - cut;
            widths[i] = cut;
            widths.insert(i + 1, rest);
        }
        _ if widths.len() >= 2 => {
            // Shift a boundary by up to delta.
            let i = rng.gen_range(0..widths.len() - 1);
            let d = rng.gen_range(1..=delta.max(1));
            if rng.gen_bool(0.5) {
                // Move bits right -> left (grow round i).
                let d = d
                    .min(widths[i + 1].saturating_sub(1))
                    .min(64 - widths[i].min(64));
                widths[i] += d;
                widths[i + 1] -= d;
            } else {
                let d = d
                    .min(widths[i].saturating_sub(1))
                    .min(64 - widths[i + 1].min(64));
                widths[i] -= d;
                widths[i + 1] += d;
            }
        }
        _ => {}
    }
    debug_assert_eq!(widths.iter().sum::<u32>(), total);
    MassagePlan::from_widths(&widths)
}

/// Run RRS on `inst` under `opts.budget`.
///
/// Fails with [`SearchError::EmptySortKey`] on a zero-width instance;
/// budget expiry is the normal stopping rule, not an error.
pub fn rrs(
    inst: &SortInstance,
    model: &CostModel,
    opts: &RrsOptions,
) -> Result<SearchResult, SearchError> {
    let total = inst.total_width();
    if total == 0 {
        return Err(SearchError::EmptySortKey);
    }
    if mcs_faults::fault_point!(mcs_faults::points::PLANNER_SEARCH) {
        return Err(SearchError::Injected(mcs_faults::points::PLANNER_SEARCH));
    }
    let start = Instant::now();
    let mut rng = Rng::seed_from_u64(opts.seed);
    let k_max = max_rounds(total, 16);

    let orders: Vec<Vec<usize>> = if opts.permute_columns {
        permutations(inst.specs.len())
    } else {
        vec![(0..inst.specs.len()).collect()]
    };

    let mut best_plan = inst.p0();
    let mut best_cost = model.t_mcs(inst, &best_plan);
    let mut best_order: Vec<usize> = (0..inst.specs.len()).collect();
    let mut plans_costed = 1usize;

    'outer: while start.elapsed() < opts.budget {
        // Explore: random samples (random order when permuting).
        let order = &orders[rng.gen_range(0..orders.len())];
        let pinst = permute_instance(inst, order);
        let mut center = random_plan(&mut rng, total, k_max);
        let mut center_cost = model.t_mcs(&pinst, &center);
        plans_costed += 1;
        for _ in 0..opts.explore_samples {
            if start.elapsed() >= opts.budget {
                break 'outer;
            }
            let p = random_plan(&mut rng, total, k_max);
            let c = model.t_mcs(&pinst, &p);
            plans_costed += 1;
            if c < center_cost {
                center = p;
                center_cost = c;
            }
        }
        // Exploit: shrink neighborhood around the incumbent.
        let mut delta = (total / 2).max(1);
        while delta >= 1 {
            let mut improved = false;
            for _ in 0..opts.exploit_samples {
                if start.elapsed() >= opts.budget {
                    break;
                }
                let p = neighbor(&mut rng, &center, total, delta);
                let c = model.t_mcs(&pinst, &p);
                plans_costed += 1;
                if c < center_cost {
                    center = p;
                    center_cost = c;
                    improved = true;
                }
            }
            if !improved {
                if delta == 1 {
                    break;
                }
                delta /= 2;
            }
            if start.elapsed() >= opts.budget {
                break;
            }
        }
        if center_cost < best_cost {
            best_cost = center_cost;
            best_plan = center;
            best_order = order.clone();
        }
    }

    Ok(SearchResult {
        plan: best_plan,
        column_order: best_order,
        est_cost: best_cost,
        plans_costed,
        elapsed: start.elapsed(),
        timed_out: true,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn rrs_returns_valid_plan_within_budget() {
        let inst = SortInstance::uniform(1 << 20, &[(17, 8192.0), (33, 8192.0)]);
        let m = CostModel::with_defaults();
        let opts = RrsOptions {
            budget: Duration::from_millis(20),
            ..Default::default()
        };
        let r = rrs(&inst, &m, &opts).expect("non-empty key");
        assert!(r.plan.validate(50).is_ok());
        assert!(r.est_cost <= m.t_mcs(&inst, &inst.p0()) + 1.0);
        assert!(r.plans_costed > 10);
    }

    #[test]
    fn random_plans_are_valid() {
        let mut rng = Rng::seed_from_u64(1);
        for total in [1u32, 5, 27, 50, 96, 130] {
            for _ in 0..50 {
                let p = random_plan(&mut rng, total, max_rounds(total, 16));
                assert!(p.validate(total).is_ok(), "total={total} plan={p}");
            }
        }
    }

    #[test]
    fn neighbors_preserve_total_width() {
        let mut rng = Rng::seed_from_u64(2);
        let mut p = MassagePlan::from_widths(&[17, 33]);
        for _ in 0..200 {
            p = neighbor(&mut rng, &p, 50, 8);
            assert!(p.validate(50).is_ok(), "{p}");
        }
    }
}
