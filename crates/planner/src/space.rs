//! The code-massage plan space (§5).
//!
//! A plan is a composition of the total key width `W` into round widths
//! (`|P| = 2^{W-1}` compositions in total), each round carrying a bank.
//! Lemma 2 bounds the useful number of rounds; Property 1 prunes bank
//! combinations where two adjacent rounds could always be stitched into
//! the earlier round's bank.

use mcs_core::{Bank, MassagePlan, Round};

/// Lemma 2: plans with more than `⌊2(W−1)/b_min⌋ + 1` rounds are
/// dominated.
pub fn max_rounds(total_width: u32, b_min: u32) -> u32 {
    assert!(total_width >= 1 && b_min >= 1);
    2 * (total_width - 1) / b_min + 1
}

/// Enumerate the valid bank combinations for `k` rounds over a `W`-bit
/// key:
///
/// * capacity: `Σ b_i ≥ W` and every round can get ≥ 1 bit
///   (`W ≥ k`);
/// * Property-1 pruning: for `i < k`, an assignment with
///   `w_i + w_{i+1} > b_i` must exist, i.e. `W − (k−2) > b_i`; combos
///   violating it (e.g. `(64, 16)` for `W = 59`) are dominated by plans
///   with fewer rounds.
pub fn bank_combos(total_width: u32, k: u32) -> Vec<Vec<Bank>> {
    let mut out = Vec::new();
    if k == 0 || total_width < k {
        return out;
    }

    /// Minimum canonical width of a round in bank `b` (a narrower width
    /// would belong to a smaller bank's combo).
    fn floor_of(b: Bank) -> u32 {
        match b {
            Bank::B16 => 1,
            Bank::B32 => 17,
            Bank::B64 => 33,
        }
    }

    let mut cur: Vec<Bank> = Vec::with_capacity(k as usize);
    fn rec(
        total_width: u32,
        k: u32,
        cap_so_far: u32,
        floor_so_far: u32,
        cur: &mut Vec<Bank>,
        out: &mut Vec<Vec<Bank>>,
    ) {
        let left = k - cur.len() as u32;
        if left == 0 {
            if cap_so_far >= total_width && floor_so_far <= total_width {
                out.push(cur.clone());
            }
            return;
        }
        // Feasibility pruning (checked per branch below) keeps the
        // enumeration proportional to the output size instead of 3^k.
        for b in Bank::ALL {
            // Property-1 prune applies to all but the last round.
            if (cur.len() as u32) < k - 1 && total_width.saturating_sub(k - 2) <= b.bits() {
                continue;
            }
            let cap = cap_so_far + b.bits();
            let floor = floor_so_far + floor_of(b);
            // (a) capacity: the remaining rounds at 64 bits each must
            // still be able to cover W.
            if cap + 64 * (left - 1) < total_width {
                continue;
            }
            // (b) floors: canonical minimum widths must not overshoot W
            // (remaining rounds need >= 1 bit each).
            if floor + (left - 1) > total_width {
                continue;
            }
            cur.push(b);
            rec(total_width, k, cap, floor, cur, out);
            cur.pop();
        }
    }
    rec(total_width, k, 0, 0, &mut cur, &mut out);
    out
}

/// All width assignments `(a_1, …, a_k)` for a bank combo: `a_i ≥ 1`,
/// `a_i ≤ b_i`, `Σ a_i = W`, and each `a_i`'s *minimum* bank equals `b_i`
/// (canonical membership — the same widths with looser banks are
/// enumerated, and dominated, in their own combo).
pub fn width_assignments(total_width: u32, combo: &[Bank]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(combo.len());
    fn rec(left: u32, combo: &[Bank], at: usize, cur: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if at == combo.len() {
            if left == 0 {
                out.push(cur.clone());
            }
            return;
        }
        let remaining_rounds = (combo.len() - at - 1) as u32;
        let cap_rest: u32 = combo[at + 1..].iter().map(|b| b.bits()).sum();
        let b = combo[at];
        let lo_bank = match b {
            Bank::B16 => 1,
            Bank::B32 => 17,
            Bank::B64 => 33,
        };
        let min_a = lo_bank.max(left.saturating_sub(cap_rest)).max(1);
        let max_a = b.bits().min(left.saturating_sub(remaining_rounds));
        for a in min_a..=max_a {
            cur.push(a);
            rec(left - a, combo, at + 1, cur, out);
            cur.pop();
        }
    }
    rec(total_width, combo, 0, &mut cur, &mut out);
    out
}

/// All feasible plans for a `W`-bit key with at most `k_max` rounds
/// (minimum banks), up to `limit` plans. Used by the exhaustive "perfect
/// model" baseline (`A_i` in §6.1); the full space is `2^{W-1}`, so cap
/// generously but firmly.
pub fn enumerate_compositions(total_width: u32, k_max: u32, limit: usize) -> Vec<MassagePlan> {
    let mut out = Vec::new();
    let mut cur: Vec<u32> = Vec::new();
    fn rec(left: u32, k_left: u32, limit: usize, cur: &mut Vec<u32>, out: &mut Vec<MassagePlan>) {
        if out.len() >= limit {
            return;
        }
        if left == 0 {
            if !cur.is_empty() {
                out.push(MassagePlan::new(
                    cur.iter().map(|&w| Round::tight(w)).collect(),
                ));
            }
            return;
        }
        if k_left == 0 {
            return;
        }
        for w in 1..=left.min(64) {
            cur.push(w);
            rec(left - w, k_left - 1, limit, cur, out);
            cur.pop();
            if out.len() >= limit {
                return;
            }
        }
    }
    rec(total_width, k_max, limit, &mut cur, &mut out);
    out
}

/// All permutations of `0..m` (GROUP BY / PARTITION BY explore column
/// orders; `m ≤ 7` in TPC-H, so `m!` stays small).
pub fn permutations(m: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur: Vec<usize> = (0..m).collect();
    fn heap_rec(k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(cur.clone());
            return;
        }
        for i in 0..k {
            heap_rec(k - 1, cur, out);
            if k.is_multiple_of(2) {
                cur.swap(i, k - 1);
            } else {
                cur.swap(0, k - 1);
            }
        }
    }
    heap_rec(m, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma2_bound_example() {
        // Paper: W = 59, b_min = 16 -> at most 8 rounds.
        assert_eq!(max_rounds(59, 16), 8);
        assert_eq!(max_rounds(1, 16), 1);
        assert_eq!(max_rounds(96, 16), 12);
    }

    #[test]
    fn bank_combos_match_paper_w59_k2() {
        // §5's walkthrough: valid combos for k=2, W=59 are exactly
        // (16,64), (32,32), (32,64).
        let combos = bank_combos(59, 2);
        let want: Vec<Vec<Bank>> = vec![
            vec![Bank::B16, Bank::B64],
            vec![Bank::B32, Bank::B32],
            vec![Bank::B32, Bank::B64],
        ];
        assert_eq!(combos, want);
    }

    #[test]
    fn bank_combos_k1() {
        // W = 59 fits only a 64-bit bank.
        assert_eq!(bank_combos(59, 1), vec![vec![Bank::B64]]);
        // W = 20: both 32 and 64 could hold it; 64 is kept (dominated at
        // costing time, not structurally invalid).
        let c = bank_combos(20, 1);
        assert!(c.contains(&vec![Bank::B32]));
    }

    #[test]
    fn width_assignments_match_paper_example() {
        // Combo {16, 64} for W=59: a1 in 1..=16, a2 = 59-a1 in 43..=58;
        // all have min-bank 64 -> 16 assignments (paper: "These 16 plans
        // would be costed").
        let a = width_assignments(59, &[Bank::B16, Bank::B64]);
        assert_eq!(a.len(), 16);
        assert!(a
            .iter()
            .all(|w| w[0] >= 1 && w[0] <= 16 && w[0] + w[1] == 59));
        // Combo {32, 32}: canonical assignments need both widths in
        // 17..=32, so a1 in 27..=32 (a2 = 59 - a1 in 27..=32 too).
        let a = width_assignments(59, &[Bank::B32, Bank::B32]);
        let firsts: Vec<u32> = a.iter().map(|w| w[0]).collect();
        assert_eq!(firsts, vec![27, 28, 29, 30, 31, 32]);
    }

    #[test]
    fn width_assignments_canonical_banks() {
        // For combo {64}: W=20 is not canonical (min bank is 32) -> none.
        assert!(width_assignments(20, &[Bank::B64]).is_empty());
        assert_eq!(width_assignments(20, &[Bank::B32]), vec![vec![20]]);
    }

    #[test]
    fn compositions_count() {
        // Compositions of 5 into any parts: 2^4 = 16.
        let all = enumerate_compositions(5, 5, 10_000);
        assert_eq!(all.len(), 16);
        // Each is a valid plan.
        for p in &all {
            assert!(p.validate(5).is_ok());
        }
        // Limit respected.
        assert_eq!(enumerate_compositions(20, 20, 100).len(), 100);
    }

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(4).len(), 24);
        let mut p3 = permutations(3);
        p3.sort();
        p3.dedup();
        assert_eq!(p3.len(), 6);
    }
}
