//! Property tests for the plan-search machinery.

use mcs_core::{Bank, MassagePlan};
use mcs_cost::{CostModel, SortInstance};
use mcs_planner::{
    bank_combos, enumerate_compositions, max_rounds, roga, width_assignments, RogaOptions,
};
use mcs_test_support::check;

/// Lemma 2: over small exhaustive spaces, the cost-model optimum never
/// uses more rounds than the bound — so bounding the search is safe.
#[test]
fn lemma2_bound_never_hides_the_model_optimum() {
    check("lemma2_bound_never_hides_the_model_optimum", 32, |rng| {
        let w1 = rng.gen_range(1..=8u32);
        let w2 = rng.gen_range(1..=8u32);
        let rows_log = rng.gen_range(10..=22u32);
        let ndv1 = rng.gen_range(1..=4096u64);
        let ndv2 = rng.gen_range(1..=4096u64);
        let model = CostModel::with_defaults();
        let inst =
            SortInstance::uniform(1usize << rows_log, &[(w1, ndv1 as f64), (w2, ndv2 as f64)]);
        let total = w1 + w2;
        let bound = max_rounds(total, 16);

        // Exhaust ALL compositions (any round count, up to total rounds).
        let all = enumerate_compositions(total, total, usize::MAX >> 1);
        let best = all
            .iter()
            .map(|p| (model.t_mcs(&inst, p), p))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        assert!(
            (best.1.num_rounds() as u32) <= bound,
            "optimum {} uses {} rounds > bound {}",
            best.1,
            best.1.num_rounds(),
            bound
        );
    });
}

/// Every bank combo admits only canonical width assignments that form
/// valid plans, and every valid composition has exactly one canonical
/// combo.
#[test]
fn width_assignments_are_valid_and_canonical() {
    check("width_assignments_are_valid_and_canonical", 32, |rng| {
        let total = rng.gen_range(2..=80u32);
        let k = rng.gen_range(1..=4u32);
        for combo in bank_combos(total, k) {
            for widths in width_assignments(total, &combo) {
                assert_eq!(widths.iter().sum::<u32>(), total);
                for (w, b) in widths.iter().zip(&combo) {
                    assert_eq!(Bank::min_for_width(*w), *b);
                }
                let plan = MassagePlan::new(
                    widths
                        .iter()
                        .zip(&combo)
                        .map(|(&width, &bank)| mcs_core::Round { width, bank })
                        .collect(),
                );
                assert!(plan.validate(total).is_ok());
            }
        }
    });
}

fn assert_roga_invariants(widths: &[u32], rows_log: u32) {
    let model = CostModel::with_defaults();
    let cols: Vec<(u32, f64)> = widths
        .iter()
        .map(|&w| (w, 2f64.powi(w.min(12) as i32)))
        .collect();
    let inst = SortInstance::uniform(1usize << rows_log, &cols);
    // Unbounded search: with a rho deadline, tiny instances (whose
    // total cost is microseconds) correctly time out at P0 — the
    // round bound only applies to completed searches.
    let r = roga(
        &inst,
        &model,
        &RogaOptions {
            rho: None,
            permute_columns: false,
        },
    )
    .expect("non-empty sort key");
    let total = inst.total_width();
    assert!(r.plan.validate(total).is_ok());
    assert!(r.est_cost <= model.t_mcs(&inst, &inst.p0()) + 1.0);
    assert!(
        (r.plan.num_rounds() as u32) <= max_rounds(total, 16),
        "widths {widths:?} rows_log {rows_log}: plan {} has {} rounds > bound {}",
        r.plan,
        r.plan.num_rounds(),
        max_rounds(total, 16)
    );

    // And the deadline path still yields a valid plan.
    let rd = roga(
        &inst,
        &model,
        &RogaOptions {
            rho: Some(0.001),
            permute_columns: false,
        },
    )
    .expect("non-empty sort key");
    assert!(rd.plan.validate(total).is_ok());
}

/// ROGA's result is always a valid plan, never estimated worse than
/// P0, and respects the Lemma 2 bound.
#[test]
fn roga_invariants() {
    check("roga_invariants", 32, |rng| {
        let k = rng.gen_range(1..=4usize);
        let widths: Vec<u32> = (0..k).map(|_| rng.gen_range(1..=30u32)).collect();
        let rows_log = rng.gen_range(8..=22u32);
        assert_roga_invariants(&widths, rows_log);
    });
}

/// The shrunken case recorded in `planner_proptests.proptest-regressions`
/// (`widths = [1, 1], rows_log = 8`): two 1-bit columns at 256 rows. For
/// W = 2 the Lemma 2 bound `2*(W-1)/b_min + 1` with `b_min = 16` allows
/// only one round, while P0 — the search's starting incumbent — has two.
/// ROGA must therefore end on the stitched single-round plan.
#[test]
fn roga_regression_two_one_bit_columns() {
    assert_roga_invariants(&[1, 1], 8);
}

/// More pinned shapes around the regression: minimum widths, minimum
/// rows, and mixes where the stitched plan is forced by the bound.
#[test]
fn roga_minimum_width_shapes() {
    assert_roga_invariants(&[1], 8);
    assert_roga_invariants(&[1, 1, 1], 8);
    assert_roga_invariants(&[1, 1, 1, 1], 8);
    assert_roga_invariants(&[2, 1], 8);
    assert_roga_invariants(&[1, 1], 22);
}

/// The composition space size matches the closed form 2^(W-1) when
/// unbounded (small W).
#[test]
fn composition_count_closed_form() {
    check("composition_count_closed_form", 32, |rng| {
        let total = rng.gen_range(1..=14u32);
        let all = enumerate_compositions(total, total, usize::MAX >> 1);
        assert_eq!(all.len() as u64, 1u64 << (total - 1));
    });
}
