//! Property tests for the plan-search machinery.

use mcs_core::{Bank, MassagePlan};
use mcs_cost::{CostModel, SortInstance};
use mcs_planner::{
    bank_combos, enumerate_compositions, max_rounds, roga, width_assignments, RogaOptions,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 2: over small exhaustive spaces, the cost-model optimum never
    /// uses more rounds than the bound — so bounding the search is safe.
    #[test]
    fn lemma2_bound_never_hides_the_model_optimum(
        w1 in 1u32..=8,
        w2 in 1u32..=8,
        rows_log in 10u32..=22,
        ndv1 in 1u64..=4096,
        ndv2 in 1u64..=4096,
    ) {
        let model = CostModel::with_defaults();
        let inst = SortInstance::uniform(
            1usize << rows_log,
            &[(w1, ndv1 as f64), (w2, ndv2 as f64)],
        );
        let total = w1 + w2;
        let bound = max_rounds(total, 16);

        // Exhaust ALL compositions (any round count, up to total rounds).
        let all = enumerate_compositions(total, total, usize::MAX >> 1);
        let best = all
            .iter()
            .map(|p| (model.t_mcs(&inst, p), p))
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap();
        prop_assert!(
            (best.1.num_rounds() as u32) <= bound,
            "optimum {} uses {} rounds > bound {}",
            best.1,
            best.1.num_rounds(),
            bound
        );
    }

    /// Every bank combo admits only canonical width assignments that form
    /// valid plans, and every valid composition has exactly one canonical
    /// combo.
    #[test]
    fn width_assignments_are_valid_and_canonical(
        total in 2u32..=80,
        k in 1u32..=4,
    ) {
        for combo in bank_combos(total, k) {
            for widths in width_assignments(total, &combo) {
                prop_assert_eq!(widths.iter().sum::<u32>(), total);
                for (w, b) in widths.iter().zip(&combo) {
                    prop_assert_eq!(Bank::min_for_width(*w), *b);
                }
                let plan = MassagePlan::new(
                    widths
                        .iter()
                        .zip(&combo)
                        .map(|(&width, &bank)| mcs_core::Round { width, bank })
                        .collect(),
                );
                prop_assert!(plan.validate(total).is_ok());
            }
        }
    }

    /// ROGA's result is always a valid plan, never estimated worse than
    /// P0, and respects the Lemma 2 bound.
    #[test]
    fn roga_invariants(
        widths in prop::collection::vec(1u32..=30, 1..=4),
        rows_log in 8u32..=22,
    ) {
        let model = CostModel::with_defaults();
        let cols: Vec<(u32, f64)> = widths
            .iter()
            .map(|&w| (w, 2f64.powi(w.min(12) as i32)))
            .collect();
        let inst = SortInstance::uniform(1usize << rows_log, &cols);
        // Unbounded search: with a rho deadline, tiny instances (whose
        // total cost is microseconds) correctly time out at P0 — the
        // round bound only applies to completed searches.
        let r = roga(&inst, &model, &RogaOptions { rho: None, permute_columns: false });
        let total = inst.total_width();
        prop_assert!(r.plan.validate(total).is_ok());
        prop_assert!(r.est_cost <= model.t_mcs(&inst, &inst.p0()) + 1.0);
        prop_assert!((r.plan.num_rounds() as u32) <= max_rounds(total, 16));

        // And the deadline path still yields a valid plan.
        let rd = roga(&inst, &model, &RogaOptions { rho: Some(0.001), permute_columns: false });
        prop_assert!(rd.plan.validate(total).is_ok());
    }

    /// The composition space size matches the closed form 2^(W-1) when
    /// unbounded (small W).
    #[test]
    fn composition_count_closed_form(total in 1u32..=14) {
        let all = enumerate_compositions(total, total, usize::MAX >> 1);
        prop_assert_eq!(all.len() as u64, 1u64 << (total - 1));
    }
}
