//! # mcs-server
//!
//! The network serving layer: a dependency-free TCP server speaking the
//! MCSQ wire protocol (`mcs_engine::wire`), with one engine [`Session`]
//! per client connection.
//!
//! ## Architecture
//!
//! * One **accept thread** runs a non-blocking accept loop and spawns a
//!   scoped handler thread per connection; scoping means shutdown joins
//!   every handler before the accept thread exits — a stopped server
//!   provably leaves no stray threads or sockets.
//! * Each **connection** owns a [`Session`] (plan cache + arena pool),
//!   so `Prepare` warms exactly the state later `Execute`s on the same
//!   connection reuse, mirroring the in-process API.
//! * Every `Execute`/`Batch` passes through one shared [`AdmissionGate`]
//!   before touching the engine. A full gate sheds with the same typed
//!   `Overloaded { waited_ns }` a local caller would see — backpressure
//!   crosses the wire as [`ErrorCode::Overloaded`], never as a hang or a
//!   dropped connection.
//! * Malformed frames (bad magic, unknown kind, oversized, undecodable
//!   payload) earn a best-effort typed error frame and close *that*
//!   connection only; the accept loop and sibling connections are
//!   unaffected, and nothing panics.
//!
//! ```no_run
//! use std::sync::Arc;
//! use mcs_engine::{Column, Database, Table};
//! use mcs_server::{Server, ServerConfig};
//!
//! let mut t = Table::new("sales");
//! t.add_column(Column::from_u64s("nation", 2, [1u64, 0, 1, 0]));
//! let mut db = Database::new();
//! db.register(t);
//!
//! let server = Server::spawn(Arc::new(db), ServerConfig::default())?;
//! println!("serving on {}", server.addr());
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
// Serving code must degrade to typed wire errors, never panic on a
// recoverable path. Test modules opt back in with `#[allow]`.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use mcs_engine::wire::{ErrorCode, Frame, FrameError, RemoteError, Request, Response, MAX_ITEMS};
use mcs_engine::{
    AdmissionGate, Database, EngineConfig, EngineError, PreparedQuery, QueryOptions, Session,
};
use mcs_telemetry as telemetry;

/// How a connection handler polls the stop flag while blocked on a read.
const READ_POLL: Duration = Duration::from_millis(25);
/// How the accept loop polls the stop flag between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine configuration cloned into every connection's [`Session`].
    pub engine: EngineConfig,
    /// Server-wide admission permits: at most this many `Execute`/`Batch`
    /// requests run concurrently across *all* connections.
    pub permits: usize,
    /// Queue budget applied when a request carries no
    /// [`QueryOptions::queue_timeout`] of its own. `None` waits
    /// indefinitely (in-process `run_concurrent` semantics).
    pub default_queue_timeout: Option<Duration>,
    /// Upper bound on a `Batch` request's intra-batch concurrency.
    pub batch_threads_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            engine: EngineConfig::default(),
            permits: std::thread::available_parallelism().map_or(4, |n| n.get()),
            default_queue_timeout: None,
            batch_threads_cap: 8,
        }
    }
}

/// A running server. Dropping (or calling [`shutdown`](Server::shutdown))
/// stops the accept loop and joins every connection handler.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind an OS-assigned loopback port and start serving `db`.
    pub fn spawn(db: Arc<Database>, config: ServerConfig) -> io::Result<Server> {
        Server::bind("127.0.0.1:0", db, config)
    }

    /// Bind `addr` and start serving `db`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        db: Arc<Database>,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("mcs-server-accept".into())
            .spawn(move || accept_loop(&listener, &db, &config, &flag))?;
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the OS-assigned port after
    /// [`spawn`](Server::spawn)).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain every connection handler, and join the
    /// accept thread. Idempotent; also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            // A panicking handler already failed its connection; the
            // server object outlives it either way.
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, db: &Database, config: &ServerConfig, stop: &AtomicBool) {
    let gate = AdmissionGate::new(config.permits.max(1));
    std::thread::scope(|scope| {
        while !stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if telemetry::is_enabled() {
                        telemetry::counter_add("server.accept", 1);
                    }
                    let gate = &gate;
                    scope.spawn(move || serve_connection(stream, db, config, gate, stop));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                // Transient accept failures (per-connection resets) must
                // not kill the listener.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Scope exit joins every connection handler (each observes the
        // stop flag within one READ_POLL) before the accept thread ends.
    });
}

/// A [`Read`] over a timeout-armed [`TcpStream`] that turns read
/// timeouts into stop-flag polls, so `Frame::read_from`'s `read_exact`
/// blocks indefinitely for a frame yet still observes shutdown within
/// [`READ_POLL`]. Partial frames are preserved across polls because
/// `read_exact` itself tracks the fill — a timeout never discards bytes
/// already read.
struct StopAwareStream<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl Read for StopAwareStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            // `Read` is implemented on `&TcpStream`; shadow a mutable
            // borrow of the shared handle.
            let mut stream = self.stream;
            match stream.read(buf) {
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.stop.load(Ordering::SeqCst) {
                        return Err(io::Error::new(
                            io::ErrorKind::ConnectionAborted,
                            "server shutting down",
                        ));
                    }
                }
                other => return other,
            }
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    db: &Database,
    config: &ServerConfig,
    gate: &AdmissionGate,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // Bound writes too: a client that never drains its socket must not
    // wedge the handler past shutdown forever.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    // One worker pool per connection governs both the batch fan-out
    // (`run_concurrent`) and each query's intra-query morsel workers, so
    // a batch running at `batch_threads_cap` queries cannot additionally
    // multiply by `exec.threads` workers each.
    let worker_cap = config
        .batch_threads_cap
        .max(config.engine.exec.threads)
        .max(1);
    let session = Session::new(db, config.engine.clone()).with_worker_cap(worker_cap);
    let mut reader = StopAwareStream {
        stream: &stream,
        stop,
    };

    loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(f) => f,
            Err(FrameError::Io(_)) => return, // EOF, reset, or shutdown
            Err(e) => {
                // Protocol violation: answer with a typed error (best
                // effort — the peer may be gone) and drop the connection.
                if telemetry::is_enabled() {
                    telemetry::counter_add("server.malformed", 1);
                }
                let (code, request_id) = match &e {
                    FrameError::UnsupportedVersion { .. } => (ErrorCode::UnsupportedVersion, 0),
                    FrameError::Oversized { request_id, .. } => {
                        (ErrorCode::OversizedFrame, *request_id)
                    }
                    FrameError::BadKind { request_id, .. } => {
                        (ErrorCode::MalformedFrame, *request_id)
                    }
                    _ => (ErrorCode::MalformedFrame, 0),
                };
                let resp = Response::Error(RemoteError::protocol(code, e.to_string()));
                let _ = resp.to_frame(request_id).write_to(&mut &stream);
                return;
            }
        };

        let request = match Request::decode(frame.kind, &frame.payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame was structurally sound but its payload was
                // not: same policy — typed error, close this connection.
                if telemetry::is_enabled() {
                    telemetry::counter_add("server.malformed", 1);
                }
                let resp =
                    Response::Error(RemoteError::protocol(ErrorCode::BadRequest, e.to_string()));
                let _ = resp.to_frame(frame.request_id).write_to(&mut &stream);
                return;
            }
        };

        if telemetry::is_enabled() {
            telemetry::counter_add("server.request", 1);
        }
        let closing = matches!(request, Request::Close);
        let response = if stop.load(Ordering::SeqCst) && !closing {
            Response::Error(RemoteError::protocol(
                ErrorCode::ShuttingDown,
                "server shutting down",
            ))
        } else {
            handle_request(&session, gate, config, request)
        };
        if response
            .to_frame(frame.request_id)
            .write_to(&mut &stream)
            .is_err()
        {
            return;
        }
        if closing {
            return;
        }
    }
}

fn handle_request(
    session: &Session<'_>,
    gate: &AdmissionGate,
    config: &ServerConfig,
    request: Request,
) -> Response {
    match request {
        Request::Prepare { table, query } => match session.prepare(&table, &query) {
            Ok(_) => Response::Prepared,
            Err(e) => Response::Error(RemoteError::from(&e)),
        },
        Request::Execute {
            table,
            query,
            options,
        } => {
            let _permit = match admit(gate, config, &options) {
                Ok(p) => p,
                Err(e) => return shed(&e),
            };
            match session.query(&table, &query, options) {
                Ok(r) => Response::Result(Box::new(r)),
                Err(e) => Response::Error(RemoteError::from(&e)),
            }
        }
        Request::Batch {
            items,
            threads,
            options,
        } => {
            if items.len() > MAX_ITEMS {
                return Response::Error(RemoteError::protocol(
                    ErrorCode::BadRequest,
                    format!(
                        "batch of {} items exceeds the maximum {MAX_ITEMS}",
                        items.len()
                    ),
                ));
            }
            // One server permit covers the whole batch; intra-batch
            // concurrency is the engine gate inside run_concurrent.
            let _permit = match admit(gate, config, &options) {
                Ok(p) => p,
                Err(e) => return shed(&e),
            };
            let threads = (threads as usize).clamp(1, config.batch_threads_cap.max(1));

            // Per-item prepare failures (unknown table/column) become
            // per-item errors; the well-formed remainder still runs.
            let mut prepared: Vec<PreparedQuery> = Vec::new();
            let mut slots: Vec<Result<usize, EngineError>> = Vec::with_capacity(items.len());
            for (table, query) in &items {
                match session.prepare(table, query) {
                    Ok(p) => {
                        slots.push(Ok(prepared.len()));
                        prepared.push(p);
                    }
                    Err(e) => slots.push(Err(e)),
                }
            }
            let mut ran: Vec<Option<Result<_, _>>> = session
                .run_concurrent(&prepared, threads, options)
                .into_iter()
                .map(Some)
                .collect();
            let results = slots
                .into_iter()
                .map(|slot| match slot {
                    Ok(i) => match ran[i].take() {
                        Some(Ok(r)) => Ok(r),
                        Some(Err(e)) => Err(RemoteError::from(&e)),
                        None => Err(RemoteError::protocol(
                            ErrorCode::BadRequest,
                            "batch slot resolved twice",
                        )),
                    },
                    Err(e) => Err(RemoteError::from(&e)),
                })
                .collect();
            Response::Batch(results)
        }
        Request::Close => Response::Goodbye,
    }
}

/// Admit one request through the server gate, honouring the request's
/// own queue budget first and the server default second.
fn admit<'g>(
    gate: &'g AdmissionGate,
    config: &ServerConfig,
    options: &QueryOptions,
) -> Result<mcs_engine::GatePermit<'g>, EngineError> {
    match options.queue_timeout.or(config.default_queue_timeout) {
        Some(t) => gate.acquire_timeout(t),
        None => Ok(gate.acquire()),
    }
}

fn shed(e: &EngineError) -> Response {
    if telemetry::is_enabled() {
        telemetry::counter_add("server.shed", 1);
    }
    Response::Error(RemoteError::from(e))
}
