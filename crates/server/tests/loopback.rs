//! End-to-end loopback tests: a real TCP server on 127.0.0.1, driven by
//! the real client, compared byte-for-byte against the in-process
//! `Session` oracle. Backpressure and deadlines must surface to remote
//! clients as the same typed errors in-process callers see — never as a
//! hang or a dropped connection.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use mcs_client::Client;
use mcs_engine::wire::ErrorCode;
use mcs_engine::{
    Agg, AggKind, Column, Database, EngineConfig, EngineError, Filter, OrderKey, Predicate, Query,
    QueryOptions, Session, Table,
};
use mcs_server::{Server, ServerConfig};

fn sales_db(rows: usize) -> Database {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s(
        "nation",
        5,
        (0..rows).map(|i| (i as u64 * 7) % 25),
    ));
    t.add_column(Column::from_u64s(
        "ship_date",
        11,
        (0..rows).map(|i| (i as u64 * 131) % 2048),
    ));
    t.add_column(Column::from_u64s(
        "price",
        16,
        (0..rows).map(|i| (i as u64 * 997) % 65536),
    ));
    let mut db = Database::new();
    db.register(t);
    db
}

fn shapes() -> Vec<Query> {
    let mut grouped = Query::named("grouped");
    grouped.group_by = vec!["nation".into(), "ship_date".into()];
    grouped.aggregates = vec![
        Agg::new(AggKind::Sum("price".into()), "sum_price"),
        Agg::new(AggKind::Count, "n"),
    ];

    let mut ordered = Query::named("ordered");
    ordered.order_by = vec![OrderKey::asc("nation"), OrderKey::desc("price")];
    ordered.select = vec!["ship_date".into()];
    ordered.filters = vec![Filter {
        column: "price".into(),
        predicate: Predicate::Ge(1000),
    }];

    let mut windowed = Query::named("windowed");
    windowed.partition_by = vec!["nation".into()];
    windowed.window_order = vec![OrderKey::desc("price")];
    windowed.select = vec!["ship_date".into()];

    vec![grouped, ordered, windowed]
}

/// Every query shape, served over TCP, must produce byte-identical
/// columns to the in-process session — prepare/execute and plain
/// execute alike.
#[test]
fn loopback_results_are_byte_identical_to_in_process() {
    let db = Arc::new(sales_db(4096));
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let oracle_session = Session::new(&db, EngineConfig::default());

    let mut client = Client::connect(server.addr()).unwrap();
    client
        .set_receive_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    for q in shapes() {
        let want = oracle_session
            .query("sales", &q, QueryOptions::default())
            .unwrap();

        client.prepare("sales", &q).unwrap();
        let got = client.query("sales", &q, QueryOptions::default()).unwrap();
        assert_eq!(
            got.columns, want.columns,
            "{}: remote != in-process",
            q.name
        );
        assert_eq!(got.rows, want.rows);

        // And the encoding itself is deterministic: two executions of
        // the same query serialize to the same bytes.
        use mcs_engine::wire::Wire;
        let again = client.query("sales", &q, QueryOptions::default()).unwrap();
        assert_eq!(again.to_bytes(), got.to_bytes(), "{}", q.name);
    }
    client.close().unwrap();
    server.shutdown();
}

/// A batch request returns per-item results in input order, each
/// matching the oracle; an unknown table inside the batch fails that
/// item alone with a typed error.
#[test]
fn loopback_batch_matches_oracle_and_isolates_bad_items() {
    let db = Arc::new(sales_db(2048));
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let oracle_session = Session::new(&db, EngineConfig::default());

    let qs = shapes();
    let mut items: Vec<(String, Query)> = qs
        .iter()
        .cycle()
        .take(6)
        .map(|q| ("sales".to_string(), q.clone()))
        .collect();
    items.insert(3, ("ghost_table".to_string(), qs[0].clone()));

    let mut client = Client::connect(server.addr()).unwrap();
    let results = client.batch(&items, 4, QueryOptions::default()).unwrap();
    assert_eq!(results.len(), items.len());
    for (i, ((table, q), r)) in items.iter().zip(&results).enumerate() {
        if table == "ghost_table" {
            let err = r.as_ref().expect_err("unknown table must fail its item");
            assert_eq!(err.code, ErrorCode::UnknownTable, "item {i}: {err}");
            assert!(err.message.contains("ghost_table"));
        } else {
            let want = oracle_session
                .query(table, q, QueryOptions::default())
                .unwrap();
            let got = r.as_ref().expect("well-formed item succeeds");
            assert_eq!(got.columns, want.columns, "item {i}");
        }
    }
    client.close().unwrap();
    server.shutdown();
}

/// A saturated server sheds with the typed `Overloaded { waited_ns }` —
/// the remote client observes exactly the in-process error, never a hang
/// or a dropped connection.
#[test]
fn saturated_server_sheds_with_typed_overloaded() {
    let db = Arc::new(sales_db(32768));
    let config = ServerConfig {
        permits: 1,
        ..ServerConfig::default()
    };
    let server = Server::spawn(Arc::clone(&db), config).unwrap();
    let addr = server.addr();

    let mut heavy = Query::named("heavy");
    heavy.group_by = vec!["nation".into(), "ship_date".into()];
    heavy.aggregates = vec![Agg::new(AggKind::Sum("price".into()), "s")];
    let light = shapes().remove(1);

    // One connection occupies the single permit with a deep batch while
    // another retries a zero-queue-budget execute until it gets shed.
    std::thread::scope(|s| {
        let hog = s.spawn(|| {
            let mut c = Client::connect(addr).unwrap();
            let items: Vec<(String, Query)> = (0..24)
                .map(|_| ("sales".to_string(), heavy.clone()))
                .collect();
            let r = c.batch(&items, 1, QueryOptions::default()).unwrap();
            assert!(r.iter().all(Result::is_ok));
            c.close().unwrap();
        });

        let mut c = Client::connect(addr).unwrap();
        c.set_receive_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let opts = QueryOptions::default().with_queue_timeout(Duration::ZERO);
        let mut observed = None;
        for _ in 0..4000 {
            match c.query("sales", &light, opts.clone()) {
                Ok(_) => std::thread::sleep(Duration::from_micros(200)),
                Err(e) => {
                    observed = Some(e);
                    break;
                }
            }
        }
        let err = observed
            .expect("a zero-queue-budget execute racing a 24-query batch on one permit must shed");
        match err.engine_error() {
            Some(EngineError::Overloaded { .. }) => {}
            other => panic!("expected typed Overloaded, got {other:?}: {err}"),
        }
        // The connection survived the shed: the same client still works.
        let r = c.query("sales", &light, QueryOptions::default()).unwrap();
        assert!(r.rows > 0);
        c.close().unwrap();

        hog.join().unwrap();
    });
    server.shutdown();
}

/// A deadline that expires server-side surfaces as the typed
/// `DeadlineExceeded`, and an already-expired deadline fails fast.
#[test]
fn remote_deadlines_surface_as_typed_errors() {
    let db = Arc::new(sales_db(4096));
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let q = shapes().remove(0);
    // The remaining-budget encoding saturates at zero for an
    // already-expired deadline, so the server rejects before running.
    let expired = QueryOptions::default().with_deadline(Instant::now());
    let err = client.query("sales", &q, expired).unwrap_err();
    assert_eq!(
        err.engine_error(),
        Some(EngineError::DeadlineExceeded),
        "{err}"
    );

    // The connection keeps serving after the typed failure.
    let ok = client.query("sales", &q, QueryOptions::default()).unwrap();
    assert!(ok.rows > 0);
    client.close().unwrap();
    server.shutdown();
}

/// Engine errors that carry structure (unknown column/table) arrive with
/// the right code and a message naming the offender.
#[test]
fn typed_engine_errors_cross_the_wire() {
    let db = Arc::new(sales_db(256));
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let mut q = Query::named("bad");
    q.order_by = vec![OrderKey::asc("no_such_column")];
    q.select = vec!["price".into()];
    let err = client
        .query("sales", &q, QueryOptions::default())
        .unwrap_err();
    let remote = err.remote().expect("typed remote error");
    assert_eq!(remote.code, ErrorCode::UnknownColumn);
    assert!(remote.message.contains("no_such_column"), "{remote}");

    let err = client
        .query("nope", &shapes()[1], QueryOptions::default())
        .unwrap_err();
    assert_eq!(err.remote().unwrap().code, ErrorCode::UnknownTable);

    // Prepare surfaces the same taxonomy.
    let err = client.prepare("nope", &shapes()[1]).unwrap_err();
    assert_eq!(err.remote().unwrap().code, ErrorCode::UnknownTable);

    client.close().unwrap();
    server.shutdown();
}

/// Shutdown drains cleanly: in-flight connections finish their current
/// request, every handler thread joins, and the port is releasable —
/// a new server can bind the same address immediately.
#[test]
fn graceful_shutdown_leaves_no_stray_threads_or_sockets() {
    let db = Arc::new(sales_db(1024));
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Leave a connection open (idle) and one mid-conversation.
    let idle = Client::connect(addr).unwrap();
    let mut active = Client::connect(addr).unwrap();
    let q = shapes().remove(1);
    active.query("sales", &q, QueryOptions::default()).unwrap();

    let t0 = Instant::now();
    server.shutdown(); // joins accept thread + both handlers
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown wedged: {:?}",
        t0.elapsed()
    );

    // The old port is free again: bind it directly.
    let rebound = Server::bind(addr, Arc::clone(&db), ServerConfig::default()).unwrap();
    let mut c = Client::connect(rebound.addr()).unwrap();
    let r = c.query("sales", &q, QueryOptions::default()).unwrap();
    assert!(r.rows > 0);
    c.close().unwrap();
    rebound.shutdown();

    drop(idle);
    drop(active);
}

/// Requests pipeline: ids chosen by the client come back on the matching
/// responses in order, over one connection.
#[test]
fn responses_echo_request_ids_for_pipelining() {
    use mcs_engine::wire::{Frame, Request, Response};

    let db = Arc::new(sales_db(512));
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();

    // Hand-rolled pipelining (the Client API is strictly call/response):
    // write three execute frames before reading any response.
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let q = shapes().remove(1);
    let ids = [7u64, 99, 3];
    for id in ids {
        Request::Execute {
            table: "sales".into(),
            query: q.clone(),
            options: QueryOptions::default(),
        }
        .to_frame(id)
        .write_to(&mut stream)
        .unwrap();
    }
    for id in ids {
        let frame = Frame::read_from(&mut stream).unwrap();
        assert_eq!(frame.request_id, id, "responses arrive in request order");
        match Response::decode(frame.kind, &frame.payload).unwrap() {
            Response::Result(r) => assert!(r.rows > 0),
            other => panic!("expected Result, got {:?}", other.kind()),
        }
    }
    server.shutdown();
}
