//! Adversarial protocol tests: truncated, oversized, and bit-flipped
//! frames, garbage bytes, and hostile headers. The contract: a malformed
//! frame earns a best-effort typed error and closes *that* connection —
//! the server never panics, never wedges the accept loop, and keeps
//! serving well-behaved clients throughout.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use mcs_client::Client;
use mcs_engine::wire::{ErrorCode, Frame, MsgKind, Request, Response, HEADER_LEN, MAX_PAYLOAD};
use mcs_engine::{Column, Database, OrderKey, Query, QueryOptions, Table};
use mcs_server::{Server, ServerConfig};
use mcs_test_support::{check, Rng};

fn tiny_db() -> Arc<Database> {
    let mut t = Table::new("sales");
    t.add_column(Column::from_u64s("k", 8, (0..256u64).map(|i| i * 37 % 251)));
    t.add_column(Column::from_u64s("v", 8, 0..256u64));
    let mut db = Database::new();
    db.register(t);
    Arc::new(db)
}

fn probe_query() -> Query {
    let mut q = Query::named("probe");
    q.order_by = vec![OrderKey::asc("k")];
    q.select = vec!["v".into()];
    q
}

fn valid_execute_bytes(id: u64) -> Vec<u8> {
    Request::Execute {
        table: "sales".into(),
        query: probe_query(),
        options: QueryOptions::default(),
    }
    .to_frame(id)
    .to_bytes()
}

/// Read one response frame, tolerating connection teardown.
fn try_read_response(stream: &mut TcpStream) -> Option<Response> {
    let frame = Frame::read_from(stream).ok()?;
    Response::decode(frame.kind, &frame.payload).ok()
}

/// The server must answer garbage with a typed error (when it can) and
/// close the connection — while a concurrent well-behaved client on the
/// same server keeps getting correct answers.
#[test]
fn malformed_frames_close_only_their_own_connection() {
    let db = tiny_db();
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.addr();

    let cases: Vec<(&str, Vec<u8>, Option<ErrorCode>)> = vec![
        (
            "bad magic",
            {
                let mut b = valid_execute_bytes(1);
                b[0] = b'X';
                b
            },
            None,
        ), // magic mismatch: could be any protocol — server may just close
        (
            "bad version",
            {
                let mut b = valid_execute_bytes(2);
                b[4] = 42;
                b
            },
            Some(ErrorCode::UnsupportedVersion),
        ),
        (
            "unknown kind",
            {
                let mut b = valid_execute_bytes(3);
                b[5] = 0x6F;
                b
            },
            Some(ErrorCode::MalformedFrame),
        ),
        (
            "oversized length",
            {
                let mut b = valid_execute_bytes(4);
                b[14..18].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
                b.truncate(HEADER_LEN);
                b
            },
            Some(ErrorCode::OversizedFrame),
        ),
        (
            "payload truncated by the header",
            {
                // Header claims 5 payload bytes; send a valid frame's header
                // with a lying length and garbage after it, then EOF.
                let mut b = valid_execute_bytes(5)[..HEADER_LEN].to_vec();
                b[14..18].copy_from_slice(&5u32.to_le_bytes());
                b.extend_from_slice(&[1, 2, 3, 4, 9]);
                b
            },
            Some(ErrorCode::BadRequest),
        ),
        (
            "response kind sent as request",
            {
                Frame {
                    kind: MsgKind::Result,
                    request_id: 6,
                    payload: Vec::new(),
                }
                .to_bytes()
            },
            Some(ErrorCode::BadRequest),
        ),
        (
            "random garbage",
            vec![0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02],
            None,
        ),
    ];

    for (name, bytes, want_code) in cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream.write_all(&bytes).unwrap();
        // Half-close our writer so a server waiting for more header
        // bytes (short garbage) sees EOF instead of a stuck read.
        stream.shutdown(std::net::Shutdown::Write).ok();

        match try_read_response(&mut stream) {
            Some(Response::Error(e)) => {
                if let Some(code) = want_code {
                    assert_eq!(e.code, code, "{name}: {e}");
                }
            }
            Some(other) => panic!("{name}: expected error/close, got {:?}", other.kind()),
            None => {
                // Closing without a frame is acceptable for undecodable
                // garbage, but not where a typed answer was promised.
                assert!(
                    want_code.is_none() || want_code == Some(ErrorCode::BadRequest),
                    "{name}: connection closed without the typed error"
                );
            }
        }

        // The connection is dead afterwards...
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
        assert!(rest.is_empty(), "{name}: data after the error frame");

        // ...and the server still answers a fresh, well-behaved client.
        let mut healthy = Client::connect(addr).unwrap();
        let r = healthy
            .query("sales", &probe_query(), QueryOptions::default())
            .unwrap_or_else(|e| panic!("{name}: server wedged after malformed frame: {e}"));
        assert_eq!(r.rows, 256);
        healthy.close().unwrap();
    }
    server.shutdown();
}

/// Fuzz: random mutations of a valid frame — truncations, extensions,
/// and bit flips — must never panic the server or wedge the accept
/// loop. (Run with PROPTEST_CASES=500 for a deeper soak.)
#[test]
fn fuzzed_frames_never_wedge_the_server() {
    let db = tiny_db();
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.addr();

    check("server.frame_fuzz", 60, |rng: &mut Rng| {
        let mut bytes = valid_execute_bytes(rng.next_u64());
        match rng.gen_range(0..4u32) {
            0 => {
                let keep = rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
            }
            1 => {
                for _ in 0..rng.gen_range(1..16usize) {
                    bytes.push(rng.gen_range(0..256u64) as u8);
                }
            }
            2 => {
                for _ in 0..rng.gen_range(1..6usize) {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] ^= 1 << rng.gen_range(0..8u32);
                }
            }
            _ => {
                // Hostile header: random kind/len over a valid body.
                bytes[5] = rng.gen_range(0..256u64) as u8;
                let len = rng.gen_range(0..u64::from(u32::MAX)) as u32;
                bytes[14..18].copy_from_slice(&len.to_le_bytes());
            }
        }

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(&bytes).ok();
        stream.shutdown(std::net::Shutdown::Write).ok();
        // Drain whatever the server answers (error frame, valid result
        // if the mutation kept the frame decodable, or plain close).
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    });

    // After the whole barrage the server still serves correctly.
    let mut healthy = Client::connect(addr).unwrap();
    let r = healthy
        .query("sales", &probe_query(), QueryOptions::default())
        .expect("server must survive the fuzz barrage");
    assert_eq!(r.rows, 256);
    healthy.close().unwrap();
    server.shutdown();
}

/// A client that connects and sends nothing (or half a header) must not
/// hold up shutdown: handlers poll the stop flag while blocked on reads.
#[test]
fn idle_and_half_open_connections_do_not_block_shutdown() {
    let db = tiny_db();
    let server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.addr();

    let idle = TcpStream::connect(addr).unwrap();
    let mut half = TcpStream::connect(addr).unwrap();
    half.write_all(b"MCSQ").unwrap(); // 4 of 18 header bytes, then silence

    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "half-open connection wedged shutdown: {:?}",
        t0.elapsed()
    );
    drop(idle);
    drop(half);
}
