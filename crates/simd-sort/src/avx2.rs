//! Explicit AVX2 (`core::arch::x86_64`) kernel implementations.
//!
//! One kernel per bank width. Keys live in `b`-bit lanes of a 256-bit
//! register (16, 8 or 4 lanes); the 32-bit oid payload travels in parallel
//! registers — two `__m256i` for the 16-bit bank, one `__m256i` for the
//! 32-bit bank and one `__m128i` for the 64-bit bank. Every
//! compare-exchange derives a lane mask from the (unsigned) key comparison
//! and applies the width-adjusted mask to the payload blends, so oids are
//! never duplicated or dropped, even on key ties.
//!
//! # Safety
//! These kernels execute AVX2 instructions unconditionally; they must only
//! be reached through the runtime dispatch in `crate::sort`, which
//! checks `is_x86_feature_detected!("avx2")` first.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;

use crate::kernel::Kernel;

/// `a > b` per 32-bit unsigned lane (sign-flip + signed compare).
#[inline(always)]
unsafe fn gt_epu32(a: __m256i, b: __m256i) -> __m256i {
    let sgn = _mm256_set1_epi32(i32::MIN);
    _mm256_cmpgt_epi32(_mm256_xor_si256(a, sgn), _mm256_xor_si256(b, sgn))
}

/// `a > b` per 16-bit unsigned lane.
#[inline(always)]
unsafe fn gt_epu16(a: __m256i, b: __m256i) -> __m256i {
    let sgn = _mm256_set1_epi16(i16::MIN);
    _mm256_cmpgt_epi16(_mm256_xor_si256(a, sgn), _mm256_xor_si256(b, sgn))
}

/// `a > b` per 64-bit unsigned lane.
#[inline(always)]
unsafe fn gt_epu64(a: __m256i, b: __m256i) -> __m256i {
    let sgn = _mm256_set1_epi64x(i64::MIN);
    _mm256_cmpgt_epi64(_mm256_xor_si256(a, sgn), _mm256_xor_si256(b, sgn))
}

/// Narrow a 4×64-bit lane mask to a 4×32-bit lane mask (for the 64-bit
/// bank's `__m128i` payload).
#[inline(always)]
unsafe fn narrow_mask64(m: __m256i) -> __m128i {
    // Pick the low dword of every qword: per 128-bit half -> [d0, d2, _, _].
    let t = _mm256_shuffle_epi32(m, 0b10_00_10_00);
    let lo = _mm256_castsi256_si128(t);
    let hi = _mm256_extracti128_si256(t, 1);
    _mm_unpacklo_epi64(lo, hi)
}

/// Widen a 16×16-bit lane mask to two 8×32-bit lane masks (for the 16-bit
/// bank's payload pair). Lane `i`'s mask lands in `(out.0, out.1)[i/8]`
/// lane `i%8`, matching the payload layout.
#[inline(always)]
unsafe fn widen_mask16(m: __m256i) -> (__m256i, __m256i) {
    (
        _mm256_cvtepi16_epi32(_mm256_castsi256_si128(m)),
        _mm256_cvtepi16_epi32(_mm256_extracti128_si256(m, 1)),
    )
}

// ---------------------------------------------------------------------------
// 32-bit bank: 8 lanes, payload 1:1.
// ---------------------------------------------------------------------------

/// AVX2 kernel for the 32-bit bank (8 lanes).
#[derive(Clone, Copy)]
pub struct A32;

impl Kernel for A32 {
    type K = u32;
    const L: usize = 8;
    type Reg = __m256i;
    type PReg = __m256i;

    #[inline(always)]
    unsafe fn load(k: *const u32) -> __m256i {
        _mm256_loadu_si256(k as *const __m256i)
    }
    #[inline(always)]
    unsafe fn store(k: *mut u32, r: __m256i) {
        _mm256_storeu_si256(k as *mut __m256i, r)
    }
    #[inline(always)]
    unsafe fn loadp(p: *const u32) -> __m256i {
        _mm256_loadu_si256(p as *const __m256i)
    }
    #[inline(always)]
    unsafe fn storep(p: *mut u32, r: __m256i) {
        _mm256_storeu_si256(p as *mut __m256i, r)
    }

    #[inline(always)]
    fn minmax2(
        a: __m256i,
        b: __m256i,
        pa: __m256i,
        pb: __m256i,
    ) -> (__m256i, __m256i, __m256i, __m256i) {
        unsafe {
            let m = gt_epu32(a, b);
            let lo = _mm256_min_epu32(a, b);
            let hi = _mm256_max_epu32(a, b);
            let plo = _mm256_blendv_epi8(pa, pb, m);
            let phi = _mm256_blendv_epi8(pb, pa, m);
            (lo, hi, plo, phi)
        }
    }

    #[inline(always)]
    fn merge2(
        a: __m256i,
        b: __m256i,
        pa: __m256i,
        pb: __m256i,
    ) -> (__m256i, __m256i, __m256i, __m256i) {
        unsafe {
            let rev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
            let rb = _mm256_permutevar8x32_epi32(b, rev);
            let prb = _mm256_permutevar8x32_epi32(pb, rev);
            let (lo, hi, plo, phi) = Self::minmax2(a, rb, pa, prb);
            let (lo, plo) = clean32(lo, plo);
            let (hi, phi) = clean32(hi, phi);
            (lo, hi, plo, phi)
        }
    }
}

/// One intra-register half-cleaner stage at distance `d` for the 32-bit
/// bank; `$shuf` exchanges lanes `i ↔ i^d`, `$blend` is the imm8 selecting
/// the `hi` result for lanes with bit `d` set.
macro_rules! clean32_stage {
    ($v:ident, $p:ident, $shuf:expr, $blend:expr) => {{
        let s = $shuf($v);
        let ps = $shuf($p);
        let m = gt_epu32($v, s);
        let ms = $shuf(m);
        let lo = _mm256_min_epu32($v, s);
        let hi = _mm256_max_epu32($v, s);
        $v = _mm256_blend_epi32(lo, hi, $blend);
        let mf = _mm256_blend_epi32(m, ms, $blend);
        $p = _mm256_blendv_epi8($p, ps, mf);
    }};
}

/// Sort a bitonic 8×u32 register ascending (payload follows).
#[inline(always)]
unsafe fn clean32(mut v: __m256i, mut p: __m256i) -> (__m256i, __m256i) {
    clean32_stage!(
        v,
        p,
        |x| unsafe { _mm256_permute4x64_epi64(x, 0x4E) },
        0b11110000
    ); // d=4
    clean32_stage!(
        v,
        p,
        |x| unsafe { _mm256_shuffle_epi32(x, 0x4E) },
        0b11001100
    ); // d=2
    clean32_stage!(
        v,
        p,
        |x| unsafe { _mm256_shuffle_epi32(x, 0xB1) },
        0b10101010
    ); // d=1
    (v, p)
}

// ---------------------------------------------------------------------------
// 64-bit bank: 4 lanes, payload in a __m128i.
// ---------------------------------------------------------------------------

/// AVX2 kernel for the 64-bit bank (4 lanes).
#[derive(Clone, Copy)]
pub struct A64;

impl Kernel for A64 {
    type K = u64;
    const L: usize = 4;
    type Reg = __m256i;
    type PReg = __m128i;

    #[inline(always)]
    unsafe fn load(k: *const u64) -> __m256i {
        _mm256_loadu_si256(k as *const __m256i)
    }
    #[inline(always)]
    unsafe fn store(k: *mut u64, r: __m256i) {
        _mm256_storeu_si256(k as *mut __m256i, r)
    }
    #[inline(always)]
    unsafe fn loadp(p: *const u32) -> __m128i {
        _mm_loadu_si128(p as *const __m128i)
    }
    #[inline(always)]
    unsafe fn storep(p: *mut u32, r: __m128i) {
        _mm_storeu_si128(p as *mut __m128i, r)
    }

    #[inline(always)]
    fn minmax2(
        a: __m256i,
        b: __m256i,
        pa: __m128i,
        pb: __m128i,
    ) -> (__m256i, __m256i, __m128i, __m128i) {
        unsafe {
            let m = gt_epu64(a, b);
            let lo = _mm256_blendv_epi8(a, b, m);
            let hi = _mm256_blendv_epi8(b, a, m);
            let m128 = narrow_mask64(m);
            let plo = _mm_blendv_epi8(pa, pb, m128);
            let phi = _mm_blendv_epi8(pb, pa, m128);
            (lo, hi, plo, phi)
        }
    }

    #[inline(always)]
    fn merge2(
        a: __m256i,
        b: __m256i,
        pa: __m128i,
        pb: __m128i,
    ) -> (__m256i, __m256i, __m128i, __m128i) {
        unsafe {
            let rb = _mm256_permute4x64_epi64(b, 0x1B);
            let prb = _mm_shuffle_epi32(pb, 0x1B);
            let (lo, hi, plo, phi) = Self::minmax2(a, rb, pa, prb);
            let (lo, plo) = clean64(lo, plo);
            let (hi, phi) = clean64(hi, phi);
            (lo, hi, plo, phi)
        }
    }
}

macro_rules! clean64_stage {
    ($v:ident, $p:ident, $kshuf:expr, $pshuf:expr, $kblend:expr, $pblend:expr) => {{
        let s = $kshuf($v);
        let ps = $pshuf($p);
        let m = gt_epu64($v, s);
        let m128 = narrow_mask64(m);
        let ms128 = $pshuf(m128);
        let lo = _mm256_blendv_epi8($v, s, m);
        let hi = _mm256_blendv_epi8(s, $v, m);
        $v = _mm256_blend_epi32(lo, hi, $kblend);
        let mf = _mm_blend_epi32(m128, ms128, $pblend);
        $p = _mm_blendv_epi8($p, ps, mf);
    }};
}

/// Sort a bitonic 4×u64 register ascending (payload follows).
#[inline(always)]
unsafe fn clean64(mut v: __m256i, mut p: __m128i) -> (__m256i, __m128i) {
    clean64_stage!(
        v,
        p,
        |x| unsafe { _mm256_permute4x64_epi64(x, 0x4E) },
        |x| unsafe { _mm_shuffle_epi32(x, 0x4E) },
        0b11110000,
        0b1100
    ); // d=2
    clean64_stage!(
        v,
        p,
        |x| unsafe { _mm256_permute4x64_epi64(x, 0xB1) },
        |x| unsafe { _mm_shuffle_epi32(x, 0xB1) },
        0b11001100,
        0b1010
    ); // d=1
    (v, p)
}

// ---------------------------------------------------------------------------
// 16-bit bank: 16 lanes, payload in two __m256i.
// ---------------------------------------------------------------------------

/// AVX2 kernel for the 16-bit bank (16 lanes).
#[derive(Clone, Copy)]
pub struct A16;

impl Kernel for A16 {
    type K = u16;
    const L: usize = 16;
    type Reg = __m256i;
    /// `(lanes 0..8, lanes 8..16)` of the 32-bit payload.
    type PReg = (__m256i, __m256i);

    #[inline(always)]
    unsafe fn load(k: *const u16) -> __m256i {
        _mm256_loadu_si256(k as *const __m256i)
    }
    #[inline(always)]
    unsafe fn store(k: *mut u16, r: __m256i) {
        _mm256_storeu_si256(k as *mut __m256i, r)
    }
    #[inline(always)]
    unsafe fn loadp(p: *const u32) -> (__m256i, __m256i) {
        (
            _mm256_loadu_si256(p as *const __m256i),
            _mm256_loadu_si256((p as *const __m256i).add(1)),
        )
    }
    #[inline(always)]
    unsafe fn storep(p: *mut u32, r: (__m256i, __m256i)) {
        _mm256_storeu_si256(p as *mut __m256i, r.0);
        _mm256_storeu_si256((p as *mut __m256i).add(1), r.1);
    }

    #[inline(always)]
    fn minmax2(
        a: __m256i,
        b: __m256i,
        pa: (__m256i, __m256i),
        pb: (__m256i, __m256i),
    ) -> (__m256i, __m256i, (__m256i, __m256i), (__m256i, __m256i)) {
        unsafe {
            let m = gt_epu16(a, b);
            let lo = _mm256_min_epu16(a, b);
            let hi = _mm256_max_epu16(a, b);
            let (m0, m1) = widen_mask16(m);
            let plo = (
                _mm256_blendv_epi8(pa.0, pb.0, m0),
                _mm256_blendv_epi8(pa.1, pb.1, m1),
            );
            let phi = (
                _mm256_blendv_epi8(pb.0, pa.0, m0),
                _mm256_blendv_epi8(pb.1, pa.1, m1),
            );
            (lo, hi, plo, phi)
        }
    }

    #[inline(always)]
    fn merge2(
        a: __m256i,
        b: __m256i,
        pa: (__m256i, __m256i),
        pb: (__m256i, __m256i),
    ) -> (__m256i, __m256i, (__m256i, __m256i), (__m256i, __m256i)) {
        unsafe {
            let rb = reverse16(b);
            let rev8 = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
            let prb = (
                _mm256_permutevar8x32_epi32(pb.1, rev8),
                _mm256_permutevar8x32_epi32(pb.0, rev8),
            );
            let (lo, hi, plo, phi) = Self::minmax2(a, rb, pa, prb);
            let (lo, plo) = clean16(lo, plo);
            let (hi, phi) = clean16(hi, phi);
            (lo, hi, plo, phi)
        }
    }
}

/// Reverse the 16 u16 lanes of a register.
#[inline(always)]
unsafe fn reverse16(v: __m256i) -> __m256i {
    let v = _mm256_permute4x64_epi64(v, 0x4E); // swap 128-bit halves
    let v = _mm256_shuffle_epi32(v, 0x1B); // reverse dwords per half
    let v = _mm256_shufflelo_epi16(v, 0xB1); // swap u16 pairs (low quads)
    _mm256_shufflehi_epi16(v, 0xB1) // swap u16 pairs (high quads)
}

/// Swap adjacent u16 lanes (`i ↔ i^1`).
#[inline(always)]
unsafe fn swap1_16(v: __m256i) -> __m256i {
    let v = _mm256_shufflelo_epi16(v, 0xB1);
    _mm256_shufflehi_epi16(v, 0xB1)
}

/// Sort a bitonic 16×u16 register ascending (payload pair follows).
///
/// Masks are widened to payload (32-bit-lane) space once per stage and
/// permuted/blended there, mirroring the payload data movement exactly.
#[inline(always)]
unsafe fn clean16(mut v: __m256i, mut p: (__m256i, __m256i)) -> (__m256i, (__m256i, __m256i)) {
    // d = 8: key lanes i <-> i^8 is a 128-bit half swap; payload regs swap.
    {
        let s = _mm256_permute4x64_epi64(v, 0x4E);
        let m = gt_epu16(v, s);
        let (m0, _m1) = widen_mask16(m);
        let lo = _mm256_min_epu16(v, s);
        let hi = _mm256_max_epu16(v, s);
        v = _mm256_blend_epi32(lo, hi, 0b11110000);
        // mshuf = (m1, m0); mfinal = (m0, mshuf.1) = (m0, m0).
        p = (
            _mm256_blendv_epi8(p.0, p.1, m0),
            _mm256_blendv_epi8(p.1, p.0, m0),
        );
    }
    // d = 4: key lanes i <-> i^4 is a 64-bit swap within each 128; payload
    // swaps lanes 0..4 <-> 4..8 within each reg.
    {
        let s = _mm256_shuffle_epi32(v, 0x4E);
        let m = gt_epu16(v, s);
        let (m0, m1) = widen_mask16(m);
        let lo = _mm256_min_epu16(v, s);
        let hi = _mm256_max_epu16(v, s);
        v = _mm256_blend_epi32(lo, hi, 0b11001100);
        let ps0 = _mm256_permute4x64_epi64(p.0, 0x4E);
        let ps1 = _mm256_permute4x64_epi64(p.1, 0x4E);
        let ms0 = _mm256_permute4x64_epi64(m0, 0x4E);
        let ms1 = _mm256_permute4x64_epi64(m1, 0x4E);
        let mf0 = _mm256_blend_epi32(m0, ms0, 0b11110000);
        let mf1 = _mm256_blend_epi32(m1, ms1, 0b11110000);
        p = (
            _mm256_blendv_epi8(p.0, ps0, mf0),
            _mm256_blendv_epi8(p.1, ps1, mf1),
        );
    }
    // d = 2: key lanes i <-> i^2 is a dword swap at distance 1; payload
    // swaps u32 lanes at distance 2.
    {
        let s = _mm256_shuffle_epi32(v, 0xB1);
        let m = gt_epu16(v, s);
        let (m0, m1) = widen_mask16(m);
        let lo = _mm256_min_epu16(v, s);
        let hi = _mm256_max_epu16(v, s);
        v = _mm256_blend_epi32(lo, hi, 0b10101010);
        let ps0 = _mm256_shuffle_epi32(p.0, 0x4E);
        let ps1 = _mm256_shuffle_epi32(p.1, 0x4E);
        let ms0 = _mm256_shuffle_epi32(m0, 0x4E);
        let ms1 = _mm256_shuffle_epi32(m1, 0x4E);
        let mf0 = _mm256_blend_epi32(m0, ms0, 0b11001100);
        let mf1 = _mm256_blend_epi32(m1, ms1, 0b11001100);
        p = (
            _mm256_blendv_epi8(p.0, ps0, mf0),
            _mm256_blendv_epi8(p.1, ps1, mf1),
        );
    }
    // d = 1: adjacent u16 swap; payload swaps adjacent u32 lanes.
    {
        let s = swap1_16(v);
        let m = gt_epu16(v, s);
        let (m0, m1) = widen_mask16(m);
        let lo = _mm256_min_epu16(v, s);
        let hi = _mm256_max_epu16(v, s);
        v = _mm256_blend_epi16(lo, hi, 0b10101010);
        let ps0 = _mm256_shuffle_epi32(p.0, 0xB1);
        let ps1 = _mm256_shuffle_epi32(p.1, 0xB1);
        let ms0 = _mm256_shuffle_epi32(m0, 0xB1);
        let ms1 = _mm256_shuffle_epi32(m1, 0xB1);
        let mf0 = _mm256_blend_epi32(m0, ms0, 0b10101010);
        let mf1 = _mm256_blend_epi32(m1, ms1, 0b10101010);
        p = (
            _mm256_blendv_epi8(p.0, ps0, mf0),
            _mm256_blendv_epi8(p.1, ps1, mf1),
        );
    }
    (v, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn have_avx2() -> bool {
        std::is_x86_feature_detected!("avx2")
    }

    /// Cross-check an AVX2 kernel's merge2 against the portable one over
    /// randomized sorted registers.
    macro_rules! merge2_matches_portable {
        ($test:ident, $avx:ty, $port:ty, $kty:ty, $l:expr) => {
            #[test]
            fn $test() {
                if !have_avx2() {
                    eprintln!("skipping: no AVX2");
                    return;
                }
                let mut state = 0x9E3779B97F4A7C15u64;
                let mut next = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state
                };
                for trial in 0..500 {
                    let mut a: Vec<$kty> = (0..$l).map(|_| next() as $kty).collect();
                    let mut b: Vec<$kty> = (0..$l).map(|_| next() as $kty).collect();
                    if trial % 5 == 0 {
                        // Stress ties.
                        for x in a.iter_mut() {
                            *x &= 0x3;
                        }
                        for x in b.iter_mut() {
                            *x &= 0x3;
                        }
                    }
                    a.sort_unstable();
                    b.sort_unstable();
                    let pa: Vec<u32> = (0..$l as u32).collect();
                    let pb: Vec<u32> = ($l as u32..2 * $l as u32).collect();
                    unsafe {
                        let (xl, xh, xpl, xph) = <$avx>::merge2(
                            <$avx>::load(a.as_ptr()),
                            <$avx>::load(b.as_ptr()),
                            <$avx>::loadp(pa.as_ptr()),
                            <$avx>::loadp(pb.as_ptr()),
                        );
                        let mut got_k = vec![0 as $kty; 2 * $l];
                        let mut got_p = vec![0u32; 2 * $l];
                        <$avx>::store(got_k.as_mut_ptr(), xl);
                        <$avx>::store(got_k.as_mut_ptr().add($l), xh);
                        <$avx>::storep(got_p.as_mut_ptr(), xpl);
                        <$avx>::storep(got_p.as_mut_ptr().add($l), xph);

                        // Sorted keys.
                        assert!(got_k.windows(2).all(|w| w[0] <= w[1]), "{got_k:?}");
                        // Payload permutation integrity: the multiset of
                        // (key, oid) pairs is preserved.
                        let mut want: Vec<($kty, u32)> = a
                            .iter()
                            .chain(b.iter())
                            .copied()
                            .zip(pa.iter().chain(pb.iter()).copied())
                            .collect();
                        let mut got: Vec<($kty, u32)> =
                            got_k.iter().copied().zip(got_p.iter().copied()).collect();
                        want.sort_unstable();
                        got.sort_unstable();
                        assert_eq!(want, got);
                    }
                }
            }
        };
    }

    merge2_matches_portable!(merge2_a32, A32, crate::portable::P32, u32, 8);
    merge2_matches_portable!(merge2_a16, A16, crate::portable::P16, u16, 16);
    merge2_matches_portable!(merge2_a64, A64, crate::portable::P64, u64, 4);

    #[test]
    fn reverse16_is_reverse() {
        if !have_avx2() {
            return;
        }
        let v: Vec<u16> = (0..16).collect();
        unsafe {
            let r = reverse16(A16::load(v.as_ptr()));
            let mut out = vec![0u16; 16];
            A16::store(out.as_mut_ptr(), r);
            let want: Vec<u16> = (0..16).rev().collect();
            assert_eq!(out, want);
        }
    }

    #[test]
    fn minmax2_tie_payload_integrity_avx2() {
        if !have_avx2() {
            return;
        }
        let k = [42u32; 8];
        let pa: Vec<u32> = (0..8).collect();
        let pb: Vec<u32> = (8..16).collect();
        unsafe {
            let (_, _, plo, phi) = A32::minmax2(
                A32::load(k.as_ptr()),
                A32::load(k.as_ptr()),
                A32::loadp(pa.as_ptr()),
                A32::loadp(pb.as_ptr()),
            );
            let mut lo = vec![0u32; 8];
            let mut hi = vec![0u32; 8];
            A32::storep(lo.as_mut_ptr(), plo);
            A32::storep(hi.as_mut_ptr(), phi);
            assert_eq!(lo, pa);
            assert_eq!(hi, pb);
        }
    }
}
