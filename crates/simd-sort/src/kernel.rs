//! The [`Kernel`] abstraction: register-level primitives of the SIMD
//! merge-sort, plus the generic three-phase skeleton built on top of it.
//!
//! A kernel fixes a bank width (16/32/64 bits) and provides
//! *key registers* (`Reg`, `L` lanes of the key type) and *payload
//! registers* (`PReg`, `L` 32-bit object identifiers). Two concrete
//! families implement it:
//!
//! * [`crate::portable`] — plain fixed-size-array code, correct on every
//!   architecture;
//! * [`crate::avx2`] — explicit `core::arch::x86_64` intrinsics
//!   (runtime-dispatched).
//!
//! The skeleton implements the merge-sort of Balkesen et al. that the
//! paper's cost model assumes (Eq. 5):
//!
//! 1. **in-register sorting** ([`phase1_block_sort`]): vertical Batcher
//!    network over `L` registers + `L×L` transpose → sorted runs of `L`;
//! 2. **in-cache merging** ([`merge_pass`]): streaming binary bitonic
//!    merges doubling the run length;
//! 3. **out-of-cache merging** (see [`crate::multiway`]): `F`-way merge
//!    passes.

use crate::key::Key;
use crate::network::cached_network;

/// Register-level sort primitives for one bank width.
///
/// # Safety contract
/// `load`/`store` methods read/write exactly `L` elements; callers must
/// guarantee the pointed-to ranges are valid. All buffers handled by the
/// skeleton are padded to multiples of `L*L`, so every vector access is
/// full-width.
pub trait Kernel {
    /// Key code type (`u16`/`u32`/`u64`).
    type K: Key;
    /// Lane count (`256 / K::BITS`).
    const L: usize;
    /// Key register: `L` lanes of `K`.
    type Reg: Copy;
    /// Payload register(s): `L` lanes of `u32` oids.
    type PReg: Copy;

    /// Load `L` keys.
    ///
    /// # Safety
    /// `k` must be valid for reading `L` elements.
    unsafe fn load(k: *const Self::K) -> Self::Reg;
    /// Store `L` keys.
    ///
    /// # Safety
    /// `k` must be valid for writing `L` elements.
    unsafe fn store(k: *mut Self::K, r: Self::Reg);
    /// Load `L` oids.
    ///
    /// # Safety
    /// `p` must be valid for reading `L` elements.
    unsafe fn loadp(p: *const u32) -> Self::PReg;
    /// Store `L` oids.
    ///
    /// # Safety
    /// `p` must be valid for writing `L` elements.
    unsafe fn storep(p: *mut u32, r: Self::PReg);

    /// Element-wise compare-exchange of two registers with payloads:
    /// returns `(min, max, payload-of-min, payload-of-max)` per lane.
    /// On ties the payload of `a` stays with the min — no oid is ever
    /// duplicated or dropped.
    fn minmax2(
        a: Self::Reg,
        b: Self::Reg,
        pa: Self::PReg,
        pb: Self::PReg,
    ) -> (Self::Reg, Self::Reg, Self::PReg, Self::PReg);

    /// Full bitonic merge of two *sorted ascending* registers:
    /// `(a, b)` → `(low half sorted, high half sorted)`, payloads follow.
    fn merge2(
        a: Self::Reg,
        b: Self::Reg,
        pa: Self::PReg,
        pb: Self::PReg,
    ) -> (Self::Reg, Self::Reg, Self::PReg, Self::PReg);
}

/// Phase (a): sort every consecutive `L*L` block into `L` sorted runs of
/// length `L` each, laid out contiguously.
///
/// The block is viewed as `L` registers (rows); a Batcher network applied
/// *vertically* (whole-register compare-exchanges) sorts each column; the
/// transpose then writes column `c` out as contiguous run `c`.
///
/// # Safety
/// `keys.len() == oids.len()` and both are a multiple of `L*L`.
#[inline(always)]
pub unsafe fn phase1_block_sort<Kn: Kernel>(keys: &mut [Kn::K], oids: &mut [u32]) {
    let l = Kn::L;
    let block = l * l;
    debug_assert_eq!(keys.len(), oids.len());
    debug_assert_eq!(keys.len() % block, 0);
    let net = cached_network(l);

    // Temp buffers for the in-block transpose, on the stack: the max
    // lane count is 16, so a block is at most 256 elements. Heap
    // allocations here would break the warm round loop's zero-allocation
    // guarantee (two per sort invocation).
    debug_assert!(block <= 256);
    let mut tk = [Kn::K::default(); 256];
    let mut to = [0u32; 256];

    let mut base = 0;
    while base < keys.len() {
        let kp = keys.as_ptr().add(base);
        let op = oids.as_ptr().add(base);

        // Load L rows. Fixed-capacity register file (max lane count is 16).
        let mut kr: [Kn::Reg; 16] = [Kn::load(kp); 16];
        let mut pr: [Kn::PReg; 16] = [Kn::loadp(op); 16];
        for (r, (krr, prr)) in kr.iter_mut().zip(pr.iter_mut()).enumerate().take(l) {
            *krr = Kn::load(kp.add(r * l));
            *prr = Kn::loadp(op.add(r * l));
        }

        // Vertical sorting network: after this, each lane (column) is
        // sorted across the L rows.
        for &(i, j) in net {
            let (lo, hi, plo, phi) = Kn::minmax2(kr[i], kr[j], pr[i], pr[j]);
            kr[i] = lo;
            kr[j] = hi;
            pr[i] = plo;
            pr[j] = phi;
        }

        // Spill rows and transpose through memory: run c = column c.
        for r in 0..l {
            Kn::store(tk.as_mut_ptr().add(r * l), kr[r]);
            Kn::storep(to.as_mut_ptr().add(r * l), pr[r]);
        }
        let kout = keys.as_mut_ptr().add(base);
        let oout = oids.as_mut_ptr().add(base);
        for c in 0..l {
            for r in 0..l {
                *kout.add(c * l + r) = tk[r * l + c];
                *oout.add(c * l + r) = to[r * l + c];
            }
        }
        base += block;
    }
}

/// Streaming binary bitonic merge of two sorted runs into `dst`.
///
/// Classic SIMD merge loop: keep a carry register of the `L` largest
/// elements seen; at each step load the next vector from whichever run has
/// the smaller head element, `merge2` with the carry, emit the low half.
///
/// # Safety
/// All four source slices have lengths that are non-zero multiples of `L`;
/// `dst` slices hold exactly `a.len() + b.len()` elements.
#[inline(always)]
pub unsafe fn merge_runs<Kn: Kernel>(
    ak: &[Kn::K],
    ao: &[u32],
    bk: &[Kn::K],
    bo: &[u32],
    dk: &mut [Kn::K],
    doids: &mut [u32],
) {
    let l = Kn::L;
    debug_assert!(ak.len() % l == 0 && !ak.is_empty());
    debug_assert!(bk.len() % l == 0 && !bk.is_empty());
    debug_assert_eq!(dk.len(), ak.len() + bk.len());

    let mut ai = l;
    let mut bi = l;
    let mut out = 0usize;

    let va = Kn::load(ak.as_ptr());
    let pa = Kn::loadp(ao.as_ptr());
    let vb = Kn::load(bk.as_ptr());
    let pb = Kn::loadp(bo.as_ptr());
    let (lo, hi, plo, phi) = Kn::merge2(va, vb, pa, pb);
    Kn::store(dk.as_mut_ptr(), lo);
    Kn::storep(doids.as_mut_ptr(), plo);
    out += l;
    let mut ck = hi;
    let mut cp = phi;

    loop {
        if ai >= ak.len() && bi >= bk.len() {
            Kn::store(dk.as_mut_ptr().add(out), ck);
            Kn::storep(doids.as_mut_ptr().add(out), cp);
            break;
        }
        let take_a = bi >= bk.len() || (ai < ak.len() && ak[ai] <= bk[bi]);
        let (vn, pn) = if take_a {
            let v = Kn::load(ak.as_ptr().add(ai));
            let p = Kn::loadp(ao.as_ptr().add(ai));
            ai += l;
            (v, p)
        } else {
            let v = Kn::load(bk.as_ptr().add(bi));
            let p = Kn::loadp(bo.as_ptr().add(bi));
            bi += l;
            (v, p)
        };
        let (lo, hi, plo, phi) = Kn::merge2(ck, vn, cp, pn);
        Kn::store(dk.as_mut_ptr().add(out), lo);
        Kn::storep(doids.as_mut_ptr().add(out), plo);
        out += l;
        ck = hi;
        cp = phi;
    }
}

/// One binary merge pass over the whole buffer: merges adjacent run pairs
/// of length `run` from `src` into `dst` (runs of `2*run`). A trailing
/// unpaired run is copied through.
///
/// # Safety
/// `src`/`dst` lengths are equal multiples of `L`; `run` is a multiple of `L`.
#[inline(always)]
pub unsafe fn merge_pass<Kn: Kernel>(
    sk: &[Kn::K],
    so: &[u32],
    dk: &mut [Kn::K],
    doids: &mut [u32],
    run: usize,
) {
    let n = sk.len();
    debug_assert_eq!(n % Kn::L, 0);
    debug_assert_eq!(run % Kn::L, 0);
    let mut start = 0usize;
    while start < n {
        let mid = (start + run).min(n);
        let end = (start + 2 * run).min(n);
        if mid >= end {
            dk[start..end].copy_from_slice(&sk[start..end]);
            doids[start..end].copy_from_slice(&so[start..end]);
        } else {
            merge_runs::<Kn>(
                &sk[start..mid],
                &so[start..mid],
                &sk[mid..end],
                &so[mid..end],
                &mut dk[start..end],
                &mut doids[start..end],
            );
        }
        start = end;
    }
}
