//! The [`Key`] trait: unsigned integer code types that can act as sort keys.
//!
//! In a main-memory column-store all attribute values are dictionary- or
//! scale-encoded into fixed-width unsigned integer *codes* (see
//! `mcs-columnar`). A `w`-bit column is physically held in the smallest of
//! `u16`/`u32`/`u64` that fits, matching the AVX2 *bank* sizes the paper
//! uses (`b ∈ {16, 32, 64}`; 8-bit banks are excluded per the paper's
//! footnote 4).

/// An unsigned fixed-width sort-key code.
///
/// Implemented for `u16`, `u32` and `u64` only (sealed). The associated
/// constants describe the SIMD bank this key type maps to.
pub trait Key:
    Copy + Ord + Eq + Default + Send + Sync + core::fmt::Debug + sealed::Sealed + 'static
{
    /// Bank width in bits (16, 32 or 64).
    const BITS: u32;
    /// Number of SIMD lanes a 256-bit register holds for this bank.
    const LANES: usize;
    /// Maximum representable code; used as the padding sentinel.
    const MAX_KEY: Self;
    /// Widen to `u64` (codes are unsigned, zero-extended).
    fn to_u64(self) -> u64;
    /// Truncating narrow from `u64`.
    fn from_u64(v: u64) -> Self;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

impl Key for u16 {
    const BITS: u32 = 16;
    const LANES: usize = 16;
    const MAX_KEY: Self = u16::MAX;
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v as u16
    }
}

impl Key for u32 {
    const BITS: u32 = 32;
    const LANES: usize = 8;
    const MAX_KEY: Self = u32::MAX;
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

impl Key for u64 {
    const BITS: u32 = 64;
    const LANES: usize = 4;
    const MAX_KEY: Self = u64::MAX;
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v
    }
}

/// SIMD bank width, as in the paper's `R_i : w/[b]` notation.
///
/// A `b`-bit bank gives `S/b = 256/b` data-level parallelism on AVX2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bank {
    /// 16-bit banks: 16 lanes per 256-bit register.
    B16,
    /// 32-bit banks: 8 lanes per 256-bit register.
    B32,
    /// 64-bit banks: 4 lanes per 256-bit register.
    B64,
}

impl Bank {
    /// All banks, narrowest first.
    pub const ALL: [Bank; 3] = [Bank::B16, Bank::B32, Bank::B64];

    /// Bank width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            Bank::B16 => 16,
            Bank::B32 => 32,
            Bank::B64 => 64,
        }
    }

    /// SIMD lanes per 256-bit register: the degree of data parallelism `S/b`.
    #[inline]
    pub fn lanes(self) -> usize {
        (256 / self.bits()) as usize
    }

    /// Bytes occupied by one code in this bank (`b/8`).
    #[inline]
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// The narrowest bank that can hold a `width`-bit code, the paper's
    /// "minimum bank size that is enough to hold `C_i`".
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 64.
    #[inline]
    pub fn min_for_width(width: u32) -> Bank {
        assert!(
            (1..=64).contains(&width),
            "code width must be in 1..=64, got {width}"
        );
        if width <= 16 {
            Bank::B16
        } else if width <= 32 {
            Bank::B32
        } else {
            Bank::B64
        }
    }

    /// Whether a `width`-bit code fits in this bank.
    #[inline]
    pub fn holds(self, width: u32) -> bool {
        width <= self.bits()
    }
}

impl core::fmt::Display for Bank {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}]", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_geometry() {
        assert_eq!(Bank::B16.lanes(), 16);
        assert_eq!(Bank::B32.lanes(), 8);
        assert_eq!(Bank::B64.lanes(), 4);
        assert_eq!(Bank::B16.bytes(), 2);
        assert_eq!(Bank::B32.bytes(), 4);
        assert_eq!(Bank::B64.bytes(), 8);
    }

    #[test]
    fn min_bank_boundaries() {
        assert_eq!(Bank::min_for_width(1), Bank::B16);
        assert_eq!(Bank::min_for_width(16), Bank::B16);
        assert_eq!(Bank::min_for_width(17), Bank::B32);
        assert_eq!(Bank::min_for_width(32), Bank::B32);
        assert_eq!(Bank::min_for_width(33), Bank::B64);
        assert_eq!(Bank::min_for_width(64), Bank::B64);
    }

    #[test]
    #[should_panic]
    fn min_bank_rejects_zero() {
        Bank::min_for_width(0);
    }

    #[test]
    #[should_panic]
    fn min_bank_rejects_over_64() {
        Bank::min_for_width(65);
    }

    #[test]
    fn key_constants_match_banks() {
        assert_eq!(<u16 as Key>::LANES, Bank::B16.lanes());
        assert_eq!(<u32 as Key>::LANES, Bank::B32.lanes());
        assert_eq!(<u64 as Key>::LANES, Bank::B64.lanes());
    }

    #[test]
    fn holds() {
        assert!(Bank::B16.holds(16));
        assert!(!Bank::B16.holds(17));
        assert!(Bank::B64.holds(64));
    }

    #[test]
    fn display() {
        assert_eq!(Bank::B32.to_string(), "[32]");
    }
}
