//! # mcs-simd-sort
//!
//! SIMD merge-sort with a sorting-network kernel over 16/32/64-bit banks,
//! sorting `(key, oid)` pairs — the `SIMD-Sort` substrate of the paper
//! *Fast Multi-Column Sorting in Main-Memory Column-Stores* (SIGMOD'16).
//!
//! The implementation follows the merge-sort of Balkesen et al. that the
//! paper's cost model (Eq. 5) decomposes into three phases:
//!
//! 1. **in-register sorting** — vertical Batcher networks over `L = 256/b`
//!    registers + transpose, producing sorted runs of `L`;
//! 2. **in-cache merging** — streaming binary bitonic merge networks until
//!    runs reach half the L2 cache;
//! 3. **out-of-cache merging** — `F`-way loser-tree merge passes.
//!
//! Keys occupy `b`-bit lanes; the 32-bit oid payload travels in parallel
//! registers, so narrower banks really do get proportionally more data
//! parallelism — the property code massaging exploits.
//!
//! On x86-64 with AVX2 the explicit-intrinsics kernels in [`avx2`] are
//! used (runtime-detected); elsewhere (or with
//! [`SortConfig::force_portable`]) the portable array kernels run.
//!
//! ```
//! use mcs_simd_sort::{sort_pairs, Bank};
//!
//! let mut keys: Vec<u32> = vec![30, 10, 20, 40];
//! let mut oids: Vec<u32> = (0..4).collect();
//! sort_pairs(&mut keys, &mut oids);
//! assert_eq!(keys, vec![10, 20, 30, 40]);
//! assert_eq!(oids, vec![1, 2, 0, 3]);
//! assert_eq!(Bank::min_for_width(17), Bank::B32);
//! ```

#![warn(missing_docs)]

#[cfg(target_arch = "x86_64")]
pub mod avx2;
pub mod kernel;
mod key;
mod merge_tree;
pub mod multiway;
pub mod network;
pub mod ovc;
pub mod parallel;
pub mod phase;
pub mod portable;
pub mod radix;
pub mod scalar;
mod scratch;
mod segmented;
mod sort;

pub use key::{Bank, Key};
pub use mcs_cancel::{CancelCause, CancelToken, CHECK_INTERVAL};
pub use mcs_morsel::{Morsel, MorselCounts, MorselQueue};
pub use multiway::{
    multiway_merge_ovc_scratch, multiway_merge_ovc_scratch_cancellable, multiway_merge_scratch,
    multiway_merge_scratch_cancellable, multiway_pass_ovc_scratch,
    multiway_pass_ovc_scratch_cancellable, multiway_pass_scratch,
    multiway_pass_scratch_cancellable, StreamHead, StreamMerger, StreamSource,
};
pub use ovc::{ovc_encode, take_merge_counters, MergeCounters};
pub use parallel::{
    for_each_chunk, sort_pairs_in_groups_parallel, sort_pairs_in_groups_parallel_scratch,
    sort_pairs_parallel, WorkerPanic,
};
pub use phase::PhaseTimes;
pub use radix::{sort_pairs_radix, sort_pairs_radix_in_groups};
pub use scalar::{insertion_sort_pairs, sort_pairs_scalar};
pub use scratch::{MergeScratch, SortScratch, WorkerScratch};
pub use segmented::{
    group_boundaries, sort_pairs_in_groups, sort_pairs_in_groups_scratch, GroupBounds,
    SegmentedSortStats,
};
pub use sort::{avx2_available, SortConfig, SortableKey, DEFAULT_PARALLEL_CUTOFF_ROWS};

/// Sort `(keys, oids)` ascending by key with default configuration.
///
/// `keys` and `oids` must be the same length; oid values must be
/// `< u32::MAX` (reserved as the internal padding sentinel).
pub fn sort_pairs<K: SortableKey>(keys: &mut [K], oids: &mut [u32]) {
    K::sort_pairs_with(keys, oids, &SortConfig::default());
}

/// Sort `(keys, oids)` ascending by key with an explicit [`SortConfig`].
pub fn sort_pairs_with<K: SortableKey>(keys: &mut [K], oids: &mut [u32], cfg: &SortConfig) {
    K::sort_pairs_with(keys, oids, cfg);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example() {
        let mut keys: Vec<u32> = vec![30, 10, 20, 40];
        let mut oids: Vec<u32> = (0..4).collect();
        sort_pairs(&mut keys, &mut oids);
        assert_eq!(keys, vec![10, 20, 30, 40]);
        assert_eq!(oids, vec![1, 2, 0, 3]);
    }
}
