//! SIMD multiway merging via a tree of streaming binary bitonic merges
//! with small cache-resident FIFO buffers — the out-of-cache phase done
//! the way Balkesen et al. describe it, instead of a scalar loser tree.
//!
//! An `F`-way merge is a binary tree with `F` leaves (the input runs).
//! Every internal node repeatedly performs the same streaming step the
//! in-cache phase uses — `merge2` a carry register with the next vector
//! from whichever child has the smaller head — appending the low half to
//! a small buffer its parent consumes. All data movement is through the
//! [`Kernel`]'s SIMD primitives; per element the work is `log2(F)` vector
//! merges rather than `log2(F)` branchy scalar comparisons.

use core::ops::Range;

use crate::kernel::Kernel;
#[cfg(test)]
use crate::key::Key;

enum Node<'a, Kn: Kernel> {
    Leaf {
        keys: &'a [Kn::K],
        oids: &'a [u32],
        pos: usize,
    },
    Inner {
        left: Box<Node<'a, Kn>>,
        right: Box<Node<'a, Kn>>,
        buf_k: Vec<Kn::K>,
        buf_o: Vec<u32>,
        pos: usize,
        len: usize,
        carry: Option<(Kn::Reg, Kn::PReg)>,
        children_done: bool,
    },
}

impl<'a, Kn: Kernel> Node<'a, Kn> {
    fn build(keys: &'a [Kn::K], oids: &'a [u32], runs: &[Range<usize>], buf_cap: usize) -> Self {
        debug_assert!(!runs.is_empty());
        if runs.len() == 1 {
            let r = runs[0].clone();
            Node::Leaf {
                keys: &keys[r.clone()],
                oids: &oids[r],
                pos: 0,
            }
        } else {
            let mid = runs.len() / 2;
            Node::Inner {
                left: Box::new(Node::build(keys, oids, &runs[..mid], buf_cap)),
                right: Box::new(Node::build(keys, oids, &runs[mid..], buf_cap)),
                buf_k: vec![Kn::K::default(); buf_cap],
                buf_o: vec![0u32; buf_cap],
                pos: 0,
                len: 0,
                carry: None,
                children_done: false,
            }
        }
    }

    /// Head key, refilling inner buffers as needed; `None` = exhausted.
    fn peek(&mut self) -> Option<Kn::K> {
        match self {
            Node::Leaf { keys, pos, .. } => keys.get(*pos).copied(),
            Node::Inner { .. } => {
                self.ensure_buffered();
                match self {
                    Node::Inner {
                        buf_k, pos, len, ..
                    } => {
                        if pos < len {
                            Some(buf_k[*pos])
                        } else {
                            None
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Consume the next `L` elements as registers. Caller must have seen
    /// `peek() == Some(_)`; availability is always a multiple of `L`.
    ///
    /// # Safety
    /// All runs and buffers hold whole multiples of `L` elements, so a
    /// non-empty node always has ≥ `L` readable elements.
    unsafe fn pop_vec(&mut self) -> (Kn::Reg, Kn::PReg) {
        match self {
            Node::Leaf { keys, oids, pos } => {
                debug_assert!(*pos + Kn::L <= keys.len());
                let v = Kn::load(keys.as_ptr().add(*pos));
                let p = Kn::loadp(oids.as_ptr().add(*pos));
                *pos += Kn::L;
                (v, p)
            }
            Node::Inner {
                buf_k, buf_o, pos, ..
            } => {
                let v = Kn::load(buf_k.as_ptr().add(*pos));
                let p = Kn::loadp(buf_o.as_ptr().add(*pos));
                *pos += Kn::L;
                (v, p)
            }
        }
    }

    /// For inner nodes: top the buffer up (compacting first).
    fn ensure_buffered(&mut self) {
        let Node::Inner {
            left,
            right,
            buf_k,
            buf_o,
            pos,
            len,
            carry,
            children_done,
        } = self
        else {
            return;
        };
        if *pos < *len {
            return;
        }
        *pos = 0;
        *len = 0;
        if *children_done && carry.is_none() {
            return;
        }
        let cap = buf_k.len();
        while *len + Kn::L <= cap {
            // One streaming step appends exactly L elements (or finishes).
            match carry.take() {
                None => {
                    let lh = left.peek();
                    let rh = right.peek();
                    match (lh, rh) {
                        (None, None) => {
                            *children_done = true;
                            break;
                        }
                        (Some(_), None) => unsafe {
                            let (v, p) = left.pop_vec();
                            Kn::store(buf_k.as_mut_ptr().add(*len), v);
                            Kn::storep(buf_o.as_mut_ptr().add(*len), p);
                            *len += Kn::L;
                        },
                        (None, Some(_)) => unsafe {
                            let (v, p) = right.pop_vec();
                            Kn::store(buf_k.as_mut_ptr().add(*len), v);
                            Kn::storep(buf_o.as_mut_ptr().add(*len), p);
                            *len += Kn::L;
                        },
                        (Some(_), Some(_)) => unsafe {
                            let (va, pa) = left.pop_vec();
                            let (vb, pb) = right.pop_vec();
                            let (lo, hi, plo, phi) = Kn::merge2(va, vb, pa, pb);
                            Kn::store(buf_k.as_mut_ptr().add(*len), lo);
                            Kn::storep(buf_o.as_mut_ptr().add(*len), plo);
                            *len += Kn::L;
                            *carry = Some((hi, phi));
                        },
                    }
                }
                Some((ck, cp)) => {
                    let lh = left.peek();
                    let rh = right.peek();
                    let take_left = match (lh, rh) {
                        (None, None) => {
                            // Flush the carry; children drained.
                            unsafe {
                                Kn::store(buf_k.as_mut_ptr().add(*len), ck);
                                Kn::storep(buf_o.as_mut_ptr().add(*len), cp);
                            }
                            *len += Kn::L;
                            *children_done = true;
                            break;
                        }
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (Some(a), Some(b)) => a <= b,
                    };
                    unsafe {
                        let (v, p) = if take_left {
                            left.pop_vec()
                        } else {
                            right.pop_vec()
                        };
                        let (lo, hi, plo, phi) = Kn::merge2(ck, v, cp, p);
                        Kn::store(buf_k.as_mut_ptr().add(*len), lo);
                        Kn::storep(buf_o.as_mut_ptr().add(*len), plo);
                        *len += Kn::L;
                        *carry = Some((hi, phi));
                    }
                }
            }
        }
    }
}

/// Merge `runs` (sorted, disjoint, lengths all multiples of `L`) into
/// `dst` at `dst_at` using the SIMD merge tree.
///
/// # Safety
/// Kernel ISA must be supported (see [`crate::sort`] dispatch); run
/// lengths must be multiples of `Kn::L`.
pub(crate) unsafe fn merge_tree_merge<Kn: Kernel>(
    src_k: &[Kn::K],
    src_o: &[u32],
    dst_k: &mut [Kn::K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
    buf_elems: usize,
) {
    debug_assert!(runs.iter().all(|r| r.len() % Kn::L == 0));
    let total: usize = runs.iter().map(|r| r.len()).sum();
    if runs.len() == 1 {
        let r = runs[0].clone();
        dst_k[dst_at..dst_at + total].copy_from_slice(&src_k[r.clone()]);
        dst_o[dst_at..dst_at + total].copy_from_slice(&src_o[r]);
        return;
    }
    let buf_cap = buf_elems.max(2 * Kn::L) / Kn::L * Kn::L;
    let mut root = Node::<Kn>::build(src_k, src_o, runs, buf_cap);
    let mut written = 0usize;
    while written < total {
        // Drain whatever the root has buffered straight into dst.
        if root.peek().is_none() {
            break;
        }
        let (v, p) = root.pop_vec();
        Kn::store(dst_k.as_mut_ptr().add(dst_at + written), v);
        Kn::storep(dst_o.as_mut_ptr().add(dst_at + written), p);
        written += Kn::L;
    }
    debug_assert_eq!(written, total, "merge tree drained early");
}

/// One SIMD `F`-way pass: like [`crate::multiway::multiway_pass`] but
/// merging with the vectorized tree. Returns the new run length.
///
/// # Safety
/// Kernel ISA must be supported; `run` must be a multiple of `Kn::L`.
pub(crate) unsafe fn multiway_pass_simd<Kn: Kernel>(
    src_k: &[Kn::K],
    src_o: &[u32],
    dst_k: &mut [Kn::K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
    buf_elems: usize,
) -> usize {
    let n = src_k.len();
    debug_assert!(fanout >= 2);
    let group = run * fanout;
    let mut start = 0usize;
    let mut runs: Vec<Range<usize>> = Vec::with_capacity(fanout);
    while start < n {
        let end = (start + group).min(n);
        runs.clear();
        let mut s = start;
        while s < end {
            let e = (s + run).min(end);
            runs.push(s..e);
            s = e;
        }
        merge_tree_merge::<Kn>(src_k, src_o, dst_k, dst_o, &runs, start, buf_elems);
        start = end;
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable::{P16, P32, P64};

    fn check_tree<Kn: Kernel>(run_data: Vec<Vec<u64>>)
    where
        Kn::K: Key,
    {
        let l = Kn::L;
        let mut keys: Vec<Kn::K> = Vec::new();
        let mut runs = Vec::new();
        for r in &run_data {
            assert_eq!(r.len() % l, 0);
            let start = keys.len();
            let mut sorted: Vec<Kn::K> = r.iter().map(|&v| Kn::K::from_u64(v)).collect();
            sorted.sort_unstable();
            keys.extend_from_slice(&sorted);
            runs.push(start..keys.len());
        }
        let oids: Vec<u32> = (0..keys.len() as u32).collect();
        let mut dk = vec![Kn::K::default(); keys.len()];
        let mut dov = vec![0u32; keys.len()];
        unsafe {
            merge_tree_merge::<Kn>(&keys, &oids, &mut dk, &mut dov, &runs, 0, 4 * l);
        }
        assert!(dk.windows(2).all(|w| w[0] <= w[1]), "not sorted: {dk:?}");
        // Payload integrity.
        let mut seen = vec![false; keys.len()];
        for (i, &o) in dov.iter().enumerate() {
            assert_eq!(dk[i], keys[o as usize]);
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
    }

    fn pseudo(n: usize, seed: u64, mask: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s & mask
            })
            .collect()
    }

    #[test]
    fn tree_merges_various_shapes_p32() {
        check_tree::<P32>(vec![pseudo(64, 1, u64::MAX), pseudo(32, 2, u64::MAX)]);
        check_tree::<P32>(vec![
            pseudo(8, 1, 0xF),
            pseudo(16, 2, 0xF),
            pseudo(8, 3, 0xF),
        ]);
        check_tree::<P32>(vec![
            pseudo(128, 4, u64::MAX),
            pseudo(64, 5, u64::MAX),
            pseudo(256, 6, u64::MAX),
            pseudo(8, 7, u64::MAX),
            pseudo(72, 8, u64::MAX),
        ]);
        // Single run: passthrough.
        check_tree::<P32>(vec![pseudo(40, 9, u64::MAX)]);
    }

    #[test]
    fn tree_merges_p16_and_p64() {
        check_tree::<P16>(vec![
            pseudo(64, 11, u64::MAX),
            pseudo(128, 12, u64::MAX),
            pseudo(32, 13, 0x7),
        ]);
        check_tree::<P64>(vec![
            pseudo(32, 14, u64::MAX),
            pseudo(16, 15, u64::MAX),
            pseudo(64, 16, u64::MAX),
            pseudo(4, 17, u64::MAX),
        ]);
    }

    #[test]
    fn tree_handles_many_runs_with_ties() {
        let runs: Vec<Vec<u64>> = (0..16).map(|i| pseudo(32, 20 + i, 0x3)).collect();
        check_tree::<P32>(runs);
    }

    #[test]
    fn pass_matches_scalar_multiway() {
        let n = 4096usize;
        let run = 256usize;
        let mut keys: Vec<u32> = Vec::with_capacity(n);
        for i in 0..n / run {
            let mut chunk: Vec<u32> = pseudo(run, 100 + i as u64, u64::MAX)
                .iter()
                .map(|&v| v as u32)
                .collect();
            chunk.sort_unstable();
            keys.extend_from_slice(&chunk);
        }
        let oids: Vec<u32> = (0..n as u32).collect();

        let mut dk1 = vec![0u32; n];
        let mut do1 = vec![0u32; n];
        let r1 = crate::multiway::multiway_pass(&keys, &oids, &mut dk1, &mut do1, run, 4);

        let mut dk2 = vec![0u32; n];
        let mut do2 = vec![0u32; n];
        let r2 =
            unsafe { multiway_pass_simd::<P32>(&keys, &oids, &mut dk2, &mut do2, run, 4, 1024) };

        assert_eq!(r1, r2);
        assert_eq!(dk1, dk2);
        // Payloads may differ on ties between the two implementations;
        // verify validity instead of equality.
        for i in 0..n {
            assert_eq!(dk2[i], keys[do2[i] as usize]);
        }
    }
}
