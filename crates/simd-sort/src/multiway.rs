//! Out-of-cache `F`-way merging with a loser tree (phase (c) of Eq. 5).
//!
//! Once runs exceed half the L2 cache, binary merging would re-stream the
//! whole dataset `log2(R)` more times. A merge tree with fan-out `F`
//! reduces that to `⌈log_F(R)⌉` passes (Eq. 8 in the paper). Each pass
//! merges groups of up to `F` adjacent runs with a classic loser tree.

use crate::key::Key;
use core::ops::Range;

/// A loser tree over up to `F` input runs of `(key, oid)` pairs.
///
/// Exhausted runs are represented by an explicit `valid = false` flag
/// rather than a sentinel key, so `K::MAX` remains a legal key value.
struct LoserTree<'a, K: Key> {
    keys: &'a [K],
    oids: &'a [u32],
    /// Cursor and end per run.
    cursors: Vec<(usize, usize)>,
    /// `tree[i]` = run index of the *loser* at internal node `i`; `tree[0]`
    /// holds the overall winner.
    tree: Vec<u32>,
    /// Current head key per run (`None` when the run is exhausted).
    heads: Vec<Option<K>>,
    /// Number of leaves (padded to a power of two).
    m: usize,
}

impl<'a, K: Key> LoserTree<'a, K> {
    fn new(keys: &'a [K], oids: &'a [u32], runs: &[Range<usize>]) -> Self {
        let m = runs.len().next_power_of_two().max(2);
        let mut cursors = vec![(0usize, 0usize); m];
        let mut heads = vec![None; m];
        for (i, r) in runs.iter().enumerate() {
            cursors[i] = (r.start, r.end);
            heads[i] = if r.start < r.end {
                Some(keys[r.start])
            } else {
                None
            };
        }
        let mut lt = LoserTree {
            keys,
            oids,
            cursors,
            tree: vec![0; m],
            heads,
            m,
        };
        lt.rebuild();
        lt
    }

    /// `a` beats `b` if it has a head and it is strictly smaller, or equal
    /// with a lower run index (deterministic, though stability is not
    /// required by the callers).
    #[inline]
    fn beats(&self, a: u32, b: u32) -> bool {
        match (self.heads[a as usize], self.heads[b as usize]) {
            (Some(ka), Some(kb)) => ka < kb || (ka == kb && a < b),
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Full rebuild: play all matches bottom-up.
    fn rebuild(&mut self) {
        // Temporary winner array for internal nodes [1, 2m).
        let m = self.m;
        let mut winner = vec![0u32; 2 * m];
        for i in 0..m {
            winner[m + i] = i as u32;
        }
        for i in (1..m).rev() {
            let (a, b) = (winner[2 * i], winner[2 * i + 1]);
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winner[i] = w;
            self.tree[i] = l;
        }
        self.tree[0] = winner[1];
    }

    /// Pop the smallest `(key, oid)`; returns `None` when all runs drain.
    #[inline]
    fn pop(&mut self) -> Option<(K, u32)> {
        let w = self.tree[0] as usize;
        let key = self.heads[w]?;
        let (cur, end) = self.cursors[w];
        let oid = self.oids[cur];
        let next = cur + 1;
        self.cursors[w].0 = next;
        self.heads[w] = if next < end {
            Some(self.keys[next])
        } else {
            None
        };
        // Replay matches from leaf w to the root.
        let mut winner = w as u32;
        let mut node = (self.m + w) >> 1;
        while node >= 1 {
            let other = self.tree[node];
            if self.beats(other, winner) {
                self.tree[node] = winner;
                winner = other;
            }
            node >>= 1;
        }
        self.tree[0] = winner;
        Some((key, oid))
    }
}

/// Merge `runs` (disjoint, individually sorted index ranges of `src_*`)
/// into `dst_*` starting at `dst_at`.
pub fn multiway_merge<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
) {
    debug_assert!(!runs.is_empty());
    if runs.len() == 1 {
        let r = runs[0].clone();
        let n = r.len();
        dst_k[dst_at..dst_at + n].copy_from_slice(&src_k[r.clone()]);
        dst_o[dst_at..dst_at + n].copy_from_slice(&src_o[r]);
        return;
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut lt = LoserTree::new(src_k, src_o, runs);
    for i in 0..total {
        let (k, o) = lt.pop().expect("loser tree drained early");
        dst_k[dst_at + i] = k;
        dst_o[dst_at + i] = o;
    }
    debug_assert!(lt.pop().is_none());
}

/// One `F`-way pass over the whole buffer: merges consecutive groups of up
/// to `fanout` runs of length `run` from `src` into `dst`. Returns the new
/// run length (`run * fanout`).
pub fn multiway_pass<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
) -> usize {
    let n = src_k.len();
    debug_assert!(fanout >= 2);
    let group = run * fanout;
    let mut start = 0usize;
    let mut runs: Vec<Range<usize>> = Vec::with_capacity(fanout);
    while start < n {
        let end = (start + group).min(n);
        runs.clear();
        let mut s = start;
        while s < end {
            let e = (s + run).min(end);
            runs.push(s..e);
            s = e;
        }
        multiway_merge(src_k, src_o, dst_k, dst_o, &runs, start);
        start = end;
    }
    group
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_three_runs() {
        let k: Vec<u32> = vec![1, 4, 7, 2, 5, 8, 0, 3, 6];
        let o: Vec<u32> = (0..9).collect();
        let mut dk = vec![0u32; 9];
        let mut dlo = vec![0u32; 9];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..3, 3..6, 6..9], 0);
        assert_eq!(dk, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        // oid i still points at key k[i].
        for i in 0..9 {
            assert_eq!(dk[i], k[dlo[i] as usize]);
        }
    }

    #[test]
    fn handles_empty_and_unequal_runs() {
        let k: Vec<u16> = vec![5, 6, 1];
        let o: Vec<u32> = vec![0, 1, 2];
        let mut dk = vec![0u16; 3];
        let mut dlo = vec![0u32; 3];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..2, 2..3], 0);
        assert_eq!(dk, vec![1, 5, 6]);
    }

    #[test]
    fn max_key_is_not_a_sentinel() {
        let k: Vec<u16> = vec![u16::MAX, u16::MAX, 3];
        let o: Vec<u32> = vec![10, 11, 12];
        let mut dk = vec![0u16; 3];
        let mut dlo = vec![0u32; 3];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..3], 0);
        assert_eq!(dk, vec![3, u16::MAX, u16::MAX]);
        assert_eq!(dlo[0], 12);
        let mut tail = [dlo[1], dlo[2]];
        tail.sort_unstable();
        assert_eq!(tail, [10, 11]);
    }

    #[test]
    fn full_pass_with_fanout() {
        // 4 runs of 4, fanout 2 -> 2 runs of 8 after one pass.
        let mut k: Vec<u64> = Vec::new();
        for r in 0..4u64 {
            k.extend((0..4).map(|i| i * 4 + r));
        }
        let o: Vec<u32> = (0..16).collect();
        let mut dk = vec![0u64; 16];
        let mut dlo = vec![0u32; 16];
        let new_run = multiway_pass(&k, &o, &mut dk, &mut dlo, 4, 2);
        assert_eq!(new_run, 8);
        assert!(dk[0..8].windows(2).all(|w| w[0] <= w[1]));
        assert!(dk[8..16].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ties_across_runs_keep_all_payloads() {
        let k: Vec<u32> = vec![7, 7, 7, 7, 7, 7];
        let o: Vec<u32> = (0..6).collect();
        let mut dk = vec![0u32; 6];
        let mut dlo = vec![0u32; 6];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..4, 4..6], 0);
        let mut got = dlo.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }
}
