//! Out-of-cache `F`-way merging with a loser tree (phase (c) of Eq. 5).
//!
//! Once runs exceed half the L2 cache, binary merging would re-stream the
//! whole dataset `log2(R)` more times. A merge tree with fan-out `F`
//! reduces that to `⌈log_F(R)⌉` passes (Eq. 8 in the paper). Each pass
//! merges groups of up to `F` adjacent runs with a classic loser tree.
//!
//! The tree's node arrays live in a caller-provided [`MergeScratch`] so
//! repeated passes (and repeated sorts) reuse the same memory; the plain
//! entry points allocate a fresh scratch per call.
//!
//! # Offset-value coding
//!
//! The `_ovc_` variants additionally carry a per-element offset-value
//! code ([`crate::ovc`]) alongside every `(key, oid)` pair: the code of
//! an element is taken relative to its predecessor in its run. Inside
//! the tree every match compares the two head codes first and touches
//! the full keys only on a code tie. This is sound because every match
//! the tree plays is between two elements coded against a *common base*:
//!
//! * during the initial tree rebuild both comparands are
//!   subtree winners still carrying their run-head codes, all of which
//!   are relative to the virtual all-zero key (run heads are coded
//!   against zero, and winners' codes are never rewritten);
//! * during a `pop` replay, every stored loser on the
//!   popped winner's leaf-to-root path was last beaten by that winner —
//!   the just-output element — and the refilled head's code is relative
//!   to its run predecessor, which is the same element.
//!
//! When the codes differ they decide the order outright *and* the
//! loser's stored code is already correct relative to the match winner
//! (first-difference positions against a common base compose). Only on
//! a code tie is the full comparison played and the loser's code
//! recomputed against the winner — the invariant Do & Graefe's paper
//! centers on. A corollary: the code each popped winner carries is
//! relative to the previous output, so the merged output's code array
//! is produced for free and stays valid for the next merge pass.

use crate::key::Key;
use crate::ovc::{self, ovc_encode};
use crate::scratch::MergeScratch;
use core::ops::Range;
use mcs_cancel::{CancelToken, CHECK_INTERVAL};

/// A loser tree over up to `F` input runs of `(key, oid)` pairs.
///
/// Exhausted runs are represented by an explicit `valid = false` flag
/// rather than a sentinel key, so `K::MAX` remains a legal key value.
/// Head keys are held widened to `u64` in the scratch (order-preserving
/// for unsigned codes), which lets one scratch serve every bank.
struct LoserTree<'a, K: Key> {
    keys: &'a [K],
    oids: &'a [u32],
    /// Node arrays: cursors, heads, losers (`s.tree[0]` = winner).
    s: &'a mut MergeScratch,
    /// Number of leaves (padded to a power of two).
    m: usize,
    /// Matches played between two live runs (harvested per merge call).
    comparisons: u64,
}

impl<'a, K: Key> LoserTree<'a, K> {
    fn new(keys: &'a [K], oids: &'a [u32], runs: &[Range<usize>], s: &'a mut MergeScratch) -> Self {
        let m = runs.len().next_power_of_two().max(2);
        s.prepare(m);
        for i in 0..m {
            s.cursors[i] = (0, 0);
            s.heads[i] = (0, false);
        }
        for (i, r) in runs.iter().enumerate() {
            s.cursors[i] = (r.start, r.end);
            s.heads[i] = if r.start < r.end {
                (keys[r.start].to_u64(), true)
            } else {
                (0, false)
            };
        }
        let mut lt = LoserTree {
            keys,
            oids,
            s,
            m,
            comparisons: 0,
        };
        lt.rebuild();
        lt
    }

    /// `a` beats `b` if it has a head and it is strictly smaller, or equal
    /// with a lower run index.
    ///
    /// The lower-run-index tie-break is a documented invariant, not a
    /// convenience: callers pass runs in buffer order, so it makes the
    /// merge stable by run (equal keys drain in run order — see the
    /// `merge_is_stable_by_run_order` regression test), and the OVC
    /// variant's correctness depends on it — a tied loser is assigned
    /// code 0, "equal to its base", which is only true relative to the
    /// element actually declared the winner, and the code-update
    /// protocol needs `beats` to be a strict deterministic total order
    /// over live heads. Do not weaken it to an arbitrary choice.
    #[inline]
    fn beats(&mut self, a: u32, b: u32) -> bool {
        match (self.s.heads[a as usize], self.s.heads[b as usize]) {
            ((ka, true), (kb, true)) => {
                self.comparisons += 1;
                ka < kb || (ka == kb && a < b)
            }
            ((_, true), (_, false)) => true,
            ((_, false), _) => false,
        }
    }

    /// Full rebuild: play all matches bottom-up.
    fn rebuild(&mut self) {
        let m = self.m;
        for i in 0..m {
            self.s.winner[m + i] = i as u32;
        }
        for i in (1..m).rev() {
            let (a, b) = (self.s.winner[2 * i], self.s.winner[2 * i + 1]);
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            self.s.winner[i] = w;
            self.s.tree[i] = l;
        }
        self.s.tree[0] = self.s.winner[1];
    }

    /// Pop the smallest `(key, oid)`; returns `None` when all runs drain.
    #[inline]
    fn pop(&mut self) -> Option<(K, u32)> {
        let w = self.s.tree[0] as usize;
        let (key_u64, valid) = self.s.heads[w];
        if !valid {
            return None;
        }
        let key = K::from_u64(key_u64);
        let (cur, end) = self.s.cursors[w];
        let oid = self.oids[cur];
        let next = cur + 1;
        self.s.cursors[w].0 = next;
        self.s.heads[w] = if next < end {
            (self.keys[next].to_u64(), true)
        } else {
            (0, false)
        };
        // Replay matches from leaf w to the root.
        let mut winner = w as u32;
        let mut node = (self.m + w) >> 1;
        while node >= 1 {
            let other = self.s.tree[node];
            if self.beats(other, winner) {
                self.s.tree[node] = winner;
                winner = other;
            }
            node >>= 1;
        }
        self.s.tree[0] = winner;
        Some((key, oid))
    }
}

/// A loser tree whose matches compare offset-value codes first.
///
/// Identical tree mechanics to [`LoserTree`], plus a per-head code
/// maintained under the protocol described in the module docs: codes
/// decide a match when they differ (the loser's stored code stays valid
/// unchanged), a code tie plays the full keys and recomputes the
/// loser's code relative to the winner, and equal keys assign the
/// higher-run-index loser code 0. Produces the output code array as a
/// side effect, keeping codes valid for the next merge pass.
struct OvcLoserTree<'a, K: Key> {
    keys: &'a [K],
    oids: &'a [u32],
    /// Per-element codes, parallel to `keys` (relative to each element's
    /// run predecessor; run heads are coded against zero).
    codes: &'a [u32],
    s: &'a mut MergeScratch,
    m: usize,
    comparisons: u64,
    ovc_hits: u64,
}

impl<'a, K: Key> OvcLoserTree<'a, K> {
    fn new(
        keys: &'a [K],
        oids: &'a [u32],
        codes: &'a [u32],
        runs: &[Range<usize>],
        s: &'a mut MergeScratch,
    ) -> Self {
        let m = runs.len().next_power_of_two().max(2);
        s.prepare(m);
        for i in 0..m {
            s.cursors[i] = (0, 0);
            s.heads[i] = (0, false);
            s.head_codes[i] = 0;
        }
        for (i, r) in runs.iter().enumerate() {
            s.cursors[i] = (r.start, r.end);
            if r.start < r.end {
                s.heads[i] = (keys[r.start].to_u64(), true);
                s.head_codes[i] = codes[r.start];
            }
        }
        let mut lt = OvcLoserTree {
            keys,
            oids,
            codes,
            s,
            m,
            comparisons: 0,
            ovc_hits: 0,
        };
        lt.rebuild();
        lt
    }

    /// The OVC match: like [`LoserTree::beats`] (including the
    /// load-bearing lower-run-index tie-break), but decided by the head
    /// codes when they differ, and updating the *loser's* stored code so
    /// it is relative to the winner. `rebuild` relies on this update too:
    /// its comparands are subtree winners still coded against the common
    /// all-zero base, so the same protocol applies.
    #[inline]
    fn beats(&mut self, a: u32, b: u32) -> bool {
        match (self.s.heads[a as usize], self.s.heads[b as usize]) {
            ((ka, true), (kb, true)) => {
                self.comparisons += 1;
                let (ca, cb) = (self.s.head_codes[a as usize], self.s.head_codes[b as usize]);
                if ca != cb {
                    // Codes over a common base order the keys, and the
                    // loser's code relative to the winner is unchanged
                    // (same first-difference position and word).
                    self.ovc_hits += 1;
                    return ca < cb;
                }
                if ka == kb {
                    // Equal keys: lower run index wins; the loser is
                    // equal to its new base.
                    self.s.head_codes[a.max(b) as usize] = 0;
                    a < b
                } else if ka < kb {
                    self.s.head_codes[b as usize] = ovc_encode(kb, ka);
                    true
                } else {
                    self.s.head_codes[a as usize] = ovc_encode(ka, kb);
                    false
                }
            }
            ((_, true), (_, false)) => true,
            ((_, false), _) => false,
        }
    }

    /// Full rebuild: play all matches bottom-up.
    fn rebuild(&mut self) {
        let m = self.m;
        for i in 0..m {
            self.s.winner[m + i] = i as u32;
        }
        for i in (1..m).rev() {
            let (a, b) = (self.s.winner[2 * i], self.s.winner[2 * i + 1]);
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            self.s.winner[i] = w;
            self.s.tree[i] = l;
        }
        self.s.tree[0] = self.s.winner[1];
    }

    /// Pop the smallest `(key, oid, code)`, the code relative to the
    /// previous output; returns `None` when all runs drain.
    #[inline]
    fn pop(&mut self) -> Option<(K, u32, u32)> {
        let w = self.s.tree[0] as usize;
        let (key_u64, valid) = self.s.heads[w];
        if !valid {
            return None;
        }
        let key = K::from_u64(key_u64);
        let code = self.s.head_codes[w];
        let (cur, end) = self.s.cursors[w];
        let oid = self.oids[cur];
        let next = cur + 1;
        self.s.cursors[w].0 = next;
        if next < end {
            self.s.heads[w] = (self.keys[next].to_u64(), true);
            // Relative to its run predecessor — the element just popped.
            self.s.head_codes[w] = self.codes[next];
        } else {
            self.s.heads[w] = (0, false);
            self.s.head_codes[w] = 0;
        }
        // Replay matches from leaf w to the root. Every stored loser on
        // this path was last beaten by the element just popped, so all
        // comparands share it as their code base.
        let mut winner = w as u32;
        let mut node = (self.m + w) >> 1;
        while node >= 1 {
            let other = self.s.tree[node];
            if self.beats(other, winner) {
                self.s.tree[node] = winner;
                winner = other;
            }
            node >>= 1;
        }
        self.s.tree[0] = winner;
        Some((key, oid, code))
    }
}

/// Merge `runs` (disjoint, individually sorted index ranges of `src_*`)
/// into `dst_*` starting at `dst_at`, with caller-provided node arrays.
pub fn multiway_merge_scratch<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
    scratch: &mut MergeScratch,
) {
    multiway_merge_scratch_cancellable(
        src_k,
        src_o,
        dst_k,
        dst_o,
        runs,
        dst_at,
        scratch,
        &CancelToken::none(),
    );
}

/// Like [`multiway_merge_scratch`], polling `cancel` every
/// [`CHECK_INTERVAL`] pops. A fired token stops the merge mid-stream,
/// leaving the tail of the destination range unwritten — the caller must
/// observe the token and discard the buffer. Comparison counters are
/// credited either way.
#[allow(clippy::too_many_arguments)]
pub fn multiway_merge_scratch_cancellable<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
    scratch: &mut MergeScratch,
    cancel: &CancelToken,
) {
    debug_assert!(!runs.is_empty());
    if runs.len() == 1 {
        let r = runs[0].clone();
        let n = r.len();
        dst_k[dst_at..dst_at + n].copy_from_slice(&src_k[r.clone()]);
        dst_o[dst_at..dst_at + n].copy_from_slice(&src_o[r]);
        return;
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut lt = LoserTree::new(src_k, src_o, runs, scratch);
    for i in 0..total {
        if i % CHECK_INTERVAL == 0 && cancel.check().is_err() {
            ovc::record(lt.comparisons, 0);
            return;
        }
        let (k, o) = lt.pop().expect("loser tree drained early");
        dst_k[dst_at + i] = k;
        dst_o[dst_at + i] = o;
    }
    debug_assert!(lt.pop().is_none());
    ovc::record(lt.comparisons, 0);
}

/// Like [`multiway_merge_scratch`], but with per-element offset-value
/// codes riding along: `src_c` holds each element's code relative to its
/// run predecessor (run heads coded against zero), matches are decided
/// by code compares where possible, and `dst_c` receives the merged
/// output's codes (each relative to the previous output element, run
/// heads of the merged run against zero) — valid input for the next
/// merge pass.
#[allow(clippy::too_many_arguments)]
pub fn multiway_merge_ovc_scratch<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    src_c: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    dst_c: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
    scratch: &mut MergeScratch,
) {
    multiway_merge_ovc_scratch_cancellable(
        src_k,
        src_o,
        src_c,
        dst_k,
        dst_o,
        dst_c,
        runs,
        dst_at,
        scratch,
        &CancelToken::none(),
    );
}

/// Like [`multiway_merge_ovc_scratch`], polling `cancel` every
/// [`CHECK_INTERVAL`] pops; see
/// [`multiway_merge_scratch_cancellable`] for the early-exit contract.
#[allow(clippy::too_many_arguments)]
pub fn multiway_merge_ovc_scratch_cancellable<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    src_c: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    dst_c: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
    scratch: &mut MergeScratch,
    cancel: &CancelToken,
) {
    debug_assert!(!runs.is_empty());
    if runs.len() == 1 {
        let r = runs[0].clone();
        let n = r.len();
        dst_k[dst_at..dst_at + n].copy_from_slice(&src_k[r.clone()]);
        dst_o[dst_at..dst_at + n].copy_from_slice(&src_o[r.clone()]);
        dst_c[dst_at..dst_at + n].copy_from_slice(&src_c[r]);
        return;
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut lt = OvcLoserTree::new(src_k, src_o, src_c, runs, scratch);
    for i in 0..total {
        if i % CHECK_INTERVAL == 0 && cancel.check().is_err() {
            ovc::record(lt.comparisons, lt.ovc_hits);
            return;
        }
        let (k, o, c) = lt.pop().expect("loser tree drained early");
        dst_k[dst_at + i] = k;
        dst_o[dst_at + i] = o;
        dst_c[dst_at + i] = c;
    }
    debug_assert!(lt.pop().is_none());
    ovc::record(lt.comparisons, lt.ovc_hits);
}

/// Merge `runs` (disjoint, individually sorted index ranges of `src_*`)
/// into `dst_*` starting at `dst_at`.
pub fn multiway_merge<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
) {
    let mut scratch = MergeScratch::new();
    multiway_merge_scratch(src_k, src_o, dst_k, dst_o, runs, dst_at, &mut scratch);
}

/// One `F`-way pass over the whole buffer with caller-provided scratch:
/// merges consecutive groups of up to `fanout` runs of length `run` from
/// `src` into `dst`. Returns the new run length (`run * fanout`).
#[allow(clippy::too_many_arguments)]
pub fn multiway_pass_scratch<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
    runs_buf: &mut Vec<Range<usize>>,
    merge: &mut MergeScratch,
) -> usize {
    multiway_pass_scratch_cancellable(
        src_k,
        src_o,
        dst_k,
        dst_o,
        run,
        fanout,
        runs_buf,
        merge,
        &CancelToken::none(),
    )
}

/// Like [`multiway_pass_scratch`], polling `cancel` between merge groups
/// and (through the cancellable merge) every [`CHECK_INTERVAL`] pops
/// inside each group. A fired token abandons the rest of the pass; the
/// caller must observe the token and discard the destination buffer. The
/// nominal new run length is returned either way.
#[allow(clippy::too_many_arguments)]
pub fn multiway_pass_scratch_cancellable<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
    runs_buf: &mut Vec<Range<usize>>,
    merge: &mut MergeScratch,
    cancel: &CancelToken,
) -> usize {
    let n = src_k.len();
    debug_assert!(fanout >= 2);
    let group = run * fanout;
    let mut start = 0usize;
    while start < n {
        if cancel.check().is_err() {
            return group;
        }
        let end = (start + group).min(n);
        runs_buf.clear();
        let mut s = start;
        while s < end {
            let e = (s + run).min(end);
            runs_buf.push(s..e);
            s = e;
        }
        multiway_merge_scratch_cancellable(
            src_k, src_o, dst_k, dst_o, runs_buf, start, merge, cancel,
        );
        start = end;
    }
    group
}

/// One `F`-way pass with offset-value codes: like
/// [`multiway_pass_scratch`], with `src_c`/`dst_c` carrying the
/// per-element codes through the pass. Returns the new run length.
#[allow(clippy::too_many_arguments)]
pub fn multiway_pass_ovc_scratch<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    src_c: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    dst_c: &mut [u32],
    run: usize,
    fanout: usize,
    runs_buf: &mut Vec<Range<usize>>,
    merge: &mut MergeScratch,
) -> usize {
    multiway_pass_ovc_scratch_cancellable(
        src_k,
        src_o,
        src_c,
        dst_k,
        dst_o,
        dst_c,
        run,
        fanout,
        runs_buf,
        merge,
        &CancelToken::none(),
    )
}

/// Like [`multiway_pass_ovc_scratch`], polling `cancel` between merge
/// groups and every [`CHECK_INTERVAL`] pops inside each group; see
/// [`multiway_pass_scratch_cancellable`] for the early-exit contract.
#[allow(clippy::too_many_arguments)]
pub fn multiway_pass_ovc_scratch_cancellable<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    src_c: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    dst_c: &mut [u32],
    run: usize,
    fanout: usize,
    runs_buf: &mut Vec<Range<usize>>,
    merge: &mut MergeScratch,
    cancel: &CancelToken,
) -> usize {
    let n = src_k.len();
    debug_assert!(fanout >= 2);
    let group = run * fanout;
    let mut start = 0usize;
    while start < n {
        if cancel.check().is_err() {
            return group;
        }
        let end = (start + group).min(n);
        runs_buf.clear();
        let mut s = start;
        while s < end {
            let e = (s + run).min(end);
            runs_buf.push(s..e);
            s = e;
        }
        multiway_merge_ovc_scratch_cancellable(
            src_k, src_o, src_c, dst_k, dst_o, dst_c, runs_buf, start, merge, cancel,
        );
        start = end;
    }
    group
}

/// One element delivered by a [`StreamSource`]: the most significant
/// 64-bit word of its (possibly multi-word) sort key, its offset-value
/// code relative to the run predecessor's first word (run heads coded
/// against zero), and the payload oid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHead {
    /// Most significant `u64` word of the element's sort key.
    pub word0: u64,
    /// `ovc_encode(word0, predecessor word0)`; `0` at the run head.
    pub code: u32,
    /// Payload object id.
    pub oid: u32,
}

/// A supplier of sorted runs for the streaming merge, e.g. spilled run
/// files behind bounded read-ahead buffers.
///
/// Keys may be wider than 64 bits: the tree only sees each head's most
/// significant word (and its offset-value code over that word); whenever
/// two heads tie on codes — which implies equal first words relative to
/// a common base — the tree asks the source to compare the full keys via
/// [`StreamSource::cmp_heads`]. The source must keep each run's current
/// head resident until the next [`StreamSource::next`] call for that run.
pub trait StreamSource {
    /// The I/O error type surfaced through [`StreamMerger::pop`].
    type Error;

    /// Advance run `run` to its next element and return it, or `None`
    /// when the run is exhausted. Elements must come back in
    /// non-decreasing key order with codes relative to the previous
    /// element of the same run (the head against the all-zero key).
    fn next(&mut self, run: usize) -> Result<Option<StreamHead>, Self::Error>;

    /// Compare the full sort keys of the current heads of runs `a` and
    /// `b`. Only called while both runs have a live head, and only on a
    /// code tie (equal first words over a common base).
    fn cmp_heads(&self, a: usize, b: usize) -> core::cmp::Ordering;
}

/// A streaming offset-value-coded loser tree over a [`StreamSource`].
///
/// Same match protocol as the internal `OvcLoserTree` — codes decide when they
/// differ, a code tie plays the full keys through the source and the
/// loser's code is recomputed against the winner, equal keys break
/// toward the lower run index — generalized to multi-word keys: codes
/// and the scratch's widened heads cover only each key's most
/// significant word, so `ovc_encode(loser word0, winner word0)` may
/// legitimately return 0 for distinct keys that agree on their first
/// word. That is sound because a 0 code only ever short-circuits a match
/// into the full-key comparison, never away from it.
pub struct StreamMerger<'a, S: StreamSource> {
    src: &'a mut S,
    s: &'a mut MergeScratch,
    m: usize,
    comparisons: u64,
    ovc_hits: u64,
    recorded: bool,
}

impl<'a, S: StreamSource> StreamMerger<'a, S> {
    /// Build the tree over `num_runs` runs, pulling each run's head from
    /// the source.
    pub fn new(
        src: &'a mut S,
        num_runs: usize,
        scratch: &'a mut MergeScratch,
    ) -> Result<Self, S::Error> {
        let m = num_runs.next_power_of_two().max(2);
        scratch.prepare(m);
        for i in 0..m {
            scratch.cursors[i] = (0, 0);
            scratch.heads[i] = (0, false);
            scratch.head_codes[i] = 0;
            scratch.head_oids[i] = 0;
        }
        for i in 0..num_runs {
            if let Some(h) = src.next(i)? {
                scratch.heads[i] = (h.word0, true);
                scratch.head_codes[i] = h.code;
                scratch.head_oids[i] = h.oid;
            }
        }
        let mut lt = StreamMerger {
            src,
            s: scratch,
            m,
            comparisons: 0,
            ovc_hits: 0,
            recorded: false,
        };
        lt.rebuild();
        Ok(lt)
    }

    /// Immutable view of the underlying source — e.g. to inspect the
    /// element a [`StreamMerger::pop`] just surrendered, which sources
    /// typically retain until that run's next refill.
    pub fn source(&self) -> &S {
        &*self.src
    }

    /// The OVC match over stream heads; see [`OvcLoserTree::beats`] for
    /// the protocol and the load-bearing lower-run-index tie-break.
    #[inline]
    fn beats(&mut self, a: u32, b: u32) -> bool {
        match (self.s.heads[a as usize], self.s.heads[b as usize]) {
            ((wa, true), (wb, true)) => {
                self.comparisons += 1;
                let (ca, cb) = (self.s.head_codes[a as usize], self.s.head_codes[b as usize]);
                if ca != cb {
                    self.ovc_hits += 1;
                    return ca < cb;
                }
                // Code tie: first words are equal relative to the common
                // base; play the full (possibly multi-word) keys.
                match self.src.cmp_heads(a as usize, b as usize) {
                    core::cmp::Ordering::Equal => {
                        self.s.head_codes[a.max(b) as usize] = 0;
                        a < b
                    }
                    core::cmp::Ordering::Less => {
                        self.s.head_codes[b as usize] = ovc_encode(wb, wa);
                        true
                    }
                    core::cmp::Ordering::Greater => {
                        self.s.head_codes[a as usize] = ovc_encode(wa, wb);
                        false
                    }
                }
            }
            ((_, true), (_, false)) => true,
            ((_, false), _) => false,
        }
    }

    /// Full rebuild: play all matches bottom-up.
    fn rebuild(&mut self) {
        let m = self.m;
        for i in 0..m {
            self.s.winner[m + i] = i as u32;
        }
        for i in (1..m).rev() {
            let (a, b) = (self.s.winner[2 * i], self.s.winner[2 * i + 1]);
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            self.s.winner[i] = w;
            self.s.tree[i] = l;
        }
        self.s.tree[0] = self.s.winner[1];
    }

    /// Pop the smallest element as `(run, oid, code)` — the code relative
    /// to the previous output's first word (0 means the first words are
    /// equal; the full keys may still differ past word 0). Returns
    /// `Ok(None)` when every run has drained, at which point the merge's
    /// comparison counters are credited to the thread-local accumulator
    /// exactly once.
    pub fn pop(&mut self) -> Result<Option<(usize, u32, u32)>, S::Error> {
        let w = self.s.tree[0] as usize;
        let (_, valid) = self.s.heads[w];
        if !valid {
            if !self.recorded {
                self.recorded = true;
                ovc::record(self.comparisons, self.ovc_hits);
            }
            return Ok(None);
        }
        let oid = self.s.head_oids[w];
        let code = self.s.head_codes[w];
        match self.src.next(w)? {
            Some(h) => {
                self.s.heads[w] = (h.word0, true);
                // Relative to its run predecessor — the element popped.
                self.s.head_codes[w] = h.code;
                self.s.head_oids[w] = h.oid;
            }
            None => {
                self.s.heads[w] = (0, false);
                self.s.head_codes[w] = 0;
                self.s.head_oids[w] = 0;
            }
        }
        // Replay matches from leaf w to the root (common-base argument
        // as in [`OvcLoserTree::pop`]).
        let mut winner = w as u32;
        let mut node = (self.m + w) >> 1;
        while node >= 1 {
            let other = self.s.tree[node];
            if self.beats(other, winner) {
                self.s.tree[node] = winner;
                winner = other;
            }
            node >>= 1;
        }
        self.s.tree[0] = winner;
        Ok(Some((w, oid, code)))
    }
}

/// One `F`-way pass over the whole buffer: merges consecutive groups of up
/// to `fanout` runs of length `run` from `src` into `dst`. Returns the new
/// run length (`run * fanout`).
pub fn multiway_pass<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
) -> usize {
    let mut runs_buf: Vec<Range<usize>> = Vec::with_capacity(fanout);
    let mut merge = MergeScratch::new();
    multiway_pass_scratch(
        src_k,
        src_o,
        dst_k,
        dst_o,
        run,
        fanout,
        &mut runs_buf,
        &mut merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_three_runs() {
        let k: Vec<u32> = vec![1, 4, 7, 2, 5, 8, 0, 3, 6];
        let o: Vec<u32> = (0..9).collect();
        let mut dk = vec![0u32; 9];
        let mut dlo = vec![0u32; 9];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..3, 3..6, 6..9], 0);
        assert_eq!(dk, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        // oid i still points at key k[i].
        for i in 0..9 {
            assert_eq!(dk[i], k[dlo[i] as usize]);
        }
    }

    #[test]
    fn handles_empty_and_unequal_runs() {
        let k: Vec<u16> = vec![5, 6, 1];
        let o: Vec<u32> = vec![0, 1, 2];
        let mut dk = vec![0u16; 3];
        let mut dlo = vec![0u32; 3];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..2, 2..3], 0);
        assert_eq!(dk, vec![1, 5, 6]);
    }

    #[test]
    fn max_key_is_not_a_sentinel() {
        let k: Vec<u16> = vec![u16::MAX, u16::MAX, 3];
        let o: Vec<u32> = vec![10, 11, 12];
        let mut dk = vec![0u16; 3];
        let mut dlo = vec![0u32; 3];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..3], 0);
        assert_eq!(dk, vec![3, u16::MAX, u16::MAX]);
        assert_eq!(dlo[0], 12);
        let mut tail = [dlo[1], dlo[2]];
        tail.sort_unstable();
        assert_eq!(tail, [10, 11]);
    }

    #[test]
    fn full_pass_with_fanout() {
        // 4 runs of 4, fanout 2 -> 2 runs of 8 after one pass.
        let mut k: Vec<u64> = Vec::new();
        for r in 0..4u64 {
            k.extend((0..4).map(|i| i * 4 + r));
        }
        let o: Vec<u32> = (0..16).collect();
        let mut dk = vec![0u64; 16];
        let mut dlo = vec![0u32; 16];
        let new_run = multiway_pass(&k, &o, &mut dk, &mut dlo, 4, 2);
        assert_eq!(new_run, 8);
        assert!(dk[0..8].windows(2).all(|w| w[0] <= w[1]));
        assert!(dk[8..16].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ties_across_runs_keep_all_payloads() {
        let k: Vec<u32> = vec![7, 7, 7, 7, 7, 7];
        let o: Vec<u32> = (0..6).collect();
        let mut dk = vec![0u32; 6];
        let mut dlo = vec![0u32; 6];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..4, 4..6], 0);
        let mut got = dlo.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn ovc_merge_matches_plain_and_produces_valid_codes() {
        let mut state = 0x5EED_1234u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &(count, domain) in &[(2usize, 1u64 << 20), (7, 8), (16, 1 << 30), (5, 2)] {
            // Adjacent sorted runs of uneven lengths (some empty).
            let mut keys: Vec<u64> = Vec::new();
            let mut runs: Vec<Range<usize>> = Vec::new();
            for _ in 0..count {
                let len = (next() % 150) as usize;
                let start = keys.len();
                let mut run: Vec<u64> = (0..len).map(|_| next() % domain).collect();
                run.sort_unstable();
                keys.extend_from_slice(&run);
                runs.push(start..keys.len());
            }
            let n = keys.len();
            let oids: Vec<u32> = (0..n as u32).collect();
            let mut codes = vec![0u32; n];
            for r in &runs {
                if !r.is_empty() {
                    ovc::derive_codes(&keys[r.clone()], r.len(), &mut codes[r.clone()]);
                }
            }

            let _ = ovc::take_merge_counters();
            let (mut pk, mut po) = (vec![0u64; n], vec![0u32; n]);
            multiway_merge(&keys, &oids, &mut pk, &mut po, &runs, 0);
            let plain = ovc::take_merge_counters();

            let (mut ok, mut oo, mut oc) = (vec![0u64; n], vec![0u32; n], vec![0u32; n]);
            let mut scratch = MergeScratch::new();
            multiway_merge_ovc_scratch(
                &keys,
                &oids,
                &codes,
                &mut ok,
                &mut oo,
                &mut oc,
                &runs,
                0,
                &mut scratch,
            );
            let with_ovc = ovc::take_merge_counters();

            // Byte-identical output (both trees share the run-index
            // tie-break, so even duplicate payload order must agree).
            assert_eq!(ok, pk);
            assert_eq!(oo, po);

            // The output codes are exactly the codes of the merged run:
            // each relative to the previous output, the head to zero.
            let mut want_c = vec![0u32; n];
            ovc::derive_codes(&ok, n.max(1), &mut want_c);
            assert_eq!(oc, want_c, "output codes invalid (count={count})");

            // Same matches played; some decided by codes alone (unless
            // the tiny domain made every match a full-key tie-break).
            assert_eq!(with_ovc.comparisons, plain.comparisons);
            assert_eq!(plain.ovc_hits, 0);
            if domain > 2 && n > 8 {
                assert!(with_ovc.ovc_hits > 0, "no OVC hits at domain {domain}");
            }
        }
    }

    #[test]
    fn ovc_pass_converges_like_plain_pass() {
        // Repeated OVC passes (codes ping-ponging with the keys) must
        // converge to the same fully sorted buffer as the plain passes.
        let mut state = 0xFACE_FEEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 2500usize;
        let run0 = 48usize;
        let fanout = 3usize;
        let mut keys: Vec<u64> = (0..n).map(|_| next() % (1 << 22)).collect();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        {
            // Sort fixed-length runs, keeping (key, oid) pairs together.
            let mut idx: Vec<u32> = (0..n as u32).collect();
            let src = keys.clone();
            for chunk in idx.chunks_mut(run0) {
                chunk.sort_unstable_by_key(|&o| src[o as usize]);
            }
            for (i, &o) in idx.iter().enumerate() {
                keys[i] = src[o as usize];
                oids[i] = o;
            }
        }
        let (mut pk, mut po) = (keys.clone(), oids.clone());
        let (mut pbk, mut pbo) = (vec![0u64; n], vec![0u32; n]);
        let mut run = run0;
        let mut in_src = true;
        while run < n {
            run = if in_src {
                multiway_pass(&pk, &po, &mut pbk, &mut pbo, run, fanout)
            } else {
                multiway_pass(&pbk, &pbo, &mut pk, &mut po, run, fanout)
            };
            in_src = !in_src;
        }
        let (want_k, want_o) = if in_src { (pk, po) } else { (pbk, pbo) };

        let mut ca = vec![0u32; n];
        let mut cb = vec![0u32; n];
        ovc::derive_codes(&keys, run0, &mut ca);
        let (mut bk, mut bo) = (vec![0u64; n], vec![0u32; n]);
        let mut runs_buf = Vec::new();
        let mut merge = MergeScratch::new();
        let mut run = run0;
        let mut in_src = true;
        while run < n {
            run = if in_src {
                multiway_pass_ovc_scratch(
                    &keys,
                    &oids,
                    &ca,
                    &mut bk,
                    &mut bo,
                    &mut cb,
                    run,
                    fanout,
                    &mut runs_buf,
                    &mut merge,
                )
            } else {
                multiway_pass_ovc_scratch(
                    &bk,
                    &bo,
                    &cb,
                    &mut keys,
                    &mut oids,
                    &mut ca,
                    run,
                    fanout,
                    &mut runs_buf,
                    &mut merge,
                )
            };
            in_src = !in_src;
        }
        let (got_k, got_o) = if in_src { (keys, oids) } else { (bk, bo) };
        assert_eq!(got_k, want_k);
        assert_eq!(got_o, want_o);
    }

    /// In-memory [`StreamSource`] over multi-word keys, for tests: each
    /// run is a sorted `Vec` of `(key words, oid)`.
    struct VecSource {
        runs: Vec<Vec<(Vec<u64>, u32)>>,
        pos: Vec<usize>,
    }

    impl VecSource {
        fn new(runs: Vec<Vec<(Vec<u64>, u32)>>) -> Self {
            let pos = vec![0; runs.len()];
            VecSource { runs, pos }
        }
    }

    impl StreamSource for VecSource {
        type Error = ();

        fn next(&mut self, run: usize) -> Result<Option<StreamHead>, ()> {
            let i = self.pos[run];
            let Some((words, oid)) = self.runs[run].get(i) else {
                return Ok(None);
            };
            let prev_w0 = if i == 0 {
                0
            } else {
                self.runs[run][i - 1].0[0]
            };
            self.pos[run] += 1;
            Ok(Some(StreamHead {
                word0: words[0],
                code: ovc_encode(words[0], prev_w0),
                oid: *oid,
            }))
        }

        fn cmp_heads(&self, a: usize, b: usize) -> core::cmp::Ordering {
            // The live head of a run is the element `next` returned last.
            let ha = &self.runs[a][self.pos[a] - 1].0;
            let hb = &self.runs[b][self.pos[b] - 1].0;
            ha.cmp(hb)
        }
    }

    #[test]
    fn stream_merger_matches_slice_merge_byte_for_byte() {
        // Single-word keys: the streaming tree must reproduce the slice
        // tree's output exactly, including duplicate payload order (both
        // share the lower-run-index tie-break).
        let mut state = 0xC0FF_EE00u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for &count in &[1usize, 2, 5, 9] {
            let mut keys: Vec<u64> = Vec::new();
            let mut runs: Vec<Range<usize>> = Vec::new();
            let mut vruns: Vec<Vec<(Vec<u64>, u32)>> = Vec::new();
            for _ in 0..count {
                let len = (next() % 80) as usize;
                let start = keys.len();
                let mut run: Vec<u64> = (0..len).map(|_| next() % 64).collect();
                run.sort_unstable();
                vruns.push(
                    run.iter()
                        .enumerate()
                        .map(|(i, &k)| (vec![k], (start + i) as u32))
                        .collect(),
                );
                keys.extend_from_slice(&run);
                runs.push(start..keys.len());
            }
            let n = keys.len();
            let oids: Vec<u32> = (0..n as u32).collect();
            let (mut dk, mut dlo) = (vec![0u64; n], vec![0u32; n]);
            if n > 0 {
                multiway_merge(&keys, &oids, &mut dk, &mut dlo, &runs, 0);
            }

            let _ = ovc::take_merge_counters();
            let mut src = VecSource::new(vruns);
            let mut scratch = MergeScratch::new();
            let mut lt = StreamMerger::new(&mut src, count, &mut scratch).unwrap();
            let mut got: Vec<u32> = Vec::new();
            while let Some((_, oid, _)) = lt.pop().unwrap() {
                got.push(oid);
            }
            assert_eq!(got, dlo, "count={count}");
            let c = ovc::take_merge_counters();
            if count > 1 && n > 16 {
                assert!(c.comparisons > 0);
            }
        }
    }

    #[test]
    fn stream_merger_orders_multi_word_keys() {
        // Two-word keys engineered to collide on word 0, so ordering
        // depends on the full-key comparisons behind the code ties.
        let mut state = 0xBEEF_BEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut vruns: Vec<Vec<(Vec<u64>, u32)>> = Vec::new();
        let mut all: Vec<(Vec<u64>, u32)> = Vec::new();
        let mut oid = 0u32;
        for _ in 0..4 {
            let mut run: Vec<Vec<u64>> = (0..50).map(|_| vec![next() % 3, next() % 1000]).collect();
            run.sort_unstable();
            let run: Vec<(Vec<u64>, u32)> = run
                .into_iter()
                .map(|w| {
                    oid += 1;
                    (w, oid - 1)
                })
                .collect();
            all.extend(run.iter().cloned());
            vruns.push(run);
        }
        // Stable by (key, oid): oids were assigned in run order, so this
        // is exactly "equal keys drain in run order".
        let mut want = all.clone();
        want.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));

        let _ = ovc::take_merge_counters();
        let mut src = VecSource::new(vruns);
        let mut scratch = MergeScratch::new();
        let mut lt = StreamMerger::new(&mut src, 4, &mut scratch).unwrap();
        let mut got: Vec<u32> = Vec::new();
        while let Some((_, o, _)) = lt.pop().unwrap() {
            got.push(o);
        }
        let want_oids: Vec<u32> = want.iter().map(|e| e.1).collect();
        assert_eq!(got, want_oids);
        let c = ovc::take_merge_counters();
        assert!(c.comparisons >= 200 - 4);
        assert!(
            c.ovc_hits < c.comparisons,
            "word-0 collisions force full compares"
        );
    }

    #[test]
    fn stream_merger_handles_empty_and_failing_sources() {
        // No runs at all.
        let mut src = VecSource::new(Vec::new());
        let mut scratch = MergeScratch::new();
        let mut lt = StreamMerger::new(&mut src, 0, &mut scratch).unwrap();
        assert_eq!(lt.pop().unwrap(), None);
        assert_eq!(lt.pop().unwrap(), None);

        // A source that fails on the first refill after the heads.
        struct Failing {
            calls: usize,
        }
        impl StreamSource for Failing {
            type Error = &'static str;
            fn next(&mut self, _run: usize) -> Result<Option<StreamHead>, &'static str> {
                self.calls += 1;
                if self.calls <= 2 {
                    Ok(Some(StreamHead {
                        word0: self.calls as u64,
                        code: ovc_encode(self.calls as u64, 0),
                        oid: self.calls as u32,
                    }))
                } else {
                    Err("read failed")
                }
            }
            fn cmp_heads(&self, _a: usize, _b: usize) -> core::cmp::Ordering {
                core::cmp::Ordering::Equal
            }
        }
        let mut src = Failing { calls: 0 };
        let mut scratch = MergeScratch::new();
        let mut lt = StreamMerger::new(&mut src, 2, &mut scratch).unwrap();
        assert_eq!(lt.pop(), Err("read failed"));
    }

    #[test]
    fn scratch_reuse_across_merges_is_clean() {
        // A big merge followed by a smaller one through the same scratch:
        // stale node state from the first must not leak into the second.
        let mut scratch = MergeScratch::new();
        let k: Vec<u32> = vec![1, 4, 7, 2, 5, 8, 0, 3, 6, 9];
        let o: Vec<u32> = (0..10).collect();
        let mut dk = vec![0u32; 10];
        let mut dlo = vec![0u32; 10];
        multiway_merge_scratch(
            &k,
            &o,
            &mut dk,
            &mut dlo,
            &[0..3, 3..6, 6..8, 8..10],
            0,
            &mut scratch,
        );
        assert_eq!(dk, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);

        let k2: Vec<u32> = vec![9, 1];
        let o2: Vec<u32> = vec![0, 1];
        let mut dk2 = vec![0u32; 2];
        let mut dlo2 = vec![0u32; 2];
        multiway_merge_scratch(
            &k2,
            &o2,
            &mut dk2,
            &mut dlo2,
            &[0..1, 1..2],
            0,
            &mut scratch,
        );
        assert_eq!(dk2, vec![1, 9]);
        assert_eq!(dlo2, vec![1, 0]);
    }
}
