//! Out-of-cache `F`-way merging with a loser tree (phase (c) of Eq. 5).
//!
//! Once runs exceed half the L2 cache, binary merging would re-stream the
//! whole dataset `log2(R)` more times. A merge tree with fan-out `F`
//! reduces that to `⌈log_F(R)⌉` passes (Eq. 8 in the paper). Each pass
//! merges groups of up to `F` adjacent runs with a classic loser tree.
//!
//! The tree's node arrays live in a caller-provided [`MergeScratch`] so
//! repeated passes (and repeated sorts) reuse the same memory; the plain
//! entry points allocate a fresh scratch per call.

use crate::key::Key;
use crate::scratch::MergeScratch;
use core::ops::Range;

/// A loser tree over up to `F` input runs of `(key, oid)` pairs.
///
/// Exhausted runs are represented by an explicit `valid = false` flag
/// rather than a sentinel key, so `K::MAX` remains a legal key value.
/// Head keys are held widened to `u64` in the scratch (order-preserving
/// for unsigned codes), which lets one scratch serve every bank.
struct LoserTree<'a, K: Key> {
    keys: &'a [K],
    oids: &'a [u32],
    /// Node arrays: cursors, heads, losers (`s.tree[0]` = winner).
    s: &'a mut MergeScratch,
    /// Number of leaves (padded to a power of two).
    m: usize,
}

impl<'a, K: Key> LoserTree<'a, K> {
    fn new(keys: &'a [K], oids: &'a [u32], runs: &[Range<usize>], s: &'a mut MergeScratch) -> Self {
        let m = runs.len().next_power_of_two().max(2);
        s.prepare(m);
        for i in 0..m {
            s.cursors[i] = (0, 0);
            s.heads[i] = (0, false);
        }
        for (i, r) in runs.iter().enumerate() {
            s.cursors[i] = (r.start, r.end);
            s.heads[i] = if r.start < r.end {
                (keys[r.start].to_u64(), true)
            } else {
                (0, false)
            };
        }
        let mut lt = LoserTree { keys, oids, s, m };
        lt.rebuild();
        lt
    }

    /// `a` beats `b` if it has a head and it is strictly smaller, or equal
    /// with a lower run index (deterministic, though stability is not
    /// required by the callers).
    #[inline]
    fn beats(&self, a: u32, b: u32) -> bool {
        match (self.s.heads[a as usize], self.s.heads[b as usize]) {
            ((ka, true), (kb, true)) => ka < kb || (ka == kb && a < b),
            ((_, true), (_, false)) => true,
            ((_, false), _) => false,
        }
    }

    /// Full rebuild: play all matches bottom-up.
    fn rebuild(&mut self) {
        let m = self.m;
        for i in 0..m {
            self.s.winner[m + i] = i as u32;
        }
        for i in (1..m).rev() {
            let (a, b) = (self.s.winner[2 * i], self.s.winner[2 * i + 1]);
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            self.s.winner[i] = w;
            self.s.tree[i] = l;
        }
        self.s.tree[0] = self.s.winner[1];
    }

    /// Pop the smallest `(key, oid)`; returns `None` when all runs drain.
    #[inline]
    fn pop(&mut self) -> Option<(K, u32)> {
        let w = self.s.tree[0] as usize;
        let (key_u64, valid) = self.s.heads[w];
        if !valid {
            return None;
        }
        let key = K::from_u64(key_u64);
        let (cur, end) = self.s.cursors[w];
        let oid = self.oids[cur];
        let next = cur + 1;
        self.s.cursors[w].0 = next;
        self.s.heads[w] = if next < end {
            (self.keys[next].to_u64(), true)
        } else {
            (0, false)
        };
        // Replay matches from leaf w to the root.
        let mut winner = w as u32;
        let mut node = (self.m + w) >> 1;
        while node >= 1 {
            let other = self.s.tree[node];
            if self.beats(other, winner) {
                self.s.tree[node] = winner;
                winner = other;
            }
            node >>= 1;
        }
        self.s.tree[0] = winner;
        Some((key, oid))
    }
}

/// Merge `runs` (disjoint, individually sorted index ranges of `src_*`)
/// into `dst_*` starting at `dst_at`, with caller-provided node arrays.
pub fn multiway_merge_scratch<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
    scratch: &mut MergeScratch,
) {
    debug_assert!(!runs.is_empty());
    if runs.len() == 1 {
        let r = runs[0].clone();
        let n = r.len();
        dst_k[dst_at..dst_at + n].copy_from_slice(&src_k[r.clone()]);
        dst_o[dst_at..dst_at + n].copy_from_slice(&src_o[r]);
        return;
    }
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut lt = LoserTree::new(src_k, src_o, runs, scratch);
    for i in 0..total {
        let (k, o) = lt.pop().expect("loser tree drained early");
        dst_k[dst_at + i] = k;
        dst_o[dst_at + i] = o;
    }
    debug_assert!(lt.pop().is_none());
}

/// Merge `runs` (disjoint, individually sorted index ranges of `src_*`)
/// into `dst_*` starting at `dst_at`.
pub fn multiway_merge<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    runs: &[Range<usize>],
    dst_at: usize,
) {
    let mut scratch = MergeScratch::new();
    multiway_merge_scratch(src_k, src_o, dst_k, dst_o, runs, dst_at, &mut scratch);
}

/// One `F`-way pass over the whole buffer with caller-provided scratch:
/// merges consecutive groups of up to `fanout` runs of length `run` from
/// `src` into `dst`. Returns the new run length (`run * fanout`).
#[allow(clippy::too_many_arguments)]
pub fn multiway_pass_scratch<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
    runs_buf: &mut Vec<Range<usize>>,
    merge: &mut MergeScratch,
) -> usize {
    let n = src_k.len();
    debug_assert!(fanout >= 2);
    let group = run * fanout;
    let mut start = 0usize;
    while start < n {
        let end = (start + group).min(n);
        runs_buf.clear();
        let mut s = start;
        while s < end {
            let e = (s + run).min(end);
            runs_buf.push(s..e);
            s = e;
        }
        multiway_merge_scratch(src_k, src_o, dst_k, dst_o, runs_buf, start, merge);
        start = end;
    }
    group
}

/// One `F`-way pass over the whole buffer: merges consecutive groups of up
/// to `fanout` runs of length `run` from `src` into `dst`. Returns the new
/// run length (`run * fanout`).
pub fn multiway_pass<K: Key>(
    src_k: &[K],
    src_o: &[u32],
    dst_k: &mut [K],
    dst_o: &mut [u32],
    run: usize,
    fanout: usize,
) -> usize {
    let mut runs_buf: Vec<Range<usize>> = Vec::with_capacity(fanout);
    let mut merge = MergeScratch::new();
    multiway_pass_scratch(
        src_k,
        src_o,
        dst_k,
        dst_o,
        run,
        fanout,
        &mut runs_buf,
        &mut merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_three_runs() {
        let k: Vec<u32> = vec![1, 4, 7, 2, 5, 8, 0, 3, 6];
        let o: Vec<u32> = (0..9).collect();
        let mut dk = vec![0u32; 9];
        let mut dlo = vec![0u32; 9];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..3, 3..6, 6..9], 0);
        assert_eq!(dk, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        // oid i still points at key k[i].
        for i in 0..9 {
            assert_eq!(dk[i], k[dlo[i] as usize]);
        }
    }

    #[test]
    fn handles_empty_and_unequal_runs() {
        let k: Vec<u16> = vec![5, 6, 1];
        let o: Vec<u32> = vec![0, 1, 2];
        let mut dk = vec![0u16; 3];
        let mut dlo = vec![0u32; 3];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..2, 2..3], 0);
        assert_eq!(dk, vec![1, 5, 6]);
    }

    #[test]
    fn max_key_is_not_a_sentinel() {
        let k: Vec<u16> = vec![u16::MAX, u16::MAX, 3];
        let o: Vec<u32> = vec![10, 11, 12];
        let mut dk = vec![0u16; 3];
        let mut dlo = vec![0u32; 3];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..3], 0);
        assert_eq!(dk, vec![3, u16::MAX, u16::MAX]);
        assert_eq!(dlo[0], 12);
        let mut tail = [dlo[1], dlo[2]];
        tail.sort_unstable();
        assert_eq!(tail, [10, 11]);
    }

    #[test]
    fn full_pass_with_fanout() {
        // 4 runs of 4, fanout 2 -> 2 runs of 8 after one pass.
        let mut k: Vec<u64> = Vec::new();
        for r in 0..4u64 {
            k.extend((0..4).map(|i| i * 4 + r));
        }
        let o: Vec<u32> = (0..16).collect();
        let mut dk = vec![0u64; 16];
        let mut dlo = vec![0u32; 16];
        let new_run = multiway_pass(&k, &o, &mut dk, &mut dlo, 4, 2);
        assert_eq!(new_run, 8);
        assert!(dk[0..8].windows(2).all(|w| w[0] <= w[1]));
        assert!(dk[8..16].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ties_across_runs_keep_all_payloads() {
        let k: Vec<u32> = vec![7, 7, 7, 7, 7, 7];
        let o: Vec<u32> = (0..6).collect();
        let mut dk = vec![0u32; 6];
        let mut dlo = vec![0u32; 6];
        multiway_merge(&k, &o, &mut dk, &mut dlo, &[0..2, 2..4, 4..6], 0);
        let mut got = dlo.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn scratch_reuse_across_merges_is_clean() {
        // A big merge followed by a smaller one through the same scratch:
        // stale node state from the first must not leak into the second.
        let mut scratch = MergeScratch::new();
        let k: Vec<u32> = vec![1, 4, 7, 2, 5, 8, 0, 3, 6, 9];
        let o: Vec<u32> = (0..10).collect();
        let mut dk = vec![0u32; 10];
        let mut dlo = vec![0u32; 10];
        multiway_merge_scratch(
            &k,
            &o,
            &mut dk,
            &mut dlo,
            &[0..3, 3..6, 6..8, 8..10],
            0,
            &mut scratch,
        );
        assert_eq!(dk, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);

        let k2: Vec<u32> = vec![9, 1];
        let o2: Vec<u32> = vec![0, 1];
        let mut dk2 = vec![0u32; 2];
        let mut dlo2 = vec![0u32; 2];
        multiway_merge_scratch(
            &k2,
            &o2,
            &mut dk2,
            &mut dlo2,
            &[0..1, 1..2],
            0,
            &mut scratch,
        );
        assert_eq!(dk2, vec![1, 9]);
        assert_eq!(dlo2, vec![1, 0]);
    }
}
