//! Sorting networks.
//!
//! The in-register phase of the merge-sort (phase (a) of Eq. 5 in the
//! paper) sorts blocks of `L×L` elements with a *vertical* Batcher
//! odd–even merge-sort network applied across `L` SIMD registers, followed
//! by an `L×L` transpose that makes each of the `L` sorted runs contiguous
//! in memory.

use std::sync::OnceLock;

/// Comparator list `(i, j)` with `i < j` for a Batcher odd–even merge-sort
/// network on `n` inputs (`n` must be a power of two).
///
/// Applying `compare_exchange(v[i], v[j])` for every pair in order sorts
/// any input ascending (by the 0–1 principle).
pub fn batcher_network(n: usize) -> Vec<(usize, usize)> {
    assert!(n.is_power_of_two(), "network size must be a power of two");
    let mut out = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k {
                    let a = i + j;
                    let b = i + j + k;
                    if b < n && a / (p * 2) == b / (p * 2) {
                        out.push((a, b));
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
    out
}

/// Cached networks for the three lane counts we use (4, 8, 16).
pub fn cached_network(n: usize) -> &'static [(usize, usize)] {
    static N4: OnceLock<Vec<(usize, usize)>> = OnceLock::new();
    static N8: OnceLock<Vec<(usize, usize)>> = OnceLock::new();
    static N16: OnceLock<Vec<(usize, usize)>> = OnceLock::new();
    match n {
        4 => N4.get_or_init(|| batcher_network(4)),
        8 => N8.get_or_init(|| batcher_network(8)),
        16 => N16.get_or_init(|| batcher_network(16)),
        _ => panic!("unsupported network size {n}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apply(net: &[(usize, usize)], v: &mut [u32]) {
        for &(i, j) in net {
            if v[j] < v[i] {
                v.swap(i, j);
            }
        }
    }

    /// 0–1 principle: a network sorts all inputs iff it sorts all 0/1
    /// sequences. Exhaustively check n = 4, 8, 16.
    #[test]
    fn zero_one_principle() {
        for n in [4usize, 8, 16] {
            let net = batcher_network(n);
            for bits in 0u32..(1 << n) {
                let mut v: Vec<u32> = (0..n).map(|i| (bits >> i) & 1).collect();
                apply(&net, &mut v);
                assert!(
                    v.windows(2).all(|w| w[0] <= w[1]),
                    "n={n} bits={bits:#b} -> {v:?}"
                );
            }
        }
    }

    #[test]
    fn comparator_counts() {
        // Batcher odd-even mergesort sizes: n=4 -> 5, n=8 -> 19, n=16 -> 63.
        assert_eq!(batcher_network(4).len(), 5);
        assert_eq!(batcher_network(8).len(), 19);
        assert_eq!(batcher_network(16).len(), 63);
    }

    #[test]
    fn comparators_are_ordered_pairs() {
        for n in [4usize, 8, 16] {
            for (i, j) in batcher_network(n) {
                assert!(i < j && j < n);
            }
        }
    }

    #[test]
    fn cached_matches_fresh() {
        for n in [4usize, 8, 16] {
            assert_eq!(cached_network(n), batcher_network(n).as_slice());
        }
    }

    #[test]
    fn sorts_random_permutations() {
        let net = batcher_network(16);
        let mut v: Vec<u32> = (0..16).rev().collect();
        apply(&net, &mut v);
        assert_eq!(v, (0..16).collect::<Vec<_>>());
    }
}
