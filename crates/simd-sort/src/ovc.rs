//! Offset-value coding for the out-of-cache merge (phase (c) of Eq. 5).
//!
//! An offset-value code (OVC) summarizes how a key relates to its
//! predecessor in a sorted run: the offset of the first 16-bit word (most
//! significant first) where the key differs from its predecessor, plus
//! the key's word at that offset. Within a merge whose comparands share a
//! common base — which the loser tree guarantees at every match, see
//! [`crate::multiway`] — comparing two codes decides the order of the
//! underlying keys whenever the codes differ, collapsing most full-key
//! comparisons into a single integer compare (Do & Graefe, *Robust and
//! Efficient Sorting with Offset-Value Coding*).
//!
//! Keys are compared widened to `u64` (zero-extension is
//! order-preserving), viewed as `ARITY = 4` big-endian 16-bit words, so
//! one encoding serves every bank. Narrow banks massaged into shared
//! prefixes short-circuit most often — exactly where the engine spends
//! its merge time.
//!
//! The module also owns the thread-local comparison counters the
//! telemetry layer harvests per round (modeled on [`crate::phase`], but
//! always compiled: the counts are load-bearing for the cost model's
//! calibration, not just observability).

use std::cell::Cell;

/// Number of 16-bit words in a widened key.
const ARITY: u32 = 4;

/// Bits per code word.
const WORD_BITS: u32 = 16;

/// The offset-value code of `key` relative to `base`.
///
/// Requires `base <= key` (the predecessor in a sorted run, or the
/// element that just won a loser-tree match). Returns `0` when the keys
/// are equal; otherwise `((ARITY - k) << 16) | word`, where `k` is the
/// index of the first differing 16-bit word (0 = most significant) and
/// `word` is `key`'s word at that index. For keys over a common base,
/// code order equals key order whenever the codes differ; equal nonzero
/// codes require a full key comparison.
#[inline]
pub fn ovc_encode(key: u64, base: u64) -> u32 {
    debug_assert!(base <= key, "OVC base must not exceed the key");
    let diff = key ^ base;
    if diff == 0 {
        return 0;
    }
    let k = diff.leading_zeros() / WORD_BITS;
    let word = (key >> ((ARITY - 1 - k) * WORD_BITS)) & 0xFFFF;
    ((ARITY - k) << WORD_BITS) | word as u32
}

/// Derive the per-element offset-value codes for a buffer of adjacent
/// sorted runs of length `run` (the last run may be shorter): each
/// element is coded relative to its run predecessor, run heads against
/// the virtual all-zero key. One linear pass; the result is valid input
/// for the first OVC merge pass.
pub(crate) fn derive_codes<K: crate::key::Key>(keys: &[K], run: usize, codes: &mut [u32]) {
    debug_assert_eq!(keys.len(), codes.len());
    debug_assert!(run > 0);
    let mut prev = 0u64;
    for (i, (k, c)) in keys.iter().zip(codes.iter_mut()).enumerate() {
        let k = k.to_u64();
        if i % run == 0 {
            prev = 0;
        }
        *c = ovc_encode(k, prev);
        prev = k;
    }
}

/// Comparison counters for one harvest window of multiway merging.
///
/// `comparisons` counts every decided loser-tree match between two live
/// runs (both the plain and the OVC tree count, so before/after reports
/// share a denominator); `ovc_hits` counts the subset decided by the
/// code compare alone, without touching the full keys. Full-key
/// comparisons are `comparisons - ovc_hits`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeCounters {
    /// Loser-tree matches played between two live runs.
    pub comparisons: u64,
    /// Matches decided by the offset-value codes alone.
    pub ovc_hits: u64,
}

impl MergeCounters {
    /// Element-wise sum (used when merging per-thread stats).
    pub fn add(&mut self, other: MergeCounters) {
        self.comparisons += other.comparisons;
        self.ovc_hits += other.ovc_hits;
    }
}

thread_local! {
    static ACC: Cell<MergeCounters> = const {
        Cell::new(MergeCounters {
            comparisons: 0,
            ovc_hits: 0,
        })
    };
}

/// Credit one merge call's comparison counts to the current thread's
/// accumulator (called once per merge, not per match).
#[inline]
pub(crate) fn record(comparisons: u64, ovc_hits: u64) {
    ACC.with(|acc| {
        let mut c = acc.get();
        c.comparisons += comparisons;
        c.ovc_hits += ovc_hits;
        acc.set(c);
    });
}

/// Drain this thread's accumulated merge counters.
pub fn take_merge_counters() -> MergeCounters {
    ACC.with(|acc| acc.replace(MergeCounters::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_code_zero() {
        assert_eq!(ovc_encode(0, 0), 0);
        assert_eq!(ovc_encode(u64::MAX, u64::MAX), 0);
        assert_eq!(ovc_encode(0xABCD, 0xABCD), 0);
    }

    #[test]
    fn code_picks_first_differing_word() {
        // Differs in the most significant word: offset 0, arity part 4.
        assert_eq!(ovc_encode(0x0001_0000_0000_0000, 0), (4 << 16) | 0x0001u32);
        // Differs only in the least significant word: offset 3, part 1.
        assert_eq!(ovc_encode(0x0000_0000_0000_00FF, 0), (1 << 16) | 0x00FF);
        // Shared high word, difference in word 1.
        assert_eq!(
            ovc_encode(0xAAAA_BBBB_0000_0000, 0xAAAA_1111_2222_3333),
            (3 << 16) | 0xBBBB
        );
    }

    #[test]
    fn codes_order_keys_over_a_common_base() {
        // For any base p <= a, b: different codes must order like the keys.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let mut v = [
                next() & 0xFFFF_FFFF,
                next() & 0xFFFF_FFFF,
                next() & 0xFFFF_FFFF,
            ];
            v.sort_unstable();
            let (p, a, b) = (v[0], v[1], v[2]);
            let (ca, cb) = (ovc_encode(a, p), ovc_encode(b, p));
            if ca != cb {
                assert_eq!(a < b, ca < cb, "p={p:#x} a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn counters_accumulate_and_drain_per_thread() {
        let _ = take_merge_counters();
        record(10, 7);
        record(5, 1);
        assert_eq!(
            take_merge_counters(),
            MergeCounters {
                comparisons: 15,
                ovc_hits: 8
            }
        );
        assert_eq!(take_merge_counters(), MergeCounters::default());
        std::thread::spawn(|| {
            assert_eq!(take_merge_counters(), MergeCounters::default());
        })
        .join()
        .unwrap();
    }
}
