//! Multi-threaded sorting (the paper's §6.4 scaling experiments).
//!
//! Strategy: partition the input into `T` contiguous chunks, sort each on
//! its own thread (`std::thread::scope`, matching the paper's
//! thread-per-core execution), then produce the total order with one
//! multiway merge. Segmented sorts parallelize by distributing whole
//! groups across threads.
//!
//! Worker panics are caught at the scope boundary and surfaced as a typed
//! [`WorkerPanic`] carrying the chunk index, so a dying worker can be
//! degraded around (the caller's buffers may hold partially sorted data
//! and must be treated as garbage) instead of aborting the process.

use crate::multiway::multiway_merge;
use crate::scratch::WorkerScratch;
use crate::segmented::{GroupBounds, SegmentedSortStats};
use crate::sort::{SortConfig, SortableKey};

/// A worker thread of a parallel sort panicked.
///
/// The input slices are left in an unspecified (partially sorted) state;
/// callers recover by re-running the work from their own pristine inputs
/// (serially or via a fallback path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the chunk (or group span) whose worker died.
    pub chunk: usize,
}

impl core::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parallel-sort worker for chunk {} panicked", self.chunk)
    }
}

impl std::error::Error for WorkerPanic {}

/// Sort `(keys, oids)` using up to `threads` worker threads.
///
/// Returns `Err(WorkerPanic)` — with `keys`/`oids` in an unspecified
/// order — if a worker thread panics; the panic is contained at the
/// scope boundary rather than propagated.
pub fn sort_pairs_parallel<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    threads: usize,
    cfg: &SortConfig,
) -> Result<(), WorkerPanic> {
    assert_eq!(keys.len(), oids.len());
    let n = keys.len();
    let threads = threads.max(1);
    if threads == 1 || n < 4096 {
        K::sort_pairs_with(keys, oids, cfg);
        return Ok(());
    }
    let chunk = n.div_ceil(threads);

    // Sort chunks in parallel; join every handle explicitly so a panicked
    // worker is reported as data instead of re-panicking the scope.
    let mut first_panic: Option<usize> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut rem_k: &mut [K] = keys;
        let mut rem_o: &mut [u32] = oids;
        while !rem_k.is_empty() {
            let take = chunk.min(rem_k.len());
            let (ck, rest_k) = rem_k.split_at_mut(take);
            let (co, rest_o) = rem_o.split_at_mut(take);
            rem_k = rest_k;
            rem_o = rest_o;
            handles.push(scope.spawn(move || {
                if mcs_faults::fault_point!(mcs_faults::points::SIMD_WORKER_PANIC) {
                    panic!("injected fault: {}", mcs_faults::points::SIMD_WORKER_PANIC);
                }
                K::sort_pairs_with(ck, co, cfg)
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            if h.join().is_err() && first_panic.is_none() {
                first_panic = Some(i);
            }
        }
    });
    if let Some(chunk) = first_panic {
        return Err(WorkerPanic { chunk });
    }

    // Single multiway merge of the sorted chunks.
    let runs: Vec<core::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(n))
        .collect();
    let mut out_k = vec![K::default(); n];
    let mut out_o = vec![0u32; n];
    multiway_merge(keys, oids, &mut out_k, &mut out_o, &runs, 0);
    keys.copy_from_slice(&out_k);
    oids.copy_from_slice(&out_o);
    Ok(())
}

/// Segmented sort with groups distributed round-robin by cumulative size
/// across `threads` workers.
///
/// Worker panics are caught and returned as a [`WorkerPanic`] carrying
/// the group-span index; the slices are then in an unspecified state.
pub fn sort_pairs_in_groups_parallel<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    threads: usize,
    cfg: &SortConfig,
) -> Result<SegmentedSortStats, WorkerPanic> {
    let mut scratch = WorkerScratch::new();
    sort_pairs_in_groups_parallel_scratch(keys, oids, groups, threads, cfg, &mut scratch)
}

/// Like [`sort_pairs_in_groups_parallel`], but drawing span bookkeeping
/// and every worker's merge-sort buffers from `scratch` — the hot-path
/// work is allocation-free once the scratch is warm (thread spawning and
/// join collection still allocate; the serial `threads == 1` path does
/// not).
pub fn sort_pairs_in_groups_parallel_scratch<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    threads: usize,
    cfg: &SortConfig,
    scratch: &mut WorkerScratch,
) -> Result<SegmentedSortStats, WorkerPanic> {
    assert_eq!(keys.len(), oids.len());
    assert_eq!(groups.num_rows(), keys.len());
    let threads = threads.max(1);
    if threads == 1 {
        return Ok(crate::segmented::sort_pairs_in_groups_scratch(
            keys,
            oids,
            groups,
            cfg,
            scratch.serial(),
        ));
    }

    // Assign contiguous group spans of roughly equal row counts: spans of
    // whole groups keep every sort local to one thread.
    let n = keys.len();
    let target = n.div_ceil(threads).max(1);
    let offs = &groups.offsets;
    scratch.spans.clear();
    let mut span_start = 0usize;
    for g in 0..groups.num_groups() {
        let span_rows = (offs[g + 1] - offs[span_start]) as usize;
        if span_rows >= target {
            scratch.spans.push((span_start, g + 1));
            span_start = g + 1;
        }
    }
    if span_start < groups.num_groups() {
        scratch.spans.push((span_start, groups.num_groups()));
    }

    // One rebased offsets buffer and one sort scratch per span.
    let num_spans = scratch.spans.len();
    scratch.locals.resize_with(num_spans, Vec::new);
    scratch.workers.resize_with(num_spans, Default::default);
    for (&(gs, ge), local) in scratch.spans.iter().zip(scratch.locals.iter_mut()) {
        local.clear();
        local.extend(offs[gs..=ge].iter().map(|&b| b - offs[gs]));
    }

    let spans = &scratch.spans;
    let locals = &scratch.locals;
    let joined: Vec<std::thread::Result<SegmentedSortStats>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(num_spans);
        let mut rem_k: &mut [K] = keys;
        let mut rem_o: &mut [u32] = oids;
        let mut consumed = 0usize;
        for ((&(gs, ge), local), worker) in spans
            .iter()
            .zip(locals.iter())
            .zip(scratch.workers.iter_mut())
        {
            let start = offs[gs] as usize;
            let end = offs[ge] as usize;
            debug_assert_eq!(start, consumed);
            let take = end - start;
            let (ck, rest_k) = rem_k.split_at_mut(take);
            let (co, rest_o) = rem_o.split_at_mut(take);
            rem_k = rest_k;
            rem_o = rest_o;
            consumed += take;
            handles.push(scope.spawn(move || {
                if mcs_faults::fault_point!(mcs_faults::points::SIMD_WORKER_PANIC) {
                    panic!("injected fault: {}", mcs_faults::points::SIMD_WORKER_PANIC);
                }
                crate::segmented::sort_groups_by_offsets(ck, co, local, cfg, worker)
            }));
        }
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut total = SegmentedSortStats::default();
    for (i, r) in joined.into_iter().enumerate() {
        match r {
            Ok(s) => {
                total.invocations += s.invocations;
                total.codes_sorted += s.codes_sorted;
                total.max_group = total.max_group.max(s.max_group);
                // CPU time summed across workers; may exceed the round's
                // wall time.
                total.phases.add(s.phases);
                total.merge.add(s.merge);
            }
            Err(_) => return Err(WorkerPanic { chunk: i }),
        }
    }
    Ok(total)
}

/// Parallel code over `threads` contiguous chunks of equal size, used by
/// the massage kernel and scans. `f(chunk_index, start, chunk_len)`.
pub fn for_each_chunk(n: usize, threads: usize, f: impl Fn(usize, usize, usize) + Sync) {
    let threads = threads.max(1);
    if threads == 1 || n < 4096 {
        f(0, 0, n);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut idx = 0usize;
        let mut start = 0usize;
        while start < n {
            let len = chunk.min(n - start);
            let (i, s) = (idx, start);
            scope.spawn(move || f(i, s, len));
            idx += 1;
            start += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn parallel_sort_matches_serial() {
        let n = 50_000;
        let mut state = 12345u64;
        let orig: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let cfg = SortConfig::default();

        for threads in [1usize, 2, 3, 4, 8] {
            let mut keys = orig.clone();
            let mut oids: Vec<u32> = (0..n as u32).collect();
            sort_pairs_parallel(&mut keys, &mut oids, threads, &cfg).expect("no injected faults");
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            for i in 0..n as usize {
                assert_eq!(keys[i], orig[oids[i] as usize]);
            }
        }
    }

    #[test]
    fn parallel_segmented_matches_serial() {
        let n = 40_000usize;
        let mut state = 777u64;
        let keys0: Vec<u16> = (0..n).map(|_| xorshift(&mut state) as u16).collect();
        // Groups of varying sizes.
        let mut offsets = vec![0u32];
        let mut at = 0u32;
        let mut g = 1u32;
        while (at as usize) < n {
            at = (at + g * 37 % 501 + 1).min(n as u32);
            offsets.push(at);
            g += 1;
        }
        let groups = GroupBounds::from_offsets(offsets);
        let cfg = SortConfig::default();

        let mut k1 = keys0.clone();
        let mut o1: Vec<u32> = (0..n as u32).collect();
        let s1 = crate::segmented::sort_pairs_in_groups(&mut k1, &mut o1, &groups, &cfg);

        let mut k2 = keys0.clone();
        let mut o2: Vec<u32> = (0..n as u32).collect();
        let s2 = sort_pairs_in_groups_parallel(&mut k2, &mut o2, &groups, 4, &cfg)
            .expect("no injected faults");

        assert_eq!(k1, k2);
        assert_eq!(s1.invocations, s2.invocations);
        assert_eq!(s1.codes_sorted, s2.codes_sorted);
    }

    #[test]
    fn for_each_chunk_covers_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 10_000usize;
        let sum = AtomicUsize::new(0);
        for_each_chunk(n, 4, |_, start, len| {
            sum.fetch_add((start..start + len).sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let mut keys: Vec<u64> = vec![3, 1, 2];
        let mut oids: Vec<u32> = vec![0, 1, 2];
        sort_pairs_parallel(&mut keys, &mut oids, 8, &SortConfig::default())
            .expect("serial fallback cannot panic");
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(u64::MAX_KEY, u64::MAX);
    }

    #[test]
    fn worker_panic_error_formats() {
        let e = WorkerPanic { chunk: 3 };
        assert!(e.to_string().contains("chunk 3"));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_worker_panic_is_caught() {
        use mcs_faults::{points, with_armed, FireMode};
        let n = 20_000usize;
        let mut state = 99u64;
        let orig: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let cfg = SortConfig::default();

        with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
            // Silence the expected worker-panic backtrace.
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let mut keys = orig.clone();
            let mut oids: Vec<u32> = (0..n as u32).collect();
            let err = sort_pairs_parallel(&mut keys, &mut oids, 4, &cfg);
            std::panic::set_hook(prev);
            assert_eq!(err, Err(WorkerPanic { chunk: 0 }));
        });

        // Disarmed again: the same call succeeds.
        let mut keys = orig.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_pairs_parallel(&mut keys, &mut oids, 4, &cfg).expect("disarmed");
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
