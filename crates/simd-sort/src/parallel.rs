//! Multi-threaded sorting (the paper's §6.4 scaling experiments),
//! morsel-driven.
//!
//! Strategy: carve the work into morsels — contiguous row ranges for the
//! flat sort, whole-group spans plus split slices of oversized groups for
//! the segmented sort — seed them range-partitioned across a
//! [`MorselQueue`], and let `T` workers (`std::thread::scope`, matching
//! the paper's thread-per-core execution) pull morsels until the queue is
//! dry. A worker that finishes its seed early steals from stragglers, so
//! skewed group distributions no longer leave workers idle behind one
//! giant group. The flat sort finishes with one multiway merge of the
//! sorted chunk runs; a split group is merged by whichever worker sorts
//! its last slice.
//!
//! Worker panics are caught at the scope boundary and surfaced as a typed
//! [`WorkerPanic`] carrying the worker index, so a dying worker can be
//! degraded around (the caller's buffers may hold partially sorted data
//! and must be treated as garbage) instead of aborting the process.
//! `CancelToken` polls and the `simd.worker.panic` fault point both live
//! inside the morsel loop, bounding reaction latency to one morsel.

use crate::multiway::{multiway_merge, multiway_merge_scratch_cancellable};
use crate::ovc;
use crate::phase;
use crate::scalar::insertion_sort_pairs;
use crate::scratch::{SortScratch, WorkerScratch};
use crate::segmented::{GroupBounds, SegmentedSortStats};
use crate::sort::{SortConfig, SortableKey};
use mcs_morsel::{row_morsels, MorselCounts, MorselQueue};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Morsels seeded per worker on a balanced input: finer than one-per-
/// worker so stragglers leave stealable work, coarse enough that the
/// queue's lock traffic stays negligible against a morsel's sort cost.
const MORSELS_PER_WORKER: usize = 4;

/// Split boundaries inside an oversized group are aligned down to this
/// many rows — the in-register kernel's largest block (`L·L` for the
/// 8-lane banks) — so every slice but the last enters the sort at whole-
/// block granularity.
const SPLIT_ALIGN: usize = 64;

/// A worker thread of a parallel sort panicked.
///
/// The input slices are left in an unspecified (partially sorted) state;
/// callers recover by re-running the work from their own pristine inputs
/// (serially or via a fallback path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the worker whose morsel loop died.
    pub chunk: usize,
}

impl core::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "parallel-sort worker {} panicked", self.chunk)
    }
}

impl std::error::Error for WorkerPanic {}

/// Raw base pointer smuggled into worker closures.
///
/// Safety contract: every morsel names a row range disjoint from all
/// other concurrently executing morsels, so the `&mut [T]` slices the
/// workers materialize never alias.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// # Safety
/// `[at, at + len)` must lie inside `p`'s allocation and must not be
/// accessed concurrently for the lifetime of the returned slice.
unsafe fn slice_mut<'a, T>(p: SendPtr<T>, at: usize, len: usize) -> &'a mut [T] {
    core::slice::from_raw_parts_mut(p.0.add(at), len)
}

/// Sort `(keys, oids)` using up to `threads` worker threads.
///
/// Inputs shorter than [`SortConfig::parallel_cutoff_rows`] sort serially.
/// Otherwise the input is carved into contiguous chunk morsels (several
/// per worker), each chunk is sorted by whichever worker pulls it, and a
/// final multiway merge produces the total order.
///
/// Returns `Err(WorkerPanic)` — with `keys`/`oids` in an unspecified
/// order — if a worker thread panics; the panic is contained at the
/// scope boundary rather than propagated.
pub fn sort_pairs_parallel<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    threads: usize,
    cfg: &SortConfig,
) -> Result<(), WorkerPanic> {
    assert_eq!(keys.len(), oids.len());
    let n = keys.len();
    let threads = threads.max(1);
    if threads == 1 || n < cfg.parallel_cutoff_rows.max(1) {
        K::sort_pairs_with(keys, oids, cfg);
        return Ok(());
    }
    // More chunks than workers (so stragglers can be stolen around), but
    // never chunks smaller than the serial cutoff.
    let num_chunks = (threads * MORSELS_PER_WORKER)
        .min(n / cfg.parallel_cutoff_rows.max(1))
        .max(1);
    let chunk = n.div_ceil(num_chunks);
    let mut queue = MorselQueue::new(threads);
    queue.seed_partitioned(row_morsels(n, chunk));

    let kp = SendPtr(keys.as_mut_ptr());
    let op = SendPtr(oids.as_mut_ptr());
    let mut first_panic: Option<usize> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let queue = &queue;
                scope.spawn(move || {
                    let mut scratch = SortScratch::new();
                    while let Some((m, _stolen)) = queue.pop(w) {
                        if mcs_faults::fault_point!(mcs_faults::points::SIMD_WORKER_PANIC) {
                            panic!("injected fault: {}", mcs_faults::points::SIMD_WORKER_PANIC);
                        }
                        if m.len == 0 {
                            continue;
                        }
                        // SAFETY: row morsels tile `0..n` disjointly and
                        // each is executed by exactly one worker.
                        let (ck, co) = unsafe {
                            (slice_mut(kp, m.start, m.len), slice_mut(op, m.start, m.len))
                        };
                        K::sort_pairs_with_scratch(ck, co, cfg, &mut scratch);
                    }
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            if h.join().is_err() && first_panic.is_none() {
                first_panic = Some(w);
            }
        }
    });
    if let Some(worker) = first_panic {
        return Err(WorkerPanic { chunk: worker });
    }

    // Single multiway merge of the sorted chunk runs.
    let runs: Vec<core::ops::Range<usize>> = (0..n)
        .step_by(chunk)
        .map(|s| s..(s + chunk).min(n))
        .collect();
    let mut out_k = vec![K::default(); n];
    let mut out_o = vec![0u32; n];
    multiway_merge(keys, oids, &mut out_k, &mut out_o, &runs, 0);
    keys.copy_from_slice(&out_k);
    oids.copy_from_slice(&out_o);
    Ok(())
}

/// Work items of the morsel-driven segmented sort.
enum Task {
    /// A contiguous span of whole groups — index into the scratch's
    /// `spans`/`locals` bookkeeping; sorted group-by-group locally.
    Span(usize),
    /// One slice of an oversized (split) group.
    Chunk {
        /// Index into the split-group registry.
        split: usize,
        /// Which slice of that group.
        part: usize,
    },
}

/// An oversized group carved into independently sortable slices. The
/// worker that sorts the *last* slice (observes `remaining` hit zero)
/// merges the sorted slices back into group order.
struct SplitGroup {
    /// Absolute row boundaries of the slices (`parts + 1` entries).
    bounds: Vec<usize>,
    /// Slices not yet sorted. `fetch_sub(AcqRel)` per finished slice:
    /// the Release publishes this slice's sorted rows, the final Acquire
    /// lets the finisher read all of them.
    remaining: AtomicUsize,
}

/// Slice boundaries for splitting `len` rows at `start` into `parts`
/// near-equal pieces, aligned down to [`SPLIT_ALIGN`] (collapsed
/// boundaries are dropped, so tiny inputs may yield fewer parts).
fn split_bounds(start: usize, len: usize, parts: usize) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(start);
    for p in 1..parts {
        let mut cut = start + len * p / parts;
        cut -= (cut - start) % SPLIT_ALIGN;
        if cut > *bounds.last().unwrap() {
            bounds.push(cut);
        }
    }
    bounds.push(start + len);
    bounds
}

/// Segmented sort with groups distributed as work-stealing morsels
/// across `threads` workers.
///
/// Worker panics are caught and returned as a [`WorkerPanic`] carrying
/// the worker index; the slices are then in an unspecified state.
pub fn sort_pairs_in_groups_parallel<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    threads: usize,
    cfg: &SortConfig,
) -> Result<SegmentedSortStats, WorkerPanic> {
    let mut scratch = WorkerScratch::new();
    sort_pairs_in_groups_parallel_scratch(keys, oids, groups, threads, cfg, &mut scratch)
}

/// Like [`sort_pairs_in_groups_parallel`], but drawing span bookkeeping
/// and every worker's merge-sort buffers from `scratch` — the hot-path
/// work is allocation-free once the scratch is warm (thread spawning,
/// queue seeding, and split-group merges still allocate; the serial
/// `threads == 1` path does not).
///
/// Scheduling: whole groups are packed into contiguous spans of roughly
/// `n / (threads · 4)` rows; any single group at least twice that size is
/// split at 64-row-aligned boundaries into slice morsels, sorted
/// independently, and merged by the worker finishing the last slice. All
/// morsels are seeded range-partitioned (a balanced input steals nothing);
/// workers pull LIFO locally and steal half a straggler's deque when dry.
/// Group-level stats are counted once per *group* (a split group bumps
/// `invocations` once, by its finisher), so stats match the serial path.
pub fn sort_pairs_in_groups_parallel_scratch<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    threads: usize,
    cfg: &SortConfig,
    scratch: &mut WorkerScratch,
) -> Result<SegmentedSortStats, WorkerPanic> {
    assert_eq!(keys.len(), oids.len());
    assert_eq!(groups.num_rows(), keys.len());
    let threads = threads.max(1);
    let n = keys.len();
    if threads == 1 || n < cfg.parallel_cutoff_rows.max(1) {
        return Ok(crate::segmented::sort_pairs_in_groups_scratch(
            keys,
            oids,
            groups,
            cfg,
            scratch.serial(),
        ));
    }

    // Carve groups into morsels: contiguous spans of whole groups of
    // roughly `target` rows, with oversized groups split into slices.
    let target = n.div_ceil(threads * MORSELS_PER_WORKER).max(1);
    let offs = &groups.offsets;
    let num_groups = groups.num_groups();
    scratch.spans.clear();
    let mut splits: Vec<SplitGroup> = Vec::new();
    let mut tasks: Vec<Task> = Vec::new();
    let mut span_start = 0usize;
    for g in 0..num_groups {
        let len = (offs[g + 1] - offs[g]) as usize;
        if len >= 2 * target {
            if span_start < g {
                tasks.push(Task::Span(scratch.spans.len()));
                scratch.spans.push((span_start, g));
            }
            let bounds = split_bounds(offs[g] as usize, len, len.div_ceil(target));
            let parts = bounds.len() - 1;
            let split = splits.len();
            splits.push(SplitGroup {
                bounds,
                remaining: AtomicUsize::new(parts),
            });
            for part in 0..parts {
                tasks.push(Task::Chunk { split, part });
            }
            span_start = g + 1;
        } else if (offs[g + 1] - offs[span_start]) as usize >= target {
            tasks.push(Task::Span(scratch.spans.len()));
            scratch.spans.push((span_start, g + 1));
            span_start = g + 1;
        }
    }
    if span_start < num_groups {
        tasks.push(Task::Span(scratch.spans.len()));
        scratch.spans.push((span_start, num_groups));
    }

    // Rebased offsets per span; one sort scratch per worker.
    let num_spans = scratch.spans.len();
    scratch.locals.resize_with(num_spans, Vec::new);
    for (&(gs, ge), local) in scratch.spans.iter().zip(scratch.locals.iter_mut()) {
        local.clear();
        local.extend(offs[gs..=ge].iter().map(|&b| b - offs[gs]));
    }
    if scratch.workers.len() < threads {
        scratch.workers.resize_with(threads, Default::default);
    }

    let mut queue = MorselQueue::new(threads);
    queue.note_split(splits.len() as u64);
    queue.seed_partitioned(tasks);

    let kp = SendPtr(keys.as_mut_ptr());
    let op = SendPtr(oids.as_mut_ptr());
    let spans = &scratch.spans;
    let locals = &scratch.locals;
    let splits = &splits;
    let queue_ref = &queue;
    let joined: Vec<std::thread::Result<SegmentedSortStats>> = std::thread::scope(|scope| {
        let handles: Vec<_> = scratch
            .workers
            .iter_mut()
            .take(threads)
            .enumerate()
            .map(|(w, worker)| {
                scope.spawn(move || {
                    run_worker::<K>(
                        w, queue_ref, spans, locals, splits, offs, kp, op, cfg, worker,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut total = SegmentedSortStats::default();
    for (w, r) in joined.into_iter().enumerate() {
        match r {
            Ok(s) => {
                total.invocations += s.invocations;
                total.codes_sorted += s.codes_sorted;
                total.max_group = total.max_group.max(s.max_group);
                // CPU time summed across workers; may exceed the round's
                // wall time.
                total.phases.add(s.phases);
                total.merge.add(s.merge);
            }
            Err(_) => return Err(WorkerPanic { chunk: w }),
        }
    }
    total.morsels = queue.counts();
    Ok(total)
}

/// One worker's morsel loop: pop (or steal) tasks until the queue is dry.
#[allow(clippy::too_many_arguments)]
fn run_worker<K: SortableKey>(
    w: usize,
    queue: &MorselQueue<Task>,
    spans: &[(usize, usize)],
    locals: &[Vec<u32>],
    splits: &[SplitGroup],
    offs: &[u32],
    kp: SendPtr<K>,
    op: SendPtr<u32>,
    cfg: &SortConfig,
    worker: &mut SortScratch,
) -> SegmentedSortStats {
    let mut stats = SegmentedSortStats::default();
    while let Some((task, _stolen)) = queue.pop(w) {
        // Fault injection and cancellation live in the morsel loop:
        // reaction latency is bounded by one morsel. A fired token stops
        // this worker; the others stop at their own next poll, and the
        // caller re-checks the token and discards the garbage round.
        if mcs_faults::fault_point!(mcs_faults::points::SIMD_WORKER_PANIC) {
            panic!("injected fault: {}", mcs_faults::points::SIMD_WORKER_PANIC);
        }
        if cfg.cancel.check().is_err() {
            break;
        }
        match task {
            Task::Span(s) => {
                let (gs, ge) = spans[s];
                let start = offs[gs] as usize;
                let len = offs[ge] as usize - start;
                // SAFETY: spans cover disjoint whole-group row ranges and
                // each span task is executed by exactly one worker.
                let (ck, co) = unsafe { (slice_mut(kp, start, len), slice_mut(op, start, len)) };
                let got = crate::segmented::sort_groups_by_offsets(ck, co, &locals[s], cfg, worker);
                stats.invocations += got.invocations;
                stats.codes_sorted += got.codes_sorted;
                stats.max_group = stats.max_group.max(got.max_group);
                stats.phases.add(got.phases);
                stats.merge.add(got.merge);
            }
            Task::Chunk { split, part } => {
                let sg = &splits[split];
                let (ps, pe) = (sg.bounds[part], sg.bounds[part + 1]);
                // SAFETY: slice bounds of one split group are disjoint
                // from each other and from every span.
                let (ck, co) = unsafe { (slice_mut(kp, ps, pe - ps), slice_mut(op, ps, pe - ps)) };
                if ck.len() <= cfg.small_threshold {
                    insertion_sort_pairs(ck, co);
                } else {
                    K::sort_pairs_with_scratch(ck, co, cfg, worker);
                }
                // Harvest this thread's phase/merge marks per slice (span
                // tasks harvest inside `sort_groups_by_offsets`).
                stats.phases.add(phase::take_phases());
                stats.merge.add(ovc::take_merge_counters());
                if sg.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    finish_split::<K>(sg, kp, op, cfg, worker, &mut stats);
                }
            }
        }
    }
    stats
}

/// Merge the sorted slices of a split group back into group order. Runs
/// on whichever worker sorted the last slice; stats for the group are
/// bumped here, once, so totals match the serial per-group accounting.
fn finish_split<K: SortableKey>(
    sg: &SplitGroup,
    kp: SendPtr<K>,
    op: SendPtr<u32>,
    cfg: &SortConfig,
    worker: &mut SortScratch,
    stats: &mut SegmentedSortStats,
) {
    let start = sg.bounds[0];
    let len = *sg.bounds.last().unwrap() - start;
    stats.invocations += 1;
    stats.codes_sorted += len;
    stats.max_group = stats.max_group.max(len);
    let runs: Vec<core::ops::Range<usize>> = sg
        .bounds
        .windows(2)
        .map(|b| b[0] - start..b[1] - start)
        .collect();
    // SAFETY: `remaining` hit zero, so every slice's sort completed and
    // was published (AcqRel), and no other worker touches this group
    // again — the range is exclusively ours now.
    let (ck, co) = unsafe { (slice_mut(kp, start, len), slice_mut(op, start, len)) };
    let mut out_k = vec![K::default(); len];
    let mut out_o = vec![0u32; len];
    multiway_merge_scratch_cancellable(
        ck,
        co,
        &mut out_k,
        &mut out_o,
        &runs,
        0,
        &mut worker.merge,
        &cfg.cancel,
    );
    if cfg.cancel.check().is_err() {
        return; // round is garbage anyway; don't publish a partial merge
    }
    ck.copy_from_slice(&out_k);
    co.copy_from_slice(&out_o);
}

/// Parallel iteration over row-range morsels, used by the massage kernel
/// and the executor's gather/boundary scans. `f(morsel_index, start, len)`
/// over disjoint ranges tiling `0..n`; morsels are seeded range-
/// partitioned and work-stolen like the sorts. Inputs shorter than
/// [`crate::sort::DEFAULT_PARALLEL_CUTOFF_ROWS`] (call sites here carry
/// no `SortConfig`) run as one serial call `f(0, 0, n)`.
///
/// Returns the scheduler counters (all zero on the serial path).
pub fn for_each_chunk(
    n: usize,
    threads: usize,
    f: impl Fn(usize, usize, usize) + Sync,
) -> MorselCounts {
    let threads = threads.max(1);
    if threads == 1 || n < crate::sort::DEFAULT_PARALLEL_CUTOFF_ROWS {
        f(0, 0, n);
        return MorselCounts::default();
    }
    let target = n.div_ceil(threads * MORSELS_PER_WORKER).max(1);
    let mut queue = MorselQueue::new(threads);
    queue.seed_partitioned(row_morsels(n, target).into_iter().enumerate().collect());
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queue = &queue;
            let f = &f;
            scope.spawn(move || {
                while let Some(((i, m), _stolen)) = queue.pop(w) {
                    f(i, m.start, m.len);
                }
            });
        }
    });
    queue.counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::Key;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn parallel_sort_matches_serial() {
        let n = 50_000;
        let mut state = 12345u64;
        let orig: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let cfg = SortConfig::default();

        for threads in [1usize, 2, 3, 4, 8] {
            let mut keys = orig.clone();
            let mut oids: Vec<u32> = (0..n as u32).collect();
            sort_pairs_parallel(&mut keys, &mut oids, threads, &cfg).expect("no injected faults");
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            for i in 0..n as usize {
                assert_eq!(keys[i], orig[oids[i] as usize]);
            }
        }
    }

    #[test]
    fn parallel_segmented_matches_serial() {
        let n = 40_000usize;
        let mut state = 777u64;
        let keys0: Vec<u16> = (0..n).map(|_| xorshift(&mut state) as u16).collect();
        // Groups of varying sizes.
        let mut offsets = vec![0u32];
        let mut at = 0u32;
        let mut g = 1u32;
        while (at as usize) < n {
            at = (at + g * 37 % 501 + 1).min(n as u32);
            offsets.push(at);
            g += 1;
        }
        let groups = GroupBounds::from_offsets(offsets);
        let cfg = SortConfig::default();

        let mut k1 = keys0.clone();
        let mut o1: Vec<u32> = (0..n as u32).collect();
        let s1 = crate::segmented::sort_pairs_in_groups(&mut k1, &mut o1, &groups, &cfg);

        let mut k2 = keys0.clone();
        let mut o2: Vec<u32> = (0..n as u32).collect();
        let s2 = sort_pairs_in_groups_parallel(&mut k2, &mut o2, &groups, 4, &cfg)
            .expect("no injected faults");

        assert_eq!(k1, k2);
        assert_eq!(s1.invocations, s2.invocations);
        assert_eq!(s1.codes_sorted, s2.codes_sorted);
        assert!(s2.morsels.dispatched > 0, "parallel path must schedule");
    }

    #[test]
    fn oversized_group_is_split_and_merged_correctly() {
        // One group holding ~95% of the rows forces the split-slice path.
        let n = 60_000usize;
        let big = 57_000u32;
        let mut state = 4242u64;
        let keys0: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let mut offsets = vec![0u32, big];
        let mut at = big;
        while (at as usize) < n {
            at = (at + 100).min(n as u32);
            offsets.push(at);
        }
        let groups = GroupBounds::from_offsets(offsets);
        let cfg = SortConfig::default();

        let mut k1 = keys0.clone();
        let mut o1: Vec<u32> = (0..n as u32).collect();
        let s1 = crate::segmented::sort_pairs_in_groups(&mut k1, &mut o1, &groups, &cfg);

        let mut k2 = keys0.clone();
        let mut o2: Vec<u32> = (0..n as u32).collect();
        let s2 = sort_pairs_in_groups_parallel(&mut k2, &mut o2, &groups, 4, &cfg)
            .expect("no injected faults");

        assert_eq!(k1, k2, "split+merge must equal the serial group sort");
        assert_eq!(s1.invocations, s2.invocations);
        assert_eq!(s1.codes_sorted, s2.codes_sorted);
        assert_eq!(s1.max_group, s2.max_group);
        assert!(s2.morsels.split >= 1, "the giant group must have split");
        // oids form a permutation and point back at the original keys.
        for i in 0..n {
            assert_eq!(k2[i], keys0[o2[i] as usize]);
        }
    }

    #[test]
    fn skewed_groups_eventually_steal() {
        // Steals are scheduling-dependent (a worker must go dry while
        // another still holds queued morsels), so retry a handful of
        // times; byte-identical output is asserted on *every* attempt.
        let n = 50_000usize;
        let big = 47_500u32; // 95% of rows in one group
        let mut state = 31337u64;
        let keys0: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let mut offsets = vec![0u32, big];
        let mut at = big;
        while (at as usize) < n {
            at = (at + 50).min(n as u32);
            offsets.push(at);
        }
        let groups = GroupBounds::from_offsets(offsets);
        let cfg = SortConfig::default();

        let mut k1 = keys0.clone();
        let mut o1: Vec<u32> = (0..n as u32).collect();
        crate::segmented::sort_pairs_in_groups(&mut k1, &mut o1, &groups, &cfg);

        let mut saw_steal = false;
        for _ in 0..50 {
            let mut k2 = keys0.clone();
            let mut o2: Vec<u32> = (0..n as u32).collect();
            let s = sort_pairs_in_groups_parallel(&mut k2, &mut o2, &groups, 4, &cfg)
                .expect("no injected faults");
            assert_eq!(k1, k2, "steal schedule must not change the keys");
            if s.morsels.stolen > 0 {
                saw_steal = true;
                break;
            }
        }
        assert!(saw_steal, "no steal observed across 50 skewed runs");
    }

    #[test]
    fn parallel_cutoff_rows_is_honored() {
        // Below the cutoff the parallel entry points run serially
        // (dispatched == 0); lowering the knob re-enables scheduling.
        let n = 3_000usize;
        let mut state = 99u64;
        let keys0: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let groups = GroupBounds::from_offsets(vec![0, (n / 2) as u32, n as u32]);

        let cfg = SortConfig::default();
        assert!(n < cfg.parallel_cutoff_rows);
        let mut k = keys0.clone();
        let mut o: Vec<u32> = (0..n as u32).collect();
        let s = sort_pairs_in_groups_parallel(&mut k, &mut o, &groups, 4, &cfg).unwrap();
        assert_eq!(s.morsels, MorselCounts::default());

        let low = SortConfig {
            parallel_cutoff_rows: 64,
            ..SortConfig::default()
        };
        let mut k2 = keys0.clone();
        let mut o2: Vec<u32> = (0..n as u32).collect();
        let s2 = sort_pairs_in_groups_parallel(&mut k2, &mut o2, &groups, 4, &low).unwrap();
        assert!(s2.morsels.dispatched > 0);
        assert_eq!(k, k2);
    }

    #[test]
    fn split_bounds_are_aligned_and_cover() {
        let b = split_bounds(1000, 10_000, 5);
        assert_eq!(*b.first().unwrap(), 1000);
        assert_eq!(*b.last().unwrap(), 11_000);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &cut in &b[1..b.len() - 1] {
            assert_eq!((cut - 1000) % SPLIT_ALIGN, 0);
        }
        // Tiny input: collapsed boundaries are dropped, never empty parts.
        let b = split_bounds(0, 70, 4);
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(*b.last().unwrap(), 70);
    }

    #[test]
    fn for_each_chunk_covers_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = 10_000usize;
        let sum = AtomicUsize::new(0);
        for_each_chunk(n, 4, |_, start, len| {
            sum.fetch_add((start..start + len).sum::<usize>(), Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn for_each_chunk_serial_below_cutoff() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let counts = for_each_chunk(100, 8, |i, start, len| {
            assert_eq!((i, start, len), (0, 0, 100));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(counts, MorselCounts::default());
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let mut keys: Vec<u64> = vec![3, 1, 2];
        let mut oids: Vec<u32> = vec![0, 1, 2];
        sort_pairs_parallel(&mut keys, &mut oids, 8, &SortConfig::default())
            .expect("serial fallback cannot panic");
        assert_eq!(keys, vec![1, 2, 3]);
        assert_eq!(u64::MAX_KEY, u64::MAX);
    }

    #[test]
    fn worker_panic_error_formats() {
        let e = WorkerPanic { chunk: 3 };
        assert!(e.to_string().contains("worker 3"));
    }

    #[cfg(feature = "faults")]
    #[test]
    fn injected_worker_panic_is_caught() {
        use mcs_faults::{points, with_armed, FireMode};
        let n = 20_000usize;
        let mut state = 99u64;
        let orig: Vec<u32> = (0..n).map(|_| xorshift(&mut state) as u32).collect();
        let cfg = SortConfig::default();

        with_armed(&[(points::SIMD_WORKER_PANIC, FireMode::Once)], || {
            // Silence the expected worker-panic backtrace.
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let mut keys = orig.clone();
            let mut oids: Vec<u32> = (0..n as u32).collect();
            let err = sort_pairs_parallel(&mut keys, &mut oids, 4, &cfg);
            std::panic::set_hook(prev);
            // Which worker pops the poisoned morsel first is a scheduling
            // race; any worker index is a valid report.
            let e = err.expect_err("armed fault must surface as WorkerPanic");
            assert!(e.chunk < 4);
        });

        // Disarmed again: the same call succeeds.
        let mut keys = orig.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        sort_pairs_parallel(&mut keys, &mut oids, 4, &cfg).expect("disarmed");
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }
}
