//! Per-phase timing of the three-phase merge-sort.
//!
//! The merge-sort runs once per sortable group, often thousands of times
//! per round, so phase times are accumulated in a thread-local and
//! harvested *once per round* into [`PhaseTimes`] — no lock or allocation
//! on the sort path. With the `phase-timing` feature disabled every
//! function here is an empty inline stub and the hot loops take no
//! timestamps at all.

/// Nanoseconds spent in each of the merge-sort's three phases
/// (the paper's Eq. 5 decomposition), summed over every SIMD-sort
/// invocation covered by one harvest.
///
/// Groups small enough for the scalar insertion-sort fallback never enter
/// the phased pipeline and contribute zero to all three fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Phase (a): in-register sorting networks + transpose.
    pub in_register_ns: u64,
    /// Phase (b): in-cache binary bitonic merge passes.
    pub in_cache_merge_ns: u64,
    /// Phase (c): out-of-cache multiway merge passes.
    pub multiway_merge_ns: u64,
}

impl PhaseTimes {
    /// Element-wise sum (used when merging per-thread stats).
    pub fn add(&mut self, other: PhaseTimes) {
        self.in_register_ns += other.in_register_ns;
        self.in_cache_merge_ns += other.in_cache_merge_ns;
        self.multiway_merge_ns += other.multiway_merge_ns;
    }

    /// Total time across all three phases.
    pub fn total_ns(&self) -> u64 {
        self.in_register_ns + self.in_cache_merge_ns + self.multiway_merge_ns
    }
}

#[cfg(feature = "phase-timing")]
mod imp {
    use super::PhaseTimes;
    use std::cell::Cell;
    use std::time::Instant;

    thread_local! {
        static ACC: Cell<PhaseTimes> = const { Cell::new(PhaseTimes {
            in_register_ns: 0,
            in_cache_merge_ns: 0,
            multiway_merge_ns: 0,
        }) };
    }

    /// A timestamp taken at a phase boundary.
    pub type Mark = Instant;

    /// Take a phase-boundary timestamp.
    #[inline(always)]
    pub fn mark() -> Mark {
        Instant::now()
    }

    /// Credit one merge-sort invocation's phase boundaries
    /// (`a`→`b` in-register, `b`→`c` in-cache, `c`→`d` multiway) to the
    /// current thread's accumulator.
    #[inline]
    pub fn record_marks(a: Mark, b: Mark, c: Mark, d: Mark) {
        ACC.with(|acc| {
            let mut t = acc.get();
            t.in_register_ns += b.duration_since(a).as_nanos() as u64;
            t.in_cache_merge_ns += c.duration_since(b).as_nanos() as u64;
            t.multiway_merge_ns += d.duration_since(c).as_nanos() as u64;
            acc.set(t);
        });
    }

    /// Drain this thread's accumulated phase times.
    pub fn take_phases() -> PhaseTimes {
        ACC.with(|acc| acc.replace(PhaseTimes::default()))
    }
}

#[cfg(not(feature = "phase-timing"))]
mod imp {
    use super::PhaseTimes;

    /// Zero-sized stand-in for the phase-boundary timestamp.
    pub type Mark = ();

    /// No-op.
    #[inline(always)]
    pub fn mark() -> Mark {}

    /// No-op.
    #[inline(always)]
    pub fn record_marks(_a: Mark, _b: Mark, _c: Mark, _d: Mark) {}

    /// Always zero.
    #[inline(always)]
    pub fn take_phases() -> PhaseTimes {
        PhaseTimes::default()
    }
}

pub use imp::{mark, record_marks, take_phases, Mark};

#[cfg(all(test, feature = "phase-timing"))]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_drains_per_thread() {
        let _ = take_phases();
        let a = mark();
        let b = mark();
        record_marks(a, b, b, b);
        record_marks(a, a, a, b);
        let t = take_phases();
        assert!(t.in_register_ns <= t.total_ns());
        assert_eq!(take_phases(), PhaseTimes::default(), "drained");

        // Another thread's accumulator is independent.
        std::thread::spawn(|| {
            assert_eq!(take_phases(), PhaseTimes::default());
        })
        .join()
        .unwrap();
    }
}
