//! Portable (architecture-independent) kernel implementations.
//!
//! Registers are fixed-size arrays; every operation is a straight-line
//! lane loop. This backend is the correctness oracle's sibling — it is
//! compiled on every target and exercised by the same tests as the AVX2
//! backend. On x86-64 the lane loops frequently autovectorize, but no
//! performance is guaranteed; the AVX2 backend is the fast path.

use crate::kernel::Kernel;

macro_rules! portable_kernel {
    ($name:ident, $k:ty, $l:expr) => {
        /// Portable kernel for this bank width.
        #[derive(Clone, Copy)]
        pub struct $name;

        impl Kernel for $name {
            type K = $k;
            const L: usize = $l;
            type Reg = [$k; $l];
            type PReg = [u32; $l];

            #[inline(always)]
            unsafe fn load(k: *const $k) -> [$k; $l] {
                core::ptr::read_unaligned(k as *const [$k; $l])
            }
            #[inline(always)]
            unsafe fn store(k: *mut $k, r: [$k; $l]) {
                core::ptr::write_unaligned(k as *mut [$k; $l], r)
            }
            #[inline(always)]
            unsafe fn loadp(p: *const u32) -> [u32; $l] {
                core::ptr::read_unaligned(p as *const [u32; $l])
            }
            #[inline(always)]
            unsafe fn storep(p: *mut u32, r: [u32; $l]) {
                core::ptr::write_unaligned(p as *mut [u32; $l], r)
            }

            #[inline(always)]
            fn minmax2(
                a: [$k; $l],
                b: [$k; $l],
                pa: [u32; $l],
                pb: [u32; $l],
            ) -> ([$k; $l], [$k; $l], [u32; $l], [u32; $l]) {
                let mut lo = a;
                let mut hi = b;
                let mut plo = pa;
                let mut phi = pb;
                for i in 0..$l {
                    // `>` (not `>=`) keeps a's payload with the min on ties.
                    let swap = a[i] > b[i];
                    lo[i] = if swap { b[i] } else { a[i] };
                    hi[i] = if swap { a[i] } else { b[i] };
                    plo[i] = if swap { pb[i] } else { pa[i] };
                    phi[i] = if swap { pa[i] } else { pb[i] };
                }
                (lo, hi, plo, phi)
            }

            #[inline(always)]
            fn merge2(
                a: [$k; $l],
                b: [$k; $l],
                pa: [u32; $l],
                pb: [u32; $l],
            ) -> ([$k; $l], [$k; $l], [u32; $l], [u32; $l]) {
                // Reverse b so that a ++ rev(b) is bitonic.
                let mut rb = b;
                let mut prb = pb;
                for i in 0..$l {
                    rb[i] = b[$l - 1 - i];
                    prb[i] = pb[$l - 1 - i];
                }
                let (mut lo, mut hi, mut plo, mut phi) = Self::minmax2(a, rb, pa, prb);
                // Each half is now bitonic and max(lo) <= min(hi); clean
                // each with log2(L) intra-register half-cleaner stages.
                intra_clean::<$k, $l>(&mut lo, &mut plo);
                intra_clean::<$k, $l>(&mut hi, &mut phi);
                (lo, hi, plo, phi)
            }
        }
    };
}

/// Sort a bitonic register ascending with half-cleaner stages at
/// distances `L/2, L/4, …, 1`.
#[inline(always)]
fn intra_clean<K: Copy + Ord, const L: usize>(k: &mut [K; L], p: &mut [u32; L]) {
    let mut d = L / 2;
    while d >= 1 {
        let mut i = 0;
        while i < L {
            if i & d == 0 {
                let j = i | d;
                if k[j] < k[i] {
                    k.swap(i, j);
                    p.swap(i, j);
                }
            }
            i += 1;
        }
        d >>= 1;
    }
}

portable_kernel!(P16, u16, 16);
portable_kernel!(P32, u32, 8);
portable_kernel!(P64, u64, 4);

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_merge2_ok<Kn: Kernel>(a: Vec<Kn::K>, b: Vec<Kn::K>)
    where
        Kn::Reg: core::fmt::Debug,
    {
        let l = Kn::L;
        assert!(a.len() == l && b.len() == l);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        let pa: Vec<u32> = (0..l as u32).collect();
        let pb: Vec<u32> = (l as u32..2 * l as u32).collect();
        unsafe {
            let ra = Kn::load(a.as_ptr());
            let rb = Kn::load(b.as_ptr());
            let ppa = Kn::loadp(pa.as_ptr());
            let ppb = Kn::loadp(pb.as_ptr());
            let (lo, hi, plo, phi) = Kn::merge2(ra, rb, ppa, ppb);
            let mut out_k = vec![Kn::K::default(); 2 * l];
            let mut out_p = vec![0u32; 2 * l];
            Kn::store(out_k.as_mut_ptr(), lo);
            Kn::store(out_k.as_mut_ptr().add(l), hi);
            Kn::storep(out_p.as_mut_ptr(), plo);
            Kn::storep(out_p.as_mut_ptr().add(l), phi);
            // Sorted.
            assert!(
                out_k.windows(2).all(|w| w[0] <= w[1]),
                "not sorted: {out_k:?}"
            );
            // Same multiset of (key, payload) and payload points at its key.
            let mut all: Vec<(Kn::K, u32)> = a
                .iter()
                .chain(b.iter())
                .copied()
                .zip(pa.iter().chain(pb.iter()).copied())
                .collect();
            let mut got: Vec<(Kn::K, u32)> =
                out_k.iter().copied().zip(out_p.iter().copied()).collect();
            all.sort_unstable();
            got.sort_unstable();
            assert_eq!(all, got);
        }
    }

    #[test]
    fn merge2_p32_basic() {
        assert_merge2_ok::<P32>(
            vec![1, 3, 5, 7, 9, 11, 13, 15],
            vec![2, 4, 6, 8, 10, 12, 14, 16],
        );
        assert_merge2_ok::<P32>(vec![0; 8], vec![0; 8]); // all ties
        assert_merge2_ok::<P32>(
            vec![10, 20, 30, 40, 50, 60, 70, 80],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
        );
    }

    #[test]
    fn merge2_p16_basic() {
        let a: Vec<u16> = (0..16).map(|i| i * 2).collect();
        let b: Vec<u16> = (0..16).map(|i| i * 2 + 1).collect();
        assert_merge2_ok::<P16>(a, b);
        assert_merge2_ok::<P16>(vec![7; 16], vec![7; 16]);
    }

    #[test]
    fn merge2_p64_basic() {
        assert_merge2_ok::<P64>(vec![1, 5, 9, 13], vec![2, 6, 10, 14]);
        assert_merge2_ok::<P64>(vec![u64::MAX; 4], vec![0, 1, 2, u64::MAX]);
    }

    #[test]
    fn merge2_exhaustive_01_sequences_p64() {
        // All sorted 0/1 registers for L=4: heads of all bitonic cases.
        for na in 0..=4usize {
            for nb in 0..=4usize {
                let a: Vec<u64> = (0..4).map(|i| u64::from(i >= 4 - na)).collect();
                let b: Vec<u64> = (0..4).map(|i| u64::from(i >= 4 - nb)).collect();
                assert_merge2_ok::<P64>(a, b);
            }
        }
    }

    #[test]
    fn minmax2_tie_payload_integrity() {
        let a = [5u32; 8];
        let b = [5u32; 8];
        let pa = [1u32; 8];
        let pb = [2u32; 8];
        let (_, _, plo, phi) = P32::minmax2(a, b, pa, pb);
        assert_eq!(plo, pa);
        assert_eq!(phi, pb);
    }
}
