//! LSD radix sort for `(key, oid)` pairs — the paper's stated future
//! work (§7): "The performance of in-memory radix-sort depends on the
//! size (number of bits) of the radix … Code massaging would allow a
//! careful choice of the radix size when radix-sorting multiple columns."
//!
//! The sort takes the *effective* key width as a parameter: a massaged
//! round of `w` bits needs only `⌈w/8⌉` counting passes, so
//! bit-borrowing pays off for radix sort just as bank narrowing does for
//! the SIMD merge-sort. Passes whose digit is constant across the input
//! are skipped (common after massaging, when high bits are sparse).

use crate::key::Key;
use crate::scalar::insertion_sort_pairs;
use crate::segmented::{GroupBounds, SegmentedSortStats};

/// Radix (digit) size in bits; 8 gives byte-wide counting passes.
const DIGIT_BITS: u32 = 8;
const BUCKETS: usize = 1 << DIGIT_BITS;

/// Sort `(keys, oids)` ascending with LSD radix sort over the low
/// `width_bits` of each key (all key bits above `width_bits` must be
/// zero — true by construction for encoded codes and massaged rounds).
pub fn sort_pairs_radix<K: Key>(keys: &mut [K], oids: &mut [u32], width_bits: u32) {
    assert_eq!(keys.len(), oids.len());
    let n = keys.len();
    if n <= 64 {
        insertion_sort_pairs(keys, oids);
        return;
    }
    debug_assert!(width_bits >= 1 && width_bits <= K::BITS);
    let passes = width_bits.div_ceil(DIGIT_BITS);

    let mut kbuf: Vec<K> = vec![K::default(); n];
    let mut obuf: Vec<u32> = vec![0u32; n];
    let mut src_is_orig = true;

    for pass in 0..passes {
        let shift = pass * DIGIT_BITS;
        let (sk, so, dk, dov): (&mut [K], &mut [u32], &mut [K], &mut [u32]) = if src_is_orig {
            (keys, oids, &mut kbuf, &mut obuf)
        } else {
            (&mut kbuf, &mut obuf, keys, oids)
        };

        // Histogram.
        let mut hist = [0usize; BUCKETS];
        for k in sk.iter() {
            hist[((k.to_u64() >> shift) & 0xFF) as usize] += 1;
        }
        // Skip constant-digit passes (frequent for massaged high bits).
        if hist.contains(&n) {
            continue;
        }
        // Exclusive prefix sums -> bucket start offsets.
        let mut offsets = [0usize; BUCKETS];
        let mut acc = 0usize;
        for (o, &h) in offsets.iter_mut().zip(hist.iter()) {
            *o = acc;
            acc += h;
        }
        // Stable scatter.
        for i in 0..n {
            let d = ((sk[i].to_u64() >> shift) & 0xFF) as usize;
            let at = offsets[d];
            offsets[d] += 1;
            dk[at] = sk[i];
            dov[at] = so[i];
        }
        src_is_orig = !src_is_orig;
    }

    if !src_is_orig {
        keys.copy_from_slice(&kbuf);
        oids.copy_from_slice(&obuf);
    }
}

/// Segmented radix sort (per-group), mirroring
/// [`crate::sort_pairs_in_groups`].
pub fn sort_pairs_radix_in_groups<K: Key>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    width_bits: u32,
) -> SegmentedSortStats {
    assert_eq!(groups.num_rows(), keys.len());
    let mut stats = SegmentedSortStats::default();
    for r in groups.iter() {
        let len = r.len();
        if len <= 1 {
            continue;
        }
        stats.invocations += 1;
        stats.codes_sorted += len;
        stats.max_group = stats.max_group.max(len);
        sort_pairs_radix(&mut keys[r.clone()], &mut oids[r], width_bits);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn check<K: Key>(orig: &[K], keys: &[K], oids: &[u32]) {
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut seen = vec![false; oids.len()];
        for (i, &o) in oids.iter().enumerate() {
            assert_eq!(keys[i], orig[o as usize]);
            assert!(!seen[o as usize]);
            seen[o as usize] = true;
        }
    }

    #[test]
    fn radix_sorts_all_widths() {
        for &(width, mask) in &[
            (12u32, 0xFFFu64),
            (16, 0xFFFF),
            (24, 0xFF_FFFF),
            (32, u32::MAX as u64),
        ] {
            let n = 5000;
            let mut state = width as u64 + 1;
            let orig: Vec<u32> = (0..n)
                .map(|_| (xorshift(&mut state) & mask) as u32)
                .collect();
            let mut k = orig.clone();
            let mut o: Vec<u32> = (0..n as u32).collect();
            sort_pairs_radix(&mut k, &mut o, width);
            check(&orig, &k, &o);
        }
    }

    #[test]
    fn radix_u16_and_u64() {
        let n = 3000;
        let mut state = 9u64;
        let orig16: Vec<u16> = (0..n).map(|_| xorshift(&mut state) as u16).collect();
        let mut k = orig16.clone();
        let mut o: Vec<u32> = (0..n as u32).collect();
        sort_pairs_radix(&mut k, &mut o, 16);
        check(&orig16, &k, &o);

        let orig64: Vec<u64> = (0..n)
            .map(|_| xorshift(&mut state) & ((1 << 50) - 1))
            .collect();
        let mut k = orig64.clone();
        let mut o: Vec<u32> = (0..n as u32).collect();
        sort_pairs_radix(&mut k, &mut o, 50);
        check(&orig64, &k, &o);
    }

    #[test]
    fn radix_is_stable() {
        // LSD radix with stable scatter: equal keys keep input order.
        let orig: Vec<u32> = vec![5, 3, 5, 3, 5];
        let mut k = orig.clone();
        let mut o: Vec<u32> = (0..5).collect();
        sort_pairs_radix(&mut k, &mut o, 32);
        assert_eq!(k, vec![3, 3, 5, 5, 5]);
        assert_eq!(o, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let mut k: Vec<u32> = vec![];
        let mut o: Vec<u32> = vec![];
        sort_pairs_radix(&mut k, &mut o, 10);
        let mut k = vec![9u32, 1];
        let mut o = vec![0u32, 1];
        sort_pairs_radix(&mut k, &mut o, 10);
        assert_eq!(k, vec![1, 9]);
    }

    #[test]
    fn narrower_width_skips_passes() {
        // Values fit in 9 bits; sorting "as 9-bit" and "as 32-bit" agree.
        let n = 2000;
        let mut state = 77u64;
        let orig: Vec<u32> = (0..n)
            .map(|_| (xorshift(&mut state) & 0x1FF) as u32)
            .collect();
        let mut k1 = orig.clone();
        let mut o1: Vec<u32> = (0..n as u32).collect();
        sort_pairs_radix(&mut k1, &mut o1, 9);
        let mut k2 = orig.clone();
        let mut o2: Vec<u32> = (0..n as u32).collect();
        sort_pairs_radix(&mut k2, &mut o2, 32);
        assert_eq!(k1, k2);
        assert_eq!(o1, o2); // both stable -> identical permutations
    }

    #[test]
    fn segmented_radix() {
        let mut keys: Vec<u32> = vec![3, 1, 2, 9, 8, 7, 5];
        let mut oids: Vec<u32> = (0..7).collect();
        let groups = GroupBounds::from_offsets(vec![0, 3, 7]);
        let stats = sort_pairs_radix_in_groups(&mut keys, &mut oids, &groups, 8);
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
        assert_eq!(stats.invocations, 2);
    }
}
