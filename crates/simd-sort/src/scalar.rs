//! Scalar reference sorts.
//!
//! [`sort_pairs_scalar`] is both the correctness oracle for the SIMD paths
//! and the "no SIMD" baseline used by the benchmarks. [`insertion_sort_pairs`]
//! handles the tiny per-group sorts of later rounds.

use crate::key::Key;

/// Sort `(keys, oids)` by key using the standard-library unstable sort on
/// zipped pairs. `O(n log n)`, no SIMD.
pub fn sort_pairs_scalar<K: Key>(keys: &mut [K], oids: &mut [u32]) {
    assert_eq!(keys.len(), oids.len());
    let mut pairs: Vec<(K, u32)> = keys.iter().copied().zip(oids.iter().copied()).collect();
    pairs.sort_unstable_by_key(|&(k, _)| k);
    for (i, (k, o)) in pairs.into_iter().enumerate() {
        keys[i] = k;
        oids[i] = o;
    }
}

/// Branch-light insertion sort for short segments (used for tiny groups
/// where a full merge-sort invocation's `C_overhead` would dominate).
pub fn insertion_sort_pairs<K: Key>(keys: &mut [K], oids: &mut [u32]) {
    debug_assert_eq!(keys.len(), oids.len());
    for i in 1..keys.len() {
        let k = keys[i];
        let o = oids[i];
        let mut j = i;
        while j > 0 && keys[j - 1] > k {
            keys[j] = keys[j - 1];
            oids[j] = oids[j - 1];
            j -= 1;
        }
        keys[j] = k;
        oids[j] = o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sort_small() {
        let mut k = vec![3u32, 1, 2];
        let mut o = vec![0, 1, 2];
        sort_pairs_scalar(&mut k, &mut o);
        assert_eq!(k, vec![1, 2, 3]);
        assert_eq!(o, vec![1, 2, 0]);
    }

    #[test]
    fn insertion_sort_matches_scalar() {
        let mut k1: Vec<u16> = vec![9, 4, 4, 7, 0, 65535, 3];
        let mut o1: Vec<u32> = (0..7).collect();
        let mut k2 = k1.clone();
        let mut o2 = o1.clone();
        sort_pairs_scalar(&mut k1, &mut o1);
        insertion_sort_pairs(&mut k2, &mut o2);
        assert_eq!(k1, k2);
        // Ties (the two 4s) may permute; verify oid-key consistency instead.
        for i in 0..7 {
            assert_eq!(k2[i], [9u16, 4, 4, 7, 0, 65535, 3][o2[i] as usize]);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let mut k: Vec<u64> = vec![];
        let mut o: Vec<u32> = vec![];
        sort_pairs_scalar(&mut k, &mut o);
        insertion_sort_pairs(&mut k, &mut o);
        let mut k = vec![5u64];
        let mut o = vec![7u32];
        sort_pairs_scalar(&mut k, &mut o);
        assert_eq!((k[0], o[0]), (5, 7));
    }
}
