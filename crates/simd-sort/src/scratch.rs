//! Caller-provided scratch memory for the merge-sort pipeline.
//!
//! Every phase of the three-phase merge-sort ([`crate::sort`]) and the
//! out-of-cache loser tree ([`crate::multiway`]) needs working memory:
//! the padded ping-pong key/oid buffer pairs, the per-pass run list, and
//! the loser-tree node arrays. The plain entry points allocate these on
//! demand per call; the `_scratch` variants instead draw them from a
//! [`SortScratch`] owned by the caller, growing each buffer monotonically
//! to its high-water mark so a warm caller performs no heap allocation
//! at all.
//!
//! [`SortScratch`] holds one buffer pair per key bank (`u16`/`u32`/`u64`)
//! so a single instance serves every round of a multi-column sort
//! regardless of the plan's bank choices. [`WorkerScratch`] extends this
//! with per-worker instances plus the span bookkeeping the parallel
//! segmented sort needs.
//!
//! Scratch contents are *not* meaningful between calls: every user
//! overwrites what it reads. A caller that aborts mid-sort (e.g. on an
//! injected fault) leaves garbage behind, which is fine — the next call
//! resizes and overwrites.

use core::ops::Range;

/// Reusable working memory for one serial merge-sort stream.
///
/// `Default`/`new` construct an empty scratch that allocates nothing
/// until first use; buffers then grow monotonically and are reused by
/// later calls.
#[derive(Debug, Default)]
pub struct SortScratch {
    /// Padded ping-pong key buffers per bank.
    pub(crate) k16: (Vec<u16>, Vec<u16>),
    /// 32-bit-bank key buffers.
    pub(crate) k32: (Vec<u32>, Vec<u32>),
    /// 64-bit-bank key buffers.
    pub(crate) k64: (Vec<u64>, Vec<u64>),
    /// Padded ping-pong oid buffers (shared by all banks).
    pub(crate) oids: (Vec<u32>, Vec<u32>),
    /// Ping-pong offset-value-code buffers for the out-of-cache merge
    /// (shared by all banks; codes are computed over widened keys).
    pub(crate) codes: (Vec<u32>, Vec<u32>),
    /// Run list reused by each out-of-cache merge pass.
    pub(crate) runs: Vec<Range<usize>>,
    /// Loser-tree node arrays.
    pub(crate) merge: MergeScratch,
}

impl SortScratch {
    /// An empty scratch; nothing is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held across all buffers.
    pub fn bytes(&self) -> usize {
        fn pair<T>(p: &(Vec<T>, Vec<T>)) -> usize {
            (p.0.capacity() + p.1.capacity()) * core::mem::size_of::<T>()
        }
        pair(&self.k16)
            + pair(&self.k32)
            + pair(&self.k64)
            + pair(&self.oids)
            + pair(&self.codes)
            + self.runs.capacity() * core::mem::size_of::<Range<usize>>()
            + self.merge.bytes()
    }
}

/// Reusable node arrays for the loser-tree multiway merge.
///
/// Head keys are stored widened to `u64` (zero-extension is
/// order-preserving for unsigned codes), so one instance serves every
/// key bank.
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// `(cursor, end)` per run slot.
    pub(crate) cursors: Vec<(usize, usize)>,
    /// Loser at each internal node; `tree[0]` is the overall winner.
    pub(crate) tree: Vec<u32>,
    /// Temporary winner array used by the full rebuild.
    pub(crate) winner: Vec<u32>,
    /// `(widened head key, valid)` per run slot.
    pub(crate) heads: Vec<(u64, bool)>,
    /// Offset-value code of each head, relative to the last element the
    /// tree output (only maintained by the OVC merge variants).
    pub(crate) head_codes: Vec<u32>,
    /// Payload oid of each head (only maintained by the streaming merge,
    /// whose sources deliver elements one at a time instead of exposing
    /// slices the cursors could index).
    pub(crate) head_oids: Vec<u32>,
}

impl MergeScratch {
    /// An empty scratch; nothing is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held.
    pub fn bytes(&self) -> usize {
        self.cursors.capacity() * core::mem::size_of::<(usize, usize)>()
            + (self.tree.capacity()
                + self.winner.capacity()
                + self.head_codes.capacity()
                + self.head_oids.capacity())
                * core::mem::size_of::<u32>()
            + self.heads.capacity() * core::mem::size_of::<(u64, bool)>()
    }

    /// Size the node arrays for `m` (power-of-two padded) run slots.
    /// Contents after this call are unspecified; callers overwrite.
    pub(crate) fn prepare(&mut self, m: usize) {
        self.cursors.resize(m, (0, 0));
        self.tree.resize(m, 0);
        self.winner.resize(2 * m, 0);
        self.heads.resize(m, (0, false));
        self.head_codes.resize(m, 0);
        self.head_oids.resize(m, 0);
    }
}

/// Scratch for the parallel segmented sort: per-worker [`SortScratch`]
/// instances plus the span bookkeeping of the group distributor.
#[derive(Debug, Default)]
pub struct WorkerScratch {
    /// Contiguous spans of whole groups, as offsets-index ranges.
    pub(crate) spans: Vec<(usize, usize)>,
    /// Rebased group offsets per span.
    pub(crate) locals: Vec<Vec<u32>>,
    /// One sort scratch per worker span.
    pub(crate) workers: Vec<SortScratch>,
}

impl WorkerScratch {
    /// An empty scratch; nothing is allocated until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes currently held across all workers.
    pub fn bytes(&self) -> usize {
        self.spans.capacity() * core::mem::size_of::<(usize, usize)>()
            + self
                .locals
                .iter()
                .map(|l| l.capacity() * core::mem::size_of::<u32>())
                .sum::<usize>()
            + self.workers.iter().map(SortScratch::bytes).sum::<usize>()
    }

    /// The serial-path scratch (also worker 0 of the parallel path).
    pub(crate) fn serial(&mut self) -> &mut SortScratch {
        if self.workers.is_empty() {
            self.workers.push(SortScratch::new());
        }
        &mut self.workers[0]
    }
}
