//! Segmented (per-group) sorting — the second and later rounds of
//! multi-column sorting.
//!
//! After round `k-1`, tuples tied on all previous sort keys form groups;
//! round `k` sorts the next key *within each group* independently
//! (Step ③ in the paper's Figure 2a). Singleton groups are skipped, which
//! is exactly the effect behind the falling `N_sort` on the left flank of
//! the Figure 4 time hill.

use crate::key::Key;
use crate::ovc::{self, MergeCounters};
use crate::phase::{self, PhaseTimes};
use crate::scalar::insertion_sort_pairs;
use crate::scratch::SortScratch;
use crate::sort::{SortConfig, SortableKey};
use mcs_cancel::CHECK_INTERVAL;

/// Group layout: starts of each group plus the final end, i.e.
/// `groups[g] = bounds[g]..bounds[g+1]`. Always has at least one element
/// (`n` itself when there are no rows... see [`GroupBounds::whole`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBounds {
    /// `len + 1` monotone offsets: `[0, b1, b2, …, n]` when non-trivial.
    pub offsets: Vec<u32>,
}

impl GroupBounds {
    /// A single group covering `0..n`.
    pub fn whole(n: usize) -> Self {
        GroupBounds {
            offsets: vec![0, n as u32],
        }
    }

    /// Build from explicit offsets (must start at 0, end at `n`, monotone).
    pub fn from_offsets(offsets: Vec<u32>) -> Self {
        debug_assert!(offsets.len() >= 2);
        debug_assert_eq!(offsets[0], 0);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        GroupBounds { offsets }
    }

    /// Number of groups.
    #[inline]
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of rows covered.
    #[inline]
    pub fn num_rows(&self) -> usize {
        *self.offsets.last().unwrap() as usize
    }

    /// Iterate the groups as index ranges.
    pub fn iter(&self) -> impl Iterator<Item = core::ops::Range<usize>> + '_ {
        self.offsets
            .windows(2)
            .map(|w| w[0] as usize..w[1] as usize)
    }

    /// Number of groups with more than one row (`N_sort` in the paper:
    /// each of these triggers one SIMD-sort invocation).
    pub fn num_sortable(&self) -> usize {
        self.iter().filter(|r| r.len() > 1).count()
    }

    /// Refine: scan sorted `keys` and split every group at positions where
    /// consecutive keys differ (the paper's `T_scan` step, Eq. 9).
    pub fn refine_by<K: Key>(&self, keys: &[K]) -> GroupBounds {
        let mut offsets = Vec::with_capacity(self.offsets.len());
        self.refine_into(keys, &mut offsets);
        GroupBounds { offsets }
    }

    /// Like [`GroupBounds::refine_by`], but writing the refined offsets
    /// into `out` (cleared first) instead of allocating a new vector —
    /// allocation-free when `out` already has enough capacity.
    pub fn refine_into<K: Key>(&self, keys: &[K], out: &mut Vec<u32>) {
        debug_assert_eq!(self.num_rows(), keys.len());
        out.clear();
        out.push(0u32);
        for r in self.iter() {
            for i in r.start + 1..r.end {
                if keys[i] != keys[i - 1] {
                    out.push(i as u32);
                }
            }
            if r.end > 0 && *out.last().unwrap() != r.end as u32 {
                out.push(r.end as u32);
            }
        }
        if out.len() == 1 {
            out.push(0);
        }
    }
}

/// Statistics of one segmented-sort round (feeds the paper's Figure 4b and
/// the cost model's calibration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentedSortStats {
    /// Number of SIMD-sort invocations (groups with > 1 element).
    pub invocations: usize,
    /// Total number of codes actually sorted.
    pub codes_sorted: usize,
    /// Largest group size encountered.
    pub max_group: usize,
    /// Time spent in each merge-sort phase, summed across invocations
    /// (all zero unless the `phase-timing` feature is on).
    pub phases: PhaseTimes,
    /// Loser-tree comparison counters of the out-of-cache merge passes,
    /// summed across invocations ([`crate::ovc`]).
    pub merge: MergeCounters,
    /// Work-stealing scheduler counters of the parallel path (all zero on
    /// the serial path and below the parallel cutoff).
    pub morsels: mcs_morsel::MorselCounts,
}

/// Sort `(keys, oids)` within each group independently.
///
/// Groups of length ≤ `cfg.small_threshold` use insertion sort (their
/// merge-sort `C_overhead` would dominate); larger groups run the full
/// SIMD merge-sort on the sub-slices.
pub fn sort_pairs_in_groups<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    cfg: &SortConfig,
) -> SegmentedSortStats {
    let mut scratch = SortScratch::new();
    sort_pairs_in_groups_scratch(keys, oids, groups, cfg, &mut scratch)
}

/// Like [`sort_pairs_in_groups`], but drawing all merge-sort working
/// memory from `scratch` — allocation-free once the scratch is warm.
pub fn sort_pairs_in_groups_scratch<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    groups: &GroupBounds,
    cfg: &SortConfig,
    scratch: &mut SortScratch,
) -> SegmentedSortStats {
    assert_eq!(groups.num_rows(), keys.len(), "group bounds mismatch");
    sort_groups_by_offsets(keys, oids, &groups.offsets, cfg, scratch)
}

/// Group-wise sort over a raw offsets slice (the parallel path hands each
/// worker a rebased sub-slice without building a `GroupBounds`).
pub(crate) fn sort_groups_by_offsets<K: SortableKey>(
    keys: &mut [K],
    oids: &mut [u32],
    offsets: &[u32],
    cfg: &SortConfig,
    scratch: &mut SortScratch,
) -> SegmentedSortStats {
    assert_eq!(keys.len(), oids.len());
    let mut stats = SegmentedSortStats::default();
    let _ = phase::take_phases(); // clear any stale thread-local residue
    let _ = ovc::take_merge_counters();
    // Cancellation poll, amortized over rows so runs of tiny groups don't
    // pay an `Instant::now` each (large groups also poll inside the full
    // merge-sort). A fired token abandons the remaining groups; the
    // caller re-checks the token and discards the partially sorted round.
    let mut rows_since_poll = 0usize;
    for w in offsets.windows(2) {
        let r = w[0] as usize..w[1] as usize;
        let len = r.len();
        if len <= 1 {
            continue;
        }
        rows_since_poll += len;
        if rows_since_poll >= CHECK_INTERVAL {
            rows_since_poll = 0;
            if cfg.cancel.check().is_err() {
                break;
            }
        }
        stats.invocations += 1;
        stats.codes_sorted += len;
        stats.max_group = stats.max_group.max(len);
        let k = &mut keys[r.clone()];
        let o = &mut oids[r];
        if len <= cfg.small_threshold {
            insertion_sort_pairs(k, o);
        } else {
            K::sort_pairs_with_scratch(k, o, cfg, scratch);
        }
    }
    stats.phases = phase::take_phases();
    stats.merge = ovc::take_merge_counters();
    stats
}

/// Extract group boundaries of a fully sorted key column (round 1's scan).
pub fn group_boundaries<K: Key>(keys: &[K]) -> GroupBounds {
    GroupBounds::whole(keys.len()).refine_by(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_and_refine() {
        let keys: Vec<u32> = vec![1, 1, 2, 2, 2, 3];
        let g = group_boundaries(&keys);
        assert_eq!(g.offsets, vec![0, 2, 5, 6]);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_sortable(), 2);
    }

    #[test]
    fn refine_within_groups_only() {
        // Two parent groups [0..3) and [3..6); equal keys across the parent
        // boundary must NOT merge.
        let keys: Vec<u32> = vec![5, 5, 5, 5, 6, 6];
        let parent = GroupBounds::from_offsets(vec![0, 3, 6]);
        let g = parent.refine_by(&keys);
        assert_eq!(g.offsets, vec![0, 3, 4, 6]);
    }

    #[test]
    fn empty_input() {
        let keys: Vec<u32> = vec![];
        let g = group_boundaries(&keys);
        assert_eq!(g.num_groups(), 1); // one empty group
        assert_eq!(g.num_rows(), 0);
        assert_eq!(g.num_sortable(), 0);
    }

    #[test]
    fn empty_partitions_are_skipped_and_dropped() {
        // An empty group ([2, 2)) sandwiched between real ones: it is
        // never sortable, and refine_by drops it from the output.
        let g = GroupBounds::from_offsets(vec![0, 2, 2, 5]);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.num_sortable(), 2);
        assert_eq!(g.iter().map(|r| r.len()).collect::<Vec<_>>(), vec![2, 0, 3]);
        let keys: Vec<u32> = vec![1, 1, 2, 2, 3];
        assert_eq!(g.refine_by(&keys).offsets, vec![0, 2, 4, 5]);

        // Sorting with an empty group present must not panic or touch
        // neighbouring groups.
        let mut keys: Vec<u32> = vec![4, 3, 9, 8, 7];
        let mut oids: Vec<u32> = (0..5).collect();
        let stats = sort_pairs_in_groups(
            &mut keys,
            &mut oids,
            &GroupBounds::from_offsets(vec![0, 2, 2, 5]),
            &SortConfig::default(),
        );
        assert_eq!(keys, vec![3, 4, 7, 8, 9]);
        assert_eq!(stats.invocations, 2);
    }

    #[test]
    fn single_row_partitions_survive_refinement() {
        let g = GroupBounds::from_offsets(vec![0, 1, 2, 3]);
        assert_eq!(g.num_sortable(), 0);
        let keys: Vec<u32> = vec![7, 7, 7];
        // Equal keys across singleton boundaries must not merge.
        assert_eq!(g.refine_by(&keys).offsets, vec![0, 1, 2, 3]);
    }

    #[test]
    fn all_ties_collapse_to_one_whole_relation_group() {
        let n = 300usize;
        let keys: Vec<u16> = vec![42; n];
        let g = group_boundaries(&keys);
        assert_eq!(g.offsets, vec![0, n as u32]);
        assert_eq!(g.num_groups(), 1);
        // Refining the whole relation by an all-equal key is a no-op.
        assert_eq!(
            GroupBounds::whole(n).refine_by(&keys).offsets,
            vec![0, n as u32]
        );
    }

    #[test]
    fn segmented_sort_sorts_within_groups() {
        let mut keys: Vec<u32> = vec![3, 1, 2, 9, 8, 7, 5];
        let mut oids: Vec<u32> = (0..7).collect();
        let groups = GroupBounds::from_offsets(vec![0, 3, 7]);
        let stats = sort_pairs_in_groups(&mut keys, &mut oids, &groups, &SortConfig::default());
        assert_eq!(keys, vec![1, 2, 3, 5, 7, 8, 9]);
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.codes_sorted, 7);
        assert_eq!(stats.max_group, 4);
    }

    #[test]
    fn singletons_skipped() {
        let mut keys: Vec<u32> = vec![5, 4, 3, 2, 1];
        let mut oids: Vec<u32> = (0..5).collect();
        let groups = GroupBounds::from_offsets(vec![0, 1, 2, 3, 4, 5]);
        let stats = sort_pairs_in_groups(&mut keys, &mut oids, &groups, &SortConfig::default());
        assert_eq!(stats.invocations, 0);
        assert_eq!(keys, vec![5, 4, 3, 2, 1]); // untouched
    }

    #[test]
    fn large_groups_use_simd_path() {
        let cfg = SortConfig {
            small_threshold: 8,
            ..SortConfig::default()
        };
        let n = 4096;
        let mut keys: Vec<u16> = (0..n).map(|i| (i * 2654435761u64 % 65536) as u16).collect();
        let orig = keys.clone();
        let mut oids: Vec<u32> = (0..n as u32).collect();
        let groups = GroupBounds::from_offsets(vec![0, (n / 2) as u32, n as u32]);
        sort_pairs_in_groups(&mut keys, &mut oids, &groups, &cfg);
        for r in groups.iter() {
            assert!(keys[r].windows(2).all(|w| w[0] <= w[1]));
        }
        for i in 0..n as usize {
            assert_eq!(keys[i], orig[oids[i] as usize]);
        }
    }
}
